"""Reproduces the paper's **Section 4 worst-case scenario**.

"Assuming that there are no delays between operations, the worst case
number of cycles required to reset the architecture, push three stack
entries, fill an entire level with 1024 label pairs and perform a swap
would be 6167 cycles.  Therefore, an FPGA like the Altera Stratix
EP1S40F780C5 with a 50MHz clock could perform those operations in
approximately [0.123] ms."

Measured three ways: the closed-form model, the fast functional model,
and the full cycle-accurate RTL -- all three must agree at 6167.
"""

import pytest

from benchmarks._util import emit, emit_json
from repro.analysis.report import render_table
from repro.core.device import STRATIX_EP1S40
from repro.core.timing import worst_case_scenario
from repro.hw.driver import ModifierDriver
from repro.hw.model import FunctionalModifier
from repro.mpls.label import LabelEntry, LabelOp

PAPER_TOTAL = 6167
PAPER_MS = 0.1233


def _run_composite(modifier):
    """reset + 3 pushes + 1024 level-3 writes + swap with a worst-case
    (last position) search."""
    total = modifier.reset()
    for i, label in enumerate((100, 200, 300)):
        total += modifier.user_push(
            LabelEntry(label=label, ttl=9, s=1 if i == 0 else 0)
        )
    for i in range(1023):
        total += modifier.write_pair(3, 1000 + i, 500, LabelOp.SWAP)
    # the matching pair is written last, so the search scans all 1024
    total += modifier.write_pair(3, 300, 999, LabelOp.SWAP)
    result = modifier.update()
    total += result.cycles
    assert result.performed == LabelOp.SWAP
    assert not result.discarded
    return total


def test_worst_case_analytic_model(benchmark):
    wc = benchmark(worst_case_scenario)
    rows = list(wc.as_rows())
    rows.append(("time at 50 MHz", f"{wc.seconds * 1e3:.4f} ms"))
    emit(
        "worst_case_breakdown",
        render_table(
            ["component", "cycles"],
            rows,
            title="Section 4 worst case -- analytic breakdown (paper: 6167 "
            "cycles, ~0.1233 ms)",
        ),
    )
    emit_json(
        "worst_case_breakdown",
        metric="total_cycles",
        value=wc.total,
        units="cycles",
        milliseconds_at_50mhz=round(wc.seconds * 1e3, 4),
    )
    assert wc.total == PAPER_TOTAL
    assert wc.seconds * 1e3 == pytest.approx(PAPER_MS, abs=5e-4)


def test_worst_case_functional_model(benchmark):
    total = benchmark(_run_composite, FunctionalModifier(ib_depth=1024))
    assert total == PAPER_TOTAL


def test_worst_case_rtl(benchmark):
    def run():
        return _run_composite(ModifierDriver(ib_depth=1024))

    total = benchmark.pedantic(run, iterations=1, rounds=2)
    assert total == PAPER_TOTAL
    seconds = STRATIX_EP1S40.time_for_cycles(total)
    emit(
        "worst_case_rtl",
        render_table(
            ["source", "cycles", "time at 50 MHz (ms)"],
            [
                ["paper", PAPER_TOTAL, PAPER_MS],
                ["RTL (measured)", total, round(seconds * 1e3, 4)],
            ],
            title="Worst case composite: paper vs cycle-accurate RTL",
        ),
    )
    emit_json(
        "worst_case_rtl",
        metric="total_cycles",
        value=total,
        units="cycles",
        milliseconds_at_50mhz=round(seconds * 1e3, 4),
    )
