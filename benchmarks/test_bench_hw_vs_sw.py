"""Ablation: hardware vs software label switching.

The paper's premise ("most existing MPLS solutions are entirely
software based.  MPLS performance can be enhanced by executing core
tasks in hardware") quantified: the same worst-case per-packet label
swap priced under

* the Table 6 hardware model at the paper's 50 MHz FPGA clock,
* a software forwarding loop with a linear table scan on a 200 MHz
  embedded CPU (the era-appropriate comparison),
* the same software with a hash-based lookup (the common optimization).

Expected shape: hardware wins clearly at small-to-moderate table sizes
and for every constant-time operation; the hardware's *linear* search
is its scaling weakness, so hashed software overtakes it at large
tables -- reported honestly, with the crossover.
"""

from benchmarks._util import emit, emit_json
from repro.analysis.report import render_table
from repro.core.hybrid import compare_partitions
from repro.core.timing import SoftwareCostModel
from repro.hw.model import FunctionalModifier
from repro.mpls.forwarding import ForwardingEngine
from repro.mpls.label import LabelEntry, LabelOp
from repro.mpls.nhlfe import NHLFE
from repro.mpls.stack import LabelStack
from repro.net.packet import IPv4Packet, MPLSPacket

SIZES = (1, 4, 16, 64, 256, 1024)


def test_partition_comparison_table(benchmark):
    cmp = benchmark(compare_partitions, table_sizes=SIZES)
    rows = []
    for p in cmp.points:
        rows.append(
            [
                p.n_entries,
                p.hw_cycles,
                round(p.hw_seconds * 1e6, 2),
                round(p.sw_seconds * 1e6, 2),
                round(p.sw_hashed_seconds * 1e6, 2),
                f"{p.speedup_vs_linear_sw:.1f}x",
                f"{p.speedup_vs_hashed_sw:.2f}x",
            ]
        )
    table = render_table(
        [
            "IB entries",
            "hw cycles",
            "hw us (50MHz)",
            "sw-linear us (200MHz)",
            "sw-hash us (200MHz)",
            "hw speedup vs linear",
            "hw speedup vs hash",
        ],
        rows,
        title="Hardware vs software label swap (worst case per packet)",
    )
    crossover = cmp.crossover_entries()
    table += (
        f"\nhashed-software crossover at n = {crossover} entries "
        "(the hardware's linear search is the scaling bottleneck; "
        "constant-time ops always favour hardware)"
    )
    emit("hw_vs_sw_partition", table)
    emit_json(
        "hw_vs_sw_partition",
        metric="hashed_sw_crossover",
        value=crossover,
        units="entries",
        speedup_vs_linear_at_1=round(cmp.points[0].speedup_vs_linear_sw, 2),
    )

    # shape assertions: hw wins small tables vs linear sw by a clear margin
    assert cmp.points[0].speedup_vs_linear_sw > 2
    # speedup decays as the linear search dominates
    speedups = [p.speedup_vs_linear_sw for p in cmp.points]
    assert speedups == sorted(speedups, reverse=True)


def test_same_clock_comparison(benchmark):
    """Normalize the clocks: cycles per packet is the architecture
    comparison the paper implies (its FPGA vs a same-speed CPU)."""
    sw = SoftwareCostModel(clock_hz=50e6)

    def build():
        rows = []
        from repro.core.timing import HardwareCycleModel

        hw = HardwareCycleModel()
        for n in SIZES:
            hw_c = hw.update_swap_worst(n)
            sw_c = sw.per_packet_swap_cycles(n)
            rows.append([n, hw_c, sw_c, f"{sw_c / hw_c:.1f}x"])
        return rows

    rows = benchmark(build)
    emit(
        "hw_vs_sw_same_clock",
        render_table(
            ["IB entries", "hw cycles", "sw cycles", "hw advantage"],
            rows,
            title="Cycles per worst-case swap at identical clock rates",
        ),
    )
    emit_json(
        "hw_vs_sw_same_clock",
        metric="sw_over_hw_cycle_ratio_at_64_entries",
        value=round(rows[3][2] / rows[3][1], 2),
        units="ratio",
    )
    # at the same clock the dedicated datapath always wins: 3 cycles
    # per scanned entry vs a dozen instructions per entry in software
    for n, hw_c, sw_c, _ in rows:
        assert sw_c > hw_c


def test_constant_ops_throughput(benchmark):
    """Constant-time operations (push/pop/write): hardware does each in
    3 cycles = 60 ns; measure the functional model's agreement and the
    software engine's realized per-packet op counts on live packets."""
    engine = ForwardingEngine(node_name="sw")
    engine.ilm.install(100, NHLFE(op=LabelOp.SWAP, out_label=200, next_hop="x"))
    packet = MPLSPacket(
        LabelStack([LabelEntry(label=100, ttl=64)]),
        IPv4Packet(src="1.1.1.1", dst="2.2.2.2"),
    )

    def sw_swap_batch():
        for _ in range(1000):
            engine.transit(packet)
        return engine.counts

    counts = benchmark(sw_swap_batch)
    model = FunctionalModifier()
    hw_cycles = model.user_push(LabelEntry(label=1000))
    assert hw_cycles == 3
    assert counts.swaps >= 1000
