"""Ablation: MPLS label switching vs plain IP hop-by-hop routing.

The argument label switching was built on (and which the paper's
Section 2 recounts): a conventional router performs an independent
longest-prefix-match at every hop, whose cost grows with the routing
table, while an LSR does one exact-label lookup against a table sized
by the number of LSPs.  Both data planes run on identical topology and
traffic; the per-hop work is measured and priced with the software
cost model.
"""

from benchmarks._util import emit, emit_json
from repro.analysis.report import render_series, render_table
from repro.control.ldp import LDPProcess
from repro.core.timing import SoftwareCostModel
from repro.mpls.fec import PrefixFEC
from repro.mpls.router import RouterRole
from repro.net.ip_router import IPRouterNode, populate_fibs
from repro.net.network import MPLSNetwork
from repro.net.topology import paper_figure1
from repro.net.traffic import CBRSource

RIB_SIZES = (0, 64, 256, 512)


def _traffic(net, stop=0.2):
    src = CBRSource(net.scheduler, net.source_sink("ler-a"),
                    src="10.1.0.5", dst="10.2.0.9", rate_bps=1e6,
                    packet_size=500, stop=stop, seed=1)
    src.begin()
    return src


def run_ip(extra_prefixes):
    topo = paper_figure1(bandwidth_bps=10e6, delay_s=1e-3)
    roles = {"ler-a": RouterRole.LER, "ler-b": RouterRole.LER}
    net = MPLSNetwork(
        topo, roles, node_factory=lambda n, r: IPRouterNode(n, r)
    )
    net.attach_host("ler-b", "10.2.0.0/16")
    populate_fibs(topo, net.nodes, {"ler-b": ["10.2.0.0/16"]},
                  extra_prefixes=extra_prefixes)
    src = _traffic(net)
    net.run(until=1.0)
    scans = sum(n.prefixes_scanned for n in net.nodes.values())
    lookups = sum(n.lookups for n in net.nodes.values())
    return net, src, scans, lookups


def run_mpls():
    topo = paper_figure1(bandwidth_bps=10e6, delay_s=1e-3)
    roles = {"ler-a": RouterRole.LER, "ler-b": RouterRole.LER}
    net = MPLSNetwork(topo, roles)
    net.attach_host("ler-b", "10.2.0.0/16")
    LDPProcess(topo, net.nodes).establish_fec(
        PrefixFEC("10.2.0.0/16"), egress="ler-b"
    )
    src = _traffic(net)
    net.run(until=1.0)
    counts = [n.engine.counts for n in net.nodes.values()]
    scans = sum(c.entries_scanned for c in counts)
    lookups = sum(c.ftn_lookups + c.ilm_lookups for c in counts)
    return net, src, scans, lookups


def test_functional_equivalence(benchmark):
    """Both data planes deliver the same traffic on the same network."""

    def run_both():
        ip_net, ip_src, _, _ = run_ip(extra_prefixes=0)
        mpls_net, mpls_src, _, _ = run_mpls()
        return ip_net, ip_src, mpls_net, mpls_src

    ip_net, ip_src, mpls_net, mpls_src = benchmark.pedantic(
        run_both, iterations=1, rounds=2
    )
    assert ip_net.delivered_count() == ip_src.sent
    assert mpls_net.delivered_count() == mpls_src.sent
    assert ip_src.sent == mpls_src.sent
    # latencies differ only by the label's serialization time: the
    # MPLS packet is 4 bytes longer on each of the labelled hops
    label_overhead = 4 * 8 / 10e6 * 3
    for ip_lat, mpls_lat in zip(ip_net.latencies(), mpls_net.latencies()):
        assert abs(mpls_lat - ip_lat - label_overhead) < 1e-9


def test_per_hop_work_vs_rib_size(benchmark):
    """IP's per-packet scan work grows with the RIB; MPLS's does not."""
    sw = SoftwareCostModel()

    def sweep():
        rows = []
        _, mpls_src, mpls_scans, mpls_lookups = run_mpls()
        mpls_per_pkt = mpls_scans / mpls_src.sent
        for extra in RIB_SIZES:
            _, ip_src, ip_scans, _ = run_ip(extra)
            ip_per_pkt = ip_scans / ip_src.sent
            ip_cycles = int(ip_per_pkt * sw.per_entry_scan
                            + 3 * sw.per_packet_overhead)
            mpls_cycles = int(mpls_per_pkt * sw.per_entry_scan
                              + 3 * sw.per_packet_overhead)
            rows.append([extra + 1, round(ip_per_pkt, 1),
                         round(mpls_per_pkt, 1), ip_cycles, mpls_cycles,
                         f"{ip_cycles / mpls_cycles:.2f}x"])
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    emit(
        "mpls_vs_ip",
        render_series(
            "RIB prefixes",
            ["IP scans/pkt", "MPLS scans/pkt", "IP sw cycles/pkt",
             "MPLS sw cycles/pkt", "IP/MPLS cost"],
            rows,
            title="Per-packet forwarding work across the 3-hop path: "
            "IP LPM vs MPLS label switching",
        ),
    )
    emit_json(
        "mpls_vs_ip",
        metric="ip_over_mpls_cycle_ratio_at_513_prefixes",
        value=round(rows[-1][3] / rows[-1][4], 2),
        units="ratio",
        ip_cycles_per_packet=rows[-1][3],
        mpls_cycles_per_packet=rows[-1][4],
    )
    # shape: IP work grows with the RIB, MPLS stays flat
    ip_scans = [r[1] for r in rows]
    mpls_scans = {r[2] for r in rows}
    assert ip_scans == sorted(ip_scans)
    assert ip_scans[-1] > 100 * ip_scans[0]
    assert len(mpls_scans) == 1  # constant regardless of RIB size
