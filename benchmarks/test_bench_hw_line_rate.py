"""Ablation: can the 50 MHz label stack modifier keep up with a link?

The paper claims the architecture "can be implemented to achieve
optimal performance of MPLS".  This bench runs live traffic through a
network of hardware-backed nodes (each packet costs exact modifier
cycles: stack load + Table 6 update + drain), then converts the
measured mean cycles/packet into the maximum line rate the modifier
can saturate for several packet sizes and table occupancies.
"""

from benchmarks._util import emit, emit_json
from repro.analysis.report import render_series, render_table
from repro.analysis.throughput import line_rate_feasibility
from repro.control.ldp import LDPProcess
from repro.core.hwnode import HardwareLSRNode
from repro.core.timing import HardwareCycleModel
from repro.mpls.fec import PrefixFEC
from repro.mpls.router import RouterRole
from repro.net.network import MPLSNetwork
from repro.net.topology import paper_figure1
from repro.net.traffic import CBRSource


def _run_hw_network():
    topo = paper_figure1(bandwidth_bps=10e6, delay_s=1e-3)
    roles = {"ler-a": RouterRole.LER, "ler-b": RouterRole.LER}
    net = MPLSNetwork(topo, roles, node_factory=HardwareLSRNode)
    net.attach_host("ler-b", "10.2.0.0/16")
    LDPProcess(topo, net.nodes).establish_fec(
        PrefixFEC("10.2.0.0/16"), egress="ler-b"
    )
    src = CBRSource(net.scheduler, net.source_sink("ler-a"),
                    src="10.1.0.5", dst="10.2.0.9", rate_bps=2e6,
                    packet_size=500, stop=0.5, seed=1)
    src.begin()
    net.run(until=1.0)
    return net, src


def test_measured_cycles_per_packet_in_live_network(benchmark):
    net, src = benchmark.pedantic(_run_hw_network, iterations=1, rounds=2)
    assert net.delivered_count() == src.sent
    lsr = net.nodes["lsr-1"]
    mean = lsr.mean_hw_cycles_per_packet
    # transit packet = 3 (stack load) + 14 (search hit + swap) + 3 (drain)
    assert mean == 20.0
    feas = line_rate_feasibility(mean, packet_size_bytes=500,
                                 link_bps=10e6)
    rows = [
        ["mean cycles/packet (measured, transit)", mean],
        ["modifier capacity (pps)", int(feas.modifier_pps)],
        ["10 Mbps link demand (pps)", int(feas.link_pps)],
        ["modifier utilization at line rate", f"{feas.utilization:.2%}"],
        ["max saturable line rate", f"{feas.max_line_rate_bps / 1e6:.0f} Mbps"],
    ]
    emit(
        "hw_line_rate_measured",
        render_table(["metric", "value"], rows,
                     title="Hardware node keeping a 10 Mbps link busy "
                     "(small tables, 50 MHz)"),
    )
    emit_json(
        "hw_line_rate_measured",
        metric="mean_hw_cycles_per_packet",
        value=mean,
        units="cycles",
        seed=1,
        max_line_rate_mbps=round(feas.max_line_rate_bps / 1e6, 3),
    )
    assert feas.feasible


def test_line_rate_vs_table_size(benchmark):
    """Worst-case sustainable line rate collapses with table size --
    the linear search again, now expressed as link speed."""
    hw = HardwareCycleModel()

    def build():
        rows = []
        for n in (1, 16, 64, 256, 1024):
            cycles = hw.update_swap_worst(n) + 6  # + load/drain of 1 entry
            for size in (64, 500, 1500):
                feas = line_rate_feasibility(cycles, packet_size_bytes=size,
                                             link_bps=100e6)
                rows.append(
                    [n, size, cycles,
                     round(feas.max_line_rate_bps / 1e6, 1),
                     "yes" if feas.feasible else "no"]
                )
        return rows

    rows = benchmark(build)
    emit(
        "hw_line_rate_vs_table",
        render_series(
            "IB entries",
            ["packet B", "cycles/pkt", "max line rate Mbps",
             "sustains 100 Mbps?"],
            rows,
            title="Worst-case sustainable line rate vs table size "
            "(50 MHz modifier)",
        ),
    )
    # shape: with one entry the modifier outruns 100 Mbps even for
    # 64-byte packets; at 1024 entries it cannot sustain 10 Mbps
    first = [r for r in rows if r[0] == 1 and r[1] == 64][0]
    last = [r for r in rows if r[0] == 1024 and r[1] == 64][0]
    assert first[4] == "yes"
    assert last[3] < 10.0
    assert last[4] == "no"


def test_flow_cache_effect(benchmark):
    """The ingress flow cache: slow path once per destination, then
    pure hardware."""

    def run():
        net, src = _run_hw_network()
        ler = net.nodes["ler-a"]
        return ler.slow_path_packets, ler.fast_path_packets, src.sent

    slow, fast, sent = benchmark.pedantic(run, iterations=1, rounds=2)
    emit(
        "hw_flow_cache",
        render_table(
            ["metric", "value"],
            [["packets sent", sent],
             ["software slow-path classifications", slow],
             ["hardware fast-path packets", fast],
             ["cache hit rate", f"{fast / sent:.1%}"]],
            title="Level-1 flow cache at the ingress LER",
        ),
    )
    assert slow == 1
    assert fast == sent - 1
