"""Ablation: per-packet latency *distribution*, not just the worst case.

Table 6 reports worst-case cycles; a deployed router experiences a
distribution determined by where the active labels sit in the linear
information base.  The Monte-Carlo model (numpy-vectorized; a million
packets in a few ms) reports mean/p50/p99 and the rate a p99 budget
supports, for uniform hit positions and for activity skewed towards
early entries (the achievable best case if the control plane keeps hot
LSPs first).
"""

from benchmarks._util import emit, emit_json
from repro.analysis.montecarlo import sample_swap_latency
from repro.analysis.report import render_series

SIZES = (16, 64, 256, 1024)
SAMPLES = 500_000


def test_latency_distribution_vs_table_size(benchmark):
    def build():
        rows = []
        for n in SIZES:
            uniform = sample_swap_latency(n, samples=SAMPLES, seed=1)
            skewed = sample_swap_latency(
                n, samples=SAMPLES, skew=1.5, seed=1
            )
            rows.append(
                [
                    n,
                    round(uniform.mean_cycles, 1),
                    round(uniform.p99_cycles, 1),
                    3 * (n - 1) + 14,  # worst case
                    round(skewed.mean_cycles, 1),
                    int(uniform.supported_pps_at_p99()),
                ]
            )
        return rows

    rows = benchmark(build)
    emit(
        "latency_distribution",
        render_series(
            "IB entries",
            ["mean cyc (uniform)", "p99 cyc (uniform)", "worst case",
             "mean cyc (hot-first)", "pps at p99 budget"],
            rows,
            title="Swap latency distribution at 50 MHz "
            f"({SAMPLES} sampled packets per point)",
        ),
    )
    emit_json(
        "latency_distribution",
        metric="p99_cycles_uniform_at_1024_entries",
        value=rows[-1][2],
        units="cycles",
        seed=1,
        mean_cycles_uniform=rows[-1][1],
    )
    for n, mean_u, p99_u, worst, mean_s, _pps in rows:
        # mean ~ half the worst case under uniform hits
        assert mean_u < worst
        assert p99_u <= worst
        # keeping hot labels early beats uniform placement
        assert mean_s < mean_u
    means = [r[1] for r in rows]
    assert means == sorted(means)
