"""Ablation: the paper's RAM-walk information base vs a CAM.

"Preliminary results indicate that information can be retrieved from
the information base in linear time" -- the one non-constant cost in
the whole design.  Real wire-speed MPLS hardware used CAMs (parallel
comparators, constant-time match).  This bench measures both lookup
structures on live RTL and prices the trade in the two currencies a
2005 FPGA designer had: cycles and logic elements.

Expected shape: the CAM wins cycles by orders of magnitude at large
tables but its comparator array devours the Stratix fabric around a few
hundred entries -- the design-space point that explains the paper's
choice.
"""

from benchmarks._util import emit, emit_json
from repro.analysis.report import render_series
from repro.core.device import STRATIX_EP1S40
from repro.hdl.simulator import Component, Simulator
from repro.hw.cam import (
    CAM_SEARCH_CYCLES,
    CAMInfoBaseLevel,
    cam_fits,
    cam_logic_elements,
)
from repro.hw.driver import ModifierDriver
from repro.mpls.label import LabelOp

SIZES = (1, 16, 64, 256, 1024)
RTL_SIZES = (1, 16, 64)


class _Driver(Component):
    def __init__(self, sim):
        super().__init__(sim, "drv")
        self.values = {}

    def set(self, wire, value):
        self.values[wire] = value

    def settle(self):
        for wire, value in self.values.items():
            wire.drive(value)


def _measure_cam_lookup(n):
    sim = Simulator()
    drv = _Driver(sim)
    cam = CAMInfoBaseLevel(sim, "cam", index_width=20, depth=max(n, 1))
    for i in range(n):
        drv.set(cam.wr_en, 1)
        drv.set(cam.wr_index, 100 + i)
        drv.set(cam.wr_label, 500 + i)
        drv.set(cam.wr_op, 2)
        sim.step()
    drv.set(cam.wr_en, 0)
    drv.set(cam.search_en, 1)
    drv.set(cam.search_key, 100 + n - 1)  # the linear walk's worst slot
    cycles = 0
    sim.step()
    cycles += 1
    drv.set(cam.search_en, 0)
    while not cam.done.value:
        sim.step()
        cycles += 1
    assert cam.match_valid.value == 1
    return cycles


def _measure_ram_lookup(n):
    drv = ModifierDriver(ib_depth=max(64, n))
    drv.reset()
    for i in range(n):
        drv.write_pair(2, 100 + i, 500 + i, LabelOp.SWAP)
    return drv.search(2, 100 + n - 1).cycles


def test_cam_vs_ram_lookup_cycles_on_rtl(benchmark):
    def sweep():
        return [
            (n, _measure_ram_lookup(n), _measure_cam_lookup(n))
            for n in RTL_SIZES
        ]

    points = benchmark.pedantic(sweep, iterations=1, rounds=2)
    for n, ram, cam in points:
        assert ram == 3 * (n - 1) + 8  # worst-position hit
        assert cam == 1                # registered one edge after the key
    emit(
        "cam_vs_ram_rtl",
        render_series(
            "entries",
            ["RAM walk cycles (measured)", "CAM cycles (measured)"],
            points,
            title="Worst-position lookup on live RTL: RAM walk vs CAM",
        ),
    )
    emit_json(
        "cam_vs_ram_rtl",
        metric="ram_walk_cycles_at_64_entries",
        value=points[-1][1],
        units="cycles",
        cam_cycles=points[-1][2],
    )


def test_cam_vs_ram_design_space(benchmark):
    """Cycles and area together: why the paper walked RAM."""

    def build():
        rows = []
        for n in SIZES:
            ram_cycles = 3 * n + 5
            cam_cycles = CAM_SEARCH_CYCLES
            les = cam_logic_elements(n)
            rows.append(
                [
                    n,
                    ram_cycles,
                    cam_cycles,
                    les,
                    f"{les / STRATIX_EP1S40.logic_elements:.0%}",
                    "yes" if cam_fits(n) else "NO",
                ]
            )
        return rows

    rows = benchmark(build)
    emit(
        "cam_design_space",
        render_series(
            "entries",
            ["RAM cycles (3n+5)", "CAM cycles", "CAM logic elements",
             "of EP1S40 fabric", "CAM feasible?"],
            rows,
            title="The information-base design space on the paper's "
            "device",
        ),
    )
    emit_json(
        "cam_design_space",
        metric="cam_logic_elements_at_1024_entries",
        value=rows[-1][3],
        units="logic elements",
        cam_feasible_at_1024=rows[-1][5],
    )
    # shape: the paper's 1K-entry table cannot afford a CAM on this
    # device, while small tables could
    by_n = {r[0]: r for r in rows}
    assert by_n[1024][5] == "NO"
    assert by_n[64][5] == "yes"
    # but wherever it fits, the CAM wins cycles outright
    assert all(r[2] < r[1] for r in rows)
