"""Ablation: route churn vs forwarding -- sharing one modifier.

The paper's architecture funnels both planes through the label stack
modifier: packets run updates, the software control plane runs
write/modify/remove operations on the same information base.  This
bench measures (on the functional model, formulas verified against the
RTL) how many route changes per second the modifier can absorb at a
given forwarding load -- the headroom an operator has for LSP churn.
"""

from benchmarks._util import emit, emit_json
from repro.analysis.report import render_series
from repro.core.device import STRATIX_EP1S40
from repro.hw.model import FunctionalModifier, search_cycles
from repro.mpls.label import LabelEntry, LabelOp

TABLE = 64
PACKET_RATES = (0, 50_000, 200_000, 500_000)


def _measured_costs():
    """Per-operation cycles measured live on the functional model."""
    model = FunctionalModifier(ib_depth=TABLE)
    for i in range(TABLE):
        model.write_pair(1, 1000 + i, 500 + i, LabelOp.SWAP)
    # a representative packet: depth-1 swap, mid-table hit
    model.user_push(LabelEntry(label=1000 + TABLE // 2, ttl=9, s=1))
    packet = model.update().cycles + 6  # + stack load/drain
    modify = model.modify_pair(1, 1000 + TABLE // 2, 777, LabelOp.SWAP).cycles
    remove = model.remove_pair(1, 1000 + 3, ).cycles
    add = model.write_pair(1, 2000, 900, LabelOp.SWAP)
    return packet, add, modify, remove


def test_route_churn_headroom(benchmark):
    packet_cycles, add, modify, remove = benchmark(_measured_costs)
    clock = STRATIX_EP1S40.clock_hz
    mean_change = (add + modify + remove) / 3
    rows = []
    for rate in PACKET_RATES:
        data_cycles = rate * packet_cycles
        headroom = max(0.0, clock - data_cycles)
        changes_per_s = headroom / mean_change
        rows.append(
            [
                rate,
                packet_cycles,
                f"{data_cycles / clock:.1%}",
                int(changes_per_s),
            ]
        )
    emit(
        "route_churn",
        render_series(
            "packets/s forwarded",
            ["cycles/packet", "modifier busy", "route changes/s headroom"],
            rows,
            title=f"Control-plane churn headroom at 50 MHz "
            f"({TABLE}-entry table; change = avg of add "
            f"{add}/modify {modify}/remove {remove} cycles)",
        ),
    )
    # sanity on the measured costs (formula cross-check)
    k = TABLE // 2
    assert modify == search_cycles(TABLE, k) + 2
    assert add == 3
    # shape: headroom shrinks monotonically with forwarding load
    headrooms = [r[3] for r in rows]
    emit_json(
        "route_churn",
        metric="route_changes_per_s_at_idle",
        value=headrooms[0],
        units="changes/s",
        headroom_at_500k_pps=headrooms[-1],
        packet_cycles=packet_cycles,
    )
    assert headrooms == sorted(headrooms, reverse=True)
    assert headrooms[0] > headrooms[-1]
