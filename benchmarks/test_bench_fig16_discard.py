"""Reproduces **Figure 16**: simulation of a packet discard.

"Figure [16] demonstrates a situation where a label lookup occurs for a
label that does not exist in the information base.  The inputs are the
same as those for Figure [15] but the label_lookup signal is changed to
27 and there are only labels for numbers 1 through 10 inclusive.  When
the lookup signal is made high, we see that the r_index signal iterates
to process all label pairs stored at that level.  After processing the
last stored pair, no match has been found so the lookup_done and
packetdiscard signals are sent high ... Signals label_out and
operation_out remain unchanged."
"""

from benchmarks._util import emit, emit_json
from repro.analysis.report import render_table
from repro.hdl.waveform import WaveformRecorder
from repro.hw.driver import ModifierDriver
from repro.mpls.label import LabelOp

OPS = [LabelOp.PUSH, LabelOp.SWAP, LabelOp.POP]


def run_figure16():
    drv = ModifierDriver(ib_depth=1024)
    drv.reset()
    for i in range(10):
        drv.write_pair(2, i + 1, 500 + i, OPS[i % 3])
    # prime label_out/operation_out with a successful lookup so
    # "remain unchanged" is observable
    hit = drv.search(2, 5)
    level2 = drv.modifier.dp.info_base.level(2)
    recorder = WaveformRecorder(
        drv.sim,
        [
            drv.sim.signal(level2.read_counter.count.name),
            drv.sim.signal(drv.modifier.search.done.name),
            drv.sim.signal(drv.modifier.search.miss.name),
        ],
    )
    miss = drv.search(2, 27)
    label_out = drv.modifier.search.label_out.value
    op_out = drv.modifier.search.op_out.value
    return drv, recorder, hit, miss, label_out, op_out


def test_figure16_lookup_miss_discards(benchmark):
    drv, recorder, hit, miss, label_out, op_out = benchmark.pedantic(
        run_figure16, iterations=1, rounds=3
    )

    # the miss is reported with lookup_done AND packetdiscard high
    assert not miss.found
    assert miss.discarded
    done = recorder.trace[drv.modifier.search.done.name]
    discard = recorder.trace[drv.modifier.search.miss.name]
    done_cycles = [c for c, v in zip(recorder.cycles, done) if v]
    discard_cycles = [c for c, v in zip(recorder.cycles, discard) if v]
    assert done_cycles == discard_cycles  # raised together
    assert len(done_cycles) == 1

    # "r_index iterates to process all label pairs stored at that
    # level" -- it reaches the last entry (index 9)
    r_name = drv.modifier.dp.info_base.level(2).read_counter.count.name
    assert max(recorder.trace[r_name]) == 9

    # exhaustive scan of n=10: 3n + 5 cycles
    assert miss.cycles == 35

    # "label_out and operation_out remain unchanged" from the primed hit
    assert label_out == hit.label
    assert op_out == int(hit.op)

    table = render_table(
        ["observable", "paper", "measured"],
        [
            ["lookup target", "27 (absent)", "27 (absent)"],
            ["r_index sweep", "all 10 pairs", f"0..{max(recorder.trace[r_name])}"],
            ["lookup_done", "high", f"pulse at cycle {done_cycles[0]}"],
            ["packetdiscard", "high", f"pulse at cycle {discard_cycles[0]}"],
            ["label_out", "unchanged", f"{label_out} (== prior hit)"],
            ["operation_out", "unchanged", f"{op_out} (== prior hit)"],
            ["cycles", "3n+5 = 35", miss.cycles],
        ],
        title="Figure 16 -- lookup of an absent label discards the packet",
    )
    emit("fig16_discard", table)
    emit_json(
        "fig16_discard",
        metric="miss_lookup_cycles",
        value=miss.cycles,
        units="cycles",
        discarded=miss.discarded,
    )
