"""Batched fast path vs the scalar oracle: wall-clock throughput.

Two legs over the Figure 1 domain:

* **e2e load leg** -- the same below-capacity CBR demand as the e2e
  load benchmark, run once per mode.  The batched mode rides flow
  aggregates (one event per train per hop, flow-cache replay at each
  node) and must beat the per-packet scalar path by >= 5x.
* **100k-concurrent-flow leg** -- 100,000 distinct flows each send a
  16-packet train as one aggregate.  The scalar cost of the *same*
  demand is measured on a 5,000-flow subsample and scaled linearly
  (running all 100k flows packet-by-packet takes minutes by
  construction -- that ceiling is what the batched path removes).

The headline number lands in ``BENCH_batched_vs_scalar.json``;
behavioral equivalence between the modes is proven separately by
``tests/integration/test_batching_equivalence.py``.
"""

import time

from benchmarks._util import emit, emit_json
from repro.analysis.report import render_table
from repro.control.ldp import LDPProcess
from repro.mpls.fec import PrefixFEC
from repro.mpls.router import RouterRole
from repro.net.aggregate import AggregateCBRSource, FlowAggregate
from repro.net.network import MPLSNetwork
from repro.net.packet import IPv4Packet
from repro.net.topology import paper_figure1
from repro.net.traffic import CBRSource

# e2e load leg: same shape as test_bench_network_e2e
LINK_BPS = 100e6
RATE_BPS = 40e6
STOP = 0.5
BATCH = 64

# 100k-flow leg
FLOWS = 100_000
TRAIN = 16
SAMPLE_FLOWS = 5_000
SPACING = 2e-6  # flow start spacing; keeps every queue depth bounded
SCALE_LINK_BPS = 1e11


def _network(bandwidth_bps):
    topo = paper_figure1(bandwidth_bps=bandwidth_bps, delay_s=1e-3)
    net = MPLSNetwork(
        topo, roles={"ler-a": RouterRole.LER, "ler-b": RouterRole.LER}
    )
    net.attach_host("ler-b", "10.2.0.0/16")
    LDPProcess(topo, net.nodes).establish_fec(
        PrefixFEC("10.2.0.0/16"), egress="ler-b"
    )
    return net


def _timed_run(net, until):
    start = time.perf_counter()
    net.run(until=until)
    return time.perf_counter() - start


def _e2e_leg(batching):
    net = _network(LINK_BPS)
    if batching:
        net.enable_batching()
        source = AggregateCBRSource(
            net.scheduler, net.aggregate_sink("ler-a"),
            src="10.1.0.5", dst="10.2.0.9", rate_bps=RATE_BPS,
            packet_size=500, batch=BATCH, stop=STOP,
        )
    else:
        source = CBRSource(
            net.scheduler, net.source_sink("ler-a"),
            src="10.1.0.5", dst="10.2.0.9", rate_bps=RATE_BPS,
            packet_size=500, stop=STOP,
        )
    source.begin()
    elapsed = _timed_run(net, until=STOP + 1.0)
    assert net.drop_count() == 0
    assert net.delivered_count() == source.sent
    return source.sent, elapsed


def _flow_packet(i, seq=0):
    return IPv4Packet(
        src="10.1.0.5",
        dst=f"10.2.{(i >> 8) & 0xFF}.{i & 0xFF}",
        ttl=64,
        payload=bytes(500),
        flow_id=i,
        seq=seq,
        created_at=i * SPACING,
    )


def _scale_leg_batched():
    net = _network(SCALE_LINK_BPS)
    net.enable_batching()
    sink = net.aggregate_sink("ler-a")
    for i in range(FLOWS):
        aggregate = FlowAggregate(template=_flow_packet(i), count=TRAIN)
        net.scheduler.at(i * SPACING, lambda a=aggregate: sink(a))
    elapsed = _timed_run(net, until=FLOWS * SPACING + 1.0)
    assert net.drop_count() == 0
    assert net.delivered_count() == FLOWS * TRAIN
    return elapsed


def _scale_leg_scalar_sample():
    net = _network(SCALE_LINK_BPS)
    sink = net.source_sink("ler-a")
    for i in range(SAMPLE_FLOWS):
        train = [_flow_packet(i, seq=j) for j in range(TRAIN)]
        net.scheduler.at(
            i * SPACING, lambda ps=train: [sink(p) for p in ps]
        )
    elapsed = _timed_run(net, until=SAMPLE_FLOWS * SPACING + 1.0)
    assert net.drop_count() == 0
    assert net.delivered_count() == SAMPLE_FLOWS * TRAIN
    return elapsed


def test_batched_vs_scalar(benchmark):
    def run():
        scalar_sent, scalar_s = _e2e_leg(batching=False)
        batched_sent, batched_s = _e2e_leg(batching=True)
        assert batched_sent == scalar_sent
        e2e_speedup = scalar_s / batched_s

        sample_s = _scale_leg_scalar_sample()
        scalar_100k_est = sample_s * (FLOWS / SAMPLE_FLOWS)
        batched_100k = _scale_leg_batched()
        scale_speedup = scalar_100k_est / batched_100k
        return {
            "e2e": (scalar_sent, scalar_s, batched_s, e2e_speedup),
            "scale": (sample_s, scalar_100k_est, batched_100k,
                      scale_speedup),
        }

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    sent, scalar_s, batched_s, e2e_speedup = results["e2e"]
    sample_s, scalar_est, batched_100k, scale_speedup = results["scale"]
    packets = FLOWS * TRAIN
    emit(
        "batched_vs_scalar",
        render_table(
            ["leg", "packets", "scalar s", "batched s", "speedup"],
            [
                ["e2e CBR load", sent, f"{scalar_s:.3f}",
                 f"{batched_s:.3f}", f"{e2e_speedup:.1f}x"],
                [f"{FLOWS // 1000}k flows x {TRAIN}", packets,
                 f"{scalar_est:.1f} (est)", f"{batched_100k:.3f}",
                 f"{scale_speedup:.1f}x"],
            ],
            title="Batched fast path vs per-packet scalar oracle "
            "(wall clock)",
        ),
    )
    emit_json(
        "batched_vs_scalar",
        metric="speedup_at_100k_flows",
        value=round(scale_speedup, 1),
        units="x",
        seed=None,
        concurrent_flows=FLOWS,
        train_length=TRAIN,
        scalar_sample_flows=SAMPLE_FLOWS,
        batched_pps=round(packets / batched_100k),
        e2e_speedup=round(e2e_speedup, 1),
    )
    assert e2e_speedup >= 5
    assert scale_speedup >= 5
