"""Reproduces **Figure 14**: simulation of level-1 label pair entries.

The paper's scenario: "Ten label pairs are written with packet
identifiers of 600 through 609 inclusive and new label values of 500
through 509 inclusive.  The operation is arbitrarily chosen for each
label pair but no two consecutive entries are given the same
operation. ... the new label and operation for packet identifier 604 is
requested ... The new label (504) and operation (3) then appear and the
packetdiscard signal remains low."

The benchmark replays the scenario on the RTL, checks every observable
the figure shows (w_index progression, r_index stopping at the hit,
lookup_done pulse, outputs, no discard), and emits the waveform data.
"""

from benchmarks._util import emit, emit_json
from repro.analysis.report import render_table
from repro.hdl.waveform import WaveformRecorder
from repro.hw.driver import ModifierDriver
from repro.mpls.label import LabelOp

# "no two consecutive entries are given the same operation"; this
# rotation puts POP (encoded 3) at identifier 604, matching the paper's
# "The new label (504) and operation (3) then appear"
OPS = [LabelOp.SWAP, LabelOp.POP, LabelOp.PUSH]


def run_figure14():
    drv = ModifierDriver(ib_depth=1024)
    drv.reset()
    level1 = drv.modifier.dp.info_base.level(1)
    recorder = WaveformRecorder(
        drv.sim,
        [
            drv.sim.signal(level1.write_counter.count.name),
            drv.sim.signal(level1.read_counter.count.name),
            drv.sim.signal(drv.modifier.search.done.name),
            drv.sim.signal(drv.modifier.search.miss.name),
        ],
    )
    w_trace = []
    for i in range(10):
        drv.write_pair(1, 600 + i, 500 + i, OPS[i % 3])
        w_trace.append(level1.write_counter.count.value)
    result = drv.search(1, 604)
    return drv, recorder, w_trace, result


def test_figure14_level1_write_and_lookup(benchmark):
    drv, recorder, w_trace, result = benchmark.pedantic(
        run_figure14, iterations=1, rounds=3
    )

    # "we see w_index increment from 1 to 10, indicating the label
    # pairs are being properly stored and not overwritten"
    assert w_trace == list(range(1, 11))

    # "the new label (504) and operation (3) then appear"
    assert result.found
    assert result.label == 504
    assert result.op == OPS[4 % 3]
    assert int(result.op) == 3  # the paper's literal operation value

    # "the packetdiscard signal remains low"
    assert not result.discarded
    assert all(v == 0 for v in recorder.trace[drv.modifier.search.miss.name])

    # "r_index begins incrementing to search through the information
    # base and stops at the index of the correct entry" (entry 4)
    r_values = recorder.trace[
        drv.modifier.dp.info_base.level(1).read_counter.count.name
    ]
    assert max(r_values) == 4

    # "the lookup_done signal goes high for a clock cycle"
    done_high = [
        c
        for c, v in zip(
            recorder.cycles, recorder.trace[drv.modifier.search.done.name]
        )
        if v
    ]
    assert len(done_high) == 1

    # hit at entry 4 of the level: 3k + 8 cycles
    assert result.cycles == 3 * 4 + 8

    stored = drv.modifier.dp.info_base.level(1).dump_pairs()
    table = render_table(
        ["packetid (index)", "new label", "operation"],
        [[idx, lbl, LabelOp(op).name] for idx, lbl, op in stored],
        title=(
            "Figure 14 -- level-1 contents after the ten writes; "
            f"lookup(604) -> label_out={result.label} "
            f"operation_out={result.op.name} in {result.cycles} cycles, "
            f"packetdiscard={int(result.discarded)}"
        ),
    )
    emit("fig14_level1", table)
    emit_json(
        "fig14_level1",
        metric="lookup_cycles",
        value=result.cycles,
        units="cycles",
        label_out=result.label,
        operation_out=int(result.op),
    )
