"""Ablation: the linear information-base search.

"Preliminary results indicate that information can be retrieved from
the information base in linear time and other operations are done in
constant time."  This bench measures that linearity on the RTL (exact
3n + 5), shows the per-packet latency/throughput consequences across
table sizes at the 50 MHz clock, and compares against a hash-based
lookup -- the design alternative the paper's linear-scan memory
architecture trades away.
"""

from benchmarks._util import emit, emit_json
from repro.analysis.report import render_series
from repro.analysis.throughput import estimate_throughput
from repro.core.timing import SoftwareCostModel
from repro.hw.driver import ModifierDriver
from repro.mpls.label import LabelOp

RTL_SIZES = (1, 8, 64, 256)
MODEL_SIZES = (1, 8, 64, 256, 1024)


def test_search_is_linear_on_rtl(benchmark):
    def sweep():
        drv = ModifierDriver(ib_depth=max(RTL_SIZES))
        points = []
        for n in RTL_SIZES:
            drv.reset()
            for i in range(n):
                drv.write_pair(2, 16 + i, 500 + i, LabelOp.SWAP)
            result = drv.search(2, 0xFFFFF)
            points.append((n, result.cycles))
        return points

    points = benchmark.pedantic(sweep, iterations=1, rounds=2)
    # exact linearity: consecutive differences are 3 * delta_n
    for (n1, c1), (n2, c2) in zip(points, points[1:]):
        assert c2 - c1 == 3 * (n2 - n1)
    emit(
        "search_scaling_rtl",
        render_series(
            "n", ["measured cycles", "3n+5"],
            [[n, c, 3 * n + 5] for n, c in points],
            title="Linear-time search on the RTL",
        ),
    )
    emit_json(
        "search_scaling_rtl",
        metric="miss_search_cycles_at_256_entries",
        value=points[-1][1],
        units="cycles",
    )


def test_search_latency_and_throughput_consequences(benchmark):
    def build():
        rows = []
        for n in MODEL_SIZES:
            worst = estimate_throughput(n, packet_size_bytes=500)
            avg = estimate_throughput(
                n, packet_size_bytes=500, average_case=True
            )
            rows.append(
                [
                    n,
                    worst.cycles_per_packet,
                    round(worst.cycles_per_packet / 50e6 * 1e6, 2),
                    int(worst.packets_per_second),
                    round(worst.mbps, 1),
                    int(avg.packets_per_second),
                ]
            )
        return rows

    rows = benchmark(build)
    emit(
        "search_scaling_throughput",
        render_series(
            "n",
            [
                "worst cycles/pkt",
                "worst us/pkt",
                "worst pps",
                "worst Mbps (500B)",
                "avg-case pps",
            ],
            rows,
            title="Label-switching throughput vs information-base size "
            "(50 MHz clock)",
        ),
    )
    emit_json(
        "search_scaling_throughput",
        metric="worst_case_pps_at_1024_entries",
        value=rows[-1][3],
        units="packets/s",
        avg_case_pps=rows[-1][5],
    )
    # the shape: throughput collapses roughly as 1/n for large tables
    pps = [row[3] for row in rows]
    assert pps == sorted(pps, reverse=True)
    assert pps[0] / pps[-1] > 100  # n=1 vs n=1024: >100x


def test_linear_vs_hashed_lookup_crossover(benchmark):
    """Where would a hash-based information base overtake the linear
    one?  (The paper's future-work territory; both priced in cycles at
    the same 50 MHz clock.)"""
    sw = SoftwareCostModel(clock_hz=50e6)

    def build():
        from repro.core.timing import HardwareCycleModel

        hw = HardwareCycleModel()
        rows = []
        crossover = None
        for n in (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024):
            linear = hw.update_swap_worst(n)
            hashed = sw.per_hash_lookup + sw.per_stack_op + sw.per_ttl_update
            rows.append([n, linear, hashed])
            if crossover is None and hashed < linear:
                crossover = n
        return rows, crossover

    rows, crossover = benchmark(build)
    emit(
        "search_linear_vs_hash",
        render_series(
            "n",
            ["linear IB cycles", "hashed lookup cycles"],
            rows,
            title=f"Linear vs hashed lookup (crossover at n={crossover})",
        ),
    )
    emit_json(
        "search_linear_vs_hash",
        metric="crossover_entries",
        value=crossover,
        units="entries",
    )
    assert crossover is not None and crossover <= 64
