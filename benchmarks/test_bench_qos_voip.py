"""Ablation: the paper's QoS motivation, measured.

Section 1: "Resource intensive Internet applications like voice over
Internet Protocol (VoIP) and real-time streaming video perform poorly
when the core network of the Internet is relatively congested. ...
Long term relief can only be achieved through efficient prioritization
of network resources and traffic."

The bench congests the Figure 1 network with elastic data and measures
a G.711 voice flow under three queue disciplines: FIFO (best effort),
strict priority on the CoS bits, and WFQ.  Expected shape: best effort
loses voice packets and inflates latency by an order of magnitude;
either CoS-aware discipline keeps voice lossless with near-floor
latency.
"""

import pytest

from benchmarks._util import emit, emit_json
from repro.analysis.report import render_table
from repro.control.ldp import LDPProcess
from repro.mpls.fec import CoSFEC, PrefixFEC
from repro.mpls.router import RouterRole
from repro.net.network import MPLSNetwork
from repro.net.topology import paper_figure1
from repro.net.traffic import CBRSource, DSCP_EF, VoIPSource
from repro.qos.scheduler import PriorityScheduler, WFQScheduler

DURATION = 1.0
LINK_BPS = 2e6


def run_discipline(queue_factory):
    topo = paper_figure1(bandwidth_bps=LINK_BPS, delay_s=1e-3)
    kwargs = {"queue_factory": queue_factory} if queue_factory else {}
    net = MPLSNetwork(
        topo,
        roles={"ler-a": RouterRole.LER, "ler-b": RouterRole.LER},
        **kwargs,
    )
    net.attach_host("ler-b", "10.2.0.0/16")
    ldp = LDPProcess(topo, net.nodes)
    ldp.establish_fec(PrefixFEC("10.2.0.0/16"), egress="ler-b")
    ldp.establish_fec(CoSFEC(PrefixFEC("10.2.0.0/16"), DSCP_EF),
                      egress="ler-b")
    sink = net.source_sink("ler-a")
    voice = VoIPSource(net.scheduler, sink, src="10.1.0.5",
                       dst="10.2.0.9", stop=DURATION)
    data = CBRSource(net.scheduler, sink, src="10.1.0.7", dst="10.2.0.11",
                     rate_bps=2 * LINK_BPS, packet_size=1000, stop=DURATION)
    voice.begin()
    data.begin()
    net.run(until=DURATION + 2.0)
    delivered = net.delivered_count(voice.flow_id)
    latencies = net.latencies(voice.flow_id)
    loss = 1 - delivered / voice.sent
    mean_ms = sum(latencies) / len(latencies) * 1e3 if latencies else 0.0
    worst_ms = max(latencies) * 1e3 if latencies else 0.0
    data_loss = 1 - net.delivered_count(data.flow_id) / data.sent
    return {
        "voice_sent": voice.sent,
        "voice_loss": loss,
        "voice_mean_ms": mean_ms,
        "voice_worst_ms": worst_ms,
        "data_loss": data_loss,
    }


def test_voip_under_congestion(benchmark):
    def run_all():
        return {
            "best effort (FIFO)": run_discipline(None),
            "strict priority": run_discipline(
                lambda: PriorityScheduler(capacity_per_class=64)
            ),
            "WFQ (voice weight 8)": run_discipline(
                lambda: WFQScheduler(weights={5: 8.0}, capacity_per_class=64)
            ),
        }

    results = benchmark.pedantic(run_all, iterations=1, rounds=2)
    rows = [
        [
            name,
            f"{r['voice_loss'] * 100:.1f}%",
            round(r["voice_mean_ms"], 2),
            round(r["voice_worst_ms"], 2),
            f"{r['data_loss'] * 100:.1f}%",
        ]
        for name, r in results.items()
    ]
    emit(
        "qos_voip",
        render_table(
            ["discipline", "voice loss", "voice mean ms", "voice worst ms",
             "data loss"],
            rows,
            title="G.711 voice over a congested core (2 Mbps links, 2x "
            "overload)",
        ),
    )

    fifo = results["best effort (FIFO)"]
    prio = results["strict priority"]
    wfq = results["WFQ (voice weight 8)"]
    emit_json(
        "qos_voip",
        metric="priority_voice_loss",
        value=prio["voice_loss"],
        units="fraction",
        fifo_voice_loss=round(fifo["voice_loss"], 4),
        fifo_voice_mean_ms=round(fifo["voice_mean_ms"], 2),
        priority_voice_mean_ms=round(prio["voice_mean_ms"], 2),
        wfq_voice_loss=round(wfq["voice_loss"], 4),
    )
    # shape: best effort hurts voice badly; CoS-aware disciplines fix it
    assert fifo["voice_loss"] > 0.2
    assert prio["voice_loss"] == 0.0
    assert wfq["voice_loss"] == pytest.approx(0.0, abs=0.02)
    assert prio["voice_mean_ms"] < fifo["voice_mean_ms"] / 5
    # the elastic data flow still pays for the overload in every case
    assert prio["data_loss"] > 0.2
