"""The telemetry hot-path contract, measured rather than promised.

The data plane's deal with the observability layer: when telemetry is
disabled, a packet costs exactly one ``get_telemetry()`` lookup and one
``enabled`` boolean per instrumentation site, and nothing is emitted.
Span tracing (PR 4) and flow accounting (PR 6) must ride inside that
budget -- the capture gates short-circuit on the same boolean the
cycle-delta block reads, and the flow hooks only test ``tel.flows``
after that boolean has already passed.

This bench proves it with a :class:`Telemetry` subclass that counts
every read of ``enabled``: a full hardware-network run with telemetry
off must emit zero events and read the switch a bounded, audited number
of times per packet-hop.
"""

from benchmarks._util import emit, emit_json
from repro.analysis.report import render_table
from repro.control.ldp import LDPProcess
from repro.core.hwnode import HardwareLSRNode
from repro.mpls.fec import PrefixFEC
from repro.mpls.router import RouterRole
from repro.net.network import MPLSNetwork
from repro.net.topology import paper_figure1
from repro.net.traffic import CBRSource
from repro.obs.telemetry import Telemetry, set_telemetry

#: Audited ``enabled`` reads per node-receive with telemetry disabled:
#: one in ``HardwareLSRNode.receive`` (shared by the span-capture gate
#: and the cycle-delta block) and one in ``LSRNode.observe``.
READS_PER_RECEIVE = 2

#: Audited reads charged per packet-hop by the network layer around the
#: node (enqueue/transmit/deliver bookkeeping).
READS_PER_HOP_NETWORK = 4


class CountingTelemetry(Telemetry):
    """Counts every read of the ``enabled`` switch."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled_reads = 0
        self._enabled_flag = False
        super().__init__(enabled=enabled)

    @property
    def enabled(self) -> bool:
        self.enabled_reads += 1
        return self._enabled_flag

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled_flag = value


def _run_hw_network():
    topo = paper_figure1(bandwidth_bps=10e6, delay_s=1e-3)
    roles = {"ler-a": RouterRole.LER, "ler-b": RouterRole.LER}
    net = MPLSNetwork(topo, roles, node_factory=HardwareLSRNode)
    net.attach_host("ler-b", "10.2.0.0/16")
    LDPProcess(topo, net.nodes).establish_fec(
        PrefixFEC("10.2.0.0/16"), egress="ler-b"
    )
    src = CBRSource(net.scheduler, net.source_sink("ler-a"),
                    src="10.1.0.5", dst="10.2.0.9", rate_bps=2e6,
                    packet_size=500, stop=0.5, seed=1)
    src.begin()
    net.run(until=1.0)
    return net, src


def test_disabled_telemetry_hot_path_contract(benchmark):
    def run():
        tel = CountingTelemetry(enabled=False)
        previous = set_telemetry(tel)
        try:
            net, src = _run_hw_network()
        finally:
            set_telemetry(previous)
        return tel, net, src

    tel, net, src = benchmark.pedantic(run, iterations=1, rounds=2)
    assert net.delivered_count() == src.sent

    receives = sum(n.stats.received for n in net.nodes.values())
    budget = receives * (READS_PER_RECEIVE + READS_PER_HOP_NETWORK)
    reads_per_hop = tel.enabled_reads / receives

    # nothing observable happened: no events, no metric samples
    assert tel.events.emitted == 0
    assert tel.spans is None
    assert tel.flows is None
    # and the cost stayed inside the audited per-hop boolean budget --
    # a regression here means someone added an unguarded telemetry read
    # (or an eager span check) to the per-packet path
    assert tel.enabled_reads <= budget, (
        f"{tel.enabled_reads} enabled-reads for {receives} receives "
        f"(budget {budget})"
    )

    emit(
        "obs_overhead_disabled",
        render_table(
            ["metric", "value"],
            [
                ["packets sent", src.sent],
                ["node receives", receives],
                ["enabled reads", tel.enabled_reads],
                ["reads / packet-hop", f"{reads_per_hop:.2f}"],
                ["events emitted", tel.events.emitted],
            ],
            title="Telemetry-off overhead across a full hardware run",
        ),
    )
    emit_json(
        "obs_overhead_disabled",
        metric="enabled_reads_per_packet_hop",
        value=round(reads_per_hop, 4),
        units="reads/hop",
        seed=1,
        budget=READS_PER_RECEIVE + READS_PER_HOP_NETWORK,
    )
