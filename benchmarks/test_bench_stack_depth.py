"""Ablation: label stack depth.

"A typical MPLS network does not use more than two or three levels of
nested paths and consequently, label stacks do not normally exceed two
or three labels" -- which is why the hardware supports exactly three
information-base levels.  This bench measures the cost of an update at
each supported depth on the RTL (the depth selects the level searched)
and the software engine's cost as stacks deepen, justifying the
3-level hardware budget.
"""

from benchmarks._util import emit, emit_json
from repro.analysis.report import render_series
from repro.hw.driver import ModifierDriver
from repro.mpls.forwarding import ForwardingEngine
from repro.mpls.label import LabelEntry, LabelOp
from repro.mpls.nhlfe import NHLFE
from repro.mpls.stack import LabelStack
from repro.net.packet import IPv4Packet, MPLSPacket

PAIRS_PER_LEVEL = 8


def test_update_cost_per_stack_depth_on_rtl(benchmark):
    """A swap at depth d searches level d; with equal level occupancy
    the cost is depth-independent -- the paper's per-level memory
    design keeps deep stacks as fast as shallow ones."""

    def sweep():
        points = []
        for depth in (1, 2, 3):
            drv = ModifierDriver(ib_depth=64)
            drv.reset()
            # equal occupancy at every level; the top label's pair is
            # stored last (worst-case position)
            for level in (1, 2, 3):
                for i in range(PAIRS_PER_LEVEL - 1):
                    drv.write_pair(level, 5000 + i, 600, LabelOp.SWAP)
                drv.write_pair(level, 400 + level, 900 + level, LabelOp.SWAP)
            for position in range(depth):
                label = 400 + depth - position  # top ends up 400+depth... bottom 401
                drv.user_push(
                    LabelEntry(label=401 + position, ttl=20,
                               s=1 if position == 0 else 0)
                )
            # after the pushes the top label is 400+depth
            result = drv.update()
            assert result.performed == LabelOp.SWAP, result
            points.append((depth, result.cycles))
        return points

    points = benchmark.pedantic(sweep, iterations=1, rounds=2)
    emit(
        "stack_depth_rtl",
        render_series(
            "stack depth",
            ["update cycles (worst-position hit, 8 pairs/level)"],
            points,
            title="Update cost vs stack depth on the RTL",
        ),
    )
    emit_json(
        "stack_depth_rtl",
        metric="update_cycles_any_depth",
        value=points[0][1],
        units="cycles",
        depths_measured=len(points),
    )
    # depth-independence: every depth costs the same
    costs = {c for _, c in points}
    assert len(costs) == 1


def test_software_cost_grows_with_depth(benchmark):
    """The software engine re-touches the stack on every push/pop, so
    tunnel churn costs grow with depth."""

    def run():
        rows = []
        for depth in (1, 2, 3):
            engine = ForwardingEngine(node_name="sw")
            engine.ilm.install(
                500, NHLFE(op=LabelOp.SWAP, out_label=501, next_hop="x")
            )
            entries = [LabelEntry(label=500, ttl=30)] + [
                LabelEntry(label=600 + i, ttl=30) for i in range(depth - 1)
            ]
            packet = MPLSPacket(
                LabelStack(entries),
                IPv4Packet(src="1.1.1.1", dst="2.2.2.2"),
            )
            engine.reset_counts()
            for _ in range(1000):
                engine.transit(packet)
            rows.append([depth, engine.counts.swaps, engine.counts.ttl_updates])
        return rows

    rows = benchmark(run)
    emit(
        "stack_depth_software",
        render_series(
            "stack depth",
            ["sw swaps / 1000 pkts", "sw TTL updates / 1000 pkts"],
            rows,
            title="Software engine work vs stack depth",
        ),
    )
    emit_json(
        "stack_depth_software",
        metric="sw_swaps_per_1000_packets",
        value=rows[0][1],
        units="operations",
    )
    assert all(row[1] == 1000 for row in rows)


def test_fourth_level_is_rejected(benchmark):
    """Beyond three levels the hardware refuses: the depth budget is a
    hard architectural limit, not a soft convention."""

    def run():
        drv = ModifierDriver(ib_depth=16)
        drv.reset()
        drv.write_pair(1, 999, 1000, LabelOp.PUSH)
        for i, label in enumerate((500, 600, 999)):
            drv.user_push(LabelEntry(label=label, ttl=9, s=1 if i == 0 else 0))
        return drv.update()  # a PUSH at depth 3 would make 4

    result = benchmark.pedantic(run, iterations=1, rounds=2)
    assert result.discarded
