"""Ablation: failure recovery -- fast reroute vs IGP/LDP reconvergence.

The paper's Section 1 argues MPLS's explicit paths enable "efficient
maintenance of those paths".  This bench breaks the primary core link
of the Figure 1 network mid-flow and measures packets lost under three
repair strategies:

* none -- traffic blackholes until the flow ends,
* LDP reconvergence after a detection + SPF delay (50 ms),
* fast reroute -- a pre-signalled disjoint backup, switched at the
  ingress the moment the failure is detected (1 ms detection).

Expected shape: no-repair loses everything after the failure;
reconvergence loses a delay-window of traffic; FRR loses only packets
in flight on the dead link.
"""

from benchmarks._util import emit, emit_json
from repro.analysis.report import render_table
from repro.control.frr import FastRerouteManager
from repro.control.ldp import LDPProcess
from repro.control.rsvp_te import RSVPTESignaler
from repro.mpls.fec import PrefixFEC
from repro.mpls.router import RouterRole
from repro.net.network import MPLSNetwork
from repro.net.topology import paper_figure1
from repro.net.traffic import CBRSource

RATE = 4e6          # 1000 pps at 500 B
FAIL_AT = 0.25
FLOW_END = 0.5
DETECTION_DELAY = 1e-3
RECONVERGENCE_DELAY = 50e-3


def _base_net():
    topo = paper_figure1(bandwidth_bps=10e6, delay_s=1e-3)
    net = MPLSNetwork(
        topo, roles={"ler-a": RouterRole.LER, "ler-b": RouterRole.LER}
    )
    net.attach_host("ler-b", "10.2.0.0/16")
    return topo, net


def _flow(net):
    src = CBRSource(net.scheduler, net.source_sink("ler-a"),
                    src="10.1.0.5", dst="10.2.0.9", rate_bps=RATE,
                    packet_size=500, stop=FLOW_END)
    src.begin()
    return src


def run_no_repair():
    topo, net = _base_net()
    ldp = LDPProcess(topo, net.nodes)
    ldp.establish_fec(PrefixFEC("10.2.0.0/16"), egress="ler-b")
    primary_mid = ldp.bindings[0].next_hops["lsr-1"]
    src = _flow(net)
    net.scheduler.at(FAIL_AT, lambda: net.fail_link("lsr-1", primary_mid))
    net.run(until=FLOW_END + 1.0)
    return src.sent, net.delivered_count()


def run_ldp_reconvergence():
    topo, net = _base_net()
    ldp = LDPProcess(topo, net.nodes)
    ldp.establish_fec(PrefixFEC("10.2.0.0/16"), egress="ler-b")
    primary_mid = ldp.bindings[0].next_hops["lsr-1"]
    src = _flow(net)

    def fail():
        net.fail_link("lsr-1", primary_mid)
        net.scheduler.after(RECONVERGENCE_DELAY, ldp.reconverge)

    net.scheduler.at(FAIL_AT, fail)
    net.run(until=FLOW_END + 1.0)
    return src.sent, net.delivered_count()


def run_frr():
    topo, net = _base_net()
    sig = RSVPTESignaler(topo, net.nodes)
    frr = FastRerouteManager(sig)
    protected = frr.protect("p1", "ler-a", "ler-b",
                            PrefixFEC("10.2.0.0/16"))
    primary_mid = protected.primary.path[2]
    src = _flow(net)

    def fail():
        net.fail_link("lsr-1", primary_mid)
        net.scheduler.after(
            DETECTION_DELAY,
            lambda: frr.handle_link_failure("lsr-1", primary_mid),
        )

    net.scheduler.at(FAIL_AT, fail)
    net.run(until=FLOW_END + 1.0)
    return src.sent, net.delivered_count()


def test_failure_recovery_comparison(benchmark):
    def run_all():
        return {
            "no repair": run_no_repair(),
            "LDP reconvergence (50 ms)": run_ldp_reconvergence(),
            "fast reroute (1 ms detect)": run_frr(),
        }

    results = benchmark.pedantic(run_all, iterations=1, rounds=2)
    rows = []
    for name, (sent, delivered) in results.items():
        lost = sent - delivered
        rows.append([name, sent, delivered, lost,
                     f"{lost / sent * 100:.1f}%"])
    emit(
        "frr_recovery",
        render_table(
            ["repair strategy", "sent", "delivered", "lost", "loss"],
            rows,
            title="Packets lost to a mid-flow core link failure "
            "(1000 pps flow, failure at t=0.25 s of 0.5 s)",
        ),
    )
    none_lost = results["no repair"][0] - results["no repair"][1]
    ldp_lost = (results["LDP reconvergence (50 ms)"][0]
                - results["LDP reconvergence (50 ms)"][1])
    frr_lost = (results["fast reroute (1 ms detect)"][0]
                - results["fast reroute (1 ms detect)"][1])
    emit_json(
        "frr_recovery",
        metric="frr_packets_lost",
        value=frr_lost,
        units="packets",
        no_repair_lost=none_lost,
        ldp_reconvergence_lost=ldp_lost,
    )
    # shape: none >> reconvergence > FRR; FRR loses only in-flight pkts
    assert none_lost > ldp_lost > frr_lost
    assert frr_lost <= 5
