"""Ablation: sequential vs pipelined operation of Figure 6.

The paper's conclusion: the architecture "can be implemented to achieve
optimal performance of MPLS".  Figure 6's three modules (ingress packet
processing, label stack modifier, egress packet processing) pipeline
naturally; this bench quantifies what that future-work step buys at
each table size -- and shows that once the linear search dominates, the
modifier stage *is* the pipeline and the gain evaporates.
"""

from benchmarks._util import emit, emit_json
from repro.analysis.report import render_series
from repro.core.pipeline import compare_pipeline


def test_pipeline_speedup_vs_table_size(benchmark):
    cmp = benchmark(compare_pipeline, table_sizes=(1, 4, 16, 64, 256, 1024))
    rows = []
    for p in cmp.points:
        seq_pps = cmp.throughput_pps(p, pipelined=False)
        pipe_pps = cmp.throughput_pps(p, pipelined=True)
        rows.append(
            [
                p.n_entries,
                p.sequential_cycles_per_packet,
                p.pipelined_cycles_per_packet,
                int(seq_pps),
                int(pipe_pps),
                f"{p.speedup:.2f}x",
            ]
        )
    emit(
        "pipeline_speedup",
        render_series(
            "IB entries",
            ["sequential cyc/pkt", "pipelined cyc/pkt",
             "sequential pps", "pipelined pps", "speedup"],
            rows,
            title="Figure 6 run sequentially vs as a 3-stage pipeline "
            "(50 MHz)",
        ),
    )
    speedups = [p.speedup for p in cmp.points]
    emit_json(
        "pipeline_speedup",
        metric="speedup_at_1_entry",
        value=round(speedups[0], 2),
        units="ratio",
        speedup_at_1024_entries=round(speedups[-1], 3),
    )
    # shape: meaningful gain for small tables, none once search dominates
    assert speedups[0] > 1.5
    assert speedups[-1] < 1.01
    assert speedups == sorted(speedups, reverse=True)
