"""Reproduces **Table 6**: processing times for different tasks.

Paper rows (worst-case clock cycles):

    Reset                              3
    push from the user                 3
    pop from the user                  3
    Write label pair                   3
    Search information base            3n + 5
    swap from the information base     6

The benchmark measures every row on the cycle-accurate RTL and asserts
exact agreement; the pytest-benchmark timing shows the simulator's wall
cost for the headline composite.
"""

from benchmarks._util import emit, emit_json
from repro.analysis.cycles import measure_table6
from repro.analysis.report import render_table
from repro.hw.driver import ModifierDriver
from repro.mpls.label import LabelEntry, LabelOp

PAPER_ROWS = {
    "Reset": 3,
    "Push entry from the user": 3,
    "Pop entry from the user": 3,
    "Write label pair": 3,
}


def test_table6_measured_on_rtl(benchmark):
    rows = benchmark.pedantic(
        measure_table6,
        kwargs=dict(search_sizes=(1, 10, 100), ib_depth=1024),
        iterations=1,
        rounds=3,
    )
    table = render_table(
        ["operation", "paper formula", "paper/expected", "measured (RTL)"],
        [[r.operation, r.formula, r.expected, r.measured] for r in rows],
        title="Table 6 -- processing times in worst-case clock cycles",
    )
    emit("table6_cycles", table)
    emit_json(
        "table6_cycles",
        metric="rows_matching_paper",
        value=sum(1 for r in rows if r.matches),
        units="rows",
        total_rows=len(rows),
    )
    for row in rows:
        assert row.matches, f"{row.operation}: {row.expected} != {row.measured}"
    measured = {r.operation: r.measured for r in rows}
    for op, expected in PAPER_ROWS.items():
        assert measured[op] == expected


def test_table6_search_formula_sweep(benchmark):
    """3n + 5 across a size sweep, measured on the RTL."""

    def sweep():
        drv = ModifierDriver(ib_depth=256)
        out = []
        for n in (1, 2, 4, 8, 16, 32, 64, 128, 256):
            drv.reset()
            for i in range(n):
                drv.write_pair(2, 16 + i, 500 + i, LabelOp.SWAP)
            result = drv.search(2, 0xFFFFF)  # miss: full scan
            out.append((n, result.cycles, 3 * n + 5))
        return out

    points = benchmark.pedantic(sweep, iterations=1, rounds=1)
    table = render_table(
        ["n (stored pairs)", "measured cycles", "3n + 5"],
        points,
        title="Table 6 search row: measured vs formula",
    )
    emit("table6_search_sweep", table)
    emit_json(
        "table6_search_sweep",
        metric="miss_search_cycles_at_256_pairs",
        value=points[-1][1],
        units="cycles",
    )
    for n, measured, formula in points:
        assert measured == formula


def test_table6_swap_tail_is_6(benchmark):
    """The 'swap from the information base' row, measured as the
    update's cost beyond its search."""

    def run():
        drv = ModifierDriver(ib_depth=64)
        drv.reset()
        drv.write_pair(1, 100, 200, LabelOp.SWAP)
        drv.user_push(LabelEntry(label=100, ttl=9, s=1))
        update = drv.update()
        search_hit_cost = 3 * 0 + 8
        return update.cycles - search_hit_cost

    tail = benchmark.pedantic(run, iterations=1, rounds=3)
    assert tail == 6
