"""Reproduces **Figure 15**: simulation of level-2 label pair entries.

"Figure [15] illustrates a similar scenario to Figure [14] but label
pairs are entered for level 2 as opposed to level 1.  The old label
values take values 1 through 10 inclusive while the new label values go
from 500 to 509 inclusive.  Signal values for w_index and r_index
iterate so all values are written and the correct values are read.
Once again the lookup_done signal goes high after the read attempt and
the packetdiscard signal remains low."
"""

from benchmarks._util import emit, emit_json
from repro.analysis.report import render_table
from repro.hw.driver import ModifierDriver
from repro.mpls.label import LabelOp

OPS = [LabelOp.PUSH, LabelOp.SWAP, LabelOp.POP]


def run_figure15():
    drv = ModifierDriver(ib_depth=1024)
    drv.reset()
    for i in range(10):
        drv.write_pair(2, i + 1, 500 + i, OPS[i % 3])
    lookups = [drv.search(2, old) for old in range(1, 11)]
    return drv, lookups


def test_figure15_level2_write_and_lookup(benchmark):
    drv, lookups = benchmark.pedantic(run_figure15, iterations=1, rounds=3)

    # every stored pair reads back correctly
    rows = []
    for old, result in zip(range(1, 11), lookups):
        assert result.found
        assert result.label == 500 + (old - 1)
        assert not result.discarded
        # a hit at position k costs 3k + 8
        assert result.cycles == 3 * (old - 1) + 8
        rows.append([old, result.label, result.op.name, result.cycles])

    # w_index reached 10: all pairs stored, none overwritten
    assert drv.modifier.dp.info_base.level(2).count == 10
    # level 1 untouched: the levels are independent memories
    assert drv.modifier.dp.info_base.level(1).count == 0

    table = render_table(
        ["old label", "label_out", "operation_out", "lookup cycles"],
        rows,
        title="Figure 15 -- level-2 label pairs: every lookup succeeds, "
        "packetdiscard stays low",
    )
    emit("fig15_level2", table)
    emit_json(
        "fig15_level2",
        metric="worst_lookup_cycles",
        value=lookups[-1].cycles,
        units="cycles",
        pairs_stored=drv.modifier.dp.info_base.level(2).count,
    )
