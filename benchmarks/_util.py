"""Shared helpers for the benchmark harness.

Every benchmark renders the table/figure it reproduces as plain text,
prints it (visible with ``pytest -s``), and writes it under
``benchmarks/results/`` so the regenerated artifacts survive the run.
Benchmarks with one headline number additionally persist it as
``BENCH_<name>.json`` via :func:`emit_json`, so trend tooling can read
the metric without scraping the rendered table.
"""

from __future__ import annotations

import json
import os
from typing import Any, Optional

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, text: str) -> None:
    """Print a rendered table and persist it to results/<name>.txt."""
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")


def emit_json(
    name: str,
    metric: str,
    value: Any,
    units: str,
    seed: Optional[int] = None,
    **extra: Any,
) -> None:
    """Persist one machine-readable benchmark metric to
    ``results/BENCH_<name>.json`` (alongside the ``.txt`` from
    :func:`emit`).  ``seed`` records the randomness the value depends
    on (``None`` for fully deterministic measurements); extra keyword
    fields ride along verbatim."""
    record = {
        "name": name,
        "metric": metric,
        "value": value,
        "units": units,
        "seed": seed,
    }
    record.update(extra)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"BENCH_{name}.json")
    with open(path, "w") as fh:
        json.dump(record, fh, sort_keys=True, indent=2)
        fh.write("\n")
