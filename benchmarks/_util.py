"""Shared helpers for the benchmark harness.

Every benchmark renders the table/figure it reproduces as plain text,
prints it (visible with ``pytest -s``), and writes it under
``benchmarks/results/`` so the regenerated artifacts survive the run.
"""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, text: str) -> None:
    """Print a rendered table and persist it to results/<name>.txt."""
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")
