"""Ablation: control-plane convergence of message-level LDP.

The hardware forwards in nanoseconds, but an LSP only exists after the
software control plane converges.  This bench measures, with real
messages over per-link propagation delays, how session setup and
ordered label distribution scale with topology diameter -- the
"software side" cost of the paper's hardware/software split.
"""

from benchmarks._util import emit, emit_json
from repro.analysis.report import render_series, render_table
from repro.control.ldp_sessions import MessageLDPProcess, MsgType
from repro.mpls.fec import PrefixFEC
from repro.mpls.router import LSRNode, RouterRole
from repro.net.events import EventScheduler
from repro.net.topology import line, ring

LINK_DELAY = 1e-3


def _converge_line(n):
    topo = line(n, delay_s=LINK_DELAY)
    edge = {f"n0", f"n{n-1}"}
    nodes = {
        name: LSRNode(
            name, RouterRole.LER if name in edge else RouterRole.LSR
        )
        for name in topo.nodes
    }
    scheduler = EventScheduler()
    ldp = MessageLDPProcess(topo, nodes, scheduler)
    ldp.start()
    scheduler.run(until=1.0)
    assert ldp.all_sessions_up()
    session_msgs = ldp.total_messages
    ldp.announce_fec("f", PrefixFEC("10.9.0.0/16"), egress=f"n{n-1}")
    scheduler.run(until=2.0)
    assert ldp.converged("f")
    mapping_msgs = ldp.message_counts[MsgType.LABEL_MAPPING]
    return session_msgs, mapping_msgs, ldp.convergence_time("f")


def test_convergence_vs_diameter(benchmark):
    def sweep():
        rows = []
        for n in (3, 5, 9, 17):
            session_msgs, mapping_msgs, conv = _converge_line(n)
            rows.append(
                [n - 1, session_msgs, mapping_msgs,
                 round(conv * 1e3, 3)]
            )
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=2)
    emit(
        "ldp_convergence",
        render_series(
            "diameter (hops)",
            ["session msgs", "mapping msgs", "distribution time (ms)"],
            rows,
            title="Message-level LDP convergence on line topologies "
            f"({LINK_DELAY * 1e3:g} ms links)",
        ),
    )
    emit_json(
        "ldp_convergence",
        metric="distribution_time_at_diameter_16",
        value=rows[-1][3],
        units="ms",
        mapping_msgs=rows[-1][2],
    )
    # shape: ordered distribution is one propagation per hop, so the
    # convergence time grows linearly with the diameter
    times = [r[3] for r in rows]
    assert times == sorted(times)
    hops = [r[0] for r in rows]
    per_hop = [t / h for t, h in zip(times, hops)]
    assert max(per_hop) - min(per_hop) < 0.5  # ~constant ms/hop

    # message complexity: downstream-unsolicited advertises to every
    # session peer, so a line of h hops carries 2h mappings
    # (1 from each end + 2 from each of the h-1 middle nodes)
    for (hop_count, _s, mapping, _t) in rows:
        assert mapping == 2 * hop_count


def test_distribution_order_is_egress_first(benchmark):
    """Ordered control: forwarding state appears from the egress
    backwards, so a partially distributed LSP is never blackholed at
    its tail."""

    def run():
        topo = ring(8, delay_s=LINK_DELAY)
        nodes = {
            name: LSRNode(
                name,
                RouterRole.LER if name in ("n0", "n4") else RouterRole.LSR,
            )
            for name in topo.nodes
        }
        scheduler = EventScheduler()
        ldp = MessageLDPProcess(topo, nodes, scheduler)
        ldp.start()
        scheduler.run(until=1.0)
        state = ldp.announce_fec("f", PrefixFEC("10.9.0.0/16"), egress="n4")
        scheduler.run(until=2.0)
        return ldp, state

    ldp, state = benchmark.pedantic(run, iterations=1, rounds=2)
    assert ldp.converged("f")
    times = state.installed_at
    # every node installed after its downstream neighbour on the ring
    lsdb_times = sorted(times.items(), key=lambda kv: kv[1])
    assert lsdb_times[0][0] == "n4"  # egress first
    rows = [[name, round(t * 1e3, 3)] for name, t in lsdb_times]
    emit(
        "ldp_ordered_install",
        render_table(
            ["node", "install time (ms)"],
            rows,
            title="Ordered label distribution on an 8-ring (egress n4)",
        ),
    )
    emit_json(
        "ldp_ordered_install",
        metric="full_install_time",
        value=rows[-1][1],
        units="ms",
    )
