"""End-to-end network benchmark: the Figure 1 domain under load, plus
the control-plane overhead comparison between the two label
distribution protocols the paper names (RSVP-TE and CR-LDP).

Reports delivered throughput, latency and loss across offered loads
(the congestion-avoidance story of Section 1), the traffic-engineering
effect of splitting load across the two core paths, and signalling
message counts.
"""

from benchmarks._util import emit, emit_json
from repro.analysis.report import render_series, render_table
from repro.control.cr_ldp import CRLDPSignaler
from repro.control.ldp import LDPProcess
from repro.control.rsvp_te import RSVPTESignaler
from repro.mpls.fec import PrefixFEC
from repro.mpls.router import RouterRole
from repro.net.network import MPLSNetwork
from repro.net.topology import paper_figure1
from repro.net.traffic import CBRSource

LINK_BPS = 10e6
DURATION = 0.5


def _network():
    topo = paper_figure1(bandwidth_bps=LINK_BPS, delay_s=1e-3)
    net = MPLSNetwork(
        topo, roles={"ler-a": RouterRole.LER, "ler-b": RouterRole.LER}
    )
    net.attach_host("ler-b", "10.2.0.0/16")
    return topo, net


def _offer(net, rate_bps, dst="10.2.0.9"):
    src = CBRSource(net.scheduler, net.source_sink("ler-a"),
                    src="10.1.0.5", dst=dst, rate_bps=rate_bps,
                    packet_size=500, stop=DURATION)
    src.begin()
    return src


def test_throughput_vs_offered_load(benchmark):
    def sweep():
        rows = []
        for fraction in (0.2, 0.5, 0.8, 1.2, 1.6):
            topo, net = _network()
            LDPProcess(topo, net.nodes).establish_fec(
                PrefixFEC("10.2.0.0/16"), egress="ler-b"
            )
            src = _offer(net, fraction * LINK_BPS)
            net.run(until=DURATION + 1.0)
            delivered = net.delivered_count()
            latencies = net.latencies()
            rows.append(
                [
                    f"{fraction:.1f}",
                    src.sent,
                    delivered,
                    f"{100 * (1 - delivered / src.sent):.1f}%",
                    round(sum(latencies) / len(latencies) * 1e3, 2),
                    round(max(latencies) * 1e3, 2),
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=2)
    emit(
        "network_e2e",
        render_series(
            "offered/capacity",
            ["sent", "delivered", "loss", "mean ms", "worst ms"],
            rows,
            title="Single LSP across Figure 1 vs offered load",
        ),
    )
    emit_json(
        "network_e2e",
        metric="mean_latency_below_capacity",
        value=rows[0][4],
        units="ms",
        seed=0,
        offered_fraction=0.2,
    )
    # shape: no loss below capacity; loss and latency blow up past it
    assert rows[0][3] == "0.0%"
    assert rows[1][3] == "0.0%"
    assert float(rows[-1][3].rstrip("%")) > 20
    assert rows[-1][4] > rows[0][4]


def test_te_load_splitting(benchmark):
    """Two explicit LSPs use both core paths; one IGP path cannot.
    'Avoiding congestion is paramount to successful traffic
    engineering.'"""

    def run(split):
        topo, net = _network()
        if split:
            sig = RSVPTESignaler(topo, net.nodes)
            sig.setup("upper", "ler-a", "ler-b",
                      explicit_route=["ler-a", "lsr-1", "lsr-2", "ler-b"],
                      fec=PrefixFEC("10.2.0.0/24"))
            sig.setup("lower", "ler-a", "ler-b",
                      explicit_route=["ler-a", "lsr-1", "lsr-3", "ler-b"],
                      fec=PrefixFEC("10.2.1.0/24"))
        else:
            ldp = LDPProcess(topo, net.nodes)
            ldp.establish_fec(PrefixFEC("10.2.0.0/16"), egress="ler-b")
        # widen the shared access link so the core is the bottleneck
        net.link("ler-a", "lsr-1").forward.bandwidth_bps = 4 * LINK_BPS
        a = _offer(net, 0.8 * LINK_BPS, dst="10.2.0.9")
        b = _offer(net, 0.8 * LINK_BPS, dst="10.2.1.9")
        net.run(until=DURATION + 1.0)
        sent = a.sent + b.sent
        return sent, net.delivered_count(), net.drop_count()

    def both():
        return {"igp only": run(False), "te split": run(True)}

    results = benchmark.pedantic(both, iterations=1, rounds=2)
    rows = [
        [name, sent, delivered, dropped,
         f"{100 * (1 - delivered / sent):.1f}%"]
        for name, (sent, delivered, dropped) in results.items()
    ]
    emit(
        "network_te_split",
        render_table(
            ["routing", "sent", "delivered", "dropped", "loss"],
            rows,
            title="1.6x core load: one IGP path vs TE split across both "
            "core paths",
        ),
    )
    igp_sent, igp_delivered, _ = results["igp only"]
    te_sent, te_delivered, te_dropped = results["te split"]
    assert igp_delivered < igp_sent  # congested on one path
    assert te_dropped == 0           # TE spreads the load: no loss


def test_signaling_overhead_rsvp_vs_crldp(benchmark):
    """RSVP-TE's soft state refreshes vs CR-LDP's hard state."""

    def run():
        topo, net = _network()
        route = ["ler-a", "lsr-1", "lsr-2", "ler-b"]
        rsvp = RSVPTESignaler(topo, net.nodes)
        rsvp.setup("r1", "ler-a", "ler-b", explicit_route=route)
        # one hour of 30-second refreshes
        for i in range(120):
            rsvp.refresh("r1", now=30.0 * i)
        rsvp.teardown("r1")

        crldp = CRLDPSignaler(topo, net.nodes)
        crldp.setup("c1", "ler-a", "ler-b", explicit_route=route)
        crldp.release("c1")
        return rsvp.stats, crldp.stats

    rsvp_stats, crldp_stats = benchmark(run)
    rsvp_total = (
        rsvp_stats.path_messages
        + rsvp_stats.resv_messages
        + rsvp_stats.refresh_messages
    )
    crldp_total = (
        crldp_stats.request_messages
        + crldp_stats.mapping_messages
        + crldp_stats.release_messages
    )
    emit(
        "signaling_overhead",
        render_table(
            ["protocol", "setup msgs", "refresh msgs (1h)", "total msgs"],
            [
                ["RSVP-TE (soft state)",
                 rsvp_stats.path_messages + rsvp_stats.resv_messages,
                 rsvp_stats.refresh_messages, rsvp_total],
                ["CR-LDP (hard state)",
                 crldp_stats.request_messages + crldp_stats.mapping_messages,
                 0, crldp_total],
            ],
            title="Control-plane message counts for one 3-hop LSP over an "
            "hour",
        ),
    )
    assert rsvp_total > 10 * crldp_total
