"""Centralized-controller failover vs pure-distributed reconvergence.

Runs the bundled PCE failover scenario (controller crash at 0.2s,
warm restart at 0.5s, plus a per-node partition) and reports the two
headline robustness numbers:

* **time to failover** -- how long after the crash the orphaned nodes
  detect controller-liveness loss (hold-timer expiry) and complete the
  graceful delegation back to distributed control;
* **time to readopt** -- how long after the warm restart the slowest
  node is re-adopted through the seeded-backoff resync path (read-back
  + one atomic table transaction).

For scale, the same topology's pure-distributed recovery from a plain
link outage (mean MTTR of the smoke scenario's link faults) rides
along -- the comparison the centralized-vs-distributed trade-off
hinges on.  All three numbers are simulated-time metrics of seeded
runs, so they are deterministic; the headline lands in
``BENCH_controller_failover.json``.
"""

import os

from benchmarks._util import emit, emit_json
from repro.faults import Scenario, run_scenario
from repro.obs import telemetry_session

SEED = 7
EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def _controller_times():
    scenario = Scenario.load(
        os.path.join(EXAMPLES, "chaos_controller.json")
    )
    with telemetry_session():
        report = run_scenario(scenario, seed=SEED)
    ctl = report["controller"]
    assert ctl["fecs_blackholed"] == 0, ctl["blackholed_fecs"]
    return ctl["time_to_failover_s"], ctl["time_to_readopt_s"]


def _distributed_mttr():
    scenario = Scenario.load(os.path.join(EXAMPLES, "chaos_smoke.json"))
    with telemetry_session():
        report = run_scenario(scenario, seed=SEED)
    return report["recovery"]["mean_mttr_s"]


def test_controller_failover(benchmark):
    def run():
        failover_s, readopt_s = _controller_times()
        return failover_s, readopt_s, _distributed_mttr()

    failover_s, readopt_s, distributed_s = benchmark.pedantic(
        run, iterations=1, rounds=2
    )
    assert failover_s is not None and readopt_s is not None

    lines = [
        "Controller failover vs distributed reconvergence (seed %d)"
        % SEED,
        "",
        "  time to failover (crash -> delegation)   %7.1f ms"
        % (failover_s * 1e3),
        "  time to readopt (restart -> resynced)    %7.1f ms"
        % (readopt_s * 1e3),
        "  distributed link-outage mean MTTR        %7.1f ms"
        % (distributed_s * 1e3),
        "",
        "  blackholed FECs with delegation: 0 (asserted)",
    ]
    emit("controller_failover", "\n".join(lines))
    emit_json(
        "controller_failover",
        "time_to_failover",
        round(failover_s * 1e3, 3),
        "ms",
        seed=SEED,
        time_to_readopt_ms=round(readopt_s * 1e3, 3),
        distributed_reconvergence_ms=round(distributed_s * 1e3, 3),
    )
