"""Scenario/CLI surface of the controller fault kinds.

``controller-crash`` and ``controller-partition`` follow the same
taxonomy discipline as every other kind: strict per-kind param
validation, a ``--list-faults`` entry, and the cross-field requirement
that controller faults come with a scenario ``controller`` key.
"""

import copy
import json

import pytest

from repro.cli import _render_fault_kinds, cmd_chaos
from repro.faults import Scenario, ScenarioError, run_scenario
from repro.faults.scenario import CONTROLLER_KINDS, FAULT_PARAMS, FaultKind
from repro.obs import telemetry_session

BASE = {
    "name": "controller-validation",
    "topology": {"kind": "paper_figure1",
                 "bandwidth_bps": 10e6, "delay_s": 1e-3},
    "control": "ldp",
    "duration": 0.4,
    "traffic": [
        {"ingress": "ler-a", "egress": "ler-b", "prefix": "10.2.0.0/16",
         "src": "10.1.0.5", "dst": "10.2.0.9",
         "rate_bps": 1e6, "packet_size": 500}
    ],
    "controller": {},
    "faults": [
        {"at": 0.1, "kind": "controller-crash",
         "target": ["controller"], "heal_at": 0.2},
    ],
}


def _scenario(**changes):
    raw = copy.deepcopy(BASE)
    raw.update(changes)
    return raw


class TestTaxonomy:
    def test_both_kinds_registered(self):
        assert FaultKind.CONTROLLER_CRASH in FAULT_PARAMS
        assert FaultKind.CONTROLLER_PARTITION in FAULT_PARAMS
        assert FaultKind.CONTROLLER_CRASH in CONTROLLER_KINDS
        assert FaultKind.CONTROLLER_PARTITION in CONTROLLER_KINDS

    def test_list_faults_renders_both(self):
        rendered = _render_fault_kinds()
        assert "controller-crash" in rendered
        assert "controller-partition" in rendered
        assert "[controller: needs a 'controller' key]" in rendered
        assert 'the literal "controller"' in rendered

    def test_list_faults_cli_exit_zero(self, capsys):
        assert cmd_chaos(None, list_faults=True) == 0
        out = capsys.readouterr().out
        assert "controller-crash" in out
        assert "controller-partition" in out


class TestValidation:
    @pytest.mark.parametrize(
        "kind", ["controller-crash", "controller-partition"]
    )
    def test_unknown_param_names_accepted_list(self, kind):
        target = ["controller"] if kind == "controller-crash" else ["lsr-1"]
        raw = _scenario(faults=[
            {"at": 0.1, "kind": kind, "target": target, "bogus": 1},
        ])
        with pytest.raises(
            ScenarioError,
            match=rf"{kind}: unknown param\(s\) bogus \(accepted: none\)",
        ):
            Scenario.from_dict(raw)

    def test_controller_faults_need_controller_key(self):
        raw = _scenario()
        del raw["controller"]
        with pytest.raises(
            ScenarioError,
            match=r"'controller-crash' faults need a 'controller' key",
        ):
            Scenario.from_dict(raw)

    def test_crash_must_target_the_controller(self):
        raw = _scenario(faults=[
            {"at": 0.1, "kind": "controller-crash",
             "target": ["lsr-1"], "heal_at": 0.2},
        ])
        with pytest.raises(
            ScenarioError,
            match=r'controller-crash targets the controller itself',
        ):
            with telemetry_session():
                run_scenario(Scenario.from_dict(raw), seed=0)

    def test_partition_must_target_a_known_node(self):
        raw = _scenario(faults=[
            {"at": 0.1, "kind": "controller-partition",
             "target": ["no-such-node"], "heal_at": 0.2},
        ])
        with pytest.raises(ScenarioError):
            with telemetry_session():
                run_scenario(Scenario.from_dict(raw), seed=0)

    def test_bad_controller_config_is_a_scenario_error(self):
        raw = _scenario(controller={"hold_tiem": 0.1})
        with pytest.raises(
            ScenarioError, match=r"unknown controller key\(s\): hold_tiem"
        ):
            with telemetry_session():
                run_scenario(Scenario.from_dict(raw), seed=0)


class TestSectionGatingAndCLI:
    def test_section_present_iff_controller_key(self):
        with telemetry_session():
            armed = run_scenario(Scenario.from_dict(_scenario()), seed=3)
        assert "controller" in armed.data

        raw = _scenario(faults=[])
        del raw["controller"]
        with telemetry_session():
            plain = run_scenario(Scenario.from_dict(raw), seed=3)
        assert "controller" not in plain.data

    def test_cli_controller_override(self, tmp_path, capsys):
        path = tmp_path / "scn.json"
        path.write_text(json.dumps(_scenario()))
        out_on = tmp_path / "on.json"
        out_off = tmp_path / "off.json"
        assert cmd_chaos(str(path), seed=5, output=str(out_on),
                         controller="on") == 0
        assert cmd_chaos(str(path), seed=5, output=str(out_off),
                         controller="off") == 0
        on = json.loads(out_on.read_text())["controller"]
        off = json.loads(out_off.read_text())["controller"]
        assert on["enabled"] is True and on["adoptions"] > 0
        assert off["enabled"] is False and off["adoptions"] == 0

    def test_dark_controller_faults_are_inert(self):
        """A controller fault against a dark (enabled=false) PCE heals
        immediately and orphans nothing."""
        raw = _scenario(controller={"enabled": False})
        with telemetry_session():
            report = run_scenario(Scenario.from_dict(raw), seed=3)
        ctl = report["controller"]
        assert ctl["failovers"] == []
        assert ctl["fecs_orphaned"] == 0
        assert ctl["fecs_blackholed"] == 0
