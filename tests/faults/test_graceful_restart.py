"""Graceful (warm) restart, the hold-timer flush, transactional
reconvergence, and the consistency auditor."""

import json

import pytest

from repro.control.ldp import LDPProcess
from repro.faults import (
    ConsistencyAuditor,
    FaultKind,
    FaultSpec,
    Scenario,
    ScenarioError,
)
from repro.faults.chaos import build_run, run_scenario
from repro.faults.injector import FaultInjector
from repro.mpls.fec import PrefixFEC
from repro.mpls.router import RouterRole
from repro.net.network import MPLSNetwork
from repro.net.topology import paper_figure1
from repro.net.traffic import CBRSource


def _network():
    topology = paper_figure1(bandwidth_bps=10e6, delay_s=1e-3)
    network = MPLSNetwork(
        topology,
        roles={"ler-a": RouterRole.LER, "ler-b": RouterRole.LER},
    )
    network.attach_host("ler-b", "10.2.0.0/16")
    ldp = LDPProcess(topology, network.nodes)
    ldp.establish_fec(PrefixFEC("10.2.0.0/16"), egress="ler-b")
    return network, ldp


def _flow(network, rate_bps=2e6, stop=1.0):
    source = CBRSource(
        network.scheduler,
        network.source_sink("ler-a"),
        src="10.1.0.5",
        dst="10.2.0.9",
        rate_bps=rate_bps,
        packet_size=500,
        stop=stop,
    )
    source.begin()
    return source


class TestWarmRestart:
    def test_non_stop_forwarding_through_warm_restart(self):
        """All traffic traverses lsr-1; a warm restart there must lose
        nothing at all -- the defining property of graceful restart."""
        network, ldp = _network()
        source = _flow(network, stop=0.8)
        injector = FaultInjector(network, ldp=ldp)
        injector.schedule_fault(
            FaultSpec(
                kind=FaultKind.NODE_RESTART, at=0.2,
                target=("lsr-1",), heal_at=0.4,
                params={"hold_time": 0.5},
            )
        )
        network.run(until=1.0)
        assert network.delivered_count() == source.sent
        assert not network.drops
        restart = injector.restarts[0]
        assert restart.ilm_stale_marked > 0
        assert restart.resumed_at == pytest.approx(0.4)
        # the reconvergence refreshed every entry in place, so the
        # hold-timer expiry had nothing left to flush
        assert restart.ilm_flushed == 0 and restart.ftn_flushed == 0
        assert restart.stale_forwarding_s == pytest.approx(0.2)
        # a warm restart never takes links down
        assert injector.node_was_up("lsr-1", 0.3)
        assert injector.link_was_up("ler-a", "lsr-1", 0.3)

    def test_hold_timer_flushes_exactly_on_expiry(self):
        """A control plane that never comes back: stale entries keep
        forwarding until began_at + hold_time, then vanish."""
        network, ldp = _network()
        injector = FaultInjector(network, ldp=ldp)
        injector.schedule_fault(
            FaultSpec(
                kind=FaultKind.NODE_RESTART, at=0.1,
                target=("lsr-1",), params={"hold_time": 0.2},
            )
        )
        node = network.nodes["lsr-1"]
        observed = {}
        network.scheduler.at(
            0.299, lambda: observed.__setitem__(
                "before", (len(node.ilm), node.ilm.stale_labels())
            )
        )
        network.scheduler.at(
            0.3001, lambda: observed.__setitem__(
                "after", (len(node.ilm), node.ilm.stale_labels())
            )
        )
        network.run(until=0.5)
        entries_before, stale_before = observed["before"]
        entries_after, stale_after = observed["after"]
        assert entries_before > 0 and stale_before
        assert entries_after == 0 and not stale_after
        restart = injector.restarts[0]
        assert restart.hold_expired_at == pytest.approx(0.3)
        assert restart.ilm_flushed == len(stale_before)
        assert restart.resumed_at is None
        assert restart.stale_forwarding_s == pytest.approx(0.2)

    def test_forwarding_survives_until_flush_then_drops(self):
        network, ldp = _network()
        source = _flow(network, stop=0.6)
        injector = FaultInjector(network, ldp=ldp)
        injector.schedule_fault(
            FaultSpec(
                kind=FaultKind.NODE_RESTART, at=0.1,
                target=("lsr-1",), params={"hold_time": 0.25},
            )
        )
        network.run(until=0.8)
        assert injector.restarts[0].ilm_flushed > 0
        # deliveries continue well into the stale window...
        assert any(0.1 < d.time < 0.35 for d in network.deliveries)
        # ...and every drop comes after the flush removed the entries
        assert network.drops
        assert all(d.time >= 0.35 for d in network.drops)

    def test_restart_needs_a_label_distribution_protocol(self):
        network, _ = _network()
        injector = FaultInjector(network)  # no ldp, no message_ldp
        scenario = Scenario.from_dict(
            {
                "name": "bad",
                "topology": {"kind": "paper_figure1"},
                "traffic": [
                    {"ingress": "ler-a", "egress": "ler-b",
                     "prefix": "10.2.0.0/16",
                     "src": "10.1.0.5", "dst": "10.2.0.9"}
                ],
                "faults": [
                    {"at": 0.1, "kind": "node-restart", "target": "lsr-1"}
                ],
            }
        )
        with pytest.raises(ScenarioError):
            injector.apply(scenario)

    def test_double_restart_skips(self):
        network, ldp = _network()
        injector = FaultInjector(network, ldp=ldp)
        injector.schedule_fault(
            FaultSpec(
                kind=FaultKind.NODE_RESTART, at=0.1,
                target=("lsr-1",), heal_at=0.5,
                params={"hold_time": 0.6},
            )
        )
        second = injector.schedule_fault(
            FaultSpec(
                kind=FaultKind.NODE_RESTART, at=0.2,
                target=("lsr-1",), heal_at=0.3,
            )
        )
        network.run(until=1.0)
        assert second.skipped
        assert len(injector.restarts) == 1


class TestMessageLDPWarmRestart:
    def test_sessions_reform_and_refresh_in_place(self):
        scenario = Scenario.from_dict(
            {
                "name": "gr-messages",
                "topology": {"kind": "paper_figure1",
                             "bandwidth_bps": 10e6, "delay_s": 1e-3},
                "control": "ldp-messages",
                "duration": 1.2,
                "traffic": [
                    {"ingress": "ler-a", "egress": "ler-b",
                     "prefix": "10.2.0.0/16",
                     "src": "10.1.0.5", "dst": "10.2.0.9",
                     "rate_bps": 2e6, "packet_size": 500,
                     "start": 0.3, "stop": 0.9}
                ],
                "faults": [
                    {"at": 0.4, "kind": "node-restart", "target": "lsr-1",
                     "heal_at": 0.5, "hold_time": 0.6}
                ],
            }
        )
        run = build_run(scenario, seed=3)
        run.network.run(until=scenario.duration)
        restart = run.injector.restarts[0]
        # helpers stale-marked the entries routed via lsr-1 on top of
        # the restarting node's own preserved state
        assert restart.ilm_stale_marked > 0
        # sessions re-formed and keepalive re-advertisement refreshed
        # everything before the hold timer fired: nothing was flushed
        assert restart.ilm_flushed == 0 and restart.ftn_flushed == 0
        for name in ("ler-a", "lsr-1", "lsr-2", "lsr-3", "ler-b"):
            node = run.network.nodes[name]
            assert not node.ilm.stale_labels(), name
            assert not node.ftn.stale_fecs(), name
        # non-stop forwarding: no packet was lost to the restart
        sent = sum(s.sent for s in run.sources)
        assert run.network.delivered_count() == sent
        assert not run.network.drops


class TestAdjacentCrashRestarts:
    def test_shared_link_stays_down_until_both_restart(self):
        """Regression for the injector/network disagreement on shared
        crash links: restarting one of two adjacent crashed nodes must
        not mark (or restore) the link between them."""
        network, ldp = _network()
        injector = FaultInjector(network, ldp=ldp)
        injector.schedule_fault(
            FaultSpec(
                kind=FaultKind.NODE_CRASH, at=0.1,
                target=("lsr-1",), heal_at=0.3,
            )
        )
        injector.schedule_fault(
            FaultSpec(
                kind=FaultKind.NODE_CRASH, at=0.1,
                target=("lsr-2",), heal_at=0.5,
            )
        )
        network.run(until=1.0)
        # between the two restarts only lsr-1 is back; the shared link
        # must still be down in the network AND in the injector's log
        assert not injector.link_was_up("lsr-1", "lsr-2", 0.4)
        assert injector.link_was_up("ler-a", "lsr-1", 0.4)
        # after the second restart everything is whole again
        assert network.link_is_up("lsr-1", "lsr-2")
        assert injector.link_was_up("lsr-1", "lsr-2", 0.6)
        # no dangling failed-link bookkeeping
        assert not network._failed_links
        assert not network._down_nodes


class TestTransactionalReconvergence:
    def test_crash_mid_reconverge_leaves_old_tables_forwarding(self):
        """An exception halfway through reconvergence rolls the
        transaction back on every table: the data plane keeps
        forwarding on the pre-transaction state."""
        network, ldp = _network()
        before = {
            name: (dict(node.ilm), list(node.ftn))
            for name, node in network.nodes.items()
        }
        generations = {
            name: (node.ilm.generation, node.ftn.generation)
            for name, node in network.nodes.items()
        }
        original = ldp.establish_fec

        def exploding(*args, **kwargs):
            # the withdraw half of the re-derivation has already staged
            # its removals when this fires: all of it must roll back
            raise RuntimeError("control plane died mid-reconverge")

        ldp.establish_fec = exploding
        with pytest.raises(RuntimeError):
            ldp.reconverge()
        ldp.establish_fec = original
        for name, node in network.nodes.items():
            assert not node.ilm.in_transaction
            assert not node.ftn.in_transaction
            assert dict(node.ilm) == before[name][0]
            assert list(node.ftn) == before[name][1]
            # no generation bump: hardware nodes would not resync
            assert (
                node.ilm.generation, node.ftn.generation
            ) == generations[name]
        # and the network still forwards end to end on the old tables
        source = _flow(network, stop=0.2)
        network.run(until=0.4)
        assert network.delivered_count() == source.sent


class TestConsistencyAuditor:
    def _hw_network(self):
        from repro.core.hwnode import HardwareLSRNode

        topology = paper_figure1(bandwidth_bps=10e6, delay_s=1e-3)
        network = MPLSNetwork(
            topology,
            roles={"ler-a": RouterRole.LER, "ler-b": RouterRole.LER},
            node_factory=HardwareLSRNode,
        )
        network.attach_host("ler-b", "10.2.0.0/16")
        ldp = LDPProcess(topology, network.nodes)
        ldp.establish_fec(PrefixFEC("10.2.0.0/16"), egress="ler-b")
        return network, ldp

    def test_repairs_drift_from_corruption(self):
        network, _ = self._hw_network()
        node = network.nodes["lsr-1"]
        node._sync_info_base()
        auditor = ConsistencyAuditor(network, period=0.1)
        network.scheduler.at(
            0.15, lambda: node.modifier.corrupt_pair(2, 0, label_xor=0x4)
        )
        network.run(until=0.35)
        assert len(auditor.records) == 3
        assert auditor.records[0].clean  # before the corruption
        hit = auditor.records[1]  # the 0.2 pass sees the flip
        assert hit.drift_nodes == ["lsr-1"]
        assert hit.repaired >= 1
        assert hit.cycles > 0
        assert auditor.records[2].clean  # repaired: clean again
        for level in (1, 2, 3):
            assert sorted(node.modifier.ib_pairs(level)) == sorted(
                node._expected_pairs(level)
            )

    def test_detect_only_mode_leaves_drift(self):
        network, _ = self._hw_network()
        node = network.nodes["lsr-1"]
        node._sync_info_base()
        auditor = ConsistencyAuditor(network, period=0.1, repair=False)
        network.scheduler.at(
            0.15, lambda: node.modifier.corrupt_pair(2, 0, label_xor=0x4)
        )
        network.run(until=0.35)
        assert auditor.records[1].drift_nodes == ["lsr-1"]
        assert auditor.records[1].repaired == 0
        # still drifted on the next pass: nothing repaired it
        assert auditor.records[2].drift_nodes == ["lsr-1"]

    def test_watchdog_flags_transaction_open_across_passes(self):
        network, _ = self._hw_network()
        node = network.nodes["lsr-2"]
        network.scheduler.at(0.05, node.ilm.begin)
        auditor = ConsistencyAuditor(network, period=0.1)
        network.run(until=0.35)
        # first pass sees it open (no alarm yet), second pass alarms
        assert not auditor.records[0].watchdog_alarms
        assert auditor.records[1].watchdog_alarms == ["lsr-2"]
        assert auditor.records[2].watchdog_alarms == ["lsr-2"]
        assert not auditor.clean
        node.ilm.rollback()

    def test_stale_mirror_is_not_drift(self):
        """A generation the node was never asked to sync is lazily
        stale, not corrupted: the auditor must not cry wolf."""
        network, ldp = self._hw_network()
        node = network.nodes["lsr-1"]
        node._sync_info_base()
        auditor = ConsistencyAuditor(network, period=0.1)
        # bump the ILM without a sync: the mirror is now behind
        network.scheduler.at(
            0.15, lambda: ldp.establish_fec(
                PrefixFEC("10.9.0.0/16"), egress="ler-b"
            )
        )
        network.run(until=0.35)
        assert auditor.clean


class TestGracefulRestartScenario:
    def test_example_contrasts_warm_and_cold(self):
        scenario = Scenario.load("examples/chaos_graceful_restart.json")
        report = run_scenario(scenario, seed=7)
        gr = report["graceful_restart"]
        warm = gr["restarts"][0]
        # the warm restart dropped nothing at the node and refreshed
        # every stale entry in place at resume
        assert warm["drops_at_node_during_restart"] == 0
        assert warm["flushed"] == {"ilm": 0, "ftn": 0}
        assert warm["stale_marked"]["ilm"] > 0
        # the flow that never traverses n1 sees zero loss end to end
        flows = {f["index"]: f for f in gr["flows"]}
        assert flows[1]["lost"] == 0
        # the cold crash of the same node is the contrast: the n0->n2
        # flow loses packets only to it, never to the warm restart
        cold = next(
            f for f in report["faults"] if f["kind"] == "node-crash"
        )
        assert not cold["skipped"]
        assert report["audit"]["passes"] > 0

    def test_report_is_byte_stable(self):
        scenario = Scenario.load("examples/chaos_graceful_restart.json")
        first = run_scenario(scenario, seed=7).to_json()
        second = run_scenario(
            Scenario.load("examples/chaos_graceful_restart.json"), seed=7
        ).to_json()
        assert first == second
        json.loads(first)  # well-formed
