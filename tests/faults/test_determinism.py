"""Determinism properties of chaos runs.

``hypothesis`` is not available in this environment, so these are
seeded-random property loops: each property is checked across a batch
of seeds rather than a single example.

The properties the chaos tooling promises:

* same (scenario, seed) => byte-identical JSON report,
* same (scenario, seed) => identical telemetry event log,
* same (scenario, seed) => identical final forwarding tables,
* different seeds => different randomized schedules.
"""

import pytest

from repro.faults import Scenario, run_scenario
from repro.faults.chaos import build_run
from repro.obs import ListSink, get_telemetry, telemetry_session

SCENARIO = {
    "name": "determinism",
    "topology": {"kind": "paper_figure1",
                 "bandwidth_bps": 10e6, "delay_s": 1e-3},
    "control": "ldp",
    "duration": 0.8,
    "traffic": [
        {"ingress": "ler-a", "egress": "ler-b", "prefix": "10.2.0.0/16",
         "src": "10.1.0.5", "dst": "10.2.0.9",
         "rate_bps": 2e6, "packet_size": 500}
    ],
    "faults": [
        {"at": 0.2, "kind": "link-down",
         "target": ["lsr-1", "lsr-2"], "heal_at": 0.45},
        {"at": 0.5, "kind": "link-loss",
         "target": ["ler-a", "lsr-1"], "rate": 0.3, "heal_at": 0.7},
    ],
    "random_faults": {
        "count": 3, "kinds": ["link-down", "link-corrupt"],
        "window": [0.05, 0.6], "mean_outage": 0.03,
    },
}


def _report_json(seed):
    with telemetry_session():
        return run_scenario(Scenario.from_dict(SCENARIO), seed=seed).to_json()


def _event_log(seed):
    with telemetry_session() as tel:
        sink = tel.events.add_sink(ListSink())
        run = build_run(Scenario.from_dict(SCENARIO), seed=seed)
        run.network.run(until=run.scenario.duration)
        log = []
        for event in sink.events:
            record = event.as_dict()
            # packet uids and flow ids are process-global allocation
            # counters: they keep counting across runs by design, so
            # they are excluded from the cross-run identity claim
            record.pop("uid", None)
            record.pop("flow_id", None)
            log.append(record)
        return log


def _final_tables(seed):
    run = build_run(Scenario.from_dict(SCENARIO), seed=seed)
    run.network.run(until=run.scenario.duration)
    tables = {}
    for name, node in sorted(run.network.nodes.items()):
        tables[name] = (
            sorted((label, repr(nhlfe)) for label, nhlfe in node.ilm),
            sorted((repr(fec), repr(nhlfe)) for fec, nhlfe in node.ftn),
        )
    return tables


class TestSameSeedIdentical:
    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_reports_byte_identical(self, seed):
        assert _report_json(seed) == _report_json(seed)

    @pytest.mark.parametrize("seed", [7, 23])
    def test_event_logs_identical(self, seed):
        log_a, log_b = _event_log(seed), _event_log(seed)
        assert len(log_a) == len(log_b)
        assert log_a == log_b

    @pytest.mark.parametrize("seed", [7, 23])
    def test_final_tables_identical(self, seed):
        assert _final_tables(seed) == _final_tables(seed)


class TestSeedsActuallyMatter:
    def test_different_seeds_different_reports(self):
        # the randomized half of the schedule must depend on the seed;
        # across a seed batch at least the schedules must differ
        reports = {_report_json(seed) for seed in range(6)}
        assert len(reports) > 1

    def test_different_seeds_different_schedules(self):
        scenario = Scenario.from_dict(SCENARIO)
        schedules = {
            tuple((s.kind, s.at, s.target, s.heal_at)
                  for s in scenario.materialize(seed))
            for seed in range(8)
        }
        assert len(schedules) == 8


class TestNoWallClockInReports:
    def test_report_values_are_simulation_times(self):
        report = run_scenario(Scenario.from_dict(SCENARIO), seed=7)
        for fault in report["faults"]:
            for key in ("injected_at", "healed_at", "recovered_at"):
                value = fault[key]
                assert value is None or 0 <= value <= 2.0, (
                    f"{key}={value} looks like wall-clock time"
                )

    def test_telemetry_disabled_outside_session(self):
        # run_scenario must not implicitly enable telemetry (other
        # tests may leave the process-wide default enabled, e.g. via
        # an undetached NetworkTracer, so pin the state explicitly)
        tel = get_telemetry()
        was_enabled = tel.enabled
        tel.disable()
        try:
            report = run_scenario(Scenario.from_dict(SCENARIO), seed=1)
            assert not tel.enabled
            assert "events" not in report.data
        finally:
            if was_enabled:
                tel.enable()
