"""Scenario parsing, validation, and deterministic schedule expansion."""

import json

import pytest

from repro.faults.scenario import (
    FaultKind,
    FaultSpec,
    RandomFaultSpec,
    Scenario,
    ScenarioError,
)


def _minimal(**overrides):
    doc = {
        "name": "t",
        "topology": {"kind": "paper_figure1"},
        "traffic": [
            {
                "ingress": "ler-a",
                "egress": "ler-b",
                "prefix": "10.2.0.0/16",
                "src": "10.1.0.5",
                "dst": "10.2.0.9",
            }
        ],
    }
    doc.update(overrides)
    return doc


class TestFaultSpec:
    def test_link_kind_needs_two_targets(self):
        with pytest.raises(ScenarioError):
            FaultSpec(kind=FaultKind.LINK_DOWN, at=0.1, target=("a",))

    def test_node_kind_needs_one_target(self):
        with pytest.raises(ScenarioError):
            FaultSpec(
                kind=FaultKind.NODE_CRASH, at=0.1, target=("a", "b")
            )

    def test_heal_must_follow_inject(self):
        with pytest.raises(ScenarioError):
            FaultSpec(
                kind=FaultKind.NODE_CRASH,
                at=0.5,
                target=("a",),
                heal_at=0.5,
            )

    def test_roundtrip_through_dict(self):
        spec = FaultSpec.from_dict(
            {
                "kind": "link-loss",
                "at": 0.2,
                "target": ["a", "b"],
                "heal_at": 0.4,
                "rate": 0.25,
            }
        )
        assert spec.kind is FaultKind.LINK_LOSS
        assert spec.params["rate"] == 0.25
        again = FaultSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_unknown_kind_rejected(self):
        with pytest.raises(ScenarioError):
            FaultSpec.from_dict(
                {"kind": "gamma-ray", "at": 0.1, "target": ["a"]}
            )


class TestScenarioParsing:
    def test_minimal_document(self):
        scenario = Scenario.from_dict(_minimal())
        assert scenario.control == "ldp"
        assert scenario.duration == 1.0
        topo, roles = scenario.build_topology()
        assert set(roles) == {"ler-a", "ler-b"}
        assert "lsr-1" in topo.nodes

    def test_bad_json_rejected(self):
        with pytest.raises(ScenarioError):
            Scenario.from_json("{not json")

    def test_needs_traffic(self):
        with pytest.raises(ScenarioError):
            Scenario.from_dict(_minimal(traffic=[]))

    def test_frr_needs_protection(self):
        with pytest.raises(ScenarioError):
            Scenario.from_dict(_minimal(control="frr"))

    def test_unknown_control_rejected(self):
        with pytest.raises(ScenarioError):
            Scenario.from_dict(_minimal(control="ospf"))

    def test_unknown_topology_kind_rejected(self):
        scenario = Scenario.from_dict(
            _minimal(topology={"kind": "hypercube"})
        )
        with pytest.raises(ScenarioError):
            scenario.build_topology()

    def test_edge_must_exist(self):
        scenario = Scenario.from_dict(_minimal(edges=["nope"]))
        with pytest.raises(ScenarioError):
            scenario.build_topology()

    def test_ring_edges_default_to_traffic_endpoints(self):
        doc = _minimal(topology={"kind": "ring", "n": 4})
        doc["traffic"][0]["ingress"] = "n0"
        doc["traffic"][0]["egress"] = "n2"
        scenario = Scenario.from_dict(doc)
        _, roles = scenario.build_topology()
        assert set(roles) == {"n0", "n2"}

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "scn.json"
        path.write_text(json.dumps(_minimal()))
        assert Scenario.load(str(path)).name == "t"


class TestFlapExpansion:
    def test_flap_becomes_down_up_cycles(self):
        doc = _minimal(
            faults=[
                {
                    "at": 0.1,
                    "kind": "link-flap",
                    "target": ["lsr-1", "lsr-2"],
                    "flaps": 3,
                    "period": 0.05,
                }
            ]
        )
        schedule = Scenario.from_dict(doc).materialize(seed=0)
        assert len(schedule) == 3
        assert all(s.kind is FaultKind.LINK_DOWN for s in schedule)
        assert [s.at for s in schedule] == [0.1, 0.15, 0.2]
        for s in schedule:
            assert s.heal_at == pytest.approx(s.at + 0.025)


class TestRandomSchedule:
    def _scenario(self, count=8, seed_window=(0.1, 0.8)):
        return Scenario.from_dict(
            _minimal(
                duration=1.0,
                random_faults={
                    "count": count,
                    "kinds": ["link-down", "link-loss"],
                    "window": list(seed_window),
                    "mean_outage": 0.05,
                },
            )
        )

    def test_same_seed_same_schedule(self):
        scenario = self._scenario()
        assert scenario.materialize(7) == scenario.materialize(7)

    def test_different_seeds_differ(self):
        scenario = self._scenario()
        schedules = {
            tuple(
                (s.kind, s.at, s.target) for s in scenario.materialize(seed)
            )
            for seed in range(5)
        }
        assert len(schedules) == 5, "five seeds produced colliding schedules"

    def test_no_overlapping_outages_per_target(self):
        scenario = self._scenario(count=12)
        for seed in (1, 2, 3):
            by_target = {}
            for spec in scenario.materialize(seed):
                by_target.setdefault(spec.target, []).append(
                    (spec.at, spec.heal_at)
                )
            for intervals in by_target.values():
                intervals.sort()
                for (_, h1), (a2, _) in zip(intervals, intervals[1:]):
                    assert a2 >= h1

    def test_targets_are_real_links(self):
        scenario = self._scenario()
        topo, _ = scenario.build_topology()
        for spec in scenario.materialize(3):
            a, b = spec.target
            assert topo.has_link(a, b)

    def test_random_spec_validation(self):
        with pytest.raises(ScenarioError):
            RandomFaultSpec.from_dict({"window": [0.5, 0.5]})
