"""FRR path protection under injected link failures.

The documented switchover budget (docs/fault_injection.md): failure
detection (1 ms loss-of-light stand-in) plus one FTN rewrite, which at
the paper's 50 MHz clock must complete within 100,000 cycles.  The
switchover itself is a single ingress FTN write, so the measured
latency is dominated by -- and equal to -- the detection delay.
"""

from pathlib import Path

import pytest

from repro.core.device import STRATIX_EP1S40
from repro.faults import FaultKind, FaultSpec, Scenario
from repro.faults.chaos import build_run, run_scenario

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

#: documented switchover budget in 50 MHz cycles (2 ms)
SWITCHOVER_BUDGET_CYCLES = 100_000

DETECTION = 1e-3


def _frr_scenario(**overrides):
    doc = {
        "name": "frr-test",
        "topology": {"kind": "paper_figure1",
                     "bandwidth_bps": 10e6, "delay_s": 1e-3},
        "control": "frr",
        "duration": 1.0,
        "detection_delay_s": DETECTION,
        "traffic": [
            {"ingress": "ler-a", "egress": "ler-b",
             "prefix": "10.2.0.0/16",
             "src": "10.1.0.5", "dst": "10.2.0.9",
             "rate_bps": 2e6, "packet_size": 500}
        ],
        "protection": [
            {"name": "p1", "ingress": "ler-a", "egress": "ler-b",
             "prefix": "10.2.0.0/16"}
        ],
    }
    doc.update(overrides)
    return Scenario.from_dict(doc)


def _primary_core_link(run):
    """The first core link of the protected primary path."""
    protected = run.frr.protected["p1"]
    return tuple(protected.primary.path[1:3])


class TestSwitchoverUnderInjection:
    def _run_with_failure(self):
        run = build_run(_frr_scenario(), seed=7)
        a, b = _primary_core_link(run)
        run.injector.schedule_fault(
            FaultSpec(
                kind=FaultKind.LINK_DOWN, at=0.3,
                target=(a, b), heal_at=0.7,
            )
        )
        run.network.run(until=1.0)
        return run

    def test_backup_within_cycle_budget(self):
        run = self._run_with_failure()
        assert run.frr.switchovers == 1
        assert len(run.injector.switchovers) == 1
        switchover = run.injector.switchovers[0]
        assert switchover.paths == ["p1"]
        assert switchover.latency_s == pytest.approx(DETECTION)
        cycles = int(round(
            switchover.latency_s * STRATIX_EP1S40.clock_hz
        ))
        assert cycles <= SWITCHOVER_BUDGET_CYCLES, (
            f"switchover took {cycles} cycles; "
            f"budget is {SWITCHOVER_BUDGET_CYCLES}"
        )

    def test_traffic_rides_backup_during_outage(self):
        run = self._run_with_failure()
        network = run.network
        # only the detection window loses packets; everything sent
        # while riding the backup is delivered
        outage_drops = [
            d for d in network.drops if 0.3 <= d.time <= 0.3 + 5 * DETECTION
        ]
        late_drops = [d for d in network.drops if d.time > 0.3 + 5 * DETECTION]
        assert late_drops == [], "drops continued after the switchover"
        assert len(outage_drops) <= 5
        sent = run.sources[0].sent
        assert network.delivered_count() >= sent - len(outage_drops) - 5

    def test_revert_restores_primary_on_heal(self):
        run = self._run_with_failure()
        protected = run.frr.protected["p1"]
        assert protected.active == "primary", (
            "heal detection must revert the protected path"
        )
        assert run.injector.reverts, "no revert was recorded"
        revert_time, name = run.injector.reverts[0]
        assert name == "p1"
        assert revert_time == pytest.approx(0.7 + DETECTION)
        # the ingress pushes the primary's first label again
        ingress = run.network.nodes["ler-a"]
        from repro.net.packet import IPv4Packet

        _, nhlfe = ingress.ftn.lookup(
            IPv4Packet(src="10.1.0.5", dst="10.2.0.9")
        )
        assert nhlfe.out_label == protected.primary.hop_labels[0]

    def test_backup_failure_while_active_switches_back_on_heal(self):
        """Kill the primary, then the backup too: the FEC is stranded
        until the primary heals, at which point recovery steers back."""
        run = build_run(_frr_scenario(duration=1.4), seed=3)
        protected = run.frr.protected["p1"]
        pa, pb = _primary_core_link(run)
        # the backup's first core link
        ba, bb = tuple(protected.backup.path[1:3])
        run.injector.schedule_fault(
            FaultSpec(kind=FaultKind.LINK_DOWN, at=0.3,
                      target=(pa, pb), heal_at=0.9)
        )
        run.injector.schedule_fault(
            FaultSpec(kind=FaultKind.LINK_DOWN, at=0.5,
                      target=(ba, bb), heal_at=1.2)
        )
        run.network.run(until=1.4)
        # primary healed first while the backup was dead: FRR must have
        # steered the FEC back onto the primary
        assert protected.active == "primary"
        late = [d for d in run.network.deliveries if d.time > 0.95]
        assert late, "traffic never recovered after the primary healed"


class TestScenarioLevel:
    def test_bundled_frr_scenario_report(self):
        report = run_scenario(
            Scenario.load(str(EXAMPLES / "chaos_frr.json")), seed=7
        )
        frr = report["frr"]
        assert frr["switchovers"] == 1
        assert frr["reverts"] == 1
        assert frr["switchover_latency_cycles"][0] <= SWITCHOVER_BUDGET_CYCLES
        assert report["traffic"]["availability"] > 0.98
