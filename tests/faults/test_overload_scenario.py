"""End-to-end tests of the ``overload`` scenario key and the
``signaling-storm`` fault."""

import copy

import pytest

from repro.faults import Scenario, ScenarioError, run_scenario
from repro.faults.scenario import FaultKind
from repro.obs import telemetry_session

STORM = {
    "name": "storm-test",
    "topology": {"kind": "ring", "n": 4,
                 "bandwidth_bps": 10e6, "delay_s": 1e-3},
    "edges": ["n0", "n2"],
    "control": "ldp-messages",
    "duration": 1.5,
    "traffic": [
        {"ingress": "n0", "egress": "n2", "prefix": "10.2.0.0/16",
         "src": "10.0.0.5", "dst": "10.2.0.9",
         "rate_bps": 1e6, "packet_size": 500, "start": 0.1, "cos": 0},
        {"ingress": "n0", "egress": "n2", "prefix": "10.5.0.0/16",
         "src": "10.0.0.6", "dst": "10.5.0.9",
         "rate_bps": 1e6, "packet_size": 500, "start": 0.1, "cos": 5},
    ],
    "faults": [
        {"at": 0.2, "kind": "signaling-storm", "target": ["n0"],
         "heal_at": 0.7, "mappings": 2000, "hellos": 100},
        {"at": 0.2, "kind": "signaling-storm", "target": ["n2"],
         "heal_at": 0.7, "mappings": 2000, "hellos": 100},
    ],
    "overload": {"enabled": True},
}


def _run(overrides=None, seed=7):
    raw = copy.deepcopy(STORM)
    if overrides:
        raw.update(overrides)
    with telemetry_session():
        return run_scenario(Scenario.from_dict(raw), seed=seed)


class TestScenarioParsing:
    def test_overload_key_parses(self):
        scenario = Scenario.from_dict(STORM)
        assert scenario.overload == {"enabled": True}
        assert scenario.faults[0].kind is FaultKind.SIGNALING_STORM
        assert scenario.traffic[0].cos == 0
        assert scenario.traffic[1].cos == 5

    def test_cos_defaults_to_zero(self):
        raw = copy.deepcopy(STORM)
        del raw["traffic"][1]["cos"]
        assert Scenario.from_dict(raw).traffic[1].cos == 0

    def test_storm_needs_a_message_control_plane(self):
        raw = copy.deepcopy(STORM)
        raw["control"] = "ldp"
        with pytest.raises(ScenarioError, match="signaling-storm"):
            with telemetry_session():
                run_scenario(Scenario.from_dict(raw), seed=7)

    def test_bad_overload_key_rejected(self):
        with pytest.raises(ValueError, match="unknown overload key"):
            _run({"overload": {"enabled": True, "oops": 1}})


class TestProtectionOutcome:
    def test_unprotected_storm_drops_every_session(self):
        report = _run({"overload": {"enabled": False}})
        overload = report["overload"]
        assert overload["enabled"] is False
        assert overload["sessions"]["lost"] == overload["sessions"]["links"]
        assert overload["holds_expired"] == overload["sessions"]["links"]
        # the FIFO queue starved liveness traffic to serve the flood
        assert overload["queues"]["dropped_by_class"]["liveness"] > 0
        # ...but reconnect backoff repairs everything after the storm
        assert (
            overload["sessions"]["up_at_end"]
            == overload["sessions"]["links"]
        )

    def test_protected_storm_keeps_every_session_up(self):
        report = _run()
        overload = report["overload"]
        assert overload["enabled"] is True
        assert overload["sessions"]["lost"] == 0
        assert overload["holds_expired"] == 0
        assert (
            overload["sessions"]["up_at_end"]
            == overload["sessions"]["links"]
        )
        # protection = shedding bulk, visibly accounted
        assert overload["queues"]["shed_by_class"]["setup"] > 0
        assert overload["queues"]["dropped_by_class"]["liveness"] == 0

    def test_protected_availability_beats_unprotected(self):
        on = _run()["traffic"]["availability"]
        off = _run({"overload": {"enabled": False}})["traffic"][
            "availability"
        ]
        assert on > off

    def test_only_the_lowest_cos_fec_sheds(self):
        shedding = _run()["overload"]["shedding"]
        shed_prefixes = {e["prefix"] for e in shedding["shed_events"]}
        assert shed_prefixes == {"10.2.0.0/16"}  # cos 0, never cos 5
        assert all(e["cos"] == 0 for e in shedding["shed_events"])
        # hysteretic recovery restored it before the horizon
        assert all(
            not e["shed_at_end"] for e in shedding["fecs"]
        )
        assert shedding["recovery_time_s"] is not None
        assert shedding["packets_shed"] > 0

    def test_storm_faults_recover(self):
        report = _run({"overload": {"enabled": False}})
        for fault in report["faults"]:
            assert fault["kind"] == "signaling-storm"
            assert not fault["skipped"]
            assert fault["recovered_at"] is not None
            assert fault["mttr_s"] > 0


class TestReportStability:
    def test_report_is_byte_stable(self):
        assert _run().to_json() == _run().to_json()
        off = {"overload": {"enabled": False}}
        assert _run(off).to_json() == _run(off).to_json()

    def test_different_seeds_differ(self):
        assert _run(seed=7).to_json() != _run(seed=8).to_json()

    def test_report_without_overload_key_lacks_the_section(self):
        raw = copy.deepcopy(STORM)
        raw["overload"] = None
        raw["faults"] = []  # a storm against a legacy control plane
        with telemetry_session():
            report = run_scenario(Scenario.from_dict(raw), seed=7)
        assert "overload" not in report.data
