"""FaultInjector unit behaviour, one fault kind at a time."""

import pytest

from repro.control.ldp import LDPProcess
from repro.faults import FaultKind, FaultSpec, Scenario, ScenarioError
from repro.faults.chaos import build_run, run_scenario
from repro.faults.injector import FaultInjector
from repro.mpls.fec import PrefixFEC
from repro.mpls.router import RouterRole
from repro.net.network import MPLSNetwork
from repro.net.topology import paper_figure1
from repro.net.traffic import CBRSource


def _network():
    topology = paper_figure1(bandwidth_bps=10e6, delay_s=1e-3)
    network = MPLSNetwork(
        topology,
        roles={"ler-a": RouterRole.LER, "ler-b": RouterRole.LER},
    )
    network.attach_host("ler-b", "10.2.0.0/16")
    ldp = LDPProcess(topology, network.nodes)
    ldp.establish_fec(PrefixFEC("10.2.0.0/16"), egress="ler-b")
    return network, ldp


def _flow(network, rate_bps=2e6, stop=1.0):
    source = CBRSource(
        network.scheduler,
        network.source_sink("ler-a"),
        src="10.1.0.5",
        dst="10.2.0.9",
        rate_bps=rate_bps,
        packet_size=500,
        stop=stop,
    )
    source.begin()
    return source


class TestLinkDown:
    def test_outage_and_reconvergence(self):
        network, ldp = _network()
        source = _flow(network)
        injector = FaultInjector(network, ldp=ldp, detection_delay_s=1e-3)
        record = injector.schedule_fault(
            FaultSpec(
                kind=FaultKind.LINK_DOWN,
                at=0.3,
                target=("lsr-1", "lsr-2"),
                heal_at=0.6,
            )
        )
        network.run(until=1.0)
        # the alternate path through lsr-3 carries traffic during the
        # outage: nearly everything is delivered
        assert network.delivered_count() >= source.sent - 10
        assert record.healed_at == pytest.approx(0.6)
        assert record.recovered_at == pytest.approx(0.601)
        assert record.mttr == pytest.approx(0.301)
        assert injector.link_was_up("lsr-1", "lsr-2", 0.2)
        assert not injector.link_was_up("lsr-1", "lsr-2", 0.45)
        assert injector.link_was_up("lsr-1", "lsr-2", 0.7)

    def test_double_injection_skips(self):
        network, ldp = _network()
        injector = FaultInjector(network, ldp=ldp)
        injector.schedule_fault(
            FaultSpec(
                kind=FaultKind.LINK_DOWN, at=0.1,
                target=("lsr-1", "lsr-2"), heal_at=0.5,
            )
        )
        second = injector.schedule_fault(
            FaultSpec(
                kind=FaultKind.LINK_DOWN, at=0.2,
                target=("lsr-1", "lsr-2"), heal_at=0.3,
            )
        )
        network.run(until=1.0)
        assert second.skipped
        # the first fault's heal still restored the link
        assert network.link_is_up("lsr-1", "lsr-2")


class TestLinkLossAndCorruption:
    def test_loss_window_loses_packets(self):
        network, ldp = _network()
        source = _flow(network)
        injector = FaultInjector(network, ldp=ldp)
        injector.schedule_fault(
            FaultSpec(
                kind=FaultKind.LINK_LOSS, at=0.2,
                target=("ler-a", "lsr-1"), heal_at=0.6,
                params={"rate": 0.5},
            )
        )
        network.run(until=1.0)
        lost = source.sent - network.delivered_count()
        assert lost > 10
        # healed: the channel's loss rate is back to zero
        assert network.link("ler-a", "lsr-1").forward.loss_rate == 0.0

    def test_corruption_flips_labels(self):
        network, ldp = _network()
        source = _flow(network)
        injector = FaultInjector(network, ldp=ldp, seed=3)
        injector.schedule_fault(
            FaultSpec(
                kind=FaultKind.LINK_CORRUPT, at=0.1,
                target=("ler-a", "lsr-1"), heal_at=0.9,
                params={"rate": 0.4},
            )
        )
        # run past the source's stop so in-flight packets drain and
        # the conservation check below is exact
        network.run(until=1.2)
        assert injector.corrupted_packets > 5
        # a corrupted label misses the ILM and is discarded there
        ilm_misses = [
            d for d in network.drops if "no ILM entry" in d.reason
        ]
        assert ilm_misses, "corrupted labels should miss the ILM"
        assert (
            network.delivered_count()
            + len(network.drops)
            + sum(
                ch.lost
                for link in network.links.values()
                for ch in (link.forward, link.reverse)
            )
            == source.sent
        )


class TestNodeCrash:
    def test_crash_restart_reprograms_cold_tables(self):
        network, ldp = _network()
        source = _flow(network)
        injector = FaultInjector(network, ldp=ldp)
        injector.schedule_fault(
            FaultSpec(
                kind=FaultKind.NODE_CRASH, at=0.3,
                target=("lsr-1",), heal_at=0.6,
            )
        )
        network.run(until=1.0)
        # lsr-1 cuts ler-a off entirely (it is the single attachment
        # point), so the outage is a hard partition...
        assert not injector.node_was_up("lsr-1", 0.4)
        during = [d for d in network.drops if 0.302 < d.time < 0.6]
        assert during, "packets during the crash must be dropped"
        # ...but after restart + reconvergence traffic flows again
        late = [d for d in network.deliveries if d.time > 0.65]
        assert late, "no deliveries after the node restarted"
        assert len(network.nodes["lsr-1"].ilm) > 0, (
            "reconvergence must re-program the cold-restarted tables"
        )
        assert network.delivered_count() < source.sent

    def test_down_node_drops_in_flight(self):
        network, ldp = _network()
        injector = FaultInjector(network, ldp=ldp)
        injector.schedule_fault(
            FaultSpec(kind=FaultKind.NODE_CRASH, at=0.0, target=("lsr-1",))
        )
        _flow(network, stop=0.2)
        network.run(until=0.5)
        assert network.delivered_count() == 0


class TestValidation:
    def test_unknown_target_rejected(self):
        network, ldp = _network()
        injector = FaultInjector(network, ldp=ldp)
        scenario = Scenario.from_dict(
            {
                "name": "bad",
                "topology": {"kind": "paper_figure1"},
                "traffic": [
                    {"ingress": "ler-a", "egress": "ler-b",
                     "prefix": "10.2.0.0/16",
                     "src": "10.1.0.5", "dst": "10.2.0.9"}
                ],
                "faults": [
                    {"at": 0.1, "kind": "node-crash", "target": "nope"}
                ],
            }
        )
        with pytest.raises(ScenarioError):
            injector.apply(scenario)

    def test_session_drop_needs_message_ldp(self):
        network, ldp = _network()
        injector = FaultInjector(network, ldp=ldp)
        scenario = Scenario.from_dict(
            {
                "name": "bad",
                "topology": {"kind": "paper_figure1"},
                "traffic": [
                    {"ingress": "ler-a", "egress": "ler-b",
                     "prefix": "10.2.0.0/16",
                     "src": "10.1.0.5", "dst": "10.2.0.9"}
                ],
                "faults": [
                    {"at": 0.1, "kind": "ldp-session-drop",
                     "target": ["lsr-1", "lsr-2"]}
                ],
            }
        )
        with pytest.raises(ScenarioError):
            injector.apply(scenario)

    def test_bitflip_needs_hardware_node(self):
        network, ldp = _network()
        injector = FaultInjector(network, ldp=ldp)
        scenario = Scenario.from_dict(
            {
                "name": "bad",
                "topology": {"kind": "paper_figure1"},
                "traffic": [
                    {"ingress": "ler-a", "egress": "ler-b",
                     "prefix": "10.2.0.0/16",
                     "src": "10.1.0.5", "dst": "10.2.0.9"}
                ],
                "faults": [
                    {"at": 0.1, "kind": "ib-bitflip", "target": "lsr-1"}
                ],
            }
        )
        with pytest.raises(ScenarioError):
            injector.apply(scenario)


class TestBitflipScrub:
    def test_flip_detected_and_repaired(self):
        scenario = Scenario.from_dict(
            {
                "name": "scrub",
                "topology": {"kind": "paper_figure1",
                             "bandwidth_bps": 10e6, "delay_s": 1e-3},
                "hardware": True,
                "duration": 0.6,
                "traffic": [
                    {"ingress": "ler-a", "egress": "ler-b",
                     "prefix": "10.2.0.0/16",
                     "src": "10.1.0.5", "dst": "10.2.0.9",
                     "rate_bps": 1e6, "packet_size": 500}
                ],
                "faults": [
                    {"at": 0.2, "kind": "ib-bitflip", "target": "lsr-1",
                     "level": 2, "heal_at": 0.3}
                ],
            }
        )
        report = run_scenario(scenario, seed=5)
        scrub = report["scrub"]
        assert scrub["corrupted"] >= 1
        assert scrub["repaired"] >= 1
        assert scrub["clean"] is True
        assert scrub["cycles"] > 0
        # forwarding still healthy at the end of the run
        assert report["traffic"]["availability"] > 0.9

    def test_scrub_restores_forwarding_equivalence(self):
        run = build_run(
            Scenario.from_dict(
                {
                    "name": "scrub2",
                    "topology": {"kind": "paper_figure1",
                                 "bandwidth_bps": 10e6, "delay_s": 1e-3},
                    "hardware": True,
                    "duration": 0.5,
                    "traffic": [
                        {"ingress": "ler-a", "egress": "ler-b",
                         "prefix": "10.2.0.0/16",
                         "src": "10.1.0.5", "dst": "10.2.0.9",
                         "rate_bps": 1e6, "packet_size": 500}
                    ],
                    "faults": [
                        {"at": 0.2, "kind": "ib-bitflip",
                         "target": "lsr-1", "level": 2, "heal_at": 0.3}
                    ],
                }
            ),
            seed=11,
        )
        run.network.run(until=0.5)
        node = run.network.nodes["lsr-1"]
        # after the scrub the hardware mirror matches the control
        # plane's expectation exactly
        for level in (1, 2, 3):
            expected = sorted(node._expected_pairs(level))
            stored = sorted(node.modifier.ib_pairs(level))
            assert stored == expected
