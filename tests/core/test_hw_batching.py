"""Tests for the hardware node's batched-mode memo.

The memo replays complete forwarding outcomes -- decision, exact
hardware cycle deltas, LRU touches -- and is invalidated by any write
to the information base (the modifier's ``state_version``), including
corruption and scrub repairs, because search cycle counts depend on
pair *positions*.
"""

import pytest

from repro.core.hwnode import HardwareLSRNode
from repro.mpls.forwarding import Action
from repro.mpls.label import LabelEntry, LabelOp
from repro.mpls.nhlfe import NHLFE
from repro.mpls.router import RouterRole
from repro.mpls.stack import LabelStack
from repro.net.packet import IPv4Packet, MPLSPacket


def ip_pkt(dst="10.2.0.9", ttl=64, dscp=0, seq=0):
    return IPv4Packet(src="10.1.0.5", dst=dst, ttl=ttl, dscp=dscp, seq=seq)


def labelled(label, ttl=20, seq=0):
    return MPLSPacket(
        LabelStack([LabelEntry(label=label, ttl=ttl)]), ip_pkt(seq=seq)
    )


def _transit_node(batching=True):
    node = HardwareLSRNode("lsr-1", RouterRole.LSR, ib_depth=64)
    node.ilm.install(
        100, NHLFE(op=LabelOp.SWAP, out_label=200, next_hop="lsr-2")
    )
    node.ilm.install(300, NHLFE(op=LabelOp.POP, next_hop="ler-b"))
    if batching:
        node.enable_batching()
    return node


def _ingress_node(batching=True, ib_depth=64):
    from repro.mpls.fec import PrefixFEC

    node = HardwareLSRNode("ler-a", RouterRole.LER, ib_depth=ib_depth)
    node.ftn.install(
        PrefixFEC("10.2.0.0/16"),
        NHLFE(op=LabelOp.PUSH, out_label=100, next_hop="lsr-1"),
    )
    if batching:
        node.enable_batching()
    return node


class TestMemoEquivalence:
    def test_memoized_run_matches_scalar_exactly(self):
        """N packets through the memo produce the same decisions and
        the same cumulative cycle counters as N scalar packets."""
        scalar = _transit_node(batching=False)
        batched = _transit_node(batching=True)
        for i in range(6):
            p_s, p_b = labelled(100, seq=i), labelled(100, seq=i)
            d_s = scalar.receive(p_s)
            d_b = batched.receive(p_b)
            assert d_b.action is d_s.action
            assert d_b.packet.stack == d_s.packet.stack
            # replay preserves each packet's own identity
            assert d_b.packet.inner.uid == p_b.inner.uid
            assert d_s.packet.inner.uid == p_s.inner.uid
            assert d_b.next_hop == d_s.next_hop
        assert batched.hw_data_cycles == scalar.hw_data_cycles
        assert batched.fast_path_packets == scalar.fast_path_packets
        assert (
            batched.modifier.total_cycles == scalar.modifier.total_cycles
        )
        assert batched.hw_memo_hits == 5

    def test_discard_outcomes_are_memoized_too(self):
        scalar = _transit_node(batching=False)
        batched = _transit_node(batching=True)
        for i in range(4):
            d_s = scalar.receive(labelled(42, seq=i))  # no ILM entry
            d_b = batched.receive(labelled(42, seq=i))
            assert d_b.action is d_s.action is Action.DISCARD
            assert d_b.reason == d_s.reason
        assert batched.hw_data_cycles == scalar.hw_data_cycles
        assert batched.hw_memo_hits == 3

    def test_ingress_fast_path_is_memoized_after_install(self):
        scalar = _ingress_node(batching=False)
        batched = _ingress_node(batching=True)
        for i in range(5):
            d_s = scalar.receive(ip_pkt(seq=i))
            d_b = batched.receive(ip_pkt(seq=i))
            assert d_b.action is d_s.action is Action.FORWARD_MPLS
            assert d_b.packet.stack == d_s.packet.stack
        assert batched.hw_data_cycles == scalar.hw_data_cycles
        assert batched.slow_path_packets == scalar.slow_path_packets == 1
        assert batched.fast_path_packets == scalar.fast_path_packets == 4
        # packet 1 installed the level-1 pair (a write: not memoizable),
        # packet 2 filled the memo, packets 3-5 replayed it
        assert batched.hw_memo_hits == 3


class TestMemoInvalidation:
    def test_ilm_install_flushes_memo(self):
        node = _transit_node()
        node.receive(labelled(100, seq=0))
        node.receive(labelled(100, seq=1))
        assert node.hw_memo_hits == 1
        node.ilm.install(
            100, NHLFE(op=LabelOp.SWAP, out_label=999, next_hop="lsr-9")
        )
        decision = node.receive(labelled(100, seq=2))
        assert decision.packet.stack.top.label == 999
        assert node.hw_memo_invalidations >= 1

    def test_corruption_flushes_memo_via_state_version(self):
        """An SEU flip changes what a search returns without touching
        the ILM generation; the modifier's state_version must catch it."""
        node = _transit_node()
        node.receive(labelled(100, seq=0))
        node.receive(labelled(100, seq=1))
        version_before = node.modifier.state_version
        assert node.modifier.corrupt_pair(1, 0, label_xor=0xFF)
        assert node.modifier.state_version > version_before
        node.receive(labelled(100, seq=2))
        assert node.hw_memo_invalidations >= 1

    def test_scrub_repair_flushes_memo(self):
        """A scrub that repairs a corrupted pair writes the info base;
        the memo must not replay decisions from before the repair."""
        node = _transit_node()
        d_good = node.receive(labelled(100, seq=0))
        node.receive(labelled(100, seq=1))
        node.modifier.corrupt_pair(1, 0, label_xor=0x3FF)
        reports = node.scrub_info_base()
        assert sum(r.repaired for r in reports) > 0
        decision = node.receive(labelled(100, seq=2))
        # post-repair behavior equals the original good decision
        assert decision.action is d_good.action
        assert decision.packet.stack == d_good.packet.stack

    def test_flow_cache_eviction_flushes_memo(self):
        """A level-1 eviction (remove_pair + write_pair) moves pair
        positions; memoized search cycles would be wrong."""
        node = _ingress_node(ib_depth=2)
        # ib_depth 2, no mirrored ILM entries -> flow cache capacity 2
        node.receive(ip_pkt(dst="10.2.0.1", seq=0))
        node.receive(ip_pkt(dst="10.2.0.1", seq=1))  # fills memo
        node.receive(ip_pkt(dst="10.2.0.1", seq=2))  # memo hit
        hits_before = node.hw_memo_hits
        node.receive(ip_pkt(dst="10.2.0.2", seq=3))
        node.receive(ip_pkt(dst="10.2.0.3", seq=4))  # evicts 10.2.0.1
        assert node.flow_cache_evictions == 1
        node.receive(ip_pkt(dst="10.2.0.3", seq=5))
        assert node.hw_memo_invalidations >= 1
        assert node.hw_memo_hits >= hits_before

    def test_replay_touches_the_level1_lru(self):
        """Memo hits must refresh the destination's LRU slot exactly as
        scalar fast-path hits do, or eviction order diverges."""
        node = _ingress_node(ib_depth=2)
        node.receive(ip_pkt(dst="10.2.0.1", seq=0))
        node.receive(ip_pkt(dst="10.2.0.2", seq=1))
        # both installed; now hit .1 repeatedly through the memo
        node.receive(ip_pkt(dst="10.2.0.1", seq=2))
        node.receive(ip_pkt(dst="10.2.0.1", seq=3))
        assert list(node._flow_cache) == [
            ip_pkt(dst="10.2.0.2").identifier(),
            ip_pkt(dst="10.2.0.1").identifier(),
        ]
        # the next eviction takes .2 (the LRU), not .1
        node.receive(ip_pkt(dst="10.2.0.3", seq=4))
        assert ip_pkt(dst="10.2.0.1").identifier() in node._flow_cache
        assert (
            ip_pkt(dst="10.2.0.2").identifier() not in node._flow_cache
        )


class TestAggregates:
    def test_aggregate_processing_matches_scalar_loop(self):
        from repro.net.aggregate import FlowAggregate

        scalar = _transit_node(batching=False)
        batched = _transit_node(batching=True)
        for i in range(10):
            scalar.receive(labelled(100, seq=i))
        batched.receive_aggregate(
            FlowAggregate(template=labelled(100), count=10)
        )
        assert batched.hw_data_cycles == scalar.hw_data_cycles
        assert batched.stats.received == scalar.stats.received
        assert (
            batched.stats.forwarded_mpls == scalar.stats.forwarded_mpls
        )
        assert (
            batched.modifier.total_cycles == scalar.modifier.total_cycles
        )

    def test_aggregates_need_batching(self):
        from repro.net.aggregate import FlowAggregate

        node = _transit_node(batching=False)
        with pytest.raises(RuntimeError):
            node.receive_aggregate(
                FlowAggregate(template=labelled(100), count=3)
            )


class TestDisable:
    def test_disable_batching_returns_to_scalar(self):
        node = _transit_node()
        node.receive(labelled(100, seq=0))
        node.receive(labelled(100, seq=1))
        assert node.hw_memo_hits == 1
        node.disable_batching()
        node.receive(labelled(100, seq=2))
        assert node.hw_memo_hits == 1  # no further memo traffic
        assert node._hw_memo is None
