"""Tests for level-1 flow-cache capacity management (LRU eviction via
the hardware remove path)."""


from repro.core.hwnode import HardwareLSRNode
from repro.mpls.fec import PrefixFEC
from repro.mpls.forwarding import Action
from repro.mpls.label import LabelOp
from repro.mpls.nhlfe import NHLFE
from repro.mpls.router import RouterRole
from repro.net.packet import IPv4Packet


def _ler(ib_depth=4):
    node = HardwareLSRNode("ler-a", RouterRole.LER, ib_depth=ib_depth)
    node.ftn.install(
        PrefixFEC("10.2.0.0/16"),
        NHLFE(op=LabelOp.PUSH, out_label=777, next_hop="lsr-1"),
    )
    return node


def pkt(last_octet):
    return IPv4Packet(src="10.1.0.5", dst=f"10.2.0.{last_octet}")


class TestFlowCacheEviction:
    def test_cache_never_exceeds_capacity(self):
        node = _ler(ib_depth=4)
        for i in range(10):
            decision = node.receive(pkt(i))
            assert decision.action is Action.FORWARD_MPLS
        assert node.modifier.ib_counts()[0] <= 4
        assert node.flow_cache_evictions == 6

    def test_evicted_destination_relearns(self):
        node = _ler(ib_depth=2)
        node.receive(pkt(1))
        node.receive(pkt(2))
        node.receive(pkt(3))  # evicts dst .1
        slow_before = node.slow_path_packets
        decision = node.receive(pkt(1))  # must relearn, not blackhole
        assert decision.action is Action.FORWARD_MPLS
        assert node.slow_path_packets == slow_before + 1

    def test_lru_order_recency_protects_hot_flows(self):
        node = _ler(ib_depth=2)
        node.receive(pkt(1))
        node.receive(pkt(2))
        node.receive(pkt(1))  # touch .1: now .2 is the LRU
        node.receive(pkt(3))  # evicts .2
        slow_before = node.slow_path_packets
        assert node.receive(pkt(1)).action is Action.FORWARD_MPLS
        assert node.slow_path_packets == slow_before  # .1 still cached
        node.receive(pkt(2))
        assert node.slow_path_packets == slow_before + 1  # .2 was evicted

    def test_no_blackhole_after_overflow(self):
        """The original bug: a full cache silently dropped the write
        but recorded the destination, blackholing every later packet."""
        node = _ler(ib_depth=2)
        deliveries = 0
        for i in range(20):
            decision = node.receive(pkt(i % 5))
            if decision.action is Action.FORWARD_MPLS:
                deliveries += 1
        assert deliveries == 20
        assert not node.modifier._levels[0].overflow

    def test_zero_capacity_falls_back_to_software(self):
        """ILM mirroring can consume all of level 1; ingress must then
        forward in software rather than thrash the cache."""
        node = _ler(ib_depth=3)
        # one ILM label mirrors into every level, eating the 3 slots
        for label in (100, 200, 300):
            node.ilm.install(
                label, NHLFE(op=LabelOp.SWAP, out_label=label + 1,
                             next_hop="x")
            )
        decision = node.receive(pkt(1))
        assert decision.action is Action.FORWARD_MPLS
        assert decision.packet.stack.top.label == 777
        assert node.flow_cache_evictions == 0
        assert len(node._flow_cache) == 0
