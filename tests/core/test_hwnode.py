"""Tests for the hardware-backed network node."""

import pytest

from repro.control.ldp import LDPProcess
from repro.core.hwnode import HardwareLSRNode
from repro.mpls.fec import PrefixFEC
from repro.mpls.forwarding import Action
from repro.mpls.label import LabelEntry, LabelOp
from repro.mpls.nhlfe import NHLFE
from repro.mpls.router import LSRNode, RouterRole
from repro.mpls.stack import LabelStack
from repro.net.network import MPLSNetwork
from repro.net.packet import IPv4Packet, MPLSPacket
from repro.net.topology import paper_figure1
from repro.net.traffic import CBRSource


def ip_pkt(dst="10.2.0.9", ttl=64, dscp=0):
    return IPv4Packet(src="10.1.0.5", dst=dst, ttl=ttl, dscp=dscp)


def labelled(label, ttl=20):
    return MPLSPacket(
        LabelStack([LabelEntry(label=label, ttl=ttl)]), ip_pkt()
    )


class TestHardwareTransit:
    def _node(self):
        node = HardwareLSRNode("lsr-1", RouterRole.LSR, ib_depth=64)
        node.ilm.install(
            100, NHLFE(op=LabelOp.SWAP, out_label=200, next_hop="lsr-2")
        )
        node.ilm.install(300, NHLFE(op=LabelOp.POP, next_hop="ler-b"))
        return node

    def test_swap_matches_software(self):
        hw = self._node()
        sw = LSRNode("lsr-1", RouterRole.LSR)
        sw.ilm.install(
            100, NHLFE(op=LabelOp.SWAP, out_label=200, next_hop="lsr-2")
        )
        d_hw = hw.receive(labelled(100))
        d_sw = sw.receive(labelled(100))
        assert d_hw.action == d_sw.action == Action.FORWARD_MPLS
        assert d_hw.packet.stack == d_sw.packet.stack
        assert d_hw.next_hop == d_sw.next_hop

    def test_cycles_counted(self):
        node = self._node()
        node.receive(labelled(100))
        # 3 (load) + 14 (update: hit at entry 0 + swap tail) + 3 (drain)
        assert node.hw_data_cycles == 20
        assert node.fast_path_packets == 1

    def test_lookup_miss_discards(self):
        node = self._node()
        decision = node.receive(labelled(42))
        assert decision.action is Action.DISCARD
        assert "no ILM" in decision.reason

    def test_ttl_expiry_discards(self):
        node = self._node()
        decision = node.receive(labelled(100, ttl=1))
        assert decision.action is Action.DISCARD
        assert "TTL" in decision.reason

    def test_php_pop_forwards_ip(self):
        node = self._node()
        decision = node.receive(labelled(300, ttl=10))
        assert decision.action is Action.FORWARD_IP
        assert decision.packet.ttl == 9
        assert decision.next_hop == "ler-b"

    def test_ib_resync_on_table_change(self):
        node = self._node()
        node.receive(labelled(100))
        ctrl_before = node.hw_control_cycles
        node.ilm.install(
            400, NHLFE(op=LabelOp.SWAP, out_label=500, next_hop="x")
        )
        node.receive(labelled(400))
        assert node.hw_control_cycles > ctrl_before

    def test_unlabelled_at_core_discarded(self):
        node = self._node()
        decision = node.receive(ip_pkt())
        assert decision.action is Action.DISCARD


class TestHardwareIngress:
    def _ler(self):
        node = HardwareLSRNode("ler-a", RouterRole.LER, ib_depth=64)
        node.ftn.install(
            PrefixFEC("10.2.0.0/16"),
            NHLFE(op=LabelOp.PUSH, out_label=777, next_hop="lsr-1"),
        )
        return node

    def test_first_packet_takes_slow_path(self):
        node = self._ler()
        decision = node.receive(ip_pkt())
        assert decision.action is Action.FORWARD_MPLS
        assert decision.packet.stack.top.label == 777
        assert node.slow_path_packets == 1
        assert node.fast_path_packets == 0

    def test_flow_cache_hits_on_repeat(self):
        node = self._ler()
        node.receive(ip_pkt())
        node.receive(ip_pkt())
        node.receive(ip_pkt())
        assert node.slow_path_packets == 1
        assert node.fast_path_packets == 2

    def test_distinct_destinations_each_learn_once(self):
        node = self._ler()
        for dst in ("10.2.0.1", "10.2.0.2", "10.2.0.1"):
            node.receive(ip_pkt(dst=dst))
        assert node.slow_path_packets == 2
        assert node.fast_path_packets == 1

    def test_ingress_matches_software(self):
        hw = self._ler()
        sw = LSRNode("ler-a", RouterRole.LER)
        sw.ftn.install(
            PrefixFEC("10.2.0.0/16"),
            NHLFE(op=LabelOp.PUSH, out_label=777, next_hop="lsr-1"),
        )
        d_hw = hw.receive(ip_pkt(ttl=50, dscp=46))
        d_sw = sw.receive(ip_pkt(ttl=50, dscp=46))
        assert d_hw.packet.stack == d_sw.packet.stack
        assert d_hw.packet.inner.ttl == d_sw.packet.inner.ttl

    def test_no_route_discards(self):
        node = self._ler()
        decision = node.receive(ip_pkt(dst="99.0.0.1"))
        assert decision.action is Action.DISCARD
        assert "no FEC" in decision.reason

    def test_ttl_expiry(self):
        node = self._ler()
        decision = node.receive(ip_pkt(ttl=1))
        assert decision.action is Action.DISCARD


class TestHardwareNetworkEquivalence:
    def _run(self, node_factory):
        topo = paper_figure1(bandwidth_bps=10e6, delay_s=1e-3)
        roles = {"ler-a": RouterRole.LER, "ler-b": RouterRole.LER}
        kwargs = {"node_factory": node_factory} if node_factory else {}
        net = MPLSNetwork(topo, roles, **kwargs)
        net.attach_host("ler-b", "10.2.0.0/16")
        LDPProcess(topo, net.nodes).establish_fec(
            PrefixFEC("10.2.0.0/16"), egress="ler-b"
        )
        src = CBRSource(net.scheduler, net.source_sink("ler-a"),
                        src="10.1.0.5", dst="10.2.0.9", rate_bps=1e6,
                        packet_size=500, stop=0.2, seed=1)
        src.begin()
        net.run(until=1.0)
        return net, src

    def test_same_deliveries_and_latencies(self):
        sw_net, sw_src = self._run(None)
        hw_net, hw_src = self._run(HardwareLSRNode)
        assert sw_src.sent == hw_src.sent
        assert sw_net.delivered_count() == hw_net.delivered_count()
        assert sw_net.latencies() == pytest.approx(hw_net.latencies())

    def test_cycle_accounting_accumulates(self):
        hw_net, hw_src = self._run(HardwareLSRNode)
        lsr = hw_net.nodes["lsr-1"]
        assert lsr.hw_data_cycles > 0
        assert lsr.mean_hw_cycles_per_packet == pytest.approx(20.0)
