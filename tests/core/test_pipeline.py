"""Tests for the pipelined-architecture model."""

import pytest

from repro.core.pipeline import compare_pipeline, pipeline_point


class TestPipelinePoint:
    def test_stage_costs(self):
        p = pipeline_point(1)
        # ingress 4, modifier 14 (search hit-free worst: 3*1+5+6), egress 4
        assert p.stage_cycles == (4, 14, 4)
        assert p.sequential_cycles_per_packet == 22
        assert p.pipelined_cycles_per_packet == 14

    def test_speedup_bounded_by_stage_count(self):
        p = pipeline_point(1)
        assert 1.0 < p.speedup <= 3.0

    def test_speedup_collapses_when_search_dominates(self):
        small = pipeline_point(1)
        big = pipeline_point(1024)
        assert big.speedup < small.speedup
        assert big.speedup == pytest.approx(1.0, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            pipeline_point(0)


class TestPipelineComparison:
    def test_throughput_conversion(self):
        cmp = compare_pipeline(table_sizes=(1,))
        point = cmp.points[0]
        seq = cmp.throughput_pps(point, pipelined=False)
        pipe = cmp.throughput_pps(point, pipelined=True)
        assert seq == pytest.approx(50e6 / 22)
        assert pipe == pytest.approx(50e6 / 14)
        assert pipe > seq

    def test_monotone_speedup_decay(self):
        cmp = compare_pipeline(table_sizes=(1, 16, 256, 1024))
        speedups = [p.speedup for p in cmp.points]
        assert speedups == sorted(speedups, reverse=True)
