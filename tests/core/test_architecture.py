"""Tests for the assembled EmbeddedMPLS architecture."""

import pytest

from repro.core.architecture import EmbeddedMPLS
from repro.core.hybrid import compare_partitions
from repro.mpls.label import LabelEntry, LabelOp
from repro.mpls.stack import LabelStack
from repro.mpls.router import RouterRole
from repro.net.ethernet import ETHERTYPE_IPV4, EthernetFrame
from repro.net.packet import IPv4Packet, MPLSPacket


DST = int.from_bytes(bytes([10, 2, 0, 9]), "big")


def ip_frame(ttl=64, dscp=0):
    packet = IPv4Packet(src="10.1.0.5", dst="10.2.0.9", ttl=ttl, dscp=dscp,
                        payload=b"payload")
    return EthernetFrame(
        dst_mac="aa:aa:aa:aa:aa:aa",
        src_mac="bb:bb:bb:bb:bb:bb",
        ethertype=ETHERTYPE_IPV4,
        payload=packet.serialize(),
    )


@pytest.fixture(params=["model", "rtl"])
def backend(request):
    return request.param


class TestEmbeddedMPLS:
    def test_ler_ingress_pushes(self, backend):
        ler = EmbeddedMPLS(role=RouterRole.LER, backend=backend)
        ler.install_ingress_route(DST, 777)
        result = ler.process_frame(ip_frame())
        assert not result.discarded
        assert result.performed == LabelOp.PUSH
        assert [e.label for e in result.stack_after] == [777]
        assert result.frame.is_mpls

    def test_lsr_swaps(self, backend):
        ler = EmbeddedMPLS(role=RouterRole.LER, backend="model")
        ler.install_ingress_route(DST, 777)
        labelled = ler.process_frame(ip_frame()).frame
        lsr = EmbeddedMPLS(role=RouterRole.LSR, backend=backend)
        lsr.install_swap(777, 888)
        result = lsr.process_frame(labelled)
        assert result.performed == LabelOp.SWAP
        assert [e.label for e in result.stack_after] == [888]

    def test_egress_pops_to_ip(self, backend):
        ler = EmbeddedMPLS(role=RouterRole.LER, backend="model")
        ler.install_ingress_route(DST, 777)
        labelled = ler.process_frame(ip_frame()).frame
        egress = EmbeddedMPLS(role=RouterRole.LER, backend=backend)
        egress.install_pop(777)
        result = egress.process_frame(labelled)
        assert result.performed == LabelOp.POP
        assert result.stack_after == ()
        assert result.frame.ethertype == ETHERTYPE_IPV4

    def test_ttl_decrements_along_chain(self):
        ler = EmbeddedMPLS(role=RouterRole.LER)
        ler.install_ingress_route(DST, 777)
        labelled = ler.process_frame(ip_frame(ttl=10)).frame
        lsr = EmbeddedMPLS(role=RouterRole.LSR)
        lsr.install_swap(777, 888)
        swapped = lsr.process_frame(labelled)
        assert swapped.stack_after[0].ttl == 8  # 10 -1 ingress, -1 swap
        egress = EmbeddedMPLS(role=RouterRole.LER)
        egress.install_pop(888)
        final = egress.process_frame(swapped.frame)
        inner = IPv4Packet.deserialize(final.frame.payload)
        assert inner.ttl == 7

    def test_unknown_destination_discards(self, backend):
        ler = EmbeddedMPLS(role=RouterRole.LER, backend=backend)
        result = ler.process_frame(ip_frame())
        assert result.discarded
        assert result.frame is None
        assert ler.packets_discarded == 1

    def test_ttl_expiry_discards(self, backend):
        ler = EmbeddedMPLS(role=RouterRole.LER, backend=backend)
        ler.install_ingress_route(DST, 777)
        result = ler.process_frame(ip_frame(ttl=1))
        assert result.discarded

    def test_cycles_counted(self, backend):
        ler = EmbeddedMPLS(role=RouterRole.LER, backend=backend)
        ler.install_ingress_route(DST, 777)
        result = ler.process_frame(ip_frame())
        # ingress: no stack loads, update = search(hit@0)+6 = 14, no drains...
        # plus the pop drain of the single result entry (3)
        assert result.cycles >= 14
        assert result.seconds == pytest.approx(result.cycles / 50e6)
        assert ler.mean_cycles_per_packet > 0

    def test_rtl_and_model_backends_agree(self):
        results = {}
        for backend in ("model", "rtl"):
            node = EmbeddedMPLS(role=RouterRole.LER, backend=backend)
            node.install_ingress_route(DST, 777)
            r = node.process_frame(ip_frame())
            results[backend] = (r.performed, r.stack_after, r.cycles)
        assert results["model"] == results["rtl"]

    def test_cos_from_dscp_reaches_label(self):
        ler = EmbeddedMPLS(role=RouterRole.LER)
        ler.install_ingress_route(DST, 777)
        result = ler.process_frame(ip_frame(dscp=46))
        assert result.stack_after[0].cos == 5

    def test_bad_backend_rejected(self):
        with pytest.raises(ValueError):
            EmbeddedMPLS(backend="asic")

    def test_deep_stack_transit(self):
        """A two-deep stack is looked up at level 2."""
        lsr = EmbeddedMPLS(role=RouterRole.LSR)
        lsr.install_route(2, 600, 601, LabelOp.SWAP)
        stack = LabelStack(
            [LabelEntry(label=600, ttl=20), LabelEntry(label=500, ttl=20)]
        )
        packet = MPLSPacket(stack, IPv4Packet(src="10.1.0.5", dst="10.2.0.9"))
        from repro.net.ethernet import ETHERTYPE_MPLS

        frame = EthernetFrame(
            dst_mac="aa:aa:aa:aa:aa:aa",
            src_mac="bb:bb:bb:bb:bb:bb",
            ethertype=ETHERTYPE_MPLS,
            payload=packet.serialize(),
        )
        result = lsr.process_frame(frame)
        assert result.performed == LabelOp.SWAP
        assert [e.label for e in result.stack_after] == [601, 500]


class TestPartitionComparison:
    def test_hw_wins_at_small_tables(self):
        cmp = compare_partitions(table_sizes=(1, 4, 16))
        assert cmp.points[0].speedup_vs_linear_sw > 1

    def test_speedup_shrinks_with_table_size(self):
        cmp = compare_partitions(table_sizes=(1, 64, 1024))
        speedups = [p.speedup_vs_linear_sw for p in cmp.points]
        assert speedups[0] > speedups[-1]

    def test_crossover_reported(self):
        cmp = compare_partitions(table_sizes=(1, 16, 256, 1024))
        crossover = cmp.crossover_entries()
        # hashed software eventually beats linear hardware search
        assert crossover is None or crossover >= 1

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            compare_partitions(table_sizes=(0,))
