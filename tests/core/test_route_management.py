"""Tests for the EmbeddedMPLS route-management API (the software
control plane driving the hardware's modify/remove/read path)."""

import pytest

from repro.core.architecture import EmbeddedMPLS
from repro.mpls.label import LabelOp
from repro.mpls.router import RouterRole
from repro.net.ethernet import ETHERTYPE_MPLS, EthernetFrame
from repro.net.packet import IPv4Packet, MPLSPacket
from repro.mpls.stack import LabelStack
from repro.mpls.label import LabelEntry


def labelled_frame(label, ttl=20):
    packet = MPLSPacket(
        LabelStack([LabelEntry(label=label, ttl=ttl)]),
        IPv4Packet(src="10.1.0.5", dst="10.2.0.9"),
    )
    return EthernetFrame(
        dst_mac="02:00:00:00:00:01",
        src_mac="02:00:00:00:00:02",
        ethertype=ETHERTYPE_MPLS,
        payload=packet.serialize(),
    )


@pytest.fixture(params=["model", "rtl"])
def lsr(request):
    node = EmbeddedMPLS(role=RouterRole.LSR, backend=request.param,
                        ib_depth=64)
    node.install_swap(100, 200)
    return node


class TestRouteManagement:
    def test_update_route_changes_forwarding(self, lsr):
        before = lsr.process_frame(labelled_frame(100))
        assert before.stack_after[0].label == 200
        lsr.update_route(1, 100, 300, LabelOp.SWAP)
        after = lsr.process_frame(labelled_frame(100))
        assert after.stack_after[0].label == 300

    def test_update_missing_route_raises(self, lsr):
        with pytest.raises(KeyError):
            lsr.update_route(1, 999, 300, LabelOp.SWAP)

    def test_remove_route_blackholes(self, lsr):
        lsr.remove_route(1, 100)
        result = lsr.process_frame(labelled_frame(100))
        assert result.discarded

    def test_remove_missing_route_raises(self, lsr):
        with pytest.raises(KeyError):
            lsr.remove_route(1, 999)

    def test_read_route_audits_contents(self, lsr):
        entry = lsr.read_route(1, 0)
        assert entry.valid
        assert entry.index == 100
        assert entry.label == 200
        assert entry.op == LabelOp.SWAP

    def test_cycles_reported(self, lsr):
        update_cycles = lsr.update_route(1, 100, 300, LabelOp.SWAP)
        assert update_cycles == (3 * 0 + 8) + 2
        remove_cycles = lsr.remove_route(1, 100)
        assert remove_cycles == (3 * 0 + 8) + 4

    def test_forwarding_continues_after_churn(self, lsr):
        """Install/update/remove cycles leave the data plane healthy."""
        for label in range(300, 310):
            lsr.install_swap(label, label + 1000)
        lsr.update_route(1, 305, 777, LabelOp.SWAP)
        lsr.remove_route(1, 303)
        result = lsr.process_frame(labelled_frame(305))
        assert result.stack_after[0].label == 777
        result = lsr.process_frame(labelled_frame(303))
        assert result.discarded
        result = lsr.process_frame(labelled_frame(309))
        assert result.stack_after[0].label == 1309
