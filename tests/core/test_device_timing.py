"""Tests for the device model and the analytic cycle models."""

import pytest

from repro.core.device import FPGADevice, STRATIX_EP1S40
from repro.core.timing import (
    HardwareCycleModel,
    SoftwareCostModel,
    worst_case_scenario,
)
from repro.mpls.forwarding import OpCounts


class TestFPGADevice:
    def test_paper_device(self):
        assert STRATIX_EP1S40.clock_hz == 50e6
        assert STRATIX_EP1S40.cycle_time_s == pytest.approx(20e-9)

    def test_time_for_cycles(self):
        assert STRATIX_EP1S40.time_for_cycles(50_000_000) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            STRATIX_EP1S40.time_for_cycles(-1)

    def test_cycles_for_time(self):
        assert STRATIX_EP1S40.cycles_for_time(1e-3) == 50_000

    def test_info_base_fits_the_paper_device(self):
        """'The total memory use is easily supported by standard
        reconfigurable computing environments.'"""
        assert STRATIX_EP1S40.fits_info_base()
        assert STRATIX_EP1S40.memory_utilization() < 0.1

    def test_info_base_bits(self):
        # level 1: 1024*(32+20+2); levels 2-3: 2*1024*(20+20+2)
        expected = 1024 * 54 + 2 * 1024 * 42
        assert STRATIX_EP1S40.info_base_bits() == expected

    def test_tiny_device_does_not_fit(self):
        tiny = FPGADevice("tiny", clock_hz=50e6, memory_bits=1000,
                          logic_elements=100)
        assert not tiny.fits_info_base()

    def test_validation(self):
        with pytest.raises(ValueError):
            FPGADevice("bad", clock_hz=0, memory_bits=1, logic_elements=1)


class TestHardwareCycleModel:
    def test_table6_constants(self):
        hw = HardwareCycleModel()
        assert hw.reset == 3
        assert hw.user_push == 3
        assert hw.user_pop == 3
        assert hw.write_pair == 3

    def test_search_formulas(self):
        hw = HardwareCycleModel()
        assert hw.search_worst(1024) == 3077
        assert hw.search_hit(0) == 8
        assert hw.search_hit(1023) == 3077

    def test_update_costs(self):
        hw = HardwareCycleModel()
        assert hw.update_swap_worst(1024) == 3083
        assert hw.update_pop_worst(10) == 41
        assert hw.update_push_worst(10, nested=True) == 42
        assert hw.update_push_worst(10, nested=False) == 41

    def test_throughput(self):
        hw = HardwareCycleModel()
        pps = hw.packets_per_second(1)
        assert pps == pytest.approx(50e6 / 14)


class TestWorstCaseScenario:
    def test_paper_total_is_6167(self):
        wc = worst_case_scenario()
        assert wc.total == 6167
        assert (wc.reset, wc.pushes, wc.writes, wc.search, wc.swap) == (
            3,
            9,
            3072,
            3077,
            6,
        )

    def test_paper_time_is_0p1233_ms(self):
        wc = worst_case_scenario()
        assert wc.seconds * 1e3 == pytest.approx(0.12334, rel=1e-3)

    def test_rows(self):
        rows = worst_case_scenario().as_rows()
        assert rows[-1] == ("total", 6167)

    def test_scales_with_parameters(self):
        wc = worst_case_scenario(n_entries=10, n_pushes=1)
        assert wc.total == 3 + 3 + 30 + 35 + 6


class TestSoftwareCostModel:
    def test_linear_scan_scales_with_entries(self):
        sw = SoftwareCostModel()
        small = sw.per_packet_swap_cycles(10)
        big = sw.per_packet_swap_cycles(1000)
        assert big > small
        assert big - small == 990 * sw.per_entry_scan

    def test_hashed_is_flat(self):
        sw = SoftwareCostModel()
        assert sw.per_packet_swap_cycles(10, hashed=True) == (
            sw.per_packet_swap_cycles(100_000, hashed=True)
        )

    def test_counts_pricing(self):
        sw = SoftwareCostModel()
        counts = OpCounts(ilm_lookups=1, entries_scanned=5, swaps=1,
                          ttl_updates=1)
        expected = (
            sw.per_packet_overhead
            + 5 * sw.per_entry_scan
            + sw.per_stack_op
            + sw.per_ttl_update
        )
        assert sw.cycles_for_counts(counts) == expected

    def test_throughput_positive(self):
        sw = SoftwareCostModel()
        assert sw.packets_per_second(100) > 0
