"""Tests for the ``python -m repro`` CLI."""

import json
import os

import pytest

from repro.cli import COMMANDS, main

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "examples"
)


class TestCLI:
    @pytest.mark.parametrize(
        "command", ["table6", "figures", "hw-vs-sw", "throughput", "device"]
    )
    def test_commands_run(self, command, capsys):
        assert main([command]) == 0
        out = capsys.readouterr().out
        assert out.strip()

    def test_table6_reports_matches(self, capsys):
        main(["table6"])
        out = capsys.readouterr().out
        assert "MISMATCH" not in out
        assert "3n + 5" in out

    def test_figures_report_paper_values(self, capsys):
        main(["figures"])
        out = capsys.readouterr().out
        assert "label_out=504" in out
        assert "packetdiscard=1" in out

    def test_device_shows_fit(self, capsys):
        main(["device"])
        out = capsys.readouterr().out
        assert "EP1S40" in out
        assert "yes" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_all_commands_registered(self):
        assert set(COMMANDS) == {
            "table6",
            "worst-case",
            "figures",
            "hw-vs-sw",
            "throughput",
            "device",
        }


class TestChaosCLI:
    def test_list_faults_enumerates_the_taxonomy(self, capsys):
        from repro.faults.scenario import FAULT_PARAMS, FaultKind

        assert main(["chaos", "--list-faults"]) == 0
        out = capsys.readouterr().out
        for kind in FaultKind:
            assert kind.value in out
        # target arity, per-kind params and the adversarial tag all show
        assert "link (two nodes)" in out
        assert "node" in out
        assert "adversarial" in out
        for params in FAULT_PARAMS.values():
            for name in params:
                assert name in out
        assert "(no params)" in out  # ldp-hijack takes none

    def test_list_faults_needs_no_scenario_file(self, capsys):
        assert main(["chaos", "--list-faults"]) == 0
        assert capsys.readouterr().out.strip()

    def test_chaos_without_scenario_fails(self, capsys):
        assert main(["chaos"]) == 1
        assert "scenario" in capsys.readouterr().err

    def test_mitigation_flag_overrides_the_scenario(
        self, tmp_path, capsys
    ):
        # trim the example to the spoof attack alone so the CLI round
        # trip stays fast, then stand the guards down from the flag
        with open(os.path.join(EXAMPLES_DIR, "chaos_security.json")) as fh:
            raw = json.load(fh)
        raw["duration"] = 0.8
        raw["faults"] = [raw["faults"][0]]
        path = tmp_path / "spoof.json"
        path.write_text(json.dumps(raw))
        assert main(
            ["chaos", str(path), "--seed", "7", "--mitigation", "off"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["security"]["enabled"] is False
        assert report["security"]["blast_radius_total"] > 0
        assert main(
            ["chaos", str(path), "--seed", "7", "--mitigation", "on"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["security"]["enabled"] is True
        assert report["security"]["blast_radius_total"] == 0
