"""Tests for the ``python -m repro`` CLI."""

import json
import os

import pytest

from repro.cli import COMMANDS, main

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "examples"
)


class TestCLI:
    @pytest.mark.parametrize(
        "command", ["table6", "figures", "hw-vs-sw", "throughput", "device"]
    )
    def test_commands_run(self, command, capsys):
        assert main([command]) == 0
        out = capsys.readouterr().out
        assert out.strip()

    def test_table6_reports_matches(self, capsys):
        main(["table6"])
        out = capsys.readouterr().out
        assert "MISMATCH" not in out
        assert "3n + 5" in out

    def test_figures_report_paper_values(self, capsys):
        main(["figures"])
        out = capsys.readouterr().out
        assert "label_out=504" in out
        assert "packetdiscard=1" in out

    def test_device_shows_fit(self, capsys):
        main(["device"])
        out = capsys.readouterr().out
        assert "EP1S40" in out
        assert "yes" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_all_commands_registered(self):
        assert set(COMMANDS) == {
            "table6",
            "worst-case",
            "figures",
            "hw-vs-sw",
            "throughput",
            "device",
        }


class TestChaosCLI:
    def test_list_faults_enumerates_the_taxonomy(self, capsys):
        from repro.faults.scenario import FAULT_PARAMS, FaultKind

        assert main(["chaos", "--list-faults"]) == 0
        out = capsys.readouterr().out
        for kind in FaultKind:
            assert kind.value in out
        # target arity, per-kind params and the adversarial tag all show
        assert "link (two nodes)" in out
        assert "node" in out
        assert "adversarial" in out
        for params in FAULT_PARAMS.values():
            for name in params:
                assert name in out
        assert "(no params)" in out  # ldp-hijack takes none

    def test_list_faults_needs_no_scenario_file(self, capsys):
        assert main(["chaos", "--list-faults"]) == 0
        assert capsys.readouterr().out.strip()

    def test_chaos_without_scenario_fails(self, capsys):
        assert main(["chaos"]) == 1
        assert "scenario" in capsys.readouterr().err

    def test_mitigation_flag_overrides_the_scenario(
        self, tmp_path, capsys
    ):
        # trim the example to the spoof attack alone so the CLI round
        # trip stays fast, then stand the guards down from the flag
        with open(os.path.join(EXAMPLES_DIR, "chaos_security.json")) as fh:
            raw = json.load(fh)
        raw["duration"] = 0.8
        raw["faults"] = [raw["faults"][0]]
        path = tmp_path / "spoof.json"
        path.write_text(json.dumps(raw))
        assert main(
            ["chaos", str(path), "--seed", "7", "--mitigation", "off"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["security"]["enabled"] is False
        assert report["security"]["blast_radius_total"] > 0
        assert main(
            ["chaos", str(path), "--seed", "7", "--mitigation", "on"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["security"]["enabled"] is True
        assert report["security"]["blast_radius_total"] == 0


class TestTopoCLI:
    """``repro topo`` — the topology-observatory query command."""

    SCENARIO = os.path.join(EXAMPLES_DIR, "chaos_smoke.json")

    def test_show_renders_the_live_view(self, capsys):
        assert main(["topo", self.SCENARIO]) == 0
        out = capsys.readouterr().out
        assert "topology @ t=" in out
        assert "nodes:" in out
        assert "links:" in out
        assert "ler-a" in out

    def test_health_emits_scored_json(self, capsys):
        assert main(["topo", self.SCENARIO, "health"]) == 0
        scores = json.loads(capsys.readouterr().out)
        assert 0.0 <= scores["overall"] <= 1.0
        for section in ("nodes", "links"):
            assert scores[section]

    def test_at_reconstruction_matches_the_live_export(
        self, tmp_path, capsys
    ):
        live = tmp_path / "live.json"
        replayed = tmp_path / "replayed.json"
        assert main(
            ["topo", self.SCENARIO, "--export", str(live)]
        ) == 0
        capsys.readouterr()
        # a time past the end of the run reconstructs the final view
        assert main(
            ["topo", self.SCENARIO, "at", "999", "--export",
             str(replayed)]
        ) == 0
        capsys.readouterr()
        assert live.read_bytes() == replayed.read_bytes()

    def test_diff_lists_leaf_changes(self, capsys):
        # straddle the 0.2-0.45 link outage: the link state, the fault
        # ledger and the rerouted next-hops all change
        assert main(["topo", self.SCENARIO, "diff", "0.1", "0.3"]) == 0
        captured = capsys.readouterr()
        assert "changes between t=0.1 and t=0.3" in captured.err
        assert "links.lsr-1|lsr-2: 'up' -> 'down'" in captured.out

    def test_export_is_byte_stable_across_runs(self, tmp_path, capsys):
        first = tmp_path / "one.json"
        second = tmp_path / "two.json"
        for target in (first, second):
            assert main(
                ["topo", self.SCENARIO, "--seed", "5",
                 "--export", str(target)]
            ) == 0
            capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()

    def test_dot_export_is_valid_graphviz(self, tmp_path, capsys):
        dot = tmp_path / "topo.dot"
        assert main(
            ["topo", self.SCENARIO, "--dot", str(dot)]
        ) == 0
        text = dot.read_text()
        assert text.startswith("graph topology {")
        assert text.rstrip().endswith("}")
        assert "ler-a" in text

    def test_at_requires_exactly_one_time(self, capsys):
        assert main(["topo", self.SCENARIO, "at"]) == 1
        assert "exactly one time" in capsys.readouterr().err


class TestBenchReportCLI:
    """``repro bench-report`` — including the malformed-artifact
    accounting (silent skips became counted warnings)."""

    @staticmethod
    def _write(directory, name, payload):
        path = directory / f"BENCH_{name}.json"
        path.write_text(payload)
        return path

    def test_clean_artifacts_render_without_a_warning_suffix(
        self, tmp_path, capsys
    ):
        self._write(tmp_path, "fwd", json.dumps({
            "name": "fwd", "metric": "throughput", "value": 1.5,
            "units": "Mpps", "seed": 0,
        }))
        assert main(["bench-report", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert f"(1 records from {tmp_path})" in captured.out
        assert "unreadable" not in captured.out
        assert captured.err == ""

    def test_unreadable_artifact_warns_counts_and_fails(
        self, tmp_path, capsys
    ):
        self._write(tmp_path, "ok", json.dumps({
            "name": "ok", "metric": "m", "value": 1,
        }))
        self._write(tmp_path, "broken", "{not json")
        assert main(["bench-report", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "cannot read" in captured.err
        assert "1 unreadable, 0 schema-less" in captured.out
        assert "1 unreadable and 0 schema-less" in captured.err

    def test_non_object_artifact_is_counted_not_silently_skipped(
        self, tmp_path, capsys
    ):
        self._write(tmp_path, "list", json.dumps([1, 2, 3]))
        self._write(tmp_path, "ok", json.dumps({
            "name": "ok", "metric": "m", "value": 1,
        }))
        assert main(["bench-report", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "not a benchmark record" in captured.err
        assert "0 unreadable, 1 schema-less" in captured.out
        # the good record still renders
        assert "ok" in captured.out

    def test_missing_schema_keys_render_placeholders_and_warn(
        self, tmp_path, capsys
    ):
        self._write(tmp_path, "partial", json.dumps({"value": 2}))
        assert main(["bench-report", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "missing schema keys name, metric" in captured.err
        assert "0 unreadable, 1 schema-less" in captured.out
        # the record renders with its filename as the fallback name
        assert "BENCH_partial.json" in captured.out

    def test_empty_directory_still_errors(self, tmp_path, capsys):
        assert main(["bench-report", str(tmp_path)]) == 1
        assert "no BENCH_*.json" in capsys.readouterr().err
