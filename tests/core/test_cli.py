"""Tests for the ``python -m repro`` CLI."""

import pytest

from repro.cli import COMMANDS, main


class TestCLI:
    @pytest.mark.parametrize(
        "command", ["table6", "figures", "hw-vs-sw", "throughput", "device"]
    )
    def test_commands_run(self, command, capsys):
        assert main([command]) == 0
        out = capsys.readouterr().out
        assert out.strip()

    def test_table6_reports_matches(self, capsys):
        main(["table6"])
        out = capsys.readouterr().out
        assert "MISMATCH" not in out
        assert "3n + 5" in out

    def test_figures_report_paper_values(self, capsys):
        main(["figures"])
        out = capsys.readouterr().out
        assert "label_out=504" in out
        assert "packetdiscard=1" in out

    def test_device_shows_fit(self, capsys):
        main(["device"])
        out = capsys.readouterr().out
        assert "EP1S40" in out
        assert "yes" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_all_commands_registered(self):
        assert set(COMMANDS) == {
            "table6",
            "worst-case",
            "figures",
            "hw-vs-sw",
            "throughput",
            "device",
        }
