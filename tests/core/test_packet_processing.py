"""Tests for the ingress/egress packet processing modules."""

import pytest

from repro.core.packet_processing import (
    EgressPacketProcessor,
    IngressPacketProcessor,
    PacketProcessingError,
)
from repro.mpls.label import LabelEntry
from repro.mpls.stack import LabelStack
from repro.net.atm import segment_aal5
from repro.net.ethernet import (
    ETHERTYPE_IPV4,
    ETHERTYPE_MPLS,
    EthernetFrame,
)
from repro.net.frame_relay import FrameRelayFrame
from repro.net.packet import IPv4Packet, MPLSPacket


def ip_packet(dst="10.2.0.9", ttl=64):
    return IPv4Packet(src="10.1.0.5", dst=dst, ttl=ttl, payload=b"data")


def mpls_payload(label=777, ttl=63):
    stack = LabelStack([LabelEntry(label=label, ttl=ttl)])
    return MPLSPacket(stack, ip_packet()).serialize()


def eth(payload, labelled):
    return EthernetFrame(
        dst_mac="aa:aa:aa:aa:aa:aa",
        src_mac="bb:bb:bb:bb:bb:bb",
        ethertype=ETHERTYPE_MPLS if labelled else ETHERTYPE_IPV4,
        payload=payload,
    )


class TestIngress:
    def test_plain_ipv4_ethernet(self):
        ingress = IngressPacketProcessor()
        parsed = ingress.parse(eth(ip_packet().serialize(), labelled=False))
        assert parsed.stack.is_empty
        assert parsed.packet_identifier == ip_packet().identifier()
        assert parsed.l2_kind == "ethernet"

    def test_labelled_ethernet(self):
        ingress = IngressPacketProcessor()
        parsed = ingress.parse(eth(mpls_payload(), labelled=True))
        assert parsed.stack.depth == 1
        assert parsed.stack.top.label == 777

    def test_unsupported_ethertype(self):
        ingress = IngressPacketProcessor()
        frame = EthernetFrame(
            dst_mac="aa:aa:aa:aa:aa:aa",
            src_mac="bb:bb:bb:bb:bb:bb",
            ethertype=0x0806,  # ARP
            payload=b"x" * 46,
        )
        with pytest.raises(PacketProcessingError):
            ingress.parse(frame)
        assert ingress.errors == 1

    def test_atm_cells(self):
        ingress = IngressPacketProcessor()
        cells = segment_aal5(mpls_payload(), vpi=1, vci=42)
        parsed = ingress.parse(cells)
        assert parsed.l2_kind == "atm"
        assert parsed.l2_context == (1, 42)
        assert parsed.stack.top.label == 777

    def test_atm_plain_ip(self):
        ingress = IngressPacketProcessor()
        cells = segment_aal5(ip_packet().serialize(), vpi=0, vci=33)
        parsed = ingress.parse(cells)
        assert parsed.stack.is_empty

    def test_frame_relay(self):
        ingress = IngressPacketProcessor()
        frame = FrameRelayFrame(dlci=123, payload=mpls_payload())
        parsed = ingress.parse(frame)
        assert parsed.l2_kind == "frame-relay"
        assert parsed.l2_context == (123,)
        assert parsed.stack.top.label == 777

    def test_garbage_frame(self):
        ingress = IngressPacketProcessor()
        with pytest.raises(PacketProcessingError):
            ingress.parse("not a frame")

    def test_corrupt_payload(self):
        ingress = IngressPacketProcessor()
        with pytest.raises(PacketProcessingError):
            ingress.parse(eth(b"\xff" * 50, labelled=True))
        assert ingress.errors == 1

    def test_parsed_counter(self):
        ingress = IngressPacketProcessor()
        ingress.parse(eth(ip_packet().serialize(), labelled=False))
        assert ingress.parsed == 1


class TestEgress:
    def _roundtrip(self, frame, new_stack, new_ttl=None):
        ingress = IngressPacketProcessor()
        egress = EgressPacketProcessor()
        parsed = ingress.parse(frame)
        return egress.build(parsed, new_stack, new_ttl=new_ttl)

    def test_ethernet_label_swap(self):
        new_stack = LabelStack([LabelEntry(label=888, ttl=62)])
        out = self._roundtrip(eth(mpls_payload(), labelled=True), new_stack)
        assert out.is_mpls
        reparsed = IngressPacketProcessor().parse(out)
        assert reparsed.stack.top.label == 888

    def test_ethernet_pop_to_ip(self):
        out = self._roundtrip(
            eth(mpls_payload(ttl=40), labelled=True), LabelStack(), new_ttl=39
        )
        assert out.ethertype == ETHERTYPE_IPV4
        inner = IPv4Packet.deserialize(out.payload)
        assert inner.ttl == 39

    def test_ethernet_push_onto_ip(self):
        new_stack = LabelStack([LabelEntry(label=777, ttl=63)])
        out = self._roundtrip(
            eth(ip_packet().serialize(), labelled=False), new_stack
        )
        assert out.is_mpls

    def test_macs_preserved(self):
        new_stack = LabelStack([LabelEntry(label=888, ttl=62)])
        out = self._roundtrip(eth(mpls_payload(), labelled=True), new_stack)
        assert out.src == "bb:bb:bb:bb:bb:bb"
        assert out.dst == "aa:aa:aa:aa:aa:aa"

    def test_atm_roundtrip(self):
        cells = segment_aal5(mpls_payload(), vpi=3, vci=77)
        new_stack = LabelStack([LabelEntry(label=888, ttl=62)])
        out = self._roundtrip(cells, new_stack)
        assert isinstance(out, list)
        assert out[0].vpi == 3 and out[0].vci == 77
        reparsed = IngressPacketProcessor().parse(out)
        assert reparsed.stack.top.label == 888

    def test_frame_relay_roundtrip(self):
        frame = FrameRelayFrame(dlci=55, payload=mpls_payload())
        new_stack = LabelStack([LabelEntry(label=888, ttl=62)])
        out = self._roundtrip(frame, new_stack)
        assert out.dlci == 55
        reparsed = IngressPacketProcessor().parse(out)
        assert reparsed.stack.top.label == 888

    def test_payload_survives_modification(self):
        new_stack = LabelStack([LabelEntry(label=888, ttl=62)])
        out = self._roundtrip(eth(mpls_payload(), labelled=True), new_stack)
        reparsed = IngressPacketProcessor().parse(out)
        assert reparsed.inner.payload == b"data"
        assert reparsed.inner.dst == ip_packet().dst
