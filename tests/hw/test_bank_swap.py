"""Double-buffered bank programming: RTL driver vs functional model.

The bank path is what makes info-base reprogramming atomic: pairs are
assembled in the inactive bank (3 cycles each, same write port as
WRITE_PAIR) while searches keep hitting the active bank, then the bank
select flips in one cycle.  These tests check the isolation property
(nothing staged is visible before commit, everything after), the
rollback property, and cycle-count equivalence between the RTL driver
and the functional model.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hw import ModifierDriver
from repro.hw.model import BANK_SWAP_CYCLES, WRITE_PAIR_CYCLES, FunctionalModifier
from repro.mpls.label import LabelOp

small_labels = st.integers(min_value=16, max_value=24)
levels = st.integers(min_value=1, max_value=3)
bank_ops = st.sampled_from([LabelOp.PUSH, LabelOp.POP, LabelOp.SWAP])


@pytest.fixture(params=["model", "rtl"])
def device(request):
    if request.param == "model":
        dev = FunctionalModifier(ib_depth=16)
    else:
        dev = ModifierDriver(ib_depth=16)
        dev.reset()
    return dev


class TestBankIsolation:
    def test_staged_writes_invisible_until_commit(self, device):
        device.write_pair(2, 100, 200, LabelOp.SWAP)
        device.bank_begin()
        device.bank_write_pair(2, 100, 999, LabelOp.SWAP)
        device.bank_write_pair(2, 101, 201, LabelOp.SWAP)
        # the data path still sees the old bank
        result = device.search(2, 100)
        assert result.found and result.label == 200
        assert not device.search(2, 101).found
        device.bank_commit()
        result = device.search(2, 100)
        assert result.found and result.label == 999
        result = device.search(2, 101)
        assert result.found and result.label == 201

    def test_commit_replaces_whole_bank(self, device):
        """Entries absent from the staged bank disappear at the swap --
        the bank is a full image, not a delta."""
        device.write_pair(3, 50, 60, LabelOp.POP)
        device.bank_begin()
        device.bank_write_pair(3, 70, 80, LabelOp.SWAP)
        device.bank_commit()
        assert not device.search(3, 50).found
        assert device.search(3, 70).found

    def test_rollback_leaves_active_bank(self, device):
        device.write_pair(1, 42, 43, LabelOp.PUSH)
        device.bank_begin()
        device.bank_write_pair(1, 42, 99, LabelOp.PUSH)
        device.bank_rollback()
        result = device.search(1, 42)
        assert result.found and result.label == 43

    def test_swap_is_single_cycle(self, device):
        device.bank_begin()
        for label in (20, 21, 22):
            assert (
                device.bank_write_pair(2, label, label + 100, LabelOp.SWAP)
                == WRITE_PAIR_CYCLES
            )
        assert device.bank_commit() == BANK_SWAP_CYCLES

    def test_double_begin_rejected(self, device):
        device.bank_begin()
        with pytest.raises(RuntimeError):
            device.bank_begin()

    def test_commit_without_begin_rejected(self, device):
        with pytest.raises(RuntimeError):
            device.bank_commit()
        with pytest.raises(RuntimeError):
            device.bank_rollback()

    def test_overload_truncates_and_flags_overflow(self, device):
        device.bank_begin()
        for label in range(16, 16 + 20):  # depth is 16
            device.bank_write_pair(2, label, label, LabelOp.SWAP)
        device.bank_commit()
        assert device.ib_counts()[1] == 16


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    pre=st.lists(
        st.tuples(levels, small_labels, small_labels, bank_ops), max_size=6
    ),
    staged=st.lists(
        st.tuples(levels, small_labels, small_labels, bank_ops), max_size=6
    ),
    probes=st.lists(st.tuples(levels, small_labels), min_size=1, max_size=6),
)
def test_rtl_matches_model_through_bank_swap(pre, staged, probes):
    """Same contents, same cycle counts, through an arbitrary
    pre-population + staged bank + commit + probe sequence."""
    rtl = ModifierDriver(ib_depth=16)
    rtl.reset()
    model = FunctionalModifier(ib_depth=16)
    model.reset()
    for level, index, label, op in pre:
        assert rtl.write_pair(level, index, label, op) == model.write_pair(
            level, index, label, op
        )
    rtl.bank_begin()
    model.bank_begin()
    for level, index, label, op in staged:
        assert rtl.bank_write_pair(
            level, index, label, op
        ) == model.bank_write_pair(level, index, label, op)
    assert rtl.bank_commit() == model.bank_commit()
    assert rtl.ib_counts() == model.ib_counts()
    for level in (1, 2, 3):
        assert rtl.ib_pairs(level) == model.ib_pairs(level)
    for level, key in probes:
        a, b = rtl.search(level, key), model.search(level, key)
        assert (a.found, a.label, a.op, a.cycles) == (
            b.found,
            b.label,
            b.op,
            b.cycles,
        )
