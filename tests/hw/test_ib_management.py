"""Tests for the information-base management operations.

The paper: "Entries can be added, modified, or removed from the
information base keeping in mind that label values must be consistent
among all MPLS routers", and the datapath description's direct read
path ("a search index when the user wants to read the contents of the
information base directly").  These operations are implemented on both
the RTL and the functional model; cycle formulas (beyond Table 6):
modify = search + 2, remove = search + 4, miss = full scan + 1, direct
read = 5.
"""

import pytest

from repro.hw import ModifierDriver
from repro.hw.model import FunctionalModifier
from repro.mpls.label import LabelOp


@pytest.fixture(params=["rtl", "model"])
def drv(request):
    if request.param == "rtl":
        driver = ModifierDriver(ib_depth=64)
    else:
        driver = FunctionalModifier(ib_depth=64)
    driver.reset()
    for i in range(5):
        driver.write_pair(2, 16 + i, 500 + i, LabelOp.SWAP)
    return driver


class TestModify:
    def test_modify_rewrites_in_place(self, drv):
        result = drv.modify_pair(2, 18, 999, LabelOp.POP)
        assert result.found
        lookup = drv.search(2, 18)
        assert lookup.label == 999
        assert lookup.op == LabelOp.POP

    def test_modify_does_not_change_count(self, drv):
        drv.modify_pair(2, 18, 999, LabelOp.POP)
        assert drv.ib_counts() == (0, 5, 0)

    def test_modify_cost_is_search_plus_2(self, drv):
        result = drv.modify_pair(2, 18, 999, LabelOp.POP)  # position 2
        assert result.cycles == (3 * 2 + 8) + 2

    def test_modify_miss(self, drv):
        result = drv.modify_pair(2, 999, 1, LabelOp.SWAP)
        assert not result.found
        assert result.cycles == (3 * 5 + 5) + 1
        assert drv.ib_counts() == (0, 5, 0)

    def test_modify_level_validation(self, drv):
        with pytest.raises(ValueError):
            drv.modify_pair(0, 1, 2, LabelOp.SWAP)


class TestRemove:
    def test_remove_deletes_pair(self, drv):
        result = drv.remove_pair(2, 17)
        assert result.found
        assert drv.ib_counts() == (0, 4, 0)
        assert not drv.search(2, 17).found

    def test_last_entry_fills_the_hole(self, drv):
        drv.remove_pair(2, 17)  # position 1; last pair (20) moves there
        survivor = drv.search(2, 20)
        assert survivor.found
        assert survivor.label == 504
        # and it now sits at position 1: hit cost 3*1+8
        assert survivor.cycles == 3 * 1 + 8

    def test_remove_last_entry(self, drv):
        result = drv.remove_pair(2, 20)
        assert result.found
        assert drv.ib_counts() == (0, 4, 0)
        assert not drv.search(2, 20).found

    def test_remove_cost_is_search_plus_4(self, drv):
        result = drv.remove_pair(2, 17)  # position 1
        assert result.cycles == (3 * 1 + 8) + 4

    def test_remove_miss(self, drv):
        result = drv.remove_pair(2, 999)
        assert not result.found
        assert result.cycles == (3 * 5 + 5) + 1
        assert drv.ib_counts() == (0, 5, 0)

    def test_remove_all_then_search_is_fast(self, drv):
        for index in (16, 17, 18, 19, 20):
            assert drv.remove_pair(2, index).found
        assert drv.ib_counts() == (0, 0, 0)
        assert drv.search(2, 16).cycles == 5  # empty scan

    def test_remove_then_rewrite(self, drv):
        drv.remove_pair(2, 16)
        drv.write_pair(2, 16, 777, LabelOp.PUSH)
        lookup = drv.search(2, 16)
        assert lookup.label == 777


class TestReadEntry:
    def test_read_back_stored_pair(self, drv):
        entry = drv.read_entry(2, 3)
        assert entry.valid
        assert entry.index == 19
        assert entry.label == 503
        assert entry.op == LabelOp.SWAP

    def test_read_costs_5_fixed(self, drv):
        assert drv.read_entry(2, 0).cycles == 5
        assert drv.read_entry(2, 4).cycles == 5

    def test_read_beyond_count_invalid(self, drv):
        entry = drv.read_entry(2, 10)
        assert not entry.valid
        assert entry.index is None

    def test_read_walks_whole_level(self, drv):
        pairs = [
            (e.index, e.label)
            for e in (drv.read_entry(2, a) for a in range(5))
        ]
        assert pairs == [(16 + i, 500 + i) for i in range(5)]

    def test_validation(self, drv):
        with pytest.raises(ValueError):
            drv.read_entry(4, 0)
        with pytest.raises(ValueError):
            drv.read_entry(2, -1)


class TestLevel1Management:
    def test_modify_by_packet_id(self, drv):
        drv.write_pair(1, 0x0A000001, 100, LabelOp.PUSH)
        result = drv.modify_pair(1, 0x0A000001, 200, LabelOp.PUSH)
        assert result.found
        assert drv.search(1, 0x0A000001).label == 200

    def test_remove_by_packet_id(self, drv):
        drv.write_pair(1, 0x0A000001, 100, LabelOp.PUSH)
        assert drv.remove_pair(1, 0x0A000001).found
        assert drv.ib_counts()[0] == 0
