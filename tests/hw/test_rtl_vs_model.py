"""RTL vs functional-model equivalence on randomized operation
sequences.

The functional model (:mod:`repro.hw.model`) is used as the hardware
cost model inside network-scale simulations; these property tests are
what justify that substitution: for any operation sequence the two
implementations must agree on results, side effects *and* cycle
counts.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hw import ModifierDriver
from repro.hw.model import FunctionalModifier
from repro.mpls.label import LabelEntry, LabelOp

# Small domains so collisions (hits) actually happen.
small_labels = st.integers(min_value=16, max_value=24)
ops = st.sampled_from(list(LabelOp))
levels = st.integers(min_value=1, max_value=3)
ttls = st.integers(min_value=0, max_value=5)


op_step = st.one_of(
    st.tuples(
        st.just("push"),
        st.builds(
            LabelEntry,
            label=small_labels,
            cos=st.integers(min_value=0, max_value=7),
            s=st.integers(min_value=0, max_value=1),
            ttl=ttls,
        ),
    ),
    st.tuples(st.just("pop"), st.none()),
    st.tuples(st.just("write"), st.tuples(levels, small_labels, small_labels, ops)),
    st.tuples(st.just("search"), st.tuples(levels, small_labels)),
    st.tuples(st.just("update"), st.tuples(small_labels, ttls)),
    st.tuples(
        st.just("modify"), st.tuples(levels, small_labels, small_labels, ops)
    ),
    st.tuples(st.just("remove"), st.tuples(levels, small_labels)),
    st.tuples(
        st.just("read"),
        st.tuples(levels, st.integers(min_value=0, max_value=12)),
    ),
)


def _apply(impl, step):
    kind, arg = step
    if kind == "push":
        return ("push", impl.user_push(arg), tuple(impl.stack()))
    if kind == "pop":
        popped, cycles = impl.user_pop()
        return ("pop", popped, cycles, tuple(impl.stack()))
    if kind == "write":
        level, index, label, op = arg
        return ("write", impl.write_pair(level, index, label, op), impl.ib_counts())
    if kind == "search":
        level, key = arg
        r = impl.search(level, key)
        return ("search", r.found, r.label, r.op, r.discarded, r.cycles)
    if kind == "modify":
        level, index, label, op = arg
        r = impl.modify_pair(level, index, label, op)
        return ("modify", r.found, r.cycles, impl.ib_counts())
    if kind == "remove":
        level, index = arg
        r = impl.remove_pair(level, index)
        return ("remove", r.found, r.cycles, impl.ib_counts())
    if kind == "read":
        level, address = arg
        r = impl.read_entry(level, address)
        return ("read", r.valid, r.index, r.label, r.op, r.cycles)
    level_key, ttl = arg
    r = impl.update(packet_id=level_key, ttl=ttl)
    return ("update", r.performed, r.discarded, r.cycles, r.stack)


class TestEquivalence:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(st.lists(op_step, max_size=12))
    def test_random_sequences_agree(self, steps):
        rtl = ModifierDriver(ib_depth=16, stack_capacity=8)
        rtl.reset()
        model = FunctionalModifier(ib_depth=16, stack_capacity=8)
        model.reset()
        for step in steps:
            got_rtl = _apply(rtl, step)
            got_model = _apply(model, step)
            assert got_rtl == got_model, f"diverged on {step}"
        assert tuple(rtl.stack()) == tuple(model.stack())
        assert rtl.ib_counts() == model.ib_counts()

    def test_model_matches_table6_constants(self):
        model = FunctionalModifier()
        assert model.reset() == 3
        assert model.user_push(LabelEntry(label=600)) == 3
        assert model.user_pop()[1] == 3
        assert model.write_pair(1, 600, 500, LabelOp.SWAP) == 3

    def test_model_search_formula(self):
        from repro.hw.model import search_cycles

        assert search_cycles(0, None) == 5
        assert search_cycles(10, None) == 35
        assert search_cycles(1024, None) == 3077
        assert search_cycles(10, 4) == 20
        assert search_cycles(10, 9) == 35  # worst-case hit == miss cost

    def test_model_worst_case_scenario(self):
        """The paper's 6167-cycle composite on the functional model."""
        model = FunctionalModifier()
        total = model.reset()
        for label in (100, 200, 300):
            total += model.user_push(LabelEntry(label=label, ttl=9, s=label == 100))
        for i in range(1023):
            total += model.write_pair(3, 1000 + i, 500, LabelOp.SWAP)
        total += model.write_pair(3, 300, 999, LabelOp.SWAP)
        result = model.update()
        total += result.cycles
        assert result.performed == LabelOp.SWAP
        assert total == 6167

    def test_model_overflow_flags(self):
        model = FunctionalModifier(ib_depth=1, stack_capacity=1)
        model.write_pair(1, 1, 2, LabelOp.SWAP)
        model.write_pair(1, 3, 4, LabelOp.SWAP)
        assert model._levels[0].overflow
        model.user_push(LabelEntry(label=100))
        model.user_push(LabelEntry(label=200))
        assert model.stack_error
