"""Tests for the CAM-based information base alternative."""


from repro.core.device import STRATIX_EP1S40
from repro.hdl.simulator import Component, Simulator
from repro.hw.cam import (
    CAM_SEARCH_CYCLES,
    CAMInfoBaseLevel,
    cam_fits,
    cam_logic_elements,
)


class _Driver(Component):
    def __init__(self, sim):
        super().__init__(sim, "drv")
        self.values = {}

    def set(self, wire, value):
        self.values[wire] = value

    def settle(self):
        for wire, value in self.values.items():
            wire.drive(value)


def _cam(depth=16):
    sim = Simulator()
    drv = _Driver(sim)
    cam = CAMInfoBaseLevel(sim, "cam", index_width=20, depth=depth)
    return sim, drv, cam


def _write(sim, drv, cam, index, label, op):
    drv.set(cam.wr_en, 1)
    drv.set(cam.wr_index, index)
    drv.set(cam.wr_label, label)
    drv.set(cam.wr_op, op)
    sim.step()
    drv.set(cam.wr_en, 0)


def _search(sim, drv, cam, key):
    drv.set(cam.search_en, 1)
    drv.set(cam.search_key, key)
    cycles = 0
    sim.step()
    cycles += 1
    drv.set(cam.search_en, 0)
    while not cam.done.value:
        sim.step()
        cycles += 1
    return cycles


class TestCAMLevel:
    def test_write_and_match(self):
        sim, drv, cam = _cam()
        _write(sim, drv, cam, 100, 500, 2)
        cycles = _search(sim, drv, cam, 100)
        assert cam.match_valid.value == 1
        assert cam.match_label.value == 500
        assert cam.match_op.value == 2
        assert cycles == 1  # registered one edge after the key

    def test_miss(self):
        sim, drv, cam = _cam()
        _write(sim, drv, cam, 100, 500, 2)
        _search(sim, drv, cam, 999)
        assert cam.match_valid.value == 0

    def test_lookup_cost_is_occupancy_independent(self):
        """The CAM's defining property: constant-time match."""
        costs = []
        for n in (1, 8, 16):
            sim, drv, cam = _cam(depth=16)
            for i in range(n):
                _write(sim, drv, cam, 100 + i, 500 + i, 2)
            costs.append(_search(sim, drv, cam, 100 + n - 1))
        assert len(set(costs)) == 1

    def test_first_match_priority(self):
        sim, drv, cam = _cam()
        _write(sim, drv, cam, 100, 500, 2)
        _write(sim, drv, cam, 100, 777, 1)
        _search(sim, drv, cam, 100)
        assert cam.match_label.value == 500

    def test_done_is_a_pulse(self):
        sim, drv, cam = _cam()
        _write(sim, drv, cam, 100, 500, 2)
        _search(sim, drv, cam, 100)
        assert cam.done.value == 1
        sim.step()
        assert cam.done.value == 0

    def test_overflow(self):
        sim, drv, cam = _cam(depth=2)
        for i in range(3):
            _write(sim, drv, cam, i, i, 0)
        assert cam.count == 2
        assert cam.overflow.value == 1

    def test_reset(self):
        sim, drv, cam = _cam()
        _write(sim, drv, cam, 100, 500, 2)
        sim.reset()
        assert cam.count == 0


class TestCAMCost:
    def test_le_estimate_scales_linearly(self):
        assert cam_logic_elements(1024) == 1024 * 20
        assert cam_logic_elements(64) == 64 * 20

    def test_1k_cam_does_not_fit_the_paper_device(self):
        """The design-space point: a 1K-entry, 20-bit CAM wants ~20k
        LEs -- half the EP1S40 -- which is why the paper walks block
        RAM instead."""
        assert not cam_fits(1024, device=STRATIX_EP1S40)
        assert cam_fits(256, device=STRATIX_EP1S40)

    def test_constant_definition(self):
        assert CAM_SEARCH_CYCLES == 2
