"""Tests for the three-level information base."""

import pytest

from repro.hdl.simulator import Component, Simulator
from repro.hw.info_base import (
    LEVEL1_INDEX_WIDTH,
    LABEL_INDEX_WIDTH,
    LEVEL_DEPTH,
    InfoBase,
    InfoBaseLevel,
)


class _Driver(Component):
    def __init__(self, sim):
        super().__init__(sim, "drv")
        self.values = {}

    def set(self, wire, value):
        self.values[wire] = value

    def settle(self):
        for wire, value in self.values.items():
            wire.drive(value)


def _level(depth=8, index_width=20):
    sim = Simulator()
    drv = _Driver(sim)
    level = InfoBaseLevel(sim, "lvl", index_width, depth)
    return sim, drv, level


class TestInfoBaseLevel:
    def test_write_appends_at_w_index(self):
        sim, drv, level = _level()
        for i in range(3):
            drv.set(level.wr_en, 1)
            drv.set(level.wr_index, 100 + i)
            drv.set(level.wr_label, 500 + i)
            drv.set(level.wr_op, (i % 3) + 1)
            sim.step()
        drv.values.clear()
        assert level.count == 3
        assert level.dump_pairs() == [
            (100, 500, 1),
            (101, 501, 2),
            (102, 502, 3),
        ]

    def test_w_index_increments_like_figure14(self):
        """Fig 14: 'w_index increments ... indicating the label pairs
        are being properly stored and not overwritten'."""
        sim, drv, level = _level()
        observed = []
        drv.set(level.wr_en, 1)
        drv.set(level.wr_index, 1)
        drv.set(level.wr_label, 1)
        for _ in range(5):
            sim.step()
            observed.append(level.write_counter.count.value)
        assert observed == [1, 2, 3, 4, 5]

    def test_registered_read(self):
        sim, drv, level = _level()
        level.index_mem.poke(2, 42)
        level.label_mem.poke(2, 999)
        level.op_mem.poke(2, 2)
        level.read_counter.count.stage(2)
        level.read_counter.count.commit()
        sim.step()  # registered read latency
        assert level.rd_index == 42
        assert level.rd_label == 999
        assert level.rd_op == 2

    def test_overflow_flag(self):
        sim, drv, level = _level(depth=2)
        drv.set(level.wr_en, 1)
        drv.set(level.wr_index, 1)
        drv.set(level.wr_label, 1)
        sim.step(3)
        assert level.count == 2
        assert level.overflow.value == 1
        assert len(level.dump_pairs()) == 2

    def test_no_write_without_enable(self):
        sim, drv, level = _level()
        drv.set(level.wr_en, 0)
        drv.set(level.wr_index, 9)
        sim.step(2)
        assert level.count == 0

    def test_reset_clears_count(self):
        sim, drv, level = _level()
        drv.set(level.wr_en, 1)
        drv.set(level.wr_index, 1)
        drv.set(level.wr_label, 1)
        sim.step(2)
        drv.values.clear()
        sim.reset()
        assert level.count == 0
        assert level.dump_pairs() == []


class TestInfoBase:
    def test_three_levels_with_paper_widths(self):
        sim = Simulator()
        ib = InfoBase(sim, "ib", depth=4)
        assert ib.level(1).index_width == LEVEL1_INDEX_WIDTH  # 32-bit packet id
        assert ib.level(2).index_width == LABEL_INDEX_WIDTH   # 20-bit label
        assert ib.level(3).index_width == LABEL_INDEX_WIDTH

    def test_default_depth_is_1k(self):
        """'Each memory component supports 1 KB of label pairs.'"""
        assert LEVEL_DEPTH == 1024

    def test_level_lookup_validation(self):
        sim = Simulator()
        ib = InfoBase(sim, "ib", depth=4)
        with pytest.raises(ValueError):
            ib.level(0)
        with pytest.raises(ValueError):
            ib.level(4)

    def test_levels_are_independent(self):
        sim = Simulator()
        drv = _Driver(sim)
        ib = InfoBase(sim, "ib", depth=4)
        drv.set(ib.level(2).wr_en, 1)
        drv.set(ib.level(2).wr_index, 7)
        drv.set(ib.level(2).wr_label, 8)
        sim.step()
        assert ib.counts() == (0, 1, 0)

    def test_any_overflow(self):
        sim = Simulator()
        drv = _Driver(sim)
        ib = InfoBase(sim, "ib", depth=1)
        assert not ib.any_overflow
        drv.set(ib.level(3).wr_en, 1)
        drv.set(ib.level(3).wr_index, 1)
        drv.set(ib.level(3).wr_label, 1)
        sim.step(2)
        assert ib.any_overflow
