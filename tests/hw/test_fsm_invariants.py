"""Control-unit invariants, checked on every cycle of live traffic.

The paper: the main FSM "is used to ensure that the remaining state
machines are not working at the same time and possibly generate
inconsistent results."  These tests hook the simulator's tick callback
and assert the mutual-exclusion and protocol invariants on every single
clock edge of randomized transaction mixes.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hw import ModifierDriver
from repro.mpls.label import LabelEntry, LabelOp


class _InvariantMonitor:
    """Checks cycle-by-cycle invariants after every clock edge."""

    def __init__(self, drv: ModifierDriver) -> None:
        self.m = drv.modifier
        self.violations = []
        drv.sim.on_tick(self._check)

    def _check(self, cycle: int) -> None:
        m = self.m
        lbl_busy = not m.lbl_iface.in_state("IDLE")
        ib_busy = not m.ib_iface.in_state("IDLE")
        if lbl_busy and ib_busy:
            self.violations.append(
                (cycle, "both interfaces active", m.lbl_iface.state_name,
                 m.ib_iface.state_name)
            )
        if (lbl_busy or ib_busy) and m.main.in_state("IDLE"):
            self.violations.append(
                (cycle, "interface active while main idle")
            )
        busy_search = not m.search.in_state("IDLE")
        if busy_search and not (lbl_busy or ib_busy):
            self.violations.append((cycle, "orphan search"))
        if m.dp.stack.size.value > m.dp.stack.capacity:
            self.violations.append((cycle, "stack size over capacity"))


steps = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(min_value=16, max_value=30)),
        st.tuples(st.just("pop"), st.none()),
        st.tuples(
            st.just("write"),
            st.tuples(
                st.integers(min_value=1, max_value=3),
                st.integers(min_value=16, max_value=30),
                st.sampled_from(list(LabelOp)),
            ),
        ),
        st.tuples(
            st.just("search"),
            st.tuples(
                st.integers(min_value=1, max_value=3),
                st.integers(min_value=16, max_value=30),
            ),
        ),
        st.tuples(st.just("update"), st.integers(min_value=16, max_value=30)),
    ),
    max_size=10,
)


class TestInvariants:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(steps)
    def test_mutual_exclusion_every_cycle(self, ops):
        drv = ModifierDriver(ib_depth=16)
        drv.reset()
        monitor = _InvariantMonitor(drv)
        for kind, arg in ops:
            if kind == "push":
                drv.user_push(LabelEntry(label=arg, ttl=5))
            elif kind == "pop":
                drv.user_pop()
            elif kind == "write":
                level, key, op = arg
                drv.write_pair(level, key, key + 100, op)
            elif kind == "search":
                level, key = arg
                drv.search(level, key)
            else:
                drv.update(packet_id=arg, ttl=5)
        assert monitor.violations == []

    def test_idle_modifier_stays_idle(self):
        drv = ModifierDriver(ib_depth=16)
        drv.reset()
        monitor = _InvariantMonitor(drv)
        drv.sim.step(20)
        assert not drv.modifier.busy
        assert monitor.violations == []

    def test_busy_rejects_new_commands(self):
        drv = ModifierDriver(ib_depth=16)
        drv.reset()
        # put the modifier mid-transaction by hand
        dp = drv.modifier.dp
        drv._pins.set(dp.operation, 1)
        drv._pins.set(dp.data_in, LabelEntry(label=600).encode())
        drv.sim.step()
        drv._pins.set(dp.operation, 0)
        assert drv.modifier.busy
        with pytest.raises(RuntimeError):
            drv.user_push(LabelEntry(label=700))

    def test_done_is_a_single_cycle_pulse(self):
        drv = ModifierDriver(ib_depth=16)
        drv.reset()
        pulses = []
        drv.sim.on_tick(
            lambda c: pulses.append(
                (
                    c,
                    drv.modifier.search.done.value
                    or drv.modifier.ib_iface.done.value
                    or drv.modifier.lbl_iface.done.value,
                )
            )
        )
        drv.user_push(LabelEntry(label=600))
        drv.sim.step(5)  # idle padding
        high = [c for c, d in pulses if d]
        assert len(high) == 1
