"""Failure injection: reset in the middle of any transaction.

A real deployment resets the hardware at awkward moments (watchdogs,
reconfiguration).  Whatever cycle a transaction is interrupted at, the
modifier must come back to a clean idle state and service subsequent
operations correctly.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hw import ModifierDriver, UserOp
from repro.mpls.label import LabelEntry, LabelOp


def _begin_transaction(drv, op: UserOp) -> None:
    """Issue a command without waiting for completion."""
    dp = drv.modifier.dp
    drv._pins.set(dp.operation, int(op))
    if op == UserOp.UPDATE:
        drv._pins.set(dp.packet_id, 1234)
        drv._pins.set(dp.ttl_in, 9)
    elif op in (UserOp.WRITE_PAIR, UserOp.SEARCH):
        drv._pins.set(dp.level_in, 2)
        drv._pins.set(dp.label_lookup, 18)
        drv._pins.set(dp.data_in, (18 << 20) | 700)
        drv._pins.set(dp.op_in, int(LabelOp.SWAP))
    else:
        drv._pins.set(dp.data_in, LabelEntry(label=600, ttl=9).encode())
    drv.sim.step()
    drv._pins.set(dp.operation, 0)


class TestMidTransactionReset:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        op=st.sampled_from(
            [
                UserOp.USER_PUSH,
                UserOp.USER_POP,
                UserOp.WRITE_PAIR,
                UserOp.SEARCH,
                UserOp.UPDATE,
            ]
        ),
        interrupt_after=st.integers(min_value=0, max_value=12),
    )
    def test_reset_at_any_cycle_recovers(self, op, interrupt_after):
        drv = ModifierDriver(ib_depth=16)
        drv.reset()
        # some prior state so searches/updates have work to interrupt
        for i in range(3):
            drv.write_pair(2, 16 + i, 500 + i, LabelOp.SWAP)
        drv.user_push(LabelEntry(label=17, ttl=9, s=1))

        _begin_transaction(drv, op)
        drv.sim.step(interrupt_after)  # somewhere mid-flight (or past)
        drv.reset()

        # clean slate
        assert not drv.modifier.busy
        assert drv.modifier.dp.stack.size.value == 0
        assert drv.ib_counts() == (0, 0, 0)

        # and fully operational, with Table 6 costs intact
        assert drv.user_push(LabelEntry(label=700, ttl=5)) == 3
        assert drv.write_pair(2, 20, 900, LabelOp.SWAP) == 3
        result = drv.search(2, 20)
        assert result.found and result.label == 900
        assert result.cycles == 8

    def test_reset_clears_sticky_flags(self):
        drv = ModifierDriver(ib_depth=1, stack_capacity=1)
        drv.reset()
        drv.write_pair(1, 1, 100, LabelOp.SWAP)
        drv.write_pair(1, 2, 200, LabelOp.SWAP)  # overflow
        drv.user_push(LabelEntry(label=16))
        drv.user_push(LabelEntry(label=17))  # stack error
        assert drv.modifier.dp.info_base.any_overflow
        assert drv.modifier.dp.stack.error.value == 1
        drv.reset()
        assert not drv.modifier.dp.info_base.any_overflow
        assert drv.modifier.dp.stack.error.value == 0
