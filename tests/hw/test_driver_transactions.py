"""Transaction-level tests of the label stack modifier.

These tests exercise the full control unit + datapath through the
driver, asserting both functional results and the exact cycle counts of
Table 6.
"""

import pytest

from repro.hw import ModifierDriver
from repro.mpls.label import LabelEntry, LabelOp


@pytest.fixture
def drv():
    driver = ModifierDriver(ib_depth=1024)
    driver.reset()
    return driver


class TestTable6Constants:
    """Table 6: the constant-cycle operations."""

    def test_reset_is_3_cycles(self, drv):
        assert drv.reset() == 3

    def test_user_push_is_3_cycles(self, drv):
        assert drv.user_push(LabelEntry(label=600, ttl=64)) == 3

    def test_user_pop_is_3_cycles(self, drv):
        drv.user_push(LabelEntry(label=600, ttl=64))
        popped, cycles = drv.user_pop()
        assert cycles == 3
        assert popped.label == 600

    def test_write_pair_is_3_cycles(self, drv):
        assert drv.write_pair(1, 600, 500, LabelOp.SWAP) == 3
        assert drv.write_pair(2, 16, 500, LabelOp.SWAP) == 3
        assert drv.write_pair(3, 16, 500, LabelOp.SWAP) == 3


class TestSearchCycles:
    """Table 6: search = 3n + 5 worst case; a hit at (0-based) entry k
    costs 3k + 8."""

    @pytest.mark.parametrize("n", [1, 2, 5, 10, 32])
    def test_miss_is_3n_plus_5(self, drv, n):
        for i in range(n):
            drv.write_pair(2, 16 + i, 500 + i, LabelOp.SWAP)
        result = drv.search(2, 0xFFFFF)
        assert not result.found
        assert result.cycles == 3 * n + 5

    def test_empty_level_miss_is_5(self, drv):
        result = drv.search(2, 16)
        assert not result.found
        assert result.cycles == 5

    @pytest.mark.parametrize("k", [0, 1, 4, 9])
    def test_hit_position_cost(self, drv, k):
        for i in range(10):
            drv.write_pair(2, 16 + i, 500 + i, LabelOp.SWAP)
        result = drv.search(2, 16 + k)
        assert result.found
        assert result.cycles == 3 * k + 8

    def test_worst_case_hit_equals_miss_formula(self, drv):
        n = 10
        for i in range(n):
            drv.write_pair(2, 16 + i, 500 + i, LabelOp.SWAP)
        result = drv.search(2, 16 + n - 1)
        assert result.found
        assert result.cycles == 3 * n + 5


class TestSearchResults:
    def test_level1_lookup_by_packet_id(self, drv):
        """The Figure 14 scenario in miniature."""
        ops = [LabelOp.PUSH, LabelOp.SWAP, LabelOp.POP]
        for i in range(10):
            drv.write_pair(1, 600 + i, 500 + i, ops[i % 3])
        result = drv.search(1, 604)
        assert result.found
        assert result.label == 504
        assert result.op == ops[4 % 3]
        assert not result.discarded

    def test_level2_lookup_by_label(self, drv):
        """The Figure 15 scenario in miniature."""
        for i in range(10):
            drv.write_pair(2, i + 16, 500 + i, LabelOp.SWAP)
        result = drv.search(2, 20)
        assert result.found
        assert result.label == 504

    def test_miss_raises_packetdiscard(self, drv):
        """The Figure 16 scenario: lookup of an absent label."""
        for i in range(10):
            drv.write_pair(2, i + 16, 500 + i, LabelOp.SWAP)
        result = drv.search(2, 27 + 16)
        assert not result.found
        assert result.discarded
        assert result.label is None

    def test_duplicate_index_first_match_wins(self, drv):
        drv.write_pair(2, 16, 100, LabelOp.SWAP)
        drv.write_pair(2, 16, 200, LabelOp.SWAP)
        result = drv.search(2, 16)
        assert result.label == 100

    def test_searches_do_not_disturb_stored_pairs(self, drv):
        drv.write_pair(2, 16, 100, LabelOp.SWAP)
        before = drv.modifier.dp.info_base.level(2).dump_pairs()
        drv.search(2, 16)
        drv.search(2, 999)
        assert drv.modifier.dp.info_base.level(2).dump_pairs() == before


class TestUpdateFlows:
    def test_swap_from_info_base_is_search_plus_6(self, drv):
        """Table 6: 'swap from the information base' = 6 cycles."""
        drv.write_pair(1, 100, 200, LabelOp.SWAP)
        drv.user_push(LabelEntry(label=100, cos=5, ttl=10))
        result = drv.update()
        search_cost = 3 * 0 + 8  # found at entry 0 of a 1-entry level
        assert result.cycles == search_cost + 6
        assert result.performed == LabelOp.SWAP

    def test_swap_rewrites_label_and_decrements_ttl(self, drv):
        drv.write_pair(1, 100, 200, LabelOp.SWAP)
        drv.user_push(LabelEntry(label=100, cos=5, ttl=10))
        result = drv.update()
        assert len(result.stack) == 1
        top = result.stack[0]
        assert top.label == 200
        assert top.ttl == 9
        assert top.cos == 5  # "The CoS bits are not modified"
        assert top.s == 1

    def test_ingress_push_onto_empty_stack(self, drv):
        """The LER case: the packet identifier keys level 1."""
        drv.write_pair(1, 0x0A000001, 777, LabelOp.PUSH)
        result = drv.update(packet_id=0x0A000001, ttl=64, cos=3)
        assert result.performed == LabelOp.PUSH
        assert len(result.stack) == 1
        assert result.stack[0].label == 777
        assert result.stack[0].ttl == 63
        assert result.stack[0].cos == 3
        assert result.stack[0].s == 1

    def test_nested_push_costs_7_beyond_search(self, drv):
        drv.write_pair(1, 777, 888, LabelOp.PUSH)
        drv.user_push(LabelEntry(label=777, cos=1, ttl=20, s=1))
        result = drv.update()
        assert result.performed == LabelOp.PUSH
        assert result.cycles == (3 * 0 + 8) + 7
        assert [e.label for e in result.stack] == [888, 777]
        # the old entry keeps its (decremented) TTL beneath the new one
        assert [e.ttl for e in result.stack] == [19, 19]
        assert [e.s for e in result.stack] == [0, 1]

    def test_pop_from_info_base(self, drv):
        drv.write_pair(1, 777, 888, LabelOp.PUSH)
        drv.write_pair(2, 888, 16, LabelOp.POP)
        drv.user_push(LabelEntry(label=777, cos=1, ttl=20))
        drv.update()  # push 888 on top
        result = drv.update()  # pop it back off
        assert result.performed == LabelOp.POP
        assert [e.label for e in result.stack] == [777]

    def test_pop_propagates_decremented_ttl(self, drv):
        drv.write_pair(2, 888, 16, LabelOp.POP)
        drv.user_push(LabelEntry(label=777, cos=1, ttl=50))
        drv.user_push(LabelEntry(label=888, cos=1, ttl=20))
        result = drv.update()
        assert result.stack[0].label == 777
        assert result.stack[0].ttl == 19  # outer TTL - 1 written in

    def test_pop_to_empty_stack_is_egress(self, drv):
        drv.write_pair(1, 777, 16, LabelOp.POP)
        drv.user_push(LabelEntry(label=777, ttl=20))
        result = drv.update()
        assert result.performed == LabelOp.POP
        assert result.stack == ()
        assert not result.discarded


class TestUpdateDiscards:
    def test_miss_discards_and_clears_stack(self, drv):
        drv.user_push(LabelEntry(label=42, ttl=9))
        result = drv.update()
        assert result.discarded
        assert result.stack == ()
        assert result.performed is None

    def test_ttl_1_expires(self, drv):
        drv.write_pair(1, 100, 200, LabelOp.SWAP)
        drv.user_push(LabelEntry(label=100, ttl=1))
        result = drv.update()
        assert result.discarded
        assert result.stack == ()

    def test_ttl_0_expires(self, drv):
        drv.write_pair(1, 100, 200, LabelOp.SWAP)
        drv.user_push(LabelEntry(label=100, ttl=0))
        result = drv.update()
        assert result.discarded

    def test_ttl_2_survives(self, drv):
        drv.write_pair(1, 100, 200, LabelOp.SWAP)
        drv.user_push(LabelEntry(label=100, ttl=2))
        result = drv.update()
        assert not result.discarded
        assert result.stack[0].ttl == 1

    def test_noop_operation_is_inconsistent(self, drv):
        drv.write_pair(1, 100, 200, LabelOp.NOOP)
        drv.user_push(LabelEntry(label=100, ttl=9))
        result = drv.update()
        assert result.discarded

    def test_swap_on_empty_stack_is_inconsistent(self, drv):
        drv.write_pair(1, 0x0A000001, 200, LabelOp.SWAP)
        result = drv.update(packet_id=0x0A000001, ttl=64)
        assert result.discarded

    def test_push_beyond_three_levels_is_inconsistent(self, drv):
        drv.write_pair(1, 999, 1000, LabelOp.PUSH)
        for label in (500, 600, 999):
            drv.user_push(LabelEntry(label=label, ttl=9))
        result = drv.update()  # stack already 3 deep
        assert result.discarded

    def test_lsr_with_empty_stack_is_inconsistent(self, drv):
        """Table 3's rtrtype: a core LSR must never see unlabelled data."""
        drv.set_router_type(is_lsr=True)
        drv.write_pair(1, 0x0A000001, 777, LabelOp.PUSH)
        result = drv.update(packet_id=0x0A000001, ttl=64)
        assert result.discarded


class TestDriverPlumbing:
    def test_level_validation(self, drv):
        with pytest.raises(ValueError):
            drv.write_pair(0, 1, 2, LabelOp.SWAP)
        with pytest.raises(ValueError):
            drv.search(4, 1)

    def test_total_cycles_accumulates(self, drv):
        before = drv.total_cycles
        drv.user_push(LabelEntry(label=600))
        assert drv.total_cycles == before + 3

    def test_back_to_back_transactions(self, drv):
        """No dead cycles needed between operations ('no delays between
        operations')."""
        for i in range(5):
            assert drv.write_pair(2, 16 + i, 500 + i, LabelOp.SWAP) == 3
        assert drv.ib_counts() == (0, 5, 0)
