"""Tests for the hardware label stack."""

import pytest

from repro.hdl.simulator import Component, Simulator
from repro.hw.opcodes import StackOp
from repro.hw.stack import HardwareStack


class _Driver(Component):
    def __init__(self, sim):
        super().__init__(sim, "drv")
        self.values = {}

    def set(self, wire, value):
        self.values[wire] = value

    def settle(self):
        for wire, value in self.values.items():
            wire.drive(value)


def _mk(capacity=4):
    sim = Simulator()
    drv = _Driver(sim)
    stack = HardwareStack(sim, "stk", capacity=capacity)
    return sim, drv, stack


class TestHardwareStack:
    def test_push_updates_top_and_size(self):
        sim, drv, stack = _mk()
        drv.set(stack.op, StackOp.PUSH)
        drv.set(stack.data_in, 0xABCD)
        sim.step()
        assert stack.top.value == 0xABCD
        assert stack.size.value == 1

    def test_lifo_order(self):
        sim, drv, stack = _mk()
        for word in (1, 2, 3):
            drv.set(stack.op, StackOp.PUSH)
            drv.set(stack.data_in, word)
            sim.step()
        assert stack.entries_top_first() == [3, 2, 1]
        drv.set(stack.op, StackOp.POP)
        sim.step()
        assert stack.top.value == 2

    def test_hold_is_default(self):
        sim, drv, stack = _mk()
        drv.set(stack.op, StackOp.PUSH)
        drv.set(stack.data_in, 7)
        sim.step()
        drv.set(stack.op, StackOp.HOLD)
        sim.step(3)
        assert stack.size.value == 1

    def test_clear(self):
        sim, drv, stack = _mk()
        drv.set(stack.op, StackOp.PUSH)
        drv.set(stack.data_in, 7)
        sim.step()
        drv.set(stack.op, StackOp.CLEAR)
        sim.step()
        assert stack.size.value == 0
        assert stack.top.value == 0

    def test_write_top(self):
        sim, drv, stack = _mk()
        drv.set(stack.op, StackOp.PUSH)
        drv.set(stack.data_in, 7)
        sim.step()
        drv.set(stack.op, StackOp.WRITE_TOP)
        drv.set(stack.data_in, 99)
        sim.step()
        assert stack.top.value == 99
        assert stack.size.value == 1

    def test_pop_empty_sets_error(self):
        sim, drv, stack = _mk()
        drv.set(stack.op, StackOp.POP)
        sim.step()
        assert stack.error.value == 1
        assert stack.size.value == 0

    def test_push_full_sets_error_and_drops(self):
        sim, drv, stack = _mk(capacity=2)
        drv.set(stack.op, StackOp.PUSH)
        for word in (1, 2, 3):
            drv.set(stack.data_in, word)
            sim.step()
        assert stack.size.value == 2
        assert stack.error.value == 1
        assert stack.entries_top_first() == [2, 1]

    def test_write_top_empty_sets_error(self):
        sim, drv, stack = _mk()
        drv.set(stack.op, StackOp.WRITE_TOP)
        drv.set(stack.data_in, 1)
        sim.step()
        assert stack.error.value == 1

    def test_error_is_sticky(self):
        sim, drv, stack = _mk()
        drv.set(stack.op, StackOp.POP)
        sim.step()
        drv.set(stack.op, StackOp.HOLD)
        sim.step(2)
        assert stack.error.value == 1

    def test_top_is_registered(self):
        """During the push cycle, top still shows the pre-push value."""
        sim, drv, stack = _mk()
        drv.set(stack.op, StackOp.PUSH)
        drv.set(stack.data_in, 5)
        sim.settle_only()
        assert stack.top.value == 0  # not yet committed
        sim.step()
        assert stack.top.value == 5

    def test_reset_clears(self):
        sim, drv, stack = _mk()
        drv.set(stack.op, StackOp.PUSH)
        drv.set(stack.data_in, 5)
        sim.step()
        drv.values.clear()
        sim.reset()
        assert stack.size.value == 0
        assert stack.entries_top_first() == []

    def test_poke_entries(self):
        sim, drv, stack = _mk()
        stack.poke_entries_top_first([30, 20, 10])
        assert stack.top.value == 30
        assert stack.size.value == 3

    def test_poke_overflow_rejected(self):
        sim, drv, stack = _mk(capacity=2)
        with pytest.raises(ValueError):
            stack.poke_entries_top_first([1, 2, 3])

    def test_capacity_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            HardwareStack(sim, "s", capacity=0)
