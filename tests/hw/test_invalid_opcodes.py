"""Robustness: undefined operation codes must be ignored.

The ``extoperation`` input is 4 bits wide but only codes 1-8 are
defined; presenting an undefined code (9-15) or NONE must leave every
FSM in IDLE and the architectural state untouched.
"""

import pytest

from repro.hw import ModifierDriver
from repro.mpls.label import LabelEntry, LabelOp


@pytest.mark.parametrize("bad_op", [9, 10, 12, 15])
def test_undefined_opcode_is_ignored(bad_op):
    drv = ModifierDriver(ib_depth=16)
    drv.reset()
    drv.write_pair(2, 16, 500, LabelOp.SWAP)
    drv.user_push(LabelEntry(label=16, ttl=9, s=1))
    stack_before = drv.stack()
    counts_before = drv.ib_counts()

    dp = drv.modifier.dp
    drv._pins.set(dp.operation, bad_op)
    drv.sim.step(3)
    drv._pins.set(dp.operation, 0)
    drv.sim.step(2)

    assert not drv.modifier.busy
    assert drv.stack() == stack_before
    assert drv.ib_counts() == counts_before
    # and the modifier still works afterwards
    assert drv.search(2, 16).found


def test_none_opcode_never_triggers():
    drv = ModifierDriver(ib_depth=16)
    drv.reset()
    drv.sim.step(10)
    assert not drv.modifier.busy
    assert drv.sim.cycle >= 10
