"""Tests for the bounded bank-write command queue (backpressure).

Info-base programming used to stage an unbounded pile of writes; the
bounded queue makes the control plane yield (``bank_drain``) when it
outruns the hardware, instead of assuming infinite staging.
"""

import pytest

from repro.core.hwnode import HardwareLSRNode
from repro.hw import ModifierDriver
from repro.hw.model import FunctionalModifier, StagingBackpressure
from repro.mpls.label import LabelOp
from repro.mpls.nhlfe import NHLFE
from repro.mpls.router import LSRNode, RouterRole


class TestModelBackpressure:
    def test_unlimited_by_default(self):
        dev = FunctionalModifier(ib_depth=64)
        dev.bank_begin()
        for i in range(40):
            dev.bank_write_pair(2, 100 + i, 500 + i, LabelOp.SWAP)
        dev.bank_commit()
        assert dev.ib_counts()[1] == 40

    def test_limit_raises_then_drain_reopens(self):
        dev = FunctionalModifier(ib_depth=64, staging_limit=4)
        dev.bank_begin()
        for i in range(4):
            dev.bank_write_pair(2, 100 + i, 500 + i, LabelOp.SWAP)
        with pytest.raises(StagingBackpressure):
            dev.bank_write_pair(2, 104, 504, LabelOp.SWAP)
        assert dev.bank_drain() == 4
        # the rejected write retries cleanly after the drain
        dev.bank_write_pair(2, 104, 504, LabelOp.SWAP)
        dev.bank_commit()
        assert dev.ib_counts()[1] == 5

    def test_rejected_write_stages_nothing(self):
        dev = FunctionalModifier(ib_depth=64, staging_limit=2)
        dev.bank_begin()
        dev.bank_write_pair(2, 1, 10, LabelOp.SWAP)
        dev.bank_write_pair(2, 2, 20, LabelOp.SWAP)
        before = dev.total_cycles
        with pytest.raises(StagingBackpressure):
            dev.bank_write_pair(2, 3, 30, LabelOp.SWAP)
        assert dev.total_cycles == before  # no cycles for a refusal
        dev.bank_drain()
        dev.bank_write_pair(2, 3, 30, LabelOp.SWAP)
        dev.bank_commit()
        assert dev.ib_counts()[1] == 3

    def test_drain_costs_zero_cycles(self):
        dev = FunctionalModifier(ib_depth=64, staging_limit=2)
        dev.bank_begin()
        dev.bank_write_pair(2, 1, 10, LabelOp.SWAP)
        before = dev.total_cycles
        dev.bank_drain()
        assert dev.total_cycles == before

    def test_drain_requires_open_transaction(self):
        dev = FunctionalModifier(ib_depth=64, staging_limit=2)
        with pytest.raises(RuntimeError):
            dev.bank_drain()

    def test_commit_and_rollback_reset_the_counter(self):
        dev = FunctionalModifier(ib_depth=64, staging_limit=2)
        dev.bank_begin()
        dev.bank_write_pair(2, 1, 10, LabelOp.SWAP)
        dev.bank_write_pair(2, 2, 20, LabelOp.SWAP)
        dev.bank_commit()
        dev.bank_begin()
        # a fresh transaction starts with an empty command queue
        dev.bank_write_pair(2, 3, 30, LabelOp.SWAP)
        dev.bank_write_pair(2, 4, 40, LabelOp.SWAP)
        dev.bank_rollback()
        dev.bank_begin()
        dev.bank_write_pair(2, 5, 50, LabelOp.SWAP)
        dev.bank_commit()

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            FunctionalModifier(ib_depth=64, staging_limit=0)
        with pytest.raises(ValueError):
            ModifierDriver(ib_depth=64, staging_limit=0)

    def test_limited_table_equals_unlimited(self):
        plain = FunctionalModifier(ib_depth=64)
        limited = FunctionalModifier(ib_depth=64, staging_limit=3)
        for dev in (plain, limited):
            dev.bank_begin()
            for i in range(10):
                try:
                    dev.bank_write_pair(2, 100 + i, 500 + i, LabelOp.SWAP)
                except StagingBackpressure:
                    dev.bank_drain()
                    dev.bank_write_pair(2, 100 + i, 500 + i, LabelOp.SWAP)
            dev.bank_commit()
        for i in range(10):
            assert (
                plain.search(2, 100 + i).label
                == limited.search(2, 100 + i).label
                == 500 + i
            )


class TestDriverBackpressure:
    def test_driver_limit_matches_model(self):
        drv = ModifierDriver(ib_depth=64, staging_limit=2)
        drv.reset()
        drv.bank_begin()
        drv.bank_write_pair(2, 1, 10, LabelOp.SWAP)
        drv.bank_write_pair(2, 2, 20, LabelOp.SWAP)
        with pytest.raises(StagingBackpressure):
            drv.bank_write_pair(2, 3, 30, LabelOp.SWAP)
        assert drv.bank_drain() == 2
        drv.bank_write_pair(2, 3, 30, LabelOp.SWAP)
        drv.bank_commit()
        for key, want in ((1, 10), (2, 20), (3, 30)):
            assert drv.search(2, key).label == want


class TestHWNodeBackpressure:
    def _install(self, node, count):
        for i in range(count):
            node.ilm.install(
                100 + i,
                NHLFE(op=LabelOp.SWAP, out_label=500 + i, next_hop="x"),
            )

    def test_sync_stalls_but_programs_the_full_table(self):
        node = HardwareLSRNode(
            "lsr-1", RouterRole.LSR, ib_depth=256, staging_limit=4
        )
        self._install(node, 10)
        node._sync_info_base()
        # 10 entries x 3 levels = 30 writes through a queue of 4
        assert node.backpressure_stalls > 0
        assert node.modifier.ib_counts() == (10, 10, 10)

    def test_stalled_node_forwards_like_an_unlimited_one(self):
        limited = HardwareLSRNode(
            "lsr-1", RouterRole.LSR, ib_depth=256, staging_limit=2
        )
        plain = HardwareLSRNode("lsr-1", RouterRole.LSR, ib_depth=256)
        software = LSRNode("lsr-1", RouterRole.LSR)
        for node in (limited, plain, software):
            self._install(node, 8)
        from tests.core.test_hwnode import labelled

        for label in range(100, 108):
            decisions = [n.receive(labelled(label)) for n in
                         (limited, plain, software)]
            assert len({d.action for d in decisions}) == 1
            assert len({str(d.packet.stack) for d in decisions}) == 1
        assert limited.backpressure_stalls > 0
        assert plain.backpressure_stalls == 0

    def test_unlimited_node_never_stalls(self):
        node = HardwareLSRNode("lsr-1", RouterRole.LSR, ib_depth=256)
        self._install(node, 50)
        node._sync_info_base()
        assert node.backpressure_stalls == 0
