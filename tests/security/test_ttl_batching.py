"""TTL-expiry equivalence: aggregate trains vs the scalar path.

A :class:`~repro.net.aggregate.FlowAggregate` whose template carries
TTL <= 1 must behave exactly like the same train of individual
packets: the whole train is discarded at ingress (FTN lookup first,
then the TTL check -- no decrement ever happens), the per-node
counters scale by the train's count, and the security monitor sees the
same count-aware exception punt.  This is the adversarial counterpart
of the general batching-equivalence suite: the TTL-flood attack's
defense (the exception-path rate limiter) must not care which shape
the flood arrives in.
"""

from repro.faults.chaos import build_run
from repro.faults.scenario import Scenario
from repro.net.aggregate import FlowAggregate
from repro.net.packet import IPv4Packet
from repro.obs import telemetry_session

RAW = {
    "name": "ttl-train",
    "topology": {"kind": "ring", "n": 4,
                 "bandwidth_bps": 10e6, "delay_s": 1e-3},
    "edges": ["n0", "n2"],
    "control": "ldp-messages",
    "duration": 1.0,
    "traffic": [
        {"ingress": "n0", "egress": "n2", "prefix": "10.2.0.0/16",
         "src": "10.0.0.5", "dst": "10.2.0.9",
         "rate_bps": 1e6, "packet_size": 500, "start": 0.1},
    ],
    "faults": [],
    "security": {"enabled": True},
}

#: (ttl, count) trains fired at n0 mid-run; both TTL values expire at
#: ingress, and 60 > the limiter's burst so both sides get limited
TRAINS = [(1, 60), (0, 25)]


def _packet(ttl, flow_id, seq, created_at):
    return IPv4Packet(
        src="203.0.113.9",
        dst="10.2.0.9",  # a remote prefix: FTN-matches, then expires
        ttl=ttl,
        flow_id=flow_id,
        seq=seq,
        created_at=created_at,
    )


def _run(batched):
    scenario = Scenario.from_dict(RAW)
    with telemetry_session():
        run = build_run(scenario, seed=3)
        if batched:
            run.network.enable_batching()
        network = run.network

        def fire():
            now = network.scheduler.now
            for j, (ttl, count) in enumerate(TRAINS):
                flow_id = 777000 + j
                if batched:
                    network.inject_aggregate(
                        "n0",
                        FlowAggregate(
                            template=_packet(ttl, flow_id, 0, now),
                            count=count,
                            interval=0.0,
                        ),
                    )
                else:
                    for i in range(count):
                        network.inject_external(
                            "n0", _packet(ttl, flow_id, i, now)
                        )

        network.scheduler.at(0.5, fire)
        network.run(until=scenario.duration)
    node = network.nodes["n0"]
    return {
        "engine_discards": node.engine.counts.discards,
        "ttl_updates": node.engine.counts.ttl_updates,
        "stats_discarded": node.stats.discarded,
        "discard_reasons": dict(node.stats.discard_reasons),
        "drop_count": sum(drop.count for drop in network.drops),
        "exceptions": (
            run.security.exceptions_total,
            run.security.exceptions_forwarded,
            run.security.exceptions_limited,
        ),
    }


def test_aggregate_ttl_expiry_matches_scalar():
    scalar = _run(batched=False)
    batched = _run(batched=True)
    assert batched == scalar


def test_the_trains_actually_expired():
    """Guard the comparison above against a vacuous pass: the counters
    must show the full trains discarded, punted, and rate-limited."""
    expected = sum(count for _, count in TRAINS)
    result = _run(batched=True)
    reason = result["discard_reasons"]["IPv4 TTL expired at ingress"]
    assert reason == expected
    total, forwarded, limited = result["exceptions"]
    assert total == expected
    assert forwarded + limited == total
    assert limited > 0  # 60-packet burst > the 20-token bucket
    # the trains are n0's only discards: the background flow forwards
    assert result["stats_discarded"] == expected
    assert result["engine_discards"] == expected
