"""End-to-end tests of the adversarial fault family.

``examples/chaos_security.json`` runs all four MPLS attacks --
label spoofing, LDP session hijack, VPN cross-connect leak, TTL-expiry
flood -- against the full mitigation layer, then again with every
guard stood down (``--mitigation off``).  The contract under test:
mitigation-on drives every blast radius to zero with stamped
detection/mitigation times; mitigation-off leaves the same seeded
attacks undetected with a strictly larger blast radius.  Reports are
byte-stable and the ``security`` section only exists when the scenario
asks for it.
"""

import json
import os

import pytest

from repro.faults import Scenario, ScenarioError, run_scenario
from repro.faults.scenario import FAULT_PARAMS, SECURITY_KINDS, FaultKind
from repro.obs import telemetry_session

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "examples"
)
SCENARIO = os.path.join(EXAMPLES_DIR, "chaos_security.json")


def _load_raw():
    with open(SCENARIO) as handle:
        return json.load(handle)


def _run(overrides=None, seed=7):
    raw = _load_raw()
    if overrides:
        raw.update(overrides)
    with telemetry_session():
        return run_scenario(Scenario.from_dict(raw), seed=seed)


@pytest.fixture(scope="module")
def mitigated():
    return _run()


@pytest.fixture(scope="module")
def unmitigated():
    return _run({"security": {"enabled": False}})


def _attack(report, kind):
    matches = [a for a in report["security"]["attacks"] if a["kind"] == kind]
    assert len(matches) == 1
    return matches[0]


class TestScenarioParsing:
    def test_attack_kinds_parse(self):
        scenario = Scenario.from_dict(_load_raw())
        kinds = {fault.kind for fault in scenario.faults}
        assert kinds == {
            FaultKind.LABEL_SPOOF,
            FaultKind.LDP_HIJACK,
            FaultKind.XCONNECT_LEAK,
            FaultKind.TTL_FLOOD,
        }
        assert {k.value for k in kinds} == set(SECURITY_KINDS)
        assert scenario.security == {"enabled": True}

    def test_every_kind_has_a_param_table(self):
        assert set(FAULT_PARAMS) == {k.value for k in FaultKind}

    def test_misspelled_param_rejected(self):
        # the classic typo: 'losss' on a link-loss fault must not be
        # silently ignored, and the error must name the accepted params
        raw = _load_raw()
        raw["faults"] = [
            {"at": 0.2, "kind": "link-loss", "target": ["n0", "n1"],
             "losss": 0.5}
        ]
        with pytest.raises(
            ScenarioError, match=r"link-loss: unknown param\(s\) losss"
        ):
            Scenario.from_dict(raw)

    def test_attack_param_rejected_with_accepted_list(self):
        raw = _load_raw()
        raw["faults"] = [
            {"at": 0.2, "kind": "label-spoof", "target": ["n0"],
             "packet": 7}
        ]
        with pytest.raises(ScenarioError, match="accepted: .*packets"):
            Scenario.from_dict(raw)

    def test_attacks_require_the_security_key(self):
        raw = _load_raw()
        del raw["security"]
        with pytest.raises(ScenarioError, match="security"):
            Scenario.from_dict(raw)

    def test_bad_security_key_rejected(self):
        with pytest.raises(ScenarioError, match="unknown security key"):
            _run({"security": {"enabled": True, "oops": 1}})

    def test_attacks_need_a_message_control_plane(self):
        with pytest.raises(ScenarioError, match="ldp-messages"):
            _run({"control": "ldp"})

    def test_spoof_target_must_be_an_edge(self):
        faults = [{"at": 0.25, "kind": "label-spoof", "target": ["n1"]}]
        with pytest.raises(ScenarioError, match="trust boundary"):
            _run({"faults": faults})


class TestMitigatedOutcome:
    def test_every_attack_detected_and_mitigated(self, mitigated):
        attacks = mitigated["security"]["attacks"]
        assert len(attacks) == 4
        for attack in attacks:
            assert attack["detected_at"] is not None
            assert attack["mitigated_at"] is not None
            assert attack["time_to_detect_s"] > 0
            assert attack["time_to_mitigate_s"] >= attack["time_to_detect_s"]

    def test_blast_radius_is_zero(self, mitigated):
        security = mitigated["security"]
        assert security["enabled"] is True
        assert security["blast_radius_total"] == 0
        assert security["blast_fecs_total"] == []
        for attack in security["attacks"]:
            assert attack["blast_radius_fecs"] == 0

    def test_spoofed_stacks_die_at_the_trust_boundary(self, mitigated):
        spoof = _attack(mitigated, "label-spoof")
        assert spoof["packets_rejected"] > 0
        assert spoof["packets_accepted"] == 0
        assert spoof["packets_leaked"] == 0
        assert (
            mitigated["security"]["guard_rejections"]
            == spoof["packets_rejected"]
        )

    def test_forged_shutdown_fails_authentication(self, mitigated):
        hijack = _attack(mitigated, "ldp-hijack")
        assert hijack["packets_rejected"] == 1
        assert hijack["packets_accepted"] == 0
        assert mitigated["security"]["auth_mismatches"] == 1

    def test_cross_connect_is_quarantined(self, mitigated):
        leak = _attack(mitigated, "xconnect-leak")
        # the poisoned entry was live until the next audit pass, so a
        # few packets leak inside the detection window...
        assert leak["packets_leaked"] > 0
        # ...but quarantine moves the victim FEC out of the blast
        assert leak["blast_fecs"] == []
        assert leak["quarantined_fecs"] == ["10.4.0.0/16"]
        quarantines = mitigated["security"]["quarantines"]
        assert len(quarantines) == 1
        assert quarantines[0]["fec"] == "10.4.0.0/16"
        assert quarantines[0]["leaked_to"] == "10.2.0.0/16"

    def test_flood_is_rate_limited(self, mitigated):
        flood = _attack(mitigated, "ttl-flood")
        assert flood["blast_radius_fecs"] == 0
        path = mitigated["security"]["exception_path"]
        assert path["total"] == 1200  # every flood packet expired
        assert path["forwarded"] + path["limited"] == path["total"]
        assert path["limited"] > 0
        # the bounded FIFO never starved: no session was torn down
        assert mitigated["overload"]["holds_expired"] == 0


class TestUnmitigatedOutcome:
    def test_attacks_run_blind(self, unmitigated):
        security = unmitigated["security"]
        assert security["enabled"] is False
        for attack in security["attacks"]:
            assert attack["detected_at"] is None
            assert attack["mitigated_at"] is None

    def test_every_attack_has_blast(self, unmitigated):
        security = unmitigated["security"]
        assert security["blast_radius_total"] > 0
        for attack in security["attacks"]:
            assert attack["blast_radius_fecs"] > 0

    def test_spoofed_traffic_reaches_hosts(self, unmitigated):
        spoof = _attack(unmitigated, "label-spoof")
        assert spoof["packets_accepted"] > 0
        assert spoof["packets_leaked"] > 0
        assert unmitigated["security"]["guard_rejections"] == 0

    def test_forged_shutdown_tears_the_session(self, unmitigated):
        hijack = _attack(unmitigated, "ldp-hijack")
        assert hijack["packets_accepted"] == 1
        assert unmitigated["security"]["auth_mismatches"] == 0

    def test_cross_connect_leaks_vpn_traffic(self, unmitigated):
        leak = _attack(unmitigated, "xconnect-leak")
        assert leak["packets_leaked"] > 0
        assert leak["quarantined_fecs"] == []
        assert leak["blast_fecs"] == ["10.4.0.0/16"]
        assert unmitigated["security"]["quarantines"] == []

    def test_flood_starves_the_control_plane(self, unmitigated):
        path = unmitigated["security"]["exception_path"]
        assert path["limited"] == 0
        assert path["forwarded"] == path["total"]
        # unthrottled exception load starved keepalives in the FIFO
        assert unmitigated["overload"]["holds_expired"] > 0

    def test_mitigation_strictly_reduces_blast(self, mitigated, unmitigated):
        on = mitigated["security"]
        off = unmitigated["security"]
        assert on["blast_radius_total"] < off["blast_radius_total"]
        for on_attack, off_attack in zip(on["attacks"], off["attacks"]):
            assert on_attack["kind"] == off_attack["kind"]
            assert (
                on_attack["blast_radius_fecs"]
                < off_attack["blast_radius_fecs"]
            )


class TestReportStability:
    def test_mitigated_report_is_byte_stable(self, mitigated):
        assert _run().to_json() == mitigated.to_json()

    def test_unmitigated_report_is_byte_stable(self, unmitigated):
        off = {"security": {"enabled": False}}
        assert _run(off).to_json() == unmitigated.to_json()

    def test_different_seeds_differ(self, mitigated):
        assert _run(seed=8).to_json() != mitigated.to_json()

    def test_report_without_security_key_lacks_the_section(self):
        raw = _load_raw()
        del raw["security"]
        raw["faults"] = []  # attacks are what require the key
        raw["duration"] = 0.5
        with telemetry_session():
            report = run_scenario(Scenario.from_dict(raw), seed=7)
        assert "security" not in report.data

    def test_events_register_with_telemetry_off(self):
        # no telemetry_session(): the monitor's emit paths must not
        # blow up when the registry is dark
        report = run_scenario(Scenario.from_dict(_load_raw()), seed=7)
        assert report["security"]["blast_radius_total"] == 0
