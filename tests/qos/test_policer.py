"""Tests for the token-bucket policer."""

import pytest

from repro.qos.policer import PolicerAction, TokenBucket


class TestTokenBucket:
    def test_burst_conforms(self):
        tb = TokenBucket(rate_bps=8000, burst_bytes=1000)
        assert tb.offer(1000, now=0.0) is PolicerAction.CONFORM

    def test_excess_dropped(self):
        tb = TokenBucket(rate_bps=8000, burst_bytes=1000)
        tb.offer(1000, now=0.0)
        assert tb.offer(1, now=0.0) is PolicerAction.EXCEED

    def test_refill(self):
        tb = TokenBucket(rate_bps=8000, burst_bytes=1000)
        tb.offer(1000, now=0.0)
        # 8000 bps = 1000 B/s; after 0.5 s, 500 tokens are back
        assert tb.offer(500, now=0.5) is PolicerAction.CONFORM
        assert tb.offer(1, now=0.5) is PolicerAction.EXCEED

    def test_bucket_never_exceeds_burst(self):
        tb = TokenBucket(rate_bps=8000, burst_bytes=1000)
        tb.offer(0, now=100.0)  # long idle: still capped at burst
        assert tb.tokens == pytest.approx(1000)

    def test_sustained_rate(self):
        """Offering exactly the rate conforms; double the rate loses
        about half."""
        tb = TokenBucket(rate_bps=80_000, burst_bytes=2000)
        t = 0.0
        for _ in range(100):  # 10 kB over 1 s at 10 kB/s = conform all
            tb.offer(100, now=t)
            t += 0.01
        assert tb.exceeded == 0
        tb2 = TokenBucket(rate_bps=80_000, burst_bytes=2000)
        t = 0.0
        for _ in range(200):  # 20 kB over 1 s: ~half must exceed
            tb2.offer(100, now=t)
            t += 0.005
        assert tb2.exceeded == pytest.approx(90, abs=25)

    def test_time_backwards_rejected(self):
        tb = TokenBucket(rate_bps=8000, burst_bytes=1000)
        tb.offer(10, now=1.0)
        with pytest.raises(ValueError):
            tb.offer(10, now=0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_bps=0, burst_bytes=100)
        with pytest.raises(ValueError):
            TokenBucket(rate_bps=100, burst_bytes=0)

    def test_byte_counters(self):
        tb = TokenBucket(rate_bps=8000, burst_bytes=100)
        tb.offer(50, now=0.0)
        tb.offer(500, now=0.0)
        assert tb.conformed_bytes == 50
        assert tb.exceeded_bytes == 500
