"""Property-based tests of the QoS elements' invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qos.policer import TokenBucket
from repro.qos.queues import REDQueue, TailDropQueue
from repro.qos.scheduler import PriorityScheduler, WFQScheduler

sizes = st.integers(min_value=1, max_value=2000)
cos_values = st.integers(min_value=0, max_value=7)


class TestPolicerProperties:
    @given(st.lists(st.tuples(sizes, st.floats(min_value=0.001, max_value=0.1)),
                    max_size=50))
    def test_conformed_never_exceeds_long_term_rate_plus_burst(self, offers):
        """Token bucket bound: conformed bytes <= burst + rate * time."""
        rate, burst = 80_000.0, 1500
        tb = TokenBucket(rate_bps=rate, burst_bytes=burst)
        t = 0.0
        for size, gap in offers:
            t += gap
            tb.offer(size, now=t)
        assert tb.conformed_bytes <= burst + rate / 8.0 * t + 1e-6

    @given(st.lists(sizes, max_size=50))
    def test_accounting_partitions_offers(self, offered):
        tb = TokenBucket(rate_bps=8000, burst_bytes=1000)
        for i, size in enumerate(offered):
            tb.offer(size, now=float(i))
        assert tb.conformed + tb.exceeded == len(offered)
        assert tb.conformed_bytes + tb.exceeded_bytes == sum(offered)

    @given(sizes)
    def test_tokens_never_negative_or_above_burst(self, size):
        tb = TokenBucket(rate_bps=8000, burst_bytes=1000)
        tb.offer(size, now=0.0)
        assert 0 <= tb.tokens <= 1000


class TestQueueProperties:
    @given(st.lists(st.integers(), max_size=100))
    def test_taildrop_preserves_order_of_accepted(self, items):
        q = TailDropQueue(capacity=16)
        accepted = [item for item in items if q.enqueue(item)]
        drained = []
        while True:
            item = q.dequeue()
            if item is None:
                break
            drained.append(item)
        assert drained == accepted

    @given(st.lists(st.integers(), max_size=200), st.integers(0, 1000))
    def test_red_never_exceeds_capacity(self, items, seed):
        q = REDQueue(capacity=16, min_threshold=4, max_threshold=12,
                     seed=seed)
        for item in items:
            q.enqueue(item)
            assert len(q) <= 16

    @given(st.lists(st.integers(), max_size=100), st.integers(0, 1000))
    def test_red_accounting(self, items, seed):
        q = REDQueue(capacity=16, min_threshold=4, max_threshold=12,
                     seed=seed)
        for item in items:
            q.enqueue(item)
        assert q.enqueued + q.dropped == len(items)


class TestSchedulerProperties:
    @given(st.lists(st.tuples(st.integers(), cos_values), max_size=60))
    def test_priority_is_work_conserving(self, items):
        s = PriorityScheduler(capacity_per_class=100)
        for item, cos in items:
            s.enqueue(item, cos)
        drained = 0
        while s.dequeue() is not None:
            drained += 1
        assert drained == len(items)
        assert len(s) == 0

    @given(st.lists(st.tuples(st.integers(), cos_values), max_size=60))
    def test_priority_never_dequeues_lower_before_higher(self, items):
        s = PriorityScheduler(capacity_per_class=100)
        tagged = [((i, item), cos) for i, (item, cos) in enumerate(items)]
        by_item = {key: cos for key, cos in tagged}
        for key, cos in tagged:
            s.enqueue(key, cos)
        prev_cos = 8
        while True:
            key = s.dequeue()
            if key is None:
                break
            cos = by_item[key]
            assert cos <= prev_cos
            prev_cos = cos

    @settings(max_examples=30)
    @given(
        st.lists(st.tuples(sizes, cos_values), min_size=1, max_size=40),
        st.dictionaries(cos_values, st.floats(min_value=0.1, max_value=8),
                        max_size=8),
    )
    def test_wfq_is_work_conserving(self, items, weights):
        s = WFQScheduler(weights=weights, capacity_per_class=100)
        for i, (size, cos) in enumerate(items):
            s.enqueue((i, size), cos)
        drained = 0
        while s.dequeue() is not None:
            drained += 1
        assert drained == len(items)

    @given(st.lists(st.tuples(sizes, cos_values), max_size=40))
    def test_wfq_fifo_within_class(self, items):
        s = WFQScheduler(capacity_per_class=100)
        for i, (size, cos) in enumerate(items):
            s.enqueue(((i, cos), size), cos)
        seen_per_class = {}
        while True:
            out = s.dequeue()
            if out is None:
                break
            (i, cos), _size = out
            last = seen_per_class.get(cos, -1)
            assert i > last
            seen_per_class[cos] = i
