"""Tests for queues and CoS schedulers."""

import pytest

from repro.qos.queues import REDQueue, TailDropQueue
from repro.qos.scheduler import PriorityScheduler, WFQScheduler


class TestTailDrop:
    def test_fifo(self):
        q = TailDropQueue(capacity=4)
        for i in range(3):
            q.enqueue(i, cos=i)
        assert [q.dequeue() for _ in range(3)] == [0, 1, 2]

    def test_per_cos_drop_accounting(self):
        q = TailDropQueue(capacity=1)
        q.enqueue("a", cos=0)
        q.enqueue("b", cos=5)
        q.enqueue("c", cos=5)
        assert q.dropped == 2
        assert q.dropped_by_cos == {5: 2}

    def test_validation(self):
        with pytest.raises(ValueError):
            TailDropQueue(capacity=0)


class TestRED:
    def test_below_min_threshold_never_drops(self):
        q = REDQueue(capacity=64, min_threshold=16, max_threshold=48, seed=1)
        for i in range(10):
            assert q.enqueue(i)
        assert q.dropped == 0

    def test_early_drops_under_sustained_load(self):
        q = REDQueue(capacity=64, min_threshold=8, max_threshold=32,
                     max_probability=0.5, seed=1)
        accepted = 0
        for i in range(400):
            if q.enqueue(i):
                accepted += 1
            if i % 2 == 0:
                q.dequeue()
        assert q.dropped_early > 0
        assert accepted > 0

    def test_forced_drop_at_capacity(self):
        q = REDQueue(capacity=8, min_threshold=2, max_threshold=8,
                     max_probability=0.01, weight=1.0, seed=1)
        for i in range(20):
            q.enqueue(i)
        assert q.dropped_forced > 0
        assert len(q) <= 8

    def test_deterministic_given_seed(self):
        def run(seed):
            q = REDQueue(capacity=32, min_threshold=4, max_threshold=16,
                         max_probability=0.5, seed=seed)
            return [q.enqueue(i) for i in range(100)]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_average_tracks_occupancy(self):
        q = REDQueue(capacity=64, min_threshold=16, max_threshold=48,
                     weight=0.5, seed=1)
        for i in range(10):
            q.enqueue(i)
        assert 0 < q.average < 10

    def test_validation(self):
        with pytest.raises(ValueError):
            REDQueue(min_threshold=50, max_threshold=40)
        with pytest.raises(ValueError):
            REDQueue(max_probability=0)
        with pytest.raises(ValueError):
            REDQueue(weight=2)


class TestPriorityScheduler:
    def test_higher_cos_first(self):
        s = PriorityScheduler()
        s.enqueue("low", cos=1)
        s.enqueue("high", cos=6)
        s.enqueue("mid", cos=3)
        assert s.dequeue() == "high"
        assert s.dequeue() == "mid"
        assert s.dequeue() == "low"

    def test_fifo_within_class(self):
        s = PriorityScheduler()
        s.enqueue("a", cos=2)
        s.enqueue("b", cos=2)
        assert s.dequeue() == "a"

    def test_starvation_is_possible(self):
        """Strict priority's known property: high load starves low."""
        s = PriorityScheduler(capacity_per_class=4)
        for i in range(3):
            s.enqueue(f"hi{i}", cos=7)
        s.enqueue("lo", cos=0)
        out = [s.dequeue() for _ in range(3)]
        assert "lo" not in out

    def test_per_class_capacity(self):
        s = PriorityScheduler(capacity_per_class=1)
        assert s.enqueue("a", cos=3)
        assert not s.enqueue("b", cos=3)
        assert s.enqueue("c", cos=4)  # other class unaffected
        assert s.dropped_by_cos == {3: 1}

    def test_cos_clamped(self):
        s = PriorityScheduler()
        s.enqueue("x", cos=99)
        assert s.depth(7) == 1

    def test_empty(self):
        assert PriorityScheduler().dequeue() is None

    def test_len(self):
        s = PriorityScheduler()
        s.enqueue("a", cos=1)
        s.enqueue("b", cos=5)
        assert len(s) == 2


class TestWFQScheduler:
    def test_weighted_shares(self):
        """Class 5 with 3x weight drains ~3x the bytes of class 1."""
        s = WFQScheduler(weights={5: 3.0, 1: 1.0}, capacity_per_class=200,
                         quantum_unit=1000)
        for i in range(100):
            s.enqueue((f"hi{i}", 1000), cos=5)
            s.enqueue((f"lo{i}", 1000), cos=1)
        first40 = [s.dequeue() for _ in range(40)]
        hi = sum(1 for item, _ in first40 if item.startswith("hi"))
        lo = len(first40) - hi
        assert hi == pytest.approx(30, abs=5)
        assert lo > 0  # no starvation

    def test_equal_weights_alternate(self):
        s = WFQScheduler(quantum_unit=1500)
        for i in range(4):
            s.enqueue((f"a{i}", 1500), cos=1)
            s.enqueue((f"b{i}", 1500), cos=2)
        out = [s.dequeue()[0][0] for _ in range(8)]
        assert out.count("a") == 4
        assert out.count("b") == 4

    def test_small_weight_still_served(self):
        s = WFQScheduler(weights={0: 0.1, 7: 1.0}, quantum_unit=1500)
        s.enqueue(("lo", 1500), cos=0)
        for i in range(5):
            s.enqueue((f"hi{i}", 1500), cos=7)
        out = [s.dequeue() for _ in range(6)]
        assert ("lo", 1500) in out

    def test_per_class_capacity(self):
        s = WFQScheduler(capacity_per_class=1)
        assert s.enqueue(("a", 100), cos=1)
        assert not s.enqueue(("b", 100), cos=1)
        assert s.dropped == 1

    def test_bare_items_accepted(self):
        s = WFQScheduler()
        s.enqueue("bare", cos=0)
        assert s.dequeue() == "bare"

    def test_empty(self):
        assert WFQScheduler().dequeue() is None

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            WFQScheduler(weights={9: 1.0})
        with pytest.raises(ValueError):
            WFQScheduler(weights={1: 0})
