"""Edge-case tests for the discard queues: capacity 1 and bursts."""

import pytest

from repro.net.link import DropTailQueue
from repro.qos.queues import REDQueue, TailDropQueue


@pytest.mark.parametrize("cls", [DropTailQueue, TailDropQueue])
class TestCapacityOne:
    def test_holds_exactly_one(self, cls):
        q = cls(capacity=1)
        assert q.enqueue("a")
        assert not q.enqueue("b")
        assert q.dequeue() == "a"
        assert q.dequeue() is None

    def test_drains_and_refills(self, cls):
        q = cls(capacity=1)
        for i in range(5):
            assert q.enqueue(i)
            assert q.dequeue() == i
        assert q.dropped == 0

    def test_burst_drops_all_but_one(self, cls):
        q = cls(capacity=1)
        accepted = sum(1 for i in range(100) if q.enqueue(i))
        assert accepted == 1
        assert q.dropped == 99
        assert len(q) == 1


class TestTailDropBurstAccounting:
    def test_per_cos_drop_accounting_in_a_burst(self):
        q = TailDropQueue(capacity=2)
        q.enqueue("a", cos=0)
        q.enqueue("b", cos=5)
        for _ in range(3):
            q.enqueue("x", cos=0)
        q.enqueue("y", cos=5)
        assert q.dropped == 4
        assert q.dropped_by_cos == {0: 3, 5: 1}
        assert q.enqueued == 2

    def test_conservation_across_a_bursty_lifetime(self):
        q = TailDropQueue(capacity=3)
        offered = drained = 0
        for burst in range(10):
            for i in range(7):
                offered += 1
                q.enqueue((burst, i))
            while q.dequeue() is not None:
                drained += 1
        assert offered == q.enqueued + q.dropped
        assert drained == q.enqueued


class TestREDEdges:
    def test_capacity_one_accepts_then_force_drops(self):
        q = REDQueue(
            capacity=1, min_threshold=0.5, max_threshold=1, seed=1
        )
        assert q.enqueue("a")
        assert not q.enqueue("b")  # full: forced drop, never random
        assert q.dropped_forced == 1
        assert q.dequeue() == "a"

    def test_capacity_one_recovers_after_drain(self):
        q = REDQueue(
            capacity=1, min_threshold=0.5, max_threshold=1, seed=1
        )
        accepted = 0
        for i in range(50):
            if q.enqueue(i):
                accepted += 1
                q.dequeue()
        # the EWMA stays low because the queue drains every time, so
        # most arrivals are admitted (never more dropped than offered)
        assert accepted > 0
        assert accepted + q.dropped == 50

    def test_burst_saturates_ewma_then_forced_drops(self):
        q = REDQueue(
            capacity=8, min_threshold=1, max_threshold=4, weight=1.0,
            seed=3,
        )
        for i in range(20):
            q.enqueue(i)
        # weight 1.0 makes the EWMA track the instantaneous length, so
        # the tail of the burst is all forced drops above max_threshold
        assert q.dropped_forced > 0
        assert len(q) <= q.capacity
        assert q.enqueued + q.dropped == 20

    def test_burst_conservation_with_interleaved_drains(self):
        q = REDQueue(
            capacity=4, min_threshold=1, max_threshold=4, seed=9
        )
        offered = drained = 0
        for burst in range(8):
            for i in range(6):
                offered += 1
                q.enqueue((burst, i))
            while q.dequeue() is not None:
                drained += 1
        assert offered == q.enqueued + q.dropped
        assert drained == q.enqueued
        assert q.dropped == q.dropped_early + q.dropped_forced

    def test_threshold_validation_against_tiny_capacity(self):
        with pytest.raises(ValueError):
            REDQueue(capacity=1, min_threshold=1, max_threshold=2)
