"""Tests for classification and marking."""

import pytest

from repro.mpls.label import LabelEntry
from repro.mpls.stack import LabelStack
from repro.net.packet import IPv4Packet, MPLSPacket
from repro.qos.classifier import Classifier, cos_of_packet
from repro.qos.marker import Marker, MarkRule
from repro.net.addressing import IPv4Prefix


def pkt(dst="10.0.0.1", src="192.168.0.1", dscp=0, protocol=17):
    return IPv4Packet(src=src, dst=dst, dscp=dscp, protocol=protocol)


class TestCosOfPacket:
    def test_ip_uses_dscp_class_selector(self):
        assert cos_of_packet(pkt(dscp=46)) == 5  # EF
        assert cos_of_packet(pkt(dscp=0)) == 0

    def test_mpls_uses_top_cos(self):
        packet = MPLSPacket(
            LabelStack([LabelEntry(label=100, cos=6)]), pkt(dscp=0)
        )
        assert cos_of_packet(packet) == 6

    def test_empty_stack_falls_back_to_dscp(self):
        packet = MPLSPacket(LabelStack(), pkt(dscp=46))
        assert cos_of_packet(packet) == 5


class TestClassifier:
    def test_first_match_wins(self):
        clf = Classifier()
        clf.add_rule(cos=5, dscp_min=46, dscp_max=46)
        clf.add_rule(cos=1, dst="10.0.0.0/8")
        assert clf.classify(pkt(dscp=46)) == 5
        assert clf.classify(pkt(dscp=0)) == 1

    def test_default(self):
        clf = Classifier(default_cos=2)
        assert clf.classify(pkt()) == 2
        assert clf.defaults == 1

    def test_src_dst_protocol(self):
        clf = Classifier()
        clf.add_rule(cos=4, src="192.168.0.0/16", protocol=6)
        assert clf.classify(pkt(protocol=6)) == 4
        assert clf.classify(pkt(protocol=17)) == 0

    def test_cos_validation(self):
        with pytest.raises(ValueError):
            Classifier(default_cos=8)
        clf = Classifier()
        with pytest.raises(ValueError):
            clf.add_rule(cos=9)

    def test_hit_counting(self):
        clf = Classifier()
        clf.add_rule(cos=3, dst="10.0.0.0/8")
        clf.classify(pkt())
        clf.classify(pkt(dst="11.0.0.1"))
        assert clf.hits == 1
        assert clf.defaults == 1

    def test_len(self):
        clf = Classifier()
        clf.add_rule(cos=1)
        assert len(clf) == 1


class TestMarker:
    def test_marks_matching(self):
        marker = Marker()
        marker.add_rule(MarkRule(new_dscp=46, dst=IPv4Prefix("10.0.0.0/8")))
        out = marker.mark(pkt(dscp=0))
        assert out.dscp == 46
        assert marker.marked == 1

    def test_passes_unmatched(self):
        marker = Marker()
        marker.add_rule(MarkRule(new_dscp=46, dst=IPv4Prefix("11.0.0.0/8")))
        out = marker.mark(pkt(dscp=7))
        assert out.dscp == 7
        assert marker.passed == 1

    def test_first_rule_wins(self):
        marker = Marker()
        marker.add_rule(MarkRule(new_dscp=46, protocol=17))
        marker.add_rule(MarkRule(new_dscp=34))
        assert marker.mark(pkt(protocol=17)).dscp == 46
        assert marker.mark(pkt(protocol=6)).dscp == 34

    def test_dscp_validation(self):
        with pytest.raises(ValueError):
            MarkRule(new_dscp=64)
