"""Tests for the discrete event scheduler."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.events import EventScheduler


class TestEventScheduler:
    def test_runs_in_time_order(self):
        sched = EventScheduler()
        order = []
        sched.at(3.0, lambda: order.append("c"))
        sched.at(1.0, lambda: order.append("a"))
        sched.at(2.0, lambda: order.append("b"))
        sched.run()
        assert order == ["a", "b", "c"]

    def test_equal_times_fire_in_schedule_order(self):
        sched = EventScheduler()
        order = []
        for i in range(5):
            sched.at(1.0, lambda i=i: order.append(i))
        sched.run()
        assert order == [0, 1, 2, 3, 4]

    def test_now_advances(self):
        sched = EventScheduler()
        times = []
        sched.at(2.5, lambda: times.append(sched.now))
        sched.run()
        assert times == [2.5]
        assert sched.now == 2.5

    def test_after_relative(self):
        sched = EventScheduler()
        hits = []
        sched.at(1.0, lambda: sched.after(0.5, lambda: hits.append(sched.now)))
        sched.run()
        assert hits == [1.5]

    def test_cannot_schedule_in_past(self):
        sched = EventScheduler()
        sched.at(5.0, lambda: None)
        sched.run()
        with pytest.raises(ValueError):
            sched.at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventScheduler().after(-1, lambda: None)

    def test_run_until_stops(self):
        sched = EventScheduler()
        hits = []
        sched.at(1.0, lambda: hits.append(1))
        sched.at(10.0, lambda: hits.append(10))
        sched.run(until=5.0)
        assert hits == [1]
        assert sched.now == 5.0
        sched.run()
        assert hits == [1, 10]

    def test_cancel(self):
        sched = EventScheduler()
        hits = []
        event = sched.at(1.0, lambda: hits.append(1))
        sched.cancel(event)
        sched.run()
        assert hits == []

    def test_pending_count(self):
        sched = EventScheduler()
        e1 = sched.at(1.0, lambda: None)
        sched.at(2.0, lambda: None)
        assert sched.pending == 2
        sched.cancel(e1)
        assert sched.pending == 1

    def test_step(self):
        sched = EventScheduler()
        hits = []
        sched.at(1.0, lambda: hits.append(1))
        assert sched.step() is True
        assert hits == [1]
        assert sched.step() is False

    def test_event_budget(self):
        sched = EventScheduler()

        def reschedule():
            sched.after(0.001, reschedule)

        sched.at(0.0, reschedule)
        with pytest.raises(RuntimeError):
            sched.run(max_events=100)

    def test_processed_counter(self):
        sched = EventScheduler()
        for i in range(7):
            sched.at(float(i), lambda: None)
        sched.run()
        assert sched.processed == 7

    @given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=50))
    def test_monotonic_time_property(self, times):
        sched = EventScheduler()
        seen = []
        for t in times:
            sched.at(t, lambda: seen.append(sched.now))
        sched.run()
        assert seen == sorted(seen)
        assert len(seen) == len(times)
