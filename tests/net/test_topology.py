"""Tests for topology structures and builders."""

import pytest

from repro.net.topology import (
    Topology,
    TopologyError,
    full_mesh,
    line,
    paper_figure1,
    ring,
)


class TestTopology:
    def test_add_nodes_and_links(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        topo.add_link("a", "b", metric=5)
        assert topo.has_link("a", "b")
        assert topo.has_link("b", "a")  # undirected
        assert topo.link("a", "b").metric == 5

    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_node("a")
        with pytest.raises(TopologyError):
            topo.add_node("a")

    def test_duplicate_link_rejected(self):
        topo = line(2)
        with pytest.raises(TopologyError):
            topo.add_link("n1", "n0")

    def test_self_loop_rejected(self):
        topo = Topology()
        topo.add_node("a")
        with pytest.raises(TopologyError):
            topo.add_link("a", "a")

    def test_unknown_node_rejected(self):
        topo = Topology()
        topo.add_node("a")
        with pytest.raises(TopologyError):
            topo.add_link("a", "ghost")

    def test_neighbors(self):
        topo = line(3)
        assert topo.neighbors("n1") == ["n0", "n2"]
        assert topo.degree("n0") == 1

    def test_neighbors_unknown_node(self):
        with pytest.raises(TopologyError):
            line(2).neighbors("ghost")

    def test_remove_link(self):
        topo = line(3)
        topo.remove_link("n0", "n1")
        assert not topo.has_link("n0", "n1")
        with pytest.raises(TopologyError):
            topo.remove_link("n0", "n1")

    def test_link_lookup_missing(self):
        with pytest.raises(TopologyError):
            line(2).link("n0", "n5")

    def test_edges_with_attrs(self):
        topo = line(3, metric=7)
        edges = list(topo.edges_with_attrs())
        assert len(edges) == 2
        assert all(attrs.metric == 7 for _, _, attrs in edges)


class TestReservations:
    def test_reserve_and_release(self):
        topo = line(2, bandwidth_bps=100.0)
        attrs = topo.link("n0", "n1")
        attrs.reserve("n0", 60.0)
        assert attrs.reservable("n0") == pytest.approx(40.0)
        # the reverse direction is unaffected
        assert attrs.reservable("n1") == pytest.approx(100.0)
        attrs.release("n0", 60.0)
        assert attrs.reservable("n0") == pytest.approx(100.0)

    def test_over_reservation_rejected(self):
        topo = line(2, bandwidth_bps=100.0)
        attrs = topo.link("n0", "n1")
        with pytest.raises(TopologyError):
            attrs.reserve("n0", 150.0)

    def test_release_clamps_to_capacity(self):
        topo = line(2, bandwidth_bps=100.0)
        attrs = topo.link("n0", "n1")
        attrs.release("n0", 500.0)
        assert attrs.reservable("n0") == pytest.approx(100.0)


class TestBuilders:
    def test_line(self):
        topo = line(4)
        assert len(topo) == 4
        assert len(topo.links) == 3

    def test_ring(self):
        topo = ring(5)
        assert len(topo.links) == 5
        assert topo.has_link("n4", "n0")

    def test_ring_minimum(self):
        with pytest.raises(TopologyError):
            ring(2)

    def test_full_mesh(self):
        topo = full_mesh(4)
        assert len(topo.links) == 6

    def test_paper_figure1(self):
        """Two LERs, three LSRs, with a redundant core path."""
        topo = paper_figure1()
        assert len(topo) == 5
        assert topo.has_link("ler-a", "lsr-1")
        assert topo.has_link("lsr-2", "ler-b")
        assert topo.has_link("lsr-3", "ler-b")
        # two disjoint paths from lsr-1 to ler-b
        assert topo.degree("lsr-1") == 3
