"""Tests for links, channels and the drop-tail queue."""

import pytest

from repro.net.events import EventScheduler
from repro.net.link import DropTailQueue, Interface, Link, SimplexChannel


class TestDropTailQueue:
    def test_fifo_order(self):
        q = DropTailQueue(capacity=4)
        for i in range(3):
            assert q.enqueue(i)
        assert [q.dequeue() for _ in range(3)] == [0, 1, 2]

    def test_overflow_drops(self):
        q = DropTailQueue(capacity=2)
        assert q.enqueue(1) and q.enqueue(2)
        assert not q.enqueue(3)
        assert q.dropped == 1

    def test_empty_dequeue(self):
        assert DropTailQueue().dequeue() is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            DropTailQueue(capacity=0)


class TestSimplexChannel:
    def _channel(self, bandwidth=8000.0, delay=0.1):
        sched = EventScheduler()
        ch = SimplexChannel(
            sched,
            Interface("a", "if0"),
            Interface("b", "if0"),
            bandwidth_bps=bandwidth,
            delay_s=delay,
        )
        arrivals = []
        ch.on_deliver = lambda iface, pkt: arrivals.append(
            (sched.now, iface, pkt)
        )
        return sched, ch, arrivals

    def test_delivery_time(self):
        # 100 bytes at 8000 bps = 0.1 s tx + 0.1 s prop = 0.2 s
        sched, ch, arrivals = self._channel()
        ch.send("pkt", 100)
        sched.run()
        assert len(arrivals) == 1
        t, iface, pkt = arrivals[0]
        assert pkt == "pkt"
        assert iface.node == "b"
        assert t == pytest.approx(0.2)

    def test_serialization_queueing(self):
        """Two back-to-back packets: the second waits for the first's
        transmission (but propagation overlaps)."""
        sched, ch, arrivals = self._channel()
        ch.send("p1", 100)
        ch.send("p2", 100)
        sched.run()
        assert [a[0] for a in arrivals] == [
            pytest.approx(0.2),
            pytest.approx(0.3),
        ]

    def test_queue_overflow_counted(self):
        sched = EventScheduler()
        ch = SimplexChannel(
            sched,
            Interface("a", "if0"),
            Interface("b", "if0"),
            bandwidth_bps=8.0,  # 1 byte/s: everything queues
            delay_s=0.0,
            queue=DropTailQueue(capacity=1),
        )
        sent = [ch.send(f"p{i}", 10) for i in range(5)]
        # first starts transmitting immediately, second queues, rest drop
        assert sent == [True, True, False, False, False]
        assert ch.dropped == 3

    def test_stats(self):
        sched, ch, _ = self._channel()
        ch.send("p1", 100)
        sched.run()
        assert ch.tx_packets == 1
        assert ch.tx_bytes == 100

    def test_validation(self):
        sched = EventScheduler()
        a, b = Interface("a", "if0"), Interface("b", "if0")
        with pytest.raises(ValueError):
            SimplexChannel(sched, a, b, bandwidth_bps=0, delay_s=0)
        with pytest.raises(ValueError):
            SimplexChannel(sched, a, b, bandwidth_bps=1, delay_s=-1)


class TestLink:
    def test_direction_selection(self):
        sched = EventScheduler()
        link = Link(
            sched, Interface("a", "if0"), Interface("b", "if0")
        )
        assert link.channel_from("a") is link.forward
        assert link.channel_from("b") is link.reverse
        with pytest.raises(KeyError):
            link.channel_from("c")

    def test_other_end(self):
        sched = EventScheduler()
        link = Link(sched, Interface("a", "if0"), Interface("b", "if1"))
        assert link.other_end("a").node == "b"
        assert link.other_end("b").name == "if0"

    def test_directions_have_independent_queues(self):
        sched = EventScheduler()
        link = Link(sched, Interface("a", "if0"), Interface("b", "if0"))
        assert link.forward.queue is not link.reverse.queue

    def test_full_duplex_no_interference(self):
        sched = EventScheduler()
        link = Link(
            sched,
            Interface("a", "if0"),
            Interface("b", "if0"),
            bandwidth_bps=8000.0,
            delay_s=0.1,
        )
        arrivals = []
        link.forward.on_deliver = lambda i, p: arrivals.append((sched.now, p))
        link.reverse.on_deliver = lambda i, p: arrivals.append((sched.now, p))
        link.forward.send("fwd", 100)
        link.reverse.send("rev", 100)
        sched.run()
        # both arrive at 0.2: directions do not share the transmitter
        assert sorted(p for _, p in arrivals) == ["fwd", "rev"]
        assert all(t == pytest.approx(0.2) for t, _ in arrivals)


class TestFailureAccounting:
    """fail() loses what the channel held; drops are arrival refusals."""

    def _slow_link(self):
        sched = EventScheduler()
        # 8 kbps: a 100-byte packet occupies the transmitter for 0.1s,
        # so back-to-back sends pile up in the output queue
        link = Link(
            sched,
            Interface("a", "if0"),
            Interface("b", "if0"),
            bandwidth_bps=8000.0,
            delay_s=0.01,
        )
        return sched, link

    def test_fail_flushes_queue_as_lost_not_dropped(self):
        sched, link = self._slow_link()
        for i in range(3):
            assert link.forward.send(f"p{i}", 100)
        # p0 is transmitting; p1 and p2 sit in the queue
        link.fail()
        assert link.forward.lost == 2
        assert link.forward.dropped == 0
        assert len(link.forward.queue) == 0

    def test_send_while_down_is_a_drop_not_a_loss(self):
        sched, link = self._slow_link()
        link.fail()
        assert not link.forward.send("p", 100)
        assert link.forward.dropped == 1
        assert link.forward.lost == 0

    def test_heal_resets_nothing_but_reopens_the_channel(self):
        sched, link = self._slow_link()
        for i in range(3):
            link.forward.send(f"p{i}", 100)
        link.fail()
        link.heal()
        arrivals = []
        link.forward.on_deliver = lambda i, p: arrivals.append(p)
        assert link.forward.send("fresh", 100)
        sched.run()
        assert arrivals == ["fresh"]  # pre-failure packets stay gone
        assert link.forward.lost == 2
        assert link.forward.dropped == 0
