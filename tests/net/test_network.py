"""Tests for the MPLSNetwork simulation layer."""

import pytest

from repro.control.ldp import LDPProcess
from repro.control.rsvp_te import RSVPTESignaler
from repro.mpls.fec import PrefixFEC
from repro.mpls.label import LabelEntry
from repro.mpls.router import RouterRole
from repro.mpls.stack import LabelStack
from repro.net.network import MPLSNetwork
from repro.net.packet import IPv4Packet, MPLSPacket
from repro.net.topology import line, paper_figure1
from repro.net.traffic import CBRSource


def _ldp_network(topo=None, **net_kwargs):
    topo = topo or paper_figure1(bandwidth_bps=10e6, delay_s=1e-3)
    roles = {"ler-a": RouterRole.LER, "ler-b": RouterRole.LER}
    net = MPLSNetwork(topo, roles, **net_kwargs)
    net.attach_host("ler-b", "10.2.0.0/16")
    ldp = LDPProcess(topo, net.nodes)
    ldp.establish_fec(PrefixFEC("10.2.0.0/16"), egress="ler-b")
    return net, ldp


def _flow(net, duration=0.2, rate=1e6, dst="10.2.0.9"):
    src = CBRSource(
        net.scheduler,
        net.source_sink("ler-a"),
        src="10.1.0.5",
        dst=dst,
        rate_bps=rate,
        packet_size=500,
        stop=duration,
    )
    src.begin()
    return src


class TestEndToEnd:
    def test_all_packets_delivered(self):
        net, _ = _ldp_network()
        src = _flow(net)
        net.run(until=1.0)
        assert net.delivered_count() == src.sent
        assert net.drop_count() == 0

    def test_latency_includes_all_hops(self):
        net, _ = _ldp_network()
        _flow(net)
        net.run(until=1.0)
        latencies = net.latencies()
        # 3 hops x (1 ms propagation + 520B/10Mbps tx) ~ 4.2 ms
        assert all(0.003 < l < 0.02 for l in latencies)

    def test_packets_are_label_switched_not_ip_routed(self):
        net, _ = _ldp_network()
        _flow(net)
        net.run(until=1.0)
        for name in ("lsr-1", "lsr-2"):
            stats = net.nodes[name].stats
            assert stats.forwarded_mpls > 0
            assert stats.forwarded_ip == 0

    def test_sink_callback(self):
        net, _ = _ldp_network()
        received = []
        net.attach_host("ler-b", "10.2.1.0/24", received.append)
        src = _flow(net, dst="10.2.1.7")
        net.run(until=1.0)
        assert len(received) == src.sent

    def test_unroutable_packet_dropped_at_ingress(self):
        net, _ = _ldp_network()
        net.inject("ler-a", IPv4Packet(src="10.1.0.5", dst="99.9.9.9"))
        net.run()
        assert net.drop_count() == 1
        assert "no FEC" in net.drops[0].reason

    def test_unknown_label_dropped_at_core(self):
        net, _ = _ldp_network()
        bogus = MPLSPacket(
            LabelStack([LabelEntry(label=99999, ttl=10)]),
            IPv4Packet(src="10.1.0.5", dst="10.2.0.9"),
        )
        net.inject("lsr-1", bogus)
        net.run()
        assert net.drop_count() == 1
        assert "no ILM" in net.drops[0].reason

    def test_congestion_overflows_queue(self):
        # 10 Mbps link, 20 Mbps offered: queue must overflow
        net, _ = _ldp_network()
        _flow(net, duration=0.5, rate=20e6)
        net.run(until=1.0)
        assert net.drop_count() > 0
        assert any("queue overflow" in d.reason for d in net.drops)

    def test_ttl_expires_on_long_path(self):
        topo = line(6, bandwidth_bps=10e6, delay_s=1e-4)
        roles = {"n0": RouterRole.LER, "n5": RouterRole.LER}
        net = MPLSNetwork(topo, roles)
        net.attach_host("n5", "10.5.0.0/16")
        ldp = LDPProcess(topo, net.nodes)
        ldp.establish_fec(PrefixFEC("10.5.0.0/16"), egress="n5")
        net.inject("n0", IPv4Packet(src="10.0.0.1", dst="10.5.0.1", ttl=3))
        net.run()
        assert net.delivered_count() == 0
        assert any("TTL" in d.reason for d in net.drops)

    def test_php_network_still_delivers(self):
        topo = paper_figure1(bandwidth_bps=10e6, delay_s=1e-3)
        roles = {"ler-a": RouterRole.LER, "ler-b": RouterRole.LER}
        net = MPLSNetwork(topo, roles)
        net.attach_host("ler-b", "10.2.0.0/16")
        ldp = LDPProcess(topo, net.nodes)
        ldp.establish_fec(PrefixFEC("10.2.0.0/16"), egress="ler-b", php=True)
        src = _flow(net)
        net.run(until=1.0)
        assert net.delivered_count() == src.sent

    def test_explicit_route_via_rsvp(self):
        topo = paper_figure1(bandwidth_bps=10e6, delay_s=1e-3)
        roles = {"ler-a": RouterRole.LER, "ler-b": RouterRole.LER}
        net = MPLSNetwork(topo, roles)
        net.attach_host("ler-b", "10.2.0.0/16")
        sig = RSVPTESignaler(topo, net.nodes)
        sig.setup(
            "detour",
            "ler-a",
            "ler-b",
            explicit_route=["ler-a", "lsr-1", "lsr-3", "ler-b"],
            fec=PrefixFEC("10.2.0.0/16"),
        )
        src = _flow(net)
        net.run(until=1.0)
        assert net.delivered_count() == src.sent
        # traffic took the detour, not the metric-shortest path
        assert net.nodes["lsr-3"].stats.forwarded_mpls == src.sent
        assert net.nodes["lsr-2"].stats.forwarded_mpls == 0


class TestNetworkPlumbing:
    def test_link_lookup(self):
        net, _ = _ldp_network()
        assert net.link("ler-a", "lsr-1") is net.link("lsr-1", "ler-a")
        with pytest.raises(KeyError):
            net.link("ler-a", "lsr-2")

    def test_attach_host_to_core_rejected(self):
        net, _ = _ldp_network()
        with pytest.raises(ValueError):
            net.attach_host("lsr-1", "10.9.0.0/16")

    def test_inject_unknown_node(self):
        net, _ = _ldp_network()
        with pytest.raises(KeyError):
            net.inject("ghost", IPv4Packet(src="1.1.1.1", dst="2.2.2.2"))

    def test_flow_filtered_stats(self):
        net, _ = _ldp_network()
        a = _flow(net, dst="10.2.0.1")
        b = _flow(net, dst="10.2.0.2")
        net.run(until=1.0)
        assert net.delivered_count(a.flow_id) == a.sent
        assert net.delivered_count(b.flow_id) == b.sent
        assert len(net.latencies(a.flow_id)) == a.sent
