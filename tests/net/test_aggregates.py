"""Aggregate <-> packet materialization edges (batched mode).

Covers the boundary cases of flow aggregates: sampled packets
materialized inside an aggregate train, an aggregate whose flight
spans an FRR-style table switchover, zero-length and single-packet
aggregates, and exact accounting against the scalar oracle.
"""

import pytest

from repro.control.ldp import LDPProcess
from repro.mpls.fec import PrefixFEC
from repro.mpls.label import LabelOp
from repro.mpls.nhlfe import NHLFE
from repro.mpls.router import RouterRole
from repro.net.aggregate import (
    AggregateCBRSource,
    AggregateDelivery,
    FlowAggregate,
)
from repro.net.network import MPLSNetwork
from repro.net.packet import IPv4Packet
from repro.net.topology import paper_figure1
from repro.net.traffic import CBRSource
from repro.obs import telemetry_session


def _network():
    topo = paper_figure1(bandwidth_bps=10e6, delay_s=1e-3)
    roles = {"ler-a": RouterRole.LER, "ler-b": RouterRole.LER}
    net = MPLSNetwork(topo, roles)
    net.attach_host("ler-b", "10.2.0.0/16")
    ldp = LDPProcess(topo, net.nodes)
    ldp.establish_fec(PrefixFEC("10.2.0.0/16"), egress="ler-b")
    net.enable_batching()
    return net, ldp


def _packet(dst="10.2.0.9", ttl=64, created_at=0.0, seq=0):
    return IPv4Packet(
        src="10.1.0.5",
        dst=dst,
        ttl=ttl,
        payload=bytes(500),
        flow_id=7,
        seq=seq,
        created_at=created_at,
    )


class TestAggregateEdges:
    def test_zero_count_aggregate_is_a_noop(self):
        net, _ = _network()
        net.inject_aggregate(
            "ler-a", FlowAggregate(template=_packet(), count=0)
        )
        net.run(until=1.0)
        assert net.delivered_count() == 0
        assert net.drop_count() == 0
        assert net.aggregate_deliveries == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            FlowAggregate(template=_packet(), count=-1)

    def test_single_packet_aggregate_delivers_one(self):
        net, _ = _network()
        net.inject_aggregate(
            "ler-a", FlowAggregate(template=_packet(), count=1)
        )
        net.run(until=1.0)
        assert net.delivered_count() == 1
        delivery = net.aggregate_deliveries[0]
        assert delivery.count == 1
        assert len(delivery.latencies()) == 1

    def test_aggregates_require_batching(self):
        topo = paper_figure1()
        roles = {"ler-a": RouterRole.LER, "ler-b": RouterRole.LER}
        net = MPLSNetwork(topo, roles)
        with pytest.raises(RuntimeError):
            net.inject_aggregate(
                "ler-a", FlowAggregate(template=_packet(), count=5)
            )

    def test_aggregate_latencies_are_per_packet_analytic(self):
        delivery = AggregateDelivery(
            time=1.0,
            node="ler-b",
            flow_id=7,
            count=3,
            bytes=1560,
            first_created_at=0.4,
            interval=0.1,
        )
        assert delivery.latencies() == pytest.approx([0.6, 0.5, 0.4])


class TestSampledMaterialization:
    def test_sampled_packets_ride_the_scalar_path(self):
        """With sample_every=n, every n-th packet is a real packet (it
        lands in `deliveries`), the rest stay bulk (they land in
        `aggregate_deliveries`), and nothing is double-counted."""
        net, _ = _network()
        source = AggregateCBRSource(
            net.scheduler,
            net.aggregate_sink("ler-a"),
            src="10.1.0.5",
            dst="10.2.0.9",
            rate_bps=1e6,
            packet_size=500,
            batch=20,
            stop=0.5,
            sample_every=10,
            sample_sink=net.source_sink("ler-a"),
        )
        source.begin()
        net.run(until=1.0)
        assert source.sampled > 0
        scalar_delivered = len(net.deliveries)
        bulk_delivered = sum(a.count for a in net.aggregate_deliveries)
        assert scalar_delivered == source.sampled
        assert scalar_delivered + bulk_delivered == source.sent
        assert net.drop_count() == 0

    def test_bulk_count_excludes_materialized_packets(self):
        net, _ = _network()
        captured = []
        source = AggregateCBRSource(
            net.scheduler,
            captured.append,
            src="10.1.0.5",
            dst="10.2.0.9",
            batch=10,
            stop=None,
            sample_every=5,
            sample_sink=lambda p: None,
        )
        source.begin()
        # run exactly one batch emission
        net.scheduler.run(until=1e-9)
        assert len(captured) == 1
        aggregate = captured[0]
        # 10 packets per batch, seq 0 and 5 sampled -> 8 bulk
        assert aggregate.count == 8
        assert source.sent == 10
        assert source.sampled == 2


class TestSpanningSwitchover:
    def test_aggregate_spanning_frr_switchover_takes_new_path(self):
        """Aggregates in flight when the tables flip (FRR-style NHLFE
        rewrite) are forwarded by the *new* tables on their next hop:
        the whole train switches together, none of it is lost."""
        net, ldp = _network()
        # steady traffic: one aggregate every batch window
        source = AggregateCBRSource(
            net.scheduler,
            net.aggregate_sink("ler-a"),
            src="10.1.0.5",
            dst="10.2.0.9",
            rate_bps=2e6,
            packet_size=500,
            batch=25,
            stop=0.4,
        )
        source.begin()

        # mid-run, swing lsr-1's swap onto the protection leg through
        # lsr-3 the way an FRR switchover does (transactional commit)
        def switchover():
            node = net.nodes["lsr-1"]
            node.ilm.begin()
            for label, nhlfe in list(node.ilm):
                if nhlfe.op is LabelOp.SWAP:
                    node.ilm.install(
                        label,
                        NHLFE(
                            op=nhlfe.op,
                            out_label=nhlfe.out_label,
                            next_hop="lsr-3",
                        ),
                    )
            node.ilm.commit()

        net.scheduler.at(0.2, switchover)
        net.run(until=1.0)
        assert source.sent > 0
        assert net.delivered_count() == source.sent
        assert net.drop_count() == 0
        # the commit invalidated lsr-1's flow cache mid-run, and the
        # protection hop saw the tail of the demand
        assert net.nodes["lsr-1"].flow_cache.invalidations >= 1
        assert net.nodes["lsr-3"].stats.forwarded_mpls > 0
        assert net.nodes["lsr-2"].stats.forwarded_mpls > 0


class TestAccountingEquivalence:
    def test_aggregate_totals_match_scalar_run(self):
        """The same CBR demand, once as scalar packets and once as
        aggregates, produces identical delivered/byte totals and
        identical per-node stats counters."""

        def scalar_totals():
            topo = paper_figure1(bandwidth_bps=10e6, delay_s=1e-3)
            roles = {"ler-a": RouterRole.LER, "ler-b": RouterRole.LER}
            net = MPLSNetwork(topo, roles)
            net.attach_host("ler-b", "10.2.0.0/16")
            ldp = LDPProcess(topo, net.nodes)
            ldp.establish_fec(PrefixFEC("10.2.0.0/16"), egress="ler-b")
            source = CBRSource(
                net.scheduler,
                net.source_sink("ler-a"),
                src="10.1.0.5",
                dst="10.2.0.9",
                rate_bps=1e6,
                packet_size=500,
                stop=0.3,
            )
            source.begin()
            net.run(until=1.0)
            return net, source

        def batched_totals():
            net, _ = _network()
            source = AggregateCBRSource(
                net.scheduler,
                net.aggregate_sink("ler-a"),
                src="10.1.0.5",
                dst="10.2.0.9",
                rate_bps=1e6,
                packet_size=500,
                batch=16,
                stop=0.3,
            )
            source.begin()
            net.run(until=1.0)
            return net, source

        with telemetry_session():
            scalar_net, scalar_src = scalar_totals()
        with telemetry_session():
            batched_net, batched_src = batched_totals()
        assert batched_src.sent == scalar_src.sent
        assert batched_src.sent_bytes == scalar_src.sent_bytes
        assert (
            batched_net.delivered_count() == scalar_net.delivered_count()
        )
        for name in scalar_net.nodes:
            s = scalar_net.nodes[name].stats
            b = batched_net.nodes[name].stats
            assert (s.received, s.forwarded_mpls, s.forwarded_ip) == (
                b.received,
                b.forwarded_mpls,
                b.forwarded_ip,
            ), name
