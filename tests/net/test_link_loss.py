"""Tests for the link loss model (failure injection)."""

import pytest

from repro.net.events import EventScheduler
from repro.net.link import Interface, Link, SimplexChannel


def _lossy_channel(loss_rate, seed=0):
    from repro.net.link import DropTailQueue

    sched = EventScheduler()
    ch = SimplexChannel(
        sched,
        Interface("a", "if0"),
        Interface("b", "if0"),
        bandwidth_bps=1e9,
        delay_s=1e-6,
        queue=DropTailQueue(capacity=10_000),  # loss, not queueing, under test
        loss_rate=loss_rate,
        loss_seed=seed,
    )
    arrivals = []
    ch.on_deliver = lambda iface, pkt: arrivals.append(pkt)
    return sched, ch, arrivals


class TestLossModel:
    def test_no_loss_by_default(self):
        sched, ch, arrivals = _lossy_channel(0.0)
        for i in range(100):
            ch.send(i, 100)
        sched.run()
        assert len(arrivals) == 100
        assert ch.lost == 0

    def test_loss_fraction_approximates_rate(self):
        sched, ch, arrivals = _lossy_channel(0.2, seed=42)
        for i in range(2000):
            ch.send(i, 100)
        sched.run()
        assert ch.lost == pytest.approx(400, rel=0.15)
        assert len(arrivals) + ch.lost == 2000

    def test_deterministic_given_seed(self):
        results = []
        for _ in range(2):
            sched, ch, arrivals = _lossy_channel(0.3, seed=7)
            for i in range(200):
                ch.send(i, 100)
            sched.run()
            results.append(list(arrivals))
        assert results[0] == results[1]

    def test_lost_packets_still_occupy_the_wire(self):
        """Loss happens after transmission: the sender still spent the
        serialization time (as on a real lossy wire)."""
        sched, ch, arrivals = _lossy_channel(0.5, seed=1)
        for i in range(50):
            ch.send(i, 100)
        sched.run()
        assert ch.tx_packets == 50  # all transmitted
        assert ch.lost + len(arrivals) == 50

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            _lossy_channel(1.0)
        with pytest.raises(ValueError):
            _lossy_channel(-0.1)

    def test_link_directions_lose_independently(self):
        sched = EventScheduler()
        link = Link(
            sched,
            Interface("a", "if0"),
            Interface("b", "if0"),
            bandwidth_bps=1e9,
            delay_s=1e-6,
            loss_rate=0.5,
            loss_seed=3,
        )
        fwd, rev = [], []
        link.forward.on_deliver = lambda i, p: fwd.append(p)
        link.reverse.on_deliver = lambda i, p: rev.append(p)
        for i in range(100):
            link.forward.send(i, 100)
            link.reverse.send(i, 100)
        sched.run()
        # different seeds per direction: loss patterns differ
        assert fwd != rev
