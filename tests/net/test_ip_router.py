"""Tests for the plain-IP baseline router."""


from repro.mpls.forwarding import Action
from repro.mpls.label import LabelEntry
from repro.mpls.router import RouterRole
from repro.mpls.stack import LabelStack
from repro.net.ip_router import IPRouterNode, populate_fibs
from repro.net.network import MPLSNetwork
from repro.net.packet import IPv4Packet, MPLSPacket
from repro.net.topology import line, paper_figure1
from repro.net.traffic import CBRSource


def ip_pkt(dst="10.2.0.9", ttl=64):
    return IPv4Packet(src="10.1.0.5", dst=dst, ttl=ttl)


class TestIPRouterNode:
    def _node(self):
        node = IPRouterNode("r1", RouterRole.LSR)
        node.install_prefix("10.2.0.0/16", "r2")
        node.install_prefix("10.0.0.0/8", "r3")
        return node

    def test_longest_prefix_wins(self):
        node = self._node()
        decision = node.receive(ip_pkt("10.2.0.9"))
        assert decision.next_hop == "r2"
        decision = node.receive(ip_pkt("10.9.0.9"))
        assert decision.next_hop == "r3"

    def test_ttl_decremented_per_hop(self):
        node = self._node()
        decision = node.receive(ip_pkt(ttl=9))
        assert decision.packet.ttl == 8

    def test_ttl_expiry(self):
        node = self._node()
        decision = node.receive(ip_pkt(ttl=1))
        assert decision.action is Action.DISCARD
        assert "TTL" in decision.reason

    def test_no_route(self):
        node = self._node()
        decision = node.receive(ip_pkt("99.0.0.1"))
        assert decision.action is Action.DISCARD
        assert "no route" in decision.reason

    def test_local_delivery(self):
        node = IPRouterNode("r1", RouterRole.LER)
        node.install_prefix("10.2.0.0/16", None)
        decision = node.receive(ip_pkt())
        assert decision.action is Action.FORWARD_IP
        assert decision.next_hop is None
        # local delivery does not decrement
        assert decision.packet.ttl == 64

    def test_labelled_packet_rejected(self):
        node = self._node()
        packet = MPLSPacket(
            LabelStack([LabelEntry(label=100, ttl=9)]), ip_pkt()
        )
        decision = node.receive(packet)
        assert decision.action is Action.DISCARD

    def test_scan_cost_accounting(self):
        node = self._node()
        node.receive(ip_pkt("10.2.0.9"))  # first entry: scanned 1
        node.receive(ip_pkt("10.9.0.9"))  # second entry: scanned 2
        assert node.lookups == 2
        assert node.prefixes_scanned == 3

    def test_reinstall_replaces(self):
        node = self._node()
        node.install_prefix("10.2.0.0/16", "r9")
        assert node.fib_size == 2
        assert node.receive(ip_pkt()).next_hop == "r9"


class TestPopulateFibs:
    def test_fibs_follow_spf(self):
        topo = line(4)
        nodes = {
            name: IPRouterNode(
                name, RouterRole.LER if name in ("n0", "n3") else RouterRole.LSR
            )
            for name in topo.nodes
        }
        populate_fibs(topo, nodes, {"n3": ["10.3.0.0/16"]})
        decision = nodes["n0"].receive(ip_pkt("10.3.0.1"))
        assert decision.next_hop == "n1"
        decision = nodes["n2"].receive(ip_pkt("10.3.0.1"))
        assert decision.next_hop == "n3"

    def test_extra_prefixes_pad_fib(self):
        topo = line(2)
        nodes = {n: IPRouterNode(n, RouterRole.LER) for n in topo.nodes}
        populate_fibs(topo, nodes, {"n1": ["10.1.0.0/16"]},
                      extra_prefixes=100)
        assert nodes["n0"].fib_size == 101
        # the real route still resolves despite the padding
        assert nodes["n0"].receive(ip_pkt("10.1.0.1")).next_hop == "n1"


class TestIPNetworkEndToEnd:
    def test_ip_network_delivers(self):
        topo = paper_figure1(bandwidth_bps=10e6, delay_s=1e-3)
        roles = {"ler-a": RouterRole.LER, "ler-b": RouterRole.LER}
        net = MPLSNetwork(
            topo,
            roles,
            node_factory=lambda name, role: IPRouterNode(name, role),
        )
        net.attach_host("ler-b", "10.2.0.0/16")
        populate_fibs(topo, net.nodes, {"ler-b": ["10.2.0.0/16"]})
        src = CBRSource(net.scheduler, net.source_sink("ler-a"),
                        src="10.1.0.5", dst="10.2.0.9", rate_bps=1e6,
                        packet_size=500, stop=0.2)
        src.begin()
        net.run(until=1.0)
        assert net.delivered_count() == src.sent
        # every transit hop did an LPM lookup
        assert net.nodes["lsr-1"].lookups == src.sent
