"""Tests for IPv4 addressing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addressing import IPv4Address, IPv4Prefix

addr_ints = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestIPv4Address:
    def test_from_string(self):
        assert IPv4Address("10.0.0.1").value == (10 << 24) | 1

    def test_from_int(self):
        assert str(IPv4Address(0x0A000001)) == "10.0.0.1"

    def test_from_address(self):
        a = IPv4Address("1.2.3.4")
        assert IPv4Address(a) == a

    def test_bad_string(self):
        for bad in ("10.0.0", "10.0.0.256", "a.b.c.d", "1.2.3.4.5"):
            with pytest.raises(ValueError):
                IPv4Address(bad)

    def test_bad_int(self):
        with pytest.raises(ValueError):
            IPv4Address(1 << 32)
        with pytest.raises(ValueError):
            IPv4Address(-1)

    def test_bad_type(self):
        with pytest.raises(TypeError):
            IPv4Address(1.5)  # type: ignore[arg-type]

    def test_equality_with_string_and_int(self):
        a = IPv4Address("10.0.0.1")
        assert a == "10.0.0.1"
        assert a == 0x0A000001

    def test_ordering(self):
        assert IPv4Address("10.0.0.1") < IPv4Address("10.0.0.2")

    def test_hashable(self):
        assert len({IPv4Address("1.1.1.1"), IPv4Address("1.1.1.1")}) == 1

    def test_bytes_roundtrip(self):
        a = IPv4Address("172.16.254.3")
        assert IPv4Address.from_bytes(a.to_bytes()) == a

    def test_from_bytes_wrong_length(self):
        with pytest.raises(ValueError):
            IPv4Address.from_bytes(b"\x01\x02\x03")

    @given(addr_ints)
    def test_string_roundtrip(self, value):
        a = IPv4Address(value)
        assert IPv4Address(str(a)) == a


class TestIPv4Prefix:
    def test_combined_syntax(self):
        p = IPv4Prefix("10.1.0.0/16")
        assert p.length == 16
        assert str(p) == "10.1.0.0/16"

    def test_canonicalization(self):
        assert IPv4Prefix("10.1.2.3/16") == IPv4Prefix("10.1.0.0/16")

    def test_split_syntax(self):
        assert IPv4Prefix("10.0.0.0", 8).length == 8

    def test_double_length_rejected(self):
        with pytest.raises(ValueError):
            IPv4Prefix("10.0.0.0/8", 16)

    def test_length_range(self):
        with pytest.raises(ValueError):
            IPv4Prefix("10.0.0.0", 33)

    def test_contains(self):
        p = IPv4Prefix("10.0.0.0/8")
        assert p.contains("10.255.255.255")
        assert not p.contains("11.0.0.0")
        assert "10.1.2.3" in p

    def test_zero_length_contains_everything(self):
        p = IPv4Prefix("0.0.0.0/0")
        assert p.contains("255.255.255.255")

    def test_host_prefix(self):
        p = IPv4Prefix("10.0.0.1")
        assert p.length == 32
        assert p.contains("10.0.0.1")
        assert not p.contains("10.0.0.2")

    def test_overlaps(self):
        assert IPv4Prefix("10.0.0.0/8").overlaps(IPv4Prefix("10.1.0.0/16"))
        assert IPv4Prefix("10.1.0.0/16").overlaps(IPv4Prefix("10.0.0.0/8"))
        assert not IPv4Prefix("10.0.0.0/8").overlaps(IPv4Prefix("11.0.0.0/8"))

    def test_hashable(self):
        assert len({IPv4Prefix("10.0.0.0/8"), IPv4Prefix("10.3.0.0/8")}) == 1

    @given(addr_ints, st.integers(min_value=0, max_value=32))
    def test_network_contains_itself(self, value, length):
        p = IPv4Prefix(value, length)
        assert p.contains(p.network)

    @given(addr_ints, st.integers(min_value=0, max_value=32))
    def test_contains_iff_masked_equal(self, value, length):
        p = IPv4Prefix("128.0.0.0", length)
        expected = (value & p.mask) == p.network.value
        assert p.contains(value) == expected
