"""Tests for the traffic generators."""

import pytest

from repro.net.events import EventScheduler
from repro.net.traffic import (
    CBRSource,
    DSCP_AF41,
    DSCP_EF,
    OnOffSource,
    PoissonSource,
    VideoSource,
    VoIPSource,
)


def _run_source(cls, duration=1.0, **kwargs):
    sched = EventScheduler()
    packets = []
    source = cls(
        sched,
        packets.append,
        src="192.168.0.1",
        dst="10.0.0.1",
        stop=duration,
        **kwargs,
    )
    source.begin()
    sched.run(until=duration + 1)
    return source, packets


class TestCBR:
    def test_packet_count(self):
        # 1 Mbit/s with 500+20-byte packets -> one packet every 4.16 ms
        source, packets = _run_source(
            CBRSource, duration=1.0, rate_bps=1e6, packet_size=500
        )
        expected = 1e6 / ((500 + 20) * 8)
        assert len(packets) == pytest.approx(expected, rel=0.02)

    def test_constant_spacing(self):
        _, packets = _run_source(
            CBRSource, duration=0.1, rate_bps=1e6, packet_size=500
        )
        gaps = [
            b.created_at - a.created_at for a, b in zip(packets, packets[1:])
        ]
        assert all(g == pytest.approx(gaps[0]) for g in gaps)

    def test_sequence_numbers(self):
        _, packets = _run_source(
            CBRSource, duration=0.05, rate_bps=1e6, packet_size=500
        )
        assert [p.seq for p in packets] == list(range(len(packets)))

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            _run_source(CBRSource, rate_bps=0)

    def test_double_start_rejected(self):
        sched = EventScheduler()
        src = CBRSource(sched, lambda p: None, src="1.1.1.1", dst="2.2.2.2")
        src.begin()
        with pytest.raises(RuntimeError):
            src.begin()


class TestVoIP:
    def test_g711_shape(self):
        """50 packets per second of 160-byte payloads, EF-marked."""
        source, packets = _run_source(VoIPSource, duration=1.0)
        assert len(packets) == pytest.approx(50, abs=1)
        assert all(len(p.payload) == 160 for p in packets)
        assert all(p.dscp == DSCP_EF for p in packets)

    def test_bitrate_approximates_64k_plus_headers(self):
        source, _ = _run_source(VoIPSource, duration=1.0)
        # 50 pps * 180 bytes = 72 kbit/s with the 20-byte IP header
        assert source.sent_bytes * 8 == pytest.approx(72_000, rel=0.05)


class TestVideo:
    def test_i_and_p_frames(self):
        source, packets = _run_source(
            VideoSource, duration=1.0, fps=10, gop=5,
            i_frame_size=5000, p_frame_size=1000, mtu_payload=1400,
        )
        assert all(p.dscp == DSCP_AF41 for p in packets)
        # group packets by emission time = frames
        frames = {}
        for p in packets:
            frames.setdefault(p.created_at, 0)
            frames[p.created_at] += len(p.payload)
        sizes = [frames[t] for t in sorted(frames)]
        assert sizes[0] == 5000  # I-frame
        assert sizes[1] == 1000  # P-frame

    def test_large_frames_fragmented(self):
        _, packets = _run_source(
            VideoSource, duration=0.05, fps=25, i_frame_size=3000,
            mtu_payload=1400,
        )
        first_frame = [p for p in packets if p.created_at == packets[0].created_at]
        assert [len(p.payload) for p in first_frame] == [1400, 1400, 200]


class TestPoisson:
    def test_mean_rate(self):
        source, packets = _run_source(
            PoissonSource, duration=10.0, rate_pps=100, seed=42
        )
        assert len(packets) == pytest.approx(1000, rel=0.15)

    def test_deterministic_given_seed(self):
        _, a = _run_source(PoissonSource, duration=1.0, rate_pps=50, seed=7)
        _, b = _run_source(PoissonSource, duration=1.0, rate_pps=50, seed=7)
        assert [p.created_at for p in a] == [p.created_at for p in b]

    def test_different_seeds_differ(self):
        _, a = _run_source(PoissonSource, duration=1.0, rate_pps=50, seed=1)
        _, b = _run_source(PoissonSource, duration=1.0, rate_pps=50, seed=2)
        assert [p.created_at for p in a] != [p.created_at for p in b]

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            _run_source(PoissonSource, rate_pps=-1)


class TestOnOff:
    def test_bursts_exist(self):
        source, packets = _run_source(
            OnOffSource,
            duration=5.0,
            peak_bps=1e6,
            mean_on_s=0.05,
            mean_off_s=0.2,
            seed=3,
        )
        assert source.sent > 0
        gaps = [
            b.created_at - a.created_at for a, b in zip(packets, packets[1:])
        ]
        # bursty: both back-to-back gaps and long silences appear
        burst_gap = (1000 + 20) * 8 / 1e6
        assert any(g == pytest.approx(burst_gap) for g in gaps)
        assert any(g > 5 * burst_gap for g in gaps)

    def test_mean_rate_below_peak(self):
        source, _ = _run_source(
            OnOffSource, duration=5.0, peak_bps=1e6, seed=3
        )
        assert source.sent_bytes * 8 / 5.0 < 1e6


class TestFlowIds:
    def test_unique_flow_ids(self):
        sched = EventScheduler()
        a = CBRSource(sched, lambda p: None, src="1.1.1.1", dst="2.2.2.2")
        b = CBRSource(sched, lambda p: None, src="1.1.1.1", dst="2.2.2.2")
        assert a.flow_id != b.flow_id
