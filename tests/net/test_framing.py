"""Tests for the layer-2 codecs: Ethernet, ATM/AAL5, Frame Relay."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.atm import (
    ATMError,
    ATMCell,
    CELL_PAYLOAD,
    CELL_SIZE,
    reassemble_aal5,
    segment_aal5,
)
from repro.net.ethernet import (
    ETHERTYPE_IPV4,
    ETHERTYPE_MPLS,
    EthernetFrame,
    FramingError,
)
from repro.net.frame_relay import FrameRelayError, FrameRelayFrame


class TestEthernet:
    def _frame(self, payload=b"p" * 50, ethertype=ETHERTYPE_MPLS):
        return EthernetFrame(
            dst_mac="aa:bb:cc:dd:ee:ff",
            src_mac="11:22:33:44:55:66",
            ethertype=ethertype,
            payload=payload,
        )

    def test_mac_parsing(self):
        f = self._frame()
        assert f.dst == "aa:bb:cc:dd:ee:ff"
        assert f.src_mac == bytes.fromhex("112233445566")

    def test_bad_mac(self):
        with pytest.raises(FramingError):
            EthernetFrame(
                dst_mac="aa:bb",
                src_mac="11:22:33:44:55:66",
                ethertype=ETHERTYPE_IPV4,
                payload=b"x" * 50,
            )

    def test_is_mpls(self):
        assert self._frame().is_mpls
        assert not self._frame(ethertype=ETHERTYPE_IPV4).is_mpls

    def test_serialize_roundtrip(self):
        f = self._frame()
        g = EthernetFrame.deserialize(f.serialize())
        assert g == f

    def test_short_payload_padded(self):
        f = self._frame(payload=b"tiny")
        wire = f.serialize()
        # 14 header + 46 min payload + 4 FCS
        assert len(wire) == 64
        g = EthernetFrame.deserialize(wire, true_payload_len=4)
        assert g.payload == b"tiny"

    def test_mtu_enforced(self):
        with pytest.raises(FramingError):
            self._frame(payload=b"x" * 1501)

    def test_fcs_detects_corruption(self):
        wire = bytearray(self._frame().serialize())
        wire[20] ^= 0xFF
        with pytest.raises(FramingError):
            EthernetFrame.deserialize(bytes(wire))

    def test_truncated_frame(self):
        with pytest.raises(FramingError):
            EthernetFrame.deserialize(b"\x00" * 20)

    def test_declared_length_too_long(self):
        f = self._frame(payload=b"tiny")
        with pytest.raises(FramingError):
            EthernetFrame.deserialize(f.serialize(), true_payload_len=500)

    @given(st.binary(min_size=1, max_size=1500))
    def test_roundtrip_property(self, payload):
        f = EthernetFrame(
            dst_mac=b"\x01\x02\x03\x04\x05\x06",
            src_mac=b"\x0a\x0b\x0c\x0d\x0e\x0f",
            ethertype=ETHERTYPE_MPLS,
            payload=payload,
        )
        g = EthernetFrame.deserialize(
            f.serialize(), true_payload_len=len(payload)
        )
        assert g.payload == payload


class TestATM:
    def test_cell_size(self):
        cells = segment_aal5(b"x" * 100, vpi=1, vci=42)
        for cell in cells:
            assert len(cell.serialize()) == CELL_SIZE

    def test_segmentation_counts(self):
        # 100 bytes + 8 trailer = 108 -> 3 cells of 48
        cells = segment_aal5(b"x" * 100, vpi=1, vci=42)
        assert len(cells) == 3
        assert [c.pti_last for c in cells] == [False, False, True]

    def test_exact_fit(self):
        # 40 payload + 8 trailer = exactly one cell
        cells = segment_aal5(b"x" * 40, vpi=0, vci=1)
        assert len(cells) == 1

    def test_reassembly_roundtrip(self):
        payload = bytes(range(256)) * 3
        cells = segment_aal5(payload, vpi=7, vci=77)
        frame = reassemble_aal5(cells)
        assert frame.payload == payload
        assert (frame.vpi, frame.vci) == (7, 77)

    def test_cell_wire_roundtrip(self):
        cell = ATMCell(vpi=5, vci=1234, pti_last=True, payload=b"z" * 48)
        assert ATMCell.deserialize(cell.serialize()) == cell

    def test_lost_cell_detected(self):
        cells = segment_aal5(b"x" * 200, vpi=1, vci=42)
        with pytest.raises(ATMError):
            reassemble_aal5(cells[:1] + cells[2:])  # drop a middle cell

    def test_corrupt_cell_detected(self):
        cells = segment_aal5(b"x" * 100, vpi=1, vci=42)
        bad = ATMCell(
            vpi=1, vci=42, pti_last=False, payload=b"\xff" * CELL_PAYLOAD
        )
        with pytest.raises(ATMError):
            reassemble_aal5([bad] + cells[1:])

    def test_interleaved_circuits_rejected(self):
        a = segment_aal5(b"x" * 40, vpi=1, vci=1)
        b = segment_aal5(b"y" * 40, vpi=1, vci=2)
        with pytest.raises(ATMError):
            reassemble_aal5([a[0], b[0]])

    def test_missing_last_flag(self):
        cells = segment_aal5(b"x" * 100, vpi=1, vci=42)
        with pytest.raises(ATMError):
            reassemble_aal5(cells[:-1])

    def test_early_last_flag(self):
        c1 = segment_aal5(b"x" * 40, vpi=1, vci=1)[0]
        c2 = segment_aal5(b"y" * 40, vpi=1, vci=1)[0]
        with pytest.raises(ATMError):
            reassemble_aal5([c1, c2])

    def test_empty_payload_rejected(self):
        with pytest.raises(ATMError):
            segment_aal5(b"", vpi=1, vci=1)

    def test_vpi_vci_validation(self):
        with pytest.raises(ATMError):
            ATMCell(vpi=256, vci=0, pti_last=False, payload=b"x" * 48)
        with pytest.raises(ATMError):
            ATMCell(vpi=0, vci=1 << 16, pti_last=False, payload=b"x" * 48)

    @given(st.binary(min_size=1, max_size=4000))
    def test_roundtrip_property(self, payload):
        cells = segment_aal5(payload, vpi=3, vci=300)
        assert reassemble_aal5(cells).payload == payload


class TestFrameRelay:
    def test_roundtrip(self):
        f = FrameRelayFrame(dlci=123, payload=b"hello", fecn=True, de=True)
        g = FrameRelayFrame.deserialize(f.serialize())
        assert g == f

    def test_dlci_range(self):
        with pytest.raises(FrameRelayError):
            FrameRelayFrame(dlci=1024, payload=b"x")

    def test_empty_payload(self):
        with pytest.raises(FrameRelayError):
            FrameRelayFrame(dlci=1, payload=b"")

    def test_fcs_detects_corruption(self):
        wire = bytearray(FrameRelayFrame(dlci=5, payload=b"abc").serialize())
        wire[3] ^= 0x01
        with pytest.raises(FrameRelayError):
            FrameRelayFrame.deserialize(bytes(wire))

    def test_too_short(self):
        with pytest.raises(FrameRelayError):
            FrameRelayFrame.deserialize(b"\x00\x01\x02")

    def test_congestion_bits(self):
        f = FrameRelayFrame(dlci=9, payload=b"x", fecn=True, becn=True, de=False)
        g = FrameRelayFrame.deserialize(f.serialize())
        assert (g.fecn, g.becn, g.de) == (True, True, False)

    @given(
        st.integers(min_value=0, max_value=1023),
        st.binary(min_size=1, max_size=1500),
    )
    def test_roundtrip_property(self, dlci, payload):
        f = FrameRelayFrame(dlci=dlci, payload=payload)
        assert FrameRelayFrame.deserialize(f.serialize()) == f
