"""Tests for IPv4 and MPLS packet types."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpls.label import LabelEntry
from repro.mpls.stack import LabelStack
from repro.net.packet import IPv4Packet, MPLSPacket


class TestIPv4Packet:
    def test_basic_fields(self):
        p = IPv4Packet(src="1.1.1.1", dst="2.2.2.2", ttl=10, dscp=46)
        assert str(p.src) == "1.1.1.1"
        assert p.ttl == 10

    def test_length_includes_header(self):
        p = IPv4Packet(src="1.1.1.1", dst="2.2.2.2", payload=b"x" * 100)
        assert p.length == 120

    def test_identifier_is_destination(self):
        """The paper: 'For IP packets, the packet identifier is
        typically the destination address.'"""
        p = IPv4Packet(src="1.1.1.1", dst="10.0.0.5")
        assert p.identifier() == (10 << 24) | 5

    def test_ttl_validation(self):
        with pytest.raises(ValueError):
            IPv4Packet(src="1.1.1.1", dst="2.2.2.2", ttl=256)

    def test_dscp_validation(self):
        with pytest.raises(ValueError):
            IPv4Packet(src="1.1.1.1", dst="2.2.2.2", dscp=64)

    def test_decrement(self):
        p = IPv4Packet(src="1.1.1.1", dst="2.2.2.2", ttl=5)
        assert p.decremented().ttl == 4

    def test_decrement_zero_raises(self):
        p = IPv4Packet(src="1.1.1.1", dst="2.2.2.2", ttl=0)
        with pytest.raises(ValueError):
            p.decremented()

    def test_uids_unique(self):
        a = IPv4Packet(src="1.1.1.1", dst="2.2.2.2")
        b = IPv4Packet(src="1.1.1.1", dst="2.2.2.2")
        assert a.uid != b.uid

    def test_serialize_roundtrip(self):
        p = IPv4Packet(
            src="10.1.2.3",
            dst="172.16.0.9",
            ttl=33,
            dscp=46,
            protocol=6,
            payload=b"hello world",
        )
        q = IPv4Packet.deserialize(p.serialize())
        assert (q.src, q.dst, q.ttl, q.dscp, q.protocol, q.payload) == (
            p.src,
            p.dst,
            p.ttl,
            p.dscp,
            p.protocol,
            p.payload,
        )

    def test_deserialize_short(self):
        with pytest.raises(ValueError):
            IPv4Packet.deserialize(b"\x45" + b"\x00" * 10)

    def test_deserialize_not_v4(self):
        with pytest.raises(ValueError):
            IPv4Packet.deserialize(b"\x65" + b"\x00" * 19)

    @given(
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=63),
        st.binary(max_size=64),
    )
    def test_roundtrip_property(self, src, dst, ttl, dscp, payload):
        p = IPv4Packet(src=src, dst=dst, ttl=ttl, dscp=dscp, payload=payload)
        q = IPv4Packet.deserialize(p.serialize())
        assert (q.src, q.dst, q.ttl, q.dscp, q.payload) == (
            p.src,
            p.dst,
            p.ttl,
            p.dscp,
            p.payload,
        )


class TestMPLSPacket:
    def _packet(self):
        stack = LabelStack(
            [LabelEntry(label=100, ttl=9), LabelEntry(label=200, ttl=8)]
        )
        inner = IPv4Packet(src="1.1.1.1", dst="2.2.2.2", payload=b"data")
        return MPLSPacket(stack, inner)

    def test_length(self):
        p = self._packet()
        assert p.length == 8 + p.inner.length

    def test_serialize_roundtrip(self):
        p = self._packet()
        q = MPLSPacket.deserialize(p.serialize())
        assert q.stack == p.stack
        assert q.inner.dst == p.inner.dst
        assert q.inner.payload == p.inner.payload

    def test_with_stack(self):
        p = self._packet()
        new_stack = LabelStack([LabelEntry(label=300)])
        q = p.with_stack(new_stack)
        assert q.stack.top.label == 300
        assert q.inner is p.inner
