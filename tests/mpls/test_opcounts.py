"""Tests for the OpCounts compatibility shim: repr/summary, the
registry mapping, and publish()."""

from repro.mpls.forwarding import OpCounts
from repro.obs import Telemetry


class TestSummary:
    def test_summary_lists_nonzero_fields_only(self):
        counts = OpCounts(ilm_lookups=2, swaps=2, ttl_updates=2)
        text = counts.summary()
        assert text == "OpCounts(ilm-lookup=2 swap=2 ttl-update=2)"

    def test_all_zero_summary(self):
        assert OpCounts().summary() == "OpCounts(all zero)"

    def test_repr_is_summary(self):
        counts = OpCounts(pushes=1)
        assert repr(counts) == counts.summary()
        assert "push=1" in repr(counts)

    def test_total(self):
        counts = OpCounts(ftn_lookups=1, pushes=1, ttl_updates=1)
        assert counts.total == 3

    def test_as_dict_covers_every_field(self):
        counts = OpCounts()
        assert set(counts.as_dict()) == set(counts.REGISTRY_OPS)


class TestPublish:
    def test_publish_writes_registry_counters(self):
        tel = Telemetry(enabled=True)
        counts = OpCounts(ilm_lookups=4, swaps=3, discards=1)
        counts.publish(tel, node="lsr-9")
        assert tel.registry.value(
            "repro_mpls_ops_total", node="lsr-9", op="ilm-lookup"
        ) == 4
        assert tel.registry.value(
            "repro_mpls_ops_total", node="lsr-9", op="swap"
        ) == 3
        assert tel.registry.value(
            "repro_mpls_ops_total", node="lsr-9", op="discard"
        ) == 1

    def test_publish_skips_zero_fields(self):
        tel = Telemetry(enabled=True)
        OpCounts().publish(tel, node="lsr-9")
        assert len(tel.registry.get("repro_mpls_ops_total")) == 0
