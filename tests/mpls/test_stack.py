"""Tests for label stack semantics (paper Figure 4)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpls.errors import StackDepthExceeded, StackUnderflow
from repro.mpls.label import LABEL_MAX, LabelEntry
from repro.mpls.stack import DEFAULT_MAX_DEPTH, LabelStack

entries = st.builds(
    LabelEntry,
    label=st.integers(min_value=0, max_value=LABEL_MAX),
    cos=st.integers(min_value=0, max_value=7),
    ttl=st.integers(min_value=0, max_value=255),
)


class TestConstruction:
    def test_empty(self):
        stack = LabelStack()
        assert stack.is_empty
        assert stack.depth == 0

    def test_s_bits_computed(self):
        """Only the bottom entry carries S=1, regardless of input bits."""
        stack = LabelStack(
            [
                LabelEntry(label=100, s=1),  # wrong S on purpose
                LabelEntry(label=200, s=1),
                LabelEntry(label=300, s=0),  # wrong S on purpose
            ]
        )
        assert [e.s for e in stack] == [0, 0, 1]

    def test_depth_limit_enforced_at_construction(self):
        with pytest.raises(StackDepthExceeded):
            LabelStack([LabelEntry(label=i + 16) for i in range(4)])

    def test_unlimited_depth(self):
        stack = LabelStack(
            [LabelEntry(label=i + 16) for i in range(10)], max_depth=None
        )
        assert stack.depth == 10

    def test_paper_depth_default_is_three(self):
        """The hardware information base has exactly three levels."""
        assert DEFAULT_MAX_DEPTH == 3


class TestOperations:
    def test_push_puts_on_top(self):
        stack = LabelStack([LabelEntry(label=100)])
        stack2 = stack.push(LabelEntry(label=200))
        assert stack2.top.label == 200
        assert stack2.depth == 2

    def test_push_is_persistent(self):
        stack = LabelStack([LabelEntry(label=100)])
        stack.push(LabelEntry(label=200))
        assert stack.depth == 1  # original unchanged

    def test_push_overflow(self):
        stack = LabelStack([LabelEntry(label=i + 16) for i in range(3)])
        with pytest.raises(StackDepthExceeded):
            stack.push(LabelEntry(label=99))

    def test_pop_returns_top_and_rest(self):
        stack = LabelStack([LabelEntry(label=100), LabelEntry(label=200)])
        top, rest = stack.pop()
        assert top.label == 100
        assert rest.depth == 1
        assert rest.top.label == 200

    def test_pop_restores_s_bit(self):
        stack = LabelStack([LabelEntry(label=100), LabelEntry(label=200)])
        _, rest = stack.pop()
        assert rest.top.is_bottom

    def test_pop_empty_raises(self):
        with pytest.raises(StackUnderflow):
            LabelStack().pop()

    def test_top_empty_raises(self):
        with pytest.raises(StackUnderflow):
            LabelStack().top

    def test_swap_replaces_top_only(self):
        stack = LabelStack([LabelEntry(label=100), LabelEntry(label=200)])
        swapped = stack.swap(LabelEntry(label=300))
        assert swapped.top.label == 300
        assert swapped[1].label == 200

    def test_swap_empty_raises(self):
        with pytest.raises(StackUnderflow):
            LabelStack().swap(LabelEntry(label=300))

    def test_equality_and_hash(self):
        a = LabelStack([LabelEntry(label=100)])
        b = LabelStack([LabelEntry(label=100)])
        assert a == b
        assert hash(a) == hash(b)

    @given(st.lists(entries, max_size=3))
    def test_push_pop_inverse(self, items):
        stack = LabelStack(items)
        if stack.depth < 3:
            entry = LabelEntry(label=12345)
            pushed = stack.push(entry)
            top, rest = pushed.pop()
            assert top.label == 12345
            assert rest == stack

    @given(st.lists(entries, min_size=1, max_size=3))
    def test_s_bit_invariant(self, items):
        stack = LabelStack(items)
        assert stack[-1].is_bottom
        assert all(not e.is_bottom for e in stack.entries[:-1])


class TestWireFormat:
    def test_roundtrip(self):
        stack = LabelStack(
            [LabelEntry(label=100, ttl=10), LabelEntry(label=200, ttl=20)]
        )
        assert LabelStack.decode_bytes(stack.encode_bytes()) == stack

    def test_wire_length(self):
        stack = LabelStack([LabelEntry(label=100), LabelEntry(label=200)])
        data = stack.encode_bytes() + b"extra payload"
        assert LabelStack.wire_length(data) == 8

    def test_wire_length_no_bottom(self):
        entry = LabelEntry(label=100, s=0)
        with pytest.raises(ValueError):
            LabelStack.wire_length(entry.encode_bytes())

    def test_decode_trailing_bytes_rejected(self):
        stack = LabelStack([LabelEntry(label=100)])
        with pytest.raises(ValueError):
            LabelStack.decode_bytes(stack.encode_bytes() + b"\x00" * 4)

    def test_decode_missing_bottom_rejected(self):
        entry = LabelEntry(label=100, s=0)
        with pytest.raises(ValueError):
            LabelStack.decode_bytes(entry.encode_bytes())

    @given(st.lists(entries, min_size=1, max_size=3))
    def test_roundtrip_property(self, items):
        stack = LabelStack(items)
        assert LabelStack.decode_bytes(stack.encode_bytes()) == stack
