"""Tests for FEC classification."""

import pytest

from repro.mpls.fec import CoSFEC, HostFEC, PrefixFEC
from repro.net.packet import IPv4Packet


def pkt(dst="10.0.0.1", dscp=0):
    return IPv4Packet(src="192.168.1.1", dst=dst, dscp=dscp)


class TestPrefixFEC:
    def test_match(self):
        fec = PrefixFEC("10.0.0.0/8")
        assert fec.matches(pkt("10.200.3.4"))

    def test_no_match(self):
        fec = PrefixFEC("10.0.0.0/8")
        assert not fec.matches(pkt("11.0.0.1"))

    def test_specificity_is_length(self):
        assert PrefixFEC("10.0.0.0/8").specificity == 8
        assert PrefixFEC("10.1.0.0/16").specificity == 16

    def test_equality(self):
        assert PrefixFEC("10.1.2.3/16") == PrefixFEC("10.1.0.0/16")

    def test_hashable(self):
        assert len({PrefixFEC("10.0.0.0/8"), PrefixFEC("10.0.0.0/8")}) == 1

    def test_default_route(self):
        fec = PrefixFEC("0.0.0.0/0")
        assert fec.matches(pkt("1.2.3.4"))
        assert fec.specificity == 0


class TestHostFEC:
    def test_exact_match_only(self):
        fec = HostFEC("10.0.0.5")
        assert fec.matches(pkt("10.0.0.5"))
        assert not fec.matches(pkt("10.0.0.6"))

    def test_most_specific(self):
        assert HostFEC("10.0.0.5").specificity == 32

    def test_equality(self):
        assert HostFEC("10.0.0.5") == HostFEC("10.0.0.5")
        assert HostFEC("10.0.0.5") != HostFEC("10.0.0.6")


class TestCoSFEC:
    def test_requires_both_conditions(self):
        fec = CoSFEC(PrefixFEC("10.0.0.0/8"), dscp_min=46)
        assert fec.matches(pkt("10.1.1.1", dscp=46))
        assert not fec.matches(pkt("10.1.1.1", dscp=0))
        assert not fec.matches(pkt("11.1.1.1", dscp=46))

    def test_dscp_range(self):
        fec = CoSFEC(PrefixFEC("0.0.0.0/0"), dscp_min=32, dscp_max=47)
        assert fec.matches(pkt(dscp=40))
        assert not fec.matches(pkt(dscp=48))

    def test_more_specific_than_inner(self):
        inner = PrefixFEC("10.0.0.0/8")
        assert CoSFEC(inner, 46).specificity > inner.specificity

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            CoSFEC(PrefixFEC("10.0.0.0/8"), dscp_min=50, dscp_max=40)
        with pytest.raises(ValueError):
            CoSFEC(PrefixFEC("10.0.0.0/8"), dscp_min=64)

    def test_equality(self):
        a = CoSFEC(PrefixFEC("10.0.0.0/8"), 46)
        b = CoSFEC(PrefixFEC("10.0.0.0/8"), 46)
        assert a == b
        assert hash(a) == hash(b)
