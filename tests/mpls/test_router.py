"""Tests for LER/LSR node behaviour."""

import pytest

from repro.mpls.fec import PrefixFEC
from repro.mpls.forwarding import Action
from repro.mpls.label import LabelEntry, LabelOp
from repro.mpls.nhlfe import NHLFE
from repro.mpls.router import LSRNode, RouterRole
from repro.mpls.stack import LabelStack
from repro.net.packet import IPv4Packet, MPLSPacket


def ip_pkt(dst="10.0.0.1"):
    return IPv4Packet(src="192.168.0.1", dst=dst)


class TestRouterRole:
    def test_rtrtype_encoding_matches_table3(self):
        """Table 3: logic low = LER, logic high = LSR."""
        assert RouterRole.LER.rtrtype_bit == 0
        assert RouterRole.LSR.rtrtype_bit == 1


class TestLSRNode:
    def test_ler_classifies_ip(self):
        node = LSRNode("ler-a", RouterRole.LER)
        node.ftn.install(
            PrefixFEC("10.0.0.0/8"),
            NHLFE(op=LabelOp.PUSH, out_label=100, next_hop="lsr-1"),
        )
        decision = node.receive(ip_pkt())
        assert decision.action is Action.FORWARD_MPLS
        assert node.stats.forwarded_mpls == 1

    def test_core_lsr_rejects_unlabelled(self):
        node = LSRNode("lsr-1", RouterRole.LSR)
        decision = node.receive(ip_pkt())
        assert decision.action is Action.DISCARD
        assert "unlabelled" in decision.reason
        assert node.stats.discarded == 1

    def test_core_lsr_switches_labelled(self):
        node = LSRNode("lsr-1", RouterRole.LSR)
        node.ilm.install(
            100, NHLFE(op=LabelOp.SWAP, out_label=200, next_hop="lsr-2")
        )
        packet = MPLSPacket(LabelStack([LabelEntry(label=100, ttl=9)]), ip_pkt())
        decision = node.receive(packet)
        assert decision.action is Action.FORWARD_MPLS
        assert decision.packet.stack.top.label == 200

    def test_neighbor_interface_resolution(self):
        node = LSRNode("lsr-1", RouterRole.LSR, interfaces=["if0"])
        node.neighbor_interfaces["lsr-2"] = "if0"
        node.ilm.install(
            100, NHLFE(op=LabelOp.SWAP, out_label=200, next_hop="lsr-2")
        )
        packet = MPLSPacket(LabelStack([LabelEntry(label=100, ttl=9)]), ip_pkt())
        decision = node.receive(packet)
        assert decision.out_interface == "if0"

    def test_explicit_interface_not_overridden(self):
        node = LSRNode("lsr-1", RouterRole.LSR)
        node.neighbor_interfaces["lsr-2"] = "if9"
        node.ilm.install(
            100,
            NHLFE(
                op=LabelOp.SWAP,
                out_label=200,
                next_hop="lsr-2",
                out_interface="if0",
            ),
        )
        packet = MPLSPacket(LabelStack([LabelEntry(label=100, ttl=9)]), ip_pkt())
        decision = node.receive(packet)
        assert decision.out_interface == "if0"

    def test_add_interface(self):
        node = LSRNode("n", interfaces=["if0"])
        node.add_interface("if1")
        assert node.interfaces == ["if0", "if1"]
        with pytest.raises(ValueError):
            node.add_interface("if0")

    def test_stats_discard_reasons(self):
        node = LSRNode("lsr-1", RouterRole.LSR)
        packet = MPLSPacket(LabelStack([LabelEntry(label=42, ttl=9)]), ip_pkt())
        node.receive(packet)
        assert sum(node.stats.discard_reasons.values()) == 1

    def test_is_edge(self):
        assert LSRNode("a", RouterRole.LER).is_edge
        assert not LSRNode("b", RouterRole.LSR).is_edge
