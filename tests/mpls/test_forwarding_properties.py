"""Property-based tests of the software forwarding engine's invariants.

For arbitrary table contents and packets, forwarding must never raise,
must only ever shrink TTLs, may change stack depth by at most one, and
must preserve CoS across swaps -- the invariants the paper's hardware
enforces structurally.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.mpls.forwarding import Action, ForwardingEngine
from repro.mpls.fec import HostFEC, PrefixFEC
from repro.mpls.label import LabelEntry, LabelOp
from repro.mpls.nhlfe import NHLFE
from repro.mpls.stack import LabelStack
from repro.net.packet import IPv4Packet, MPLSPacket

labels = st.integers(min_value=16, max_value=40)
real_labels = st.integers(min_value=16, max_value=1 << 19)
ttls = st.integers(min_value=0, max_value=255)
cos_values = st.integers(min_value=0, max_value=7)


def nhlfe_strategy():
    return st.one_of(
        st.builds(
            NHLFE,
            op=st.just(LabelOp.SWAP),
            out_label=real_labels,
            next_hop=st.just("peer"),
        ),
        st.builds(
            NHLFE,
            op=st.just(LabelOp.PUSH),
            out_label=real_labels,
            next_hop=st.just("peer"),
        ),
        st.builds(NHLFE, op=st.just(LabelOp.POP), next_hop=st.just("peer")),
        st.builds(NHLFE, op=st.just(LabelOp.NOOP), next_hop=st.just("peer")),
    )


ilm_contents = st.dictionaries(labels, nhlfe_strategy(), max_size=8)

stacks = st.lists(
    st.builds(LabelEntry, label=labels, cos=cos_values, ttl=ttls),
    min_size=1,
    max_size=3,
).map(LabelStack)


def mpls_packet(stack):
    return MPLSPacket(stack, IPv4Packet(src="1.1.1.1", dst="2.2.2.2"))


class TestTransitInvariants:
    @given(ilm_contents, stacks)
    def test_never_raises(self, contents, stack):
        engine = ForwardingEngine()
        for label, nhlfe in contents.items():
            engine.ilm.install(label, nhlfe)
        engine.transit(mpls_packet(stack))  # must not raise

    @given(ilm_contents, stacks)
    def test_ttl_never_increases(self, contents, stack):
        engine = ForwardingEngine()
        for label, nhlfe in contents.items():
            engine.ilm.install(label, nhlfe)
        decision = engine.transit(mpls_packet(stack))
        if decision.action is Action.FORWARD_MPLS:
            before = max(e.ttl for e in stack)
            after = max(e.ttl for e in decision.packet.stack)
            assert after <= before

    @given(ilm_contents, stacks)
    def test_depth_changes_by_at_most_one(self, contents, stack):
        engine = ForwardingEngine()
        for label, nhlfe in contents.items():
            engine.ilm.install(label, nhlfe)
        decision = engine.transit(mpls_packet(stack))
        if decision.action is Action.FORWARD_MPLS:
            assert abs(decision.packet.stack.depth - stack.depth) <= 1

    @given(ilm_contents, stacks)
    def test_forwarded_stack_is_wellformed(self, contents, stack):
        engine = ForwardingEngine()
        for label, nhlfe in contents.items():
            engine.ilm.install(label, nhlfe)
        decision = engine.transit(mpls_packet(stack))
        if decision.action is Action.FORWARD_MPLS:
            out = decision.packet.stack
            assert out[-1].is_bottom
            assert all(not e.is_bottom for e in out.entries[:-1])

    @given(real_labels, cos_values, st.integers(min_value=2, max_value=255))
    def test_swap_preserves_cos(self, out_label, cos, ttl):
        engine = ForwardingEngine()
        engine.ilm.install(
            20, NHLFE(op=LabelOp.SWAP, out_label=out_label, next_hop="x")
        )
        stack = LabelStack([LabelEntry(label=20, cos=cos, ttl=ttl)])
        decision = engine.transit(mpls_packet(stack))
        assert decision.packet.stack.top.cos == cos

    @given(ilm_contents, stacks)
    def test_miss_or_expiry_discards_with_reason(self, contents, stack):
        engine = ForwardingEngine()
        for label, nhlfe in contents.items():
            engine.ilm.install(label, nhlfe)
        top = stack.top
        decision = engine.transit(mpls_packet(stack))
        if top.label not in engine.ilm:
            assert decision.action is Action.DISCARD
            assert decision.reason

    @given(ilm_contents, stacks)
    def test_counts_monotone(self, contents, stack):
        engine = ForwardingEngine()
        for label, nhlfe in contents.items():
            engine.ilm.install(label, nhlfe)
        engine.transit(mpls_packet(stack))
        first = engine.counts
        total_first = (
            first.ilm_lookups + first.discards + first.swaps + first.pops
        )
        engine.transit(mpls_packet(stack))
        second = engine.counts
        total_second = (
            second.ilm_lookups + second.discards + second.swaps + second.pops
        )
        assert total_second >= total_first


class TestIngressInvariants:
    @given(
        real_labels,
        st.integers(min_value=2, max_value=255),
        st.integers(min_value=0, max_value=63),
    )
    def test_push_uses_ftn_label_and_decrements(self, label, ttl, dscp):
        engine = ForwardingEngine()
        engine.ftn.install(
            PrefixFEC("0.0.0.0/0"),
            NHLFE(op=LabelOp.PUSH, out_label=label, next_hop="x"),
        )
        packet = IPv4Packet(src="1.1.1.1", dst="2.2.2.2", ttl=ttl, dscp=dscp)
        decision = engine.ingress(packet)
        assert decision.action is Action.FORWARD_MPLS
        assert decision.packet.stack.top.label == label
        assert decision.packet.inner.ttl == ttl - 1
        assert decision.packet.stack.top.ttl == ttl - 1

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_most_specific_fec_always_wins(self, dst):
        engine = ForwardingEngine()
        engine.ftn.install(
            PrefixFEC("0.0.0.0/0"),
            NHLFE(op=LabelOp.PUSH, out_label=100, next_hop="x"),
        )
        engine.ftn.install(
            HostFEC(dst), NHLFE(op=LabelOp.PUSH, out_label=200, next_hop="x")
        )
        packet = IPv4Packet(src="1.1.1.1", dst=dst, ttl=9)
        decision = engine.ingress(packet)
        assert decision.packet.stack.top.label == 200
