"""Tests for NHLFE construction rules."""

import pytest

from repro.mpls.errors import InvalidLabelError
from repro.mpls.label import IMPLICIT_NULL, LabelOp
from repro.mpls.nhlfe import NHLFE


class TestNHLFE:
    def test_push_requires_label(self):
        with pytest.raises(InvalidLabelError):
            NHLFE(op=LabelOp.PUSH)

    def test_swap_requires_label(self):
        with pytest.raises(InvalidLabelError):
            NHLFE(op=LabelOp.SWAP)

    def test_pop_forbids_label(self):
        with pytest.raises(InvalidLabelError):
            NHLFE(op=LabelOp.POP, out_label=100)

    def test_noop_forbids_label(self):
        with pytest.raises(InvalidLabelError):
            NHLFE(op=LabelOp.NOOP, out_label=100)

    def test_reserved_label_rejected(self):
        with pytest.raises(InvalidLabelError):
            NHLFE(op=LabelOp.PUSH, out_label=5)

    def test_swap_to_implicit_null_becomes_php(self):
        """RFC 3032: implicit null advertised downstream means
        penultimate-hop popping."""
        nhlfe = NHLFE(op=LabelOp.SWAP, out_label=IMPLICIT_NULL, next_hop="egress")
        assert nhlfe.op is LabelOp.POP
        assert nhlfe.out_label is None
        assert nhlfe.is_php

    def test_plain_pop_at_egress_not_php(self):
        nhlfe = NHLFE(op=LabelOp.POP)
        assert not nhlfe.is_php

    def test_cos_range(self):
        with pytest.raises(InvalidLabelError):
            NHLFE(op=LabelOp.PUSH, out_label=100, cos=8)

    def test_valid_swap(self):
        nhlfe = NHLFE(op=LabelOp.SWAP, out_label=500, next_hop="lsr-2", out_interface="if0")
        assert nhlfe.out_label == 500
        assert "SWAP" in str(nhlfe)
        assert "nh=lsr-2" in str(nhlfe)

    def test_frozen(self):
        nhlfe = NHLFE(op=LabelOp.POP)
        with pytest.raises(AttributeError):
            nhlfe.op = LabelOp.PUSH  # type: ignore[misc]
