"""Unit tests for the batched fast path's per-node flow cache."""

import pytest

from repro.mpls.fec import PrefixFEC
from repro.mpls.forwarding import Action, ForwardingEngine
from repro.mpls.fastpath import FlowCache, key_of
from repro.mpls.label import LabelEntry, LabelOp
from repro.mpls.nhlfe import NHLFE
from repro.mpls.stack import LabelStack
from repro.net.packet import IPv4Packet, MPLSPacket
from repro.obs import ListSink, get_telemetry, telemetry_session
from repro.obs.events import LabelOpApplied


def ip_pkt(dst="10.0.0.1", ttl=64, dscp=0, seq=0):
    return IPv4Packet(src="192.168.0.1", dst=dst, ttl=ttl, dscp=dscp, seq=seq)


def labelled(label, ttl=64, inner=None):
    inner = inner or ip_pkt()
    return MPLSPacket(
        LabelStack([LabelEntry(label=label, ttl=ttl)]), inner
    )


def _engine():
    engine = ForwardingEngine(node_name="lsr-1")
    engine.ftn.install(
        PrefixFEC("10.0.0.0/8"),
        NHLFE(op=LabelOp.PUSH, out_label=100, next_hop="lsr-2"),
    )
    engine.ilm.install(
        200, NHLFE(op=LabelOp.SWAP, out_label=201, next_hop="lsr-3")
    )
    engine.ilm.install(300, NHLFE(op=LabelOp.POP, next_hop="ler-b"))
    return engine


class TestKeys:
    def test_ip_key_ignores_identity_fields(self):
        a = ip_pkt(seq=1)
        b = ip_pkt(seq=2)
        assert a.uid != b.uid
        assert key_of(a) == key_of(b)

    def test_ip_key_separates_ttl_and_dscp(self):
        assert key_of(ip_pkt(ttl=64)) != key_of(ip_pkt(ttl=63))
        assert key_of(ip_pkt(dscp=0)) != key_of(ip_pkt(dscp=46))

    def test_mpls_key_covers_stack_and_inner_ttl(self):
        assert key_of(labelled(200)) == key_of(labelled(200))
        assert key_of(labelled(200)) != key_of(labelled(201))
        assert key_of(labelled(200, ttl=3)) != key_of(labelled(200, ttl=4))
        assert key_of(
            labelled(200, inner=ip_pkt(ttl=9))
        ) != key_of(labelled(200, inner=ip_pkt(ttl=8)))


class TestHitEquivalence:
    def test_hit_decision_matches_scalar(self):
        engine = _engine()
        oracle = ForwardingEngine(engine.ilm, engine.ftn, "lsr-1")
        cache = FlowCache(engine)
        for make in (
            lambda i: ip_pkt(seq=i),
            lambda i: labelled(200, inner=ip_pkt(seq=i)),
            lambda i: labelled(300, inner=ip_pkt(seq=i)),
            lambda i: ip_pkt(dst="99.0.0.1", seq=i),  # discard
        ):
            for i in range(3):
                packet = make(i)
                got = cache.process(packet)
                want = oracle.process(packet)
                assert got.action is want.action
                assert got.packet == want.packet
                assert got.next_hop == want.next_hop
                assert got.out_interface == want.out_interface
                assert got.reason == want.reason
        assert cache.hits == 8
        assert cache.misses == 4

    def test_replay_preserves_identity_of_each_packet(self):
        engine = _engine()
        cache = FlowCache(engine)
        first = ip_pkt(seq=0)
        second = ip_pkt(seq=1)
        cache.process(first)
        replayed = cache.process(second)
        assert replayed.packet.inner.uid == second.uid
        assert replayed.packet.inner.seq == 1

    def test_counts_advance_exactly_as_scalar(self):
        engine = _engine()
        oracle = ForwardingEngine(engine.ilm, engine.ftn, "lsr-1")
        cache = FlowCache(engine)
        packets = [ip_pkt(seq=i) for i in range(5)] + [
            labelled(200, inner=ip_pkt(seq=i)) for i in range(5)
        ]
        for packet in packets:
            cache.process(packet)
            oracle.process(packet)
        assert engine.counts == oracle.counts


class TestInvalidation:
    def test_install_invalidates(self):
        engine = _engine()
        cache = FlowCache(engine)
        assert cache.process(labelled(200)).packet.stack.top.label == 201
        engine.ilm.install(
            200, NHLFE(op=LabelOp.SWAP, out_label=999, next_hop="lsr-9")
        )
        decision = cache.process(labelled(200))
        assert decision.packet.stack.top.label == 999
        assert cache.invalidations == 1

    def test_remove_invalidates(self):
        engine = _engine()
        cache = FlowCache(engine)
        assert cache.process(labelled(200)).action is Action.FORWARD_MPLS
        engine.ilm.remove(200)
        assert cache.process(labelled(200)).action is Action.DISCARD

    def test_commit_invalidates_but_rollback_does_not(self):
        engine = _engine()
        cache = FlowCache(engine)
        cache.process(labelled(200))
        engine.ilm.begin()
        engine.ilm.install(
            200, NHLFE(op=LabelOp.SWAP, out_label=555, next_hop="x")
        )
        engine.ilm.rollback()
        cache.process(labelled(200))
        assert cache.invalidations == 0  # rollback left the bank alone
        assert cache.hits == 1
        engine.ilm.begin()
        engine.ilm.install(
            200, NHLFE(op=LabelOp.SWAP, out_label=555, next_hop="x")
        )
        engine.ilm.commit()
        decision = cache.process(labelled(200))
        assert decision.packet.stack.top.label == 555
        assert cache.invalidations == 1

    def test_stale_flush_invalidates(self):
        engine = _engine()
        cache = FlowCache(engine)
        cache.process(labelled(200))
        engine.ilm.mark_all_stale()
        engine.ilm.flush_stale()
        assert cache.process(labelled(200)).action is Action.DISCARD

    def test_ftn_mutation_invalidates_ingress(self):
        engine = _engine()
        cache = FlowCache(engine)
        assert cache.process(ip_pkt()).packet.stack.top.label == 100
        engine.ftn.install(
            PrefixFEC("10.0.0.0/8"),
            NHLFE(op=LabelOp.PUSH, out_label=777, next_hop="lsr-2"),
        )
        assert cache.process(ip_pkt()).packet.stack.top.label == 777


class TestLRU:
    def test_capacity_evicts_least_recently_used(self):
        engine = _engine()
        cache = FlowCache(engine, capacity=2)
        a, b, c = (
            ip_pkt(dst="10.0.0.1"),
            ip_pkt(dst="10.0.0.2"),
            ip_pkt(dst="10.0.0.3"),
        )
        cache.process(a)
        cache.process(b)
        cache.process(a)  # refresh a; b is now LRU
        cache.process(c)  # evicts b
        assert cache.evictions == 1
        assert key_of(a) in cache._entries
        assert key_of(b) not in cache._entries
        assert key_of(c) in cache._entries

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlowCache(_engine(), capacity=0)


class TestTelemetryReplay:
    def test_hits_mirror_op_counters_and_events(self):
        """With telemetry on, N cached packets must produce exactly the
        registry increments and LabelOpApplied events N scalar packets
        would."""
        with telemetry_session() as tel:
            sink = tel.events.add_sink(ListSink())
            engine = _engine()
            cache = FlowCache(engine)
            for i in range(4):
                cache.process(labelled(200, inner=ip_pkt(seq=i)))
            cached_events = [
                e for e in sink.events if isinstance(e, LabelOpApplied)
            ]
            cached_swaps = tel.registry.value(
                "repro_mpls_ops_total", node="lsr-1", op="swap"
            )
        with telemetry_session() as tel:
            sink = tel.events.add_sink(ListSink())
            oracle = _engine()
            for i in range(4):
                oracle.process(labelled(200, inner=ip_pkt(seq=i)))
            scalar_events = [
                e for e in sink.events if isinstance(e, LabelOpApplied)
            ]
            scalar_swaps = tel.registry.value(
                "repro_mpls_ops_total", node="lsr-1", op="swap"
            )
        assert cached_swaps == scalar_swaps == 4
        assert len(cached_events) == len(scalar_events) == 4
        for got, want in zip(cached_events, scalar_events):
            assert (got.node, got.op, got.label_in, got.label_out) == (
                want.node,
                want.op,
                want.label_in,
                want.label_out,
            )

    def test_unobserved_fill_is_not_served_while_observing(self):
        """An entry filled with telemetry off has no recorded ops; it
        must be refilled -- not replayed -- once telemetry turns on."""
        engine = _engine()
        cache = FlowCache(engine)
        assert not get_telemetry().enabled
        cache.process(labelled(200))  # unobserved fill
        with telemetry_session() as tel:
            cache.process(labelled(200))
            assert cache.hits == 0  # refill, not a (silent) hit
            assert tel.registry.value(
                "repro_mpls_ops_total", node="lsr-1", op="swap"
            ) == 1

    def test_scale_last_multiplies_counters_not_events(self):
        with telemetry_session() as tel:
            sink = tel.events.add_sink(ListSink())
            engine = _engine()
            cache = FlowCache(engine)
            cache.process(labelled(200))
            cache.scale_last(9)
            assert engine.counts.swaps == 10
            assert tel.registry.value(
                "repro_mpls_ops_total", node="lsr-1", op="swap"
            ) == 10
            events = [
                e for e in sink.events if isinstance(e, LabelOpApplied)
            ]
            assert len(events) == 1  # aggregates trade event granularity


class TestCrossCheck:
    def test_cross_check_passes_on_consistent_cache(self):
        engine = _engine()
        cache = FlowCache(engine, cross_check=True)
        for i in range(5):
            cache.process(labelled(200, inner=ip_pkt(seq=i)))
        assert cache.hits == 4
