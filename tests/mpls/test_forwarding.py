"""Tests for the software label-switching engine."""


from repro.mpls.fec import PrefixFEC
from repro.mpls.forwarding import Action, ForwardingEngine
from repro.mpls.label import (
    IPV4_EXPLICIT_NULL,
    ROUTER_ALERT,
    LabelEntry,
    LabelOp,
)
from repro.mpls.nhlfe import NHLFE
from repro.mpls.stack import LabelStack
from repro.net.packet import IPv4Packet, MPLSPacket


def ip_pkt(dst="10.0.0.1", ttl=64, dscp=0):
    return IPv4Packet(src="192.168.0.1", dst=dst, ttl=ttl, dscp=dscp)


def labelled(label, ttl=64, inner=None, extra=()):
    inner = inner or ip_pkt()
    entries = [LabelEntry(label=label, ttl=ttl)] + [
        LabelEntry(label=l, ttl=ttl) for l in extra
    ]
    return MPLSPacket(LabelStack(entries), inner)


class TestIngress:
    def _engine(self):
        engine = ForwardingEngine(node_name="ler-a")
        engine.ftn.install(
            PrefixFEC("10.0.0.0/8"),
            NHLFE(op=LabelOp.PUSH, out_label=100, next_hop="lsr-1"),
        )
        return engine

    def test_push_label(self):
        engine = self._engine()
        decision = engine.ingress(ip_pkt())
        assert decision.action is Action.FORWARD_MPLS
        assert decision.packet.stack.top.label == 100
        assert decision.next_hop == "lsr-1"

    def test_ip_ttl_decremented_and_copied(self):
        engine = self._engine()
        decision = engine.ingress(ip_pkt(ttl=60))
        assert decision.packet.inner.ttl == 59
        assert decision.packet.stack.top.ttl == 59

    def test_no_route_discard(self):
        engine = self._engine()
        decision = engine.ingress(ip_pkt(dst="99.0.0.1"))
        assert decision.action is Action.DISCARD
        assert "no FEC" in decision.reason

    def test_ttl_expiry_at_ingress(self):
        engine = self._engine()
        decision = engine.ingress(ip_pkt(ttl=1))
        assert decision.action is Action.DISCARD
        assert "TTL" in decision.reason

    def test_cos_from_dscp(self):
        engine = self._engine()
        decision = engine.ingress(ip_pkt(dscp=46))  # EF -> CoS 5
        assert decision.packet.stack.top.cos == 5

    def test_cos_override_from_nhlfe(self):
        engine = ForwardingEngine(node_name="ler-a")
        engine.ftn.install(
            PrefixFEC("10.0.0.0/8"),
            NHLFE(op=LabelOp.PUSH, out_label=100, next_hop="lsr-1", cos=7),
        )
        decision = engine.ingress(ip_pkt(dscp=0))
        assert decision.packet.stack.top.cos == 7

    def test_non_push_ftn_forwards_ip(self):
        engine = ForwardingEngine(node_name="ler-a")
        engine.ftn.install(
            PrefixFEC("10.0.0.0/8"),
            NHLFE(op=LabelOp.NOOP, next_hop="attached"),
        )
        decision = engine.ingress(ip_pkt())
        assert decision.action is Action.FORWARD_IP

    def test_counts(self):
        engine = self._engine()
        engine.ingress(ip_pkt())
        assert engine.counts.ftn_lookups == 1
        assert engine.counts.pushes == 1
        assert engine.counts.ttl_updates == 1


class TestTransit:
    def _engine(self):
        engine = ForwardingEngine(node_name="lsr-1")
        engine.ilm.install(
            100, NHLFE(op=LabelOp.SWAP, out_label=200, next_hop="lsr-2")
        )
        engine.ilm.install(300, NHLFE(op=LabelOp.POP, next_hop="ler-b"))
        engine.ilm.install(
            400,
            NHLFE(op=LabelOp.PUSH, out_label=500, next_hop="tunnel-head"),
        )
        return engine

    def test_swap(self):
        engine = self._engine()
        decision = engine.transit(labelled(100, ttl=10))
        assert decision.action is Action.FORWARD_MPLS
        assert decision.packet.stack.top.label == 200
        assert decision.packet.stack.top.ttl == 9

    def test_lookup_miss_discards(self):
        """The paper's Figure 16: unknown label -> packet discard."""
        engine = self._engine()
        decision = engine.transit(labelled(27))
        assert decision.action is Action.DISCARD
        assert "27" in decision.reason
        assert engine.counts.discards == 1

    def test_ttl_expiry_discards(self):
        engine = self._engine()
        decision = engine.transit(labelled(100, ttl=1))
        assert decision.action is Action.DISCARD
        assert "TTL" in decision.reason

    def test_pop_to_ip_at_egress(self):
        engine = self._engine()
        decision = engine.transit(labelled(300, ttl=10))
        assert decision.action is Action.FORWARD_IP
        assert isinstance(decision.packet, IPv4Packet)
        assert decision.packet.ttl <= 9

    def test_pop_exposes_lower_label(self):
        engine = self._engine()
        packet = labelled(300, ttl=10, extra=(700,))
        decision = engine.transit(packet)
        assert decision.action is Action.FORWARD_MPLS
        assert decision.packet.stack.top.label == 700
        assert decision.packet.stack.depth == 1

    def test_pop_propagates_ttl_down(self):
        engine = self._engine()
        inner_entry_ttl = 200
        packet = MPLSPacket(
            LabelStack(
                [
                    LabelEntry(label=300, ttl=5),
                    LabelEntry(label=700, ttl=inner_entry_ttl),
                ]
            ),
            ip_pkt(),
        )
        decision = engine.transit(packet)
        # uniform model: the smaller (outer, decremented) TTL wins
        assert decision.packet.stack.top.ttl == 4

    def test_push_nests_tunnel(self):
        engine = self._engine()
        decision = engine.transit(labelled(400, ttl=10))
        assert decision.packet.stack.depth == 2
        assert decision.packet.stack.top.label == 500
        assert decision.packet.stack[1].label == 400
        assert decision.packet.stack[1].ttl == 9

    def test_router_alert_goes_local(self):
        engine = self._engine()
        decision = engine.transit(labelled(ROUTER_ALERT))
        assert decision.action is Action.DELIVER_LOCAL

    def test_explicit_null_pops(self):
        engine = self._engine()
        packet = MPLSPacket(
            LabelStack([LabelEntry(label=IPV4_EXPLICIT_NULL, ttl=9)]),
            ip_pkt(),
        )
        decision = engine.transit(packet)
        assert decision.action is Action.FORWARD_IP

    def test_empty_stack_discards(self):
        engine = self._engine()
        packet = MPLSPacket(LabelStack(), ip_pkt())
        decision = engine.transit(packet)
        assert decision.action is Action.DISCARD

    def test_swap_preserves_cos(self):
        engine = self._engine()
        packet = MPLSPacket(
            LabelStack([LabelEntry(label=100, cos=5, ttl=10)]), ip_pkt()
        )
        decision = engine.transit(packet)
        assert decision.packet.stack.top.cos == 5


class TestProcessDispatch:
    def test_ip_goes_to_ingress(self):
        engine = ForwardingEngine()
        decision = engine.process(ip_pkt())
        assert decision.action is Action.DISCARD  # empty FTN

    def test_mpls_goes_to_transit(self):
        engine = ForwardingEngine()
        decision = engine.process(labelled(100))
        assert decision.action is Action.DISCARD  # empty ILM

    def test_reset_counts(self):
        engine = ForwardingEngine()
        engine.process(ip_pkt())
        engine.reset_counts()
        assert engine.counts.ftn_lookups == 0


class TestOpCounts:
    def test_merged(self):
        from repro.mpls.forwarding import OpCounts

        a = OpCounts(pushes=1, swaps=2)
        b = OpCounts(pushes=3, discards=1)
        m = a.merged(b)
        assert m.pushes == 4
        assert m.swaps == 2
        assert m.discards == 1
