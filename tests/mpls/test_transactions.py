"""Shadow-bank transactions and stale marking on the ILM/FTN tables."""

import pytest

from repro.mpls.errors import LabelLookupMiss
from repro.mpls.fec import PrefixFEC
from repro.mpls.label import LabelOp
from repro.mpls.nhlfe import NHLFE
from repro.mpls.tables import FTN, ILM
from repro.mpls.transaction import TableTransaction
from repro.net.packet import IPv4Packet


def swap_to(label, nh="peer"):
    return NHLFE(op=LabelOp.SWAP, out_label=label, next_hop=nh)


def pkt(dst="10.1.2.3"):
    return IPv4Packet(src="1.1.1.1", dst=dst)


class TestILMTransaction:
    def test_staged_write_invisible_until_commit(self):
        ilm = ILM()
        ilm.install(100, swap_to(200))
        ilm.begin()
        ilm.install(100, swap_to(999))
        ilm.install(101, swap_to(201))
        # Data plane still reads the active bank.
        assert ilm.lookup(100).out_label == 200
        assert 101 not in ilm
        ilm.commit()
        assert ilm.lookup(100).out_label == 999
        assert ilm.lookup(101).out_label == 201

    def test_rollback_discards_staged_writes(self):
        ilm = ILM()
        ilm.install(100, swap_to(200))
        ilm.begin()
        ilm.install(100, swap_to(999))
        ilm.remove(100)
        ilm.install(300, swap_to(400))
        ilm.rollback()
        assert ilm.lookup(100).out_label == 200
        assert 300 not in ilm
        assert not ilm.in_transaction

    def test_commit_bumps_generation_exactly_once(self):
        ilm = ILM()
        ilm.install(100, swap_to(200))
        g0 = ilm.generation
        ilm.begin()
        for label in range(101, 110):
            ilm.install(label, swap_to(label + 100))
        assert ilm.generation == g0  # nothing visible yet
        ilm.commit()
        assert ilm.generation == g0 + 1  # single bank swap

    def test_staged_remove(self):
        ilm = ILM()
        ilm.install(100, swap_to(200))
        ilm.begin()
        ilm.remove(100)
        assert 100 in ilm  # active bank untouched
        ilm.commit()
        assert 100 not in ilm
        with pytest.raises(LabelLookupMiss):
            ilm.lookup(100)

    def test_double_begin_rejected(self):
        ilm = ILM()
        ilm.begin()
        with pytest.raises(RuntimeError):
            ilm.begin()

    def test_commit_without_begin_rejected(self):
        with pytest.raises(RuntimeError):
            ILM().commit()
        with pytest.raises(RuntimeError):
            ILM().rollback()


class TestILMStale:
    def test_mark_all_and_flush(self):
        ilm = ILM()
        ilm.install(100, swap_to(200))
        ilm.install(101, swap_to(201))
        assert ilm.mark_all_stale() == 2
        assert ilm.is_stale(100) and ilm.is_stale(101)
        # Stale entries still forward.
        assert ilm.lookup(100).out_label == 200
        assert ilm.flush_stale() == [100, 101]
        assert len(ilm) == 0

    def test_install_refreshes_in_place(self):
        ilm = ILM()
        ilm.install(100, swap_to(200))
        ilm.install(101, swap_to(201))
        ilm.mark_all_stale()
        ilm.install(100, swap_to(200))  # refresh
        assert not ilm.is_stale(100)
        assert ilm.flush_stale() == [101]
        assert ilm.lookup(100).out_label == 200

    def test_commit_refreshes_staged_installs(self):
        ilm = ILM()
        ilm.install(100, swap_to(200))
        ilm.install(101, swap_to(201))
        ilm.mark_all_stale()
        ilm.begin()
        ilm.install(100, swap_to(200))
        ilm.commit()
        assert not ilm.is_stale(100)
        assert ilm.is_stale(101)

    def test_rollback_keeps_stale_marks(self):
        ilm = ILM()
        ilm.install(100, swap_to(200))
        ilm.mark_all_stale()
        ilm.begin()
        ilm.install(100, swap_to(200))
        ilm.rollback()
        assert ilm.is_stale(100)

    def test_flush_nothing_keeps_generation(self):
        ilm = ILM()
        ilm.install(100, swap_to(200))
        g0 = ilm.generation
        assert ilm.flush_stale() == []
        assert ilm.generation == g0


class TestFTNTransaction:
    def test_staged_write_invisible_until_commit(self):
        ftn = FTN()
        fec = PrefixFEC("10.0.0.0/8")
        ftn.install(fec, swap_to(100))
        ftn.begin()
        ftn.install(fec, swap_to(999))
        _, nhlfe = ftn.lookup(pkt())
        assert nhlfe.out_label == 100
        ftn.commit()
        _, nhlfe = ftn.lookup(pkt())
        assert nhlfe.out_label == 999

    def test_rollback(self):
        ftn = FTN()
        fec = PrefixFEC("10.0.0.0/8")
        ftn.install(fec, swap_to(100))
        ftn.begin()
        ftn.remove(fec)
        ftn.rollback()
        _, nhlfe = ftn.lookup(pkt())
        assert nhlfe.out_label == 100

    def test_specificity_order_preserved_through_commit(self):
        ftn = FTN()
        ftn.begin()
        ftn.install(PrefixFEC("10.0.0.0/8"), swap_to(100))
        ftn.install(PrefixFEC("10.1.0.0/16"), swap_to(200))
        ftn.commit()
        _, nhlfe = ftn.lookup(pkt("10.1.2.3"))
        assert nhlfe.out_label == 200

    def test_stale_mark_and_flush(self):
        ftn = FTN()
        a, b = PrefixFEC("10.0.0.0/8"), PrefixFEC("11.0.0.0/8")
        ftn.install(a, swap_to(100))
        ftn.install(b, swap_to(101))
        assert ftn.mark_all_stale() == 2
        ftn.install(a, swap_to(100))  # refresh
        assert ftn.flush_stale() == [b]
        assert ftn.get(pkt("11.1.1.1")) is None
        _, nhlfe = ftn.lookup(pkt("10.1.1.1"))
        assert nhlfe.out_label == 100


class TestTableTransaction:
    def test_commit_spans_tables(self):
        ilm, ftn = ILM(), FTN()
        txn = TableTransaction([ilm, ftn])
        txn.begin()
        ilm.install(100, swap_to(200))
        ftn.install(PrefixFEC("10.0.0.0/8"), swap_to(100))
        assert len(ilm) == 0 and len(ftn) == 0
        txn.commit()
        assert len(ilm) == 1 and len(ftn) == 1

    def test_context_manager_commits_on_clean_exit(self):
        ilm = ILM()
        with TableTransaction([ilm]):
            ilm.install(100, swap_to(200))
        assert ilm.lookup(100).out_label == 200

    def test_context_manager_rolls_back_on_exception(self):
        ilm = ILM()
        ilm.install(100, swap_to(200))
        with pytest.raises(ValueError):
            with TableTransaction([ilm]):
                ilm.install(100, swap_to(999))
                raise ValueError("crash mid-reconvergence")
        assert ilm.lookup(100).out_label == 200
        assert not ilm.in_transaction

    def test_duplicate_tables_deduped(self):
        ilm = ILM()
        txn = TableTransaction([ilm, ilm])
        txn.begin()  # would raise "already open" without dedup
        ilm.install(100, swap_to(200))
        txn.commit()
        assert 100 in ilm
