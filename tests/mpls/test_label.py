"""Tests for the 32-bit label stack entry (paper Figure 5)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpls.errors import InvalidLabelError
from repro.mpls.label import (
    IMPLICIT_NULL,
    IPV4_EXPLICIT_NULL,
    LABEL_MAX,
    RESERVED_LABEL_MAX,
    ROUTER_ALERT,
    LabelEntry,
    LabelOp,
    require_real_label,
)

labels = st.integers(min_value=0, max_value=LABEL_MAX)
cos_values = st.integers(min_value=0, max_value=7)
s_bits = st.integers(min_value=0, max_value=1)
ttls = st.integers(min_value=0, max_value=255)


class TestFieldValidation:
    def test_label_too_large(self):
        with pytest.raises(InvalidLabelError):
            LabelEntry(label=1 << 20)

    def test_negative_label(self):
        with pytest.raises(InvalidLabelError):
            LabelEntry(label=-1)

    def test_cos_range(self):
        with pytest.raises(InvalidLabelError):
            LabelEntry(label=100, cos=8)

    def test_s_bit_range(self):
        with pytest.raises(InvalidLabelError):
            LabelEntry(label=100, s=2)

    def test_ttl_range(self):
        with pytest.raises(InvalidLabelError):
            LabelEntry(label=100, ttl=256)

    def test_valid_extremes(self):
        LabelEntry(label=LABEL_MAX, cos=7, s=1, ttl=255)
        LabelEntry(label=0, cos=0, s=0, ttl=0)


class TestEncoding:
    def test_figure5_layout(self):
        """Label in the top 20 bits, then 3 CoS bits, 1 S bit, 8 TTL."""
        entry = LabelEntry(label=0xABCDE, cos=0b101, s=1, ttl=0x7F)
        word = entry.encode()
        assert word >> 12 == 0xABCDE
        assert (word >> 9) & 0b111 == 0b101
        assert (word >> 8) & 1 == 1
        assert word & 0xFF == 0x7F

    def test_known_value(self):
        # label 500, cos 0, s 1, ttl 64 -> 500<<12 | 1<<8 | 64
        entry = LabelEntry(label=500, cos=0, s=1, ttl=64)
        assert entry.encode() == (500 << 12) | (1 << 8) | 64

    def test_decode_rejects_wide_word(self):
        with pytest.raises(InvalidLabelError):
            LabelEntry.decode(1 << 32)

    def test_bytes_roundtrip_is_4_bytes(self):
        entry = LabelEntry(label=77, cos=3, s=0, ttl=12)
        data = entry.encode_bytes()
        assert len(data) == 4
        assert LabelEntry.decode_bytes(data) == entry

    def test_decode_bytes_wrong_length(self):
        with pytest.raises(InvalidLabelError):
            LabelEntry.decode_bytes(b"\x00\x01\x02")

    @given(labels, cos_values, s_bits, ttls)
    def test_roundtrip_property(self, label, cos, s, ttl):
        entry = LabelEntry(label=label, cos=cos, s=s, ttl=ttl)
        assert LabelEntry.decode(entry.encode()) == entry
        assert LabelEntry.decode_bytes(entry.encode_bytes()) == entry

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_decode_encode_identity(self, word):
        assert LabelEntry.decode(word).encode() == word


class TestHelpers:
    def test_reserved_detection(self):
        assert LabelEntry(label=IPV4_EXPLICIT_NULL).is_reserved
        assert LabelEntry(label=ROUTER_ALERT).is_reserved
        assert LabelEntry(label=RESERVED_LABEL_MAX).is_reserved
        assert not LabelEntry(label=RESERVED_LABEL_MAX + 1).is_reserved

    def test_bottom_flag(self):
        assert LabelEntry(label=100, s=1).is_bottom
        assert not LabelEntry(label=100, s=0).is_bottom

    def test_decrement(self):
        entry = LabelEntry(label=100, ttl=2)
        assert entry.decremented().ttl == 1

    def test_decrement_zero_raises(self):
        with pytest.raises(InvalidLabelError):
            LabelEntry(label=100, ttl=0).decremented()

    def test_with_label_preserves_other_fields(self):
        entry = LabelEntry(label=100, cos=5, s=1, ttl=30)
        new = entry.with_label(200)
        assert (new.cos, new.s, new.ttl) == (5, 1, 30)
        assert new.label == 200

    def test_immutability(self):
        entry = LabelEntry(label=100)
        with pytest.raises(AttributeError):
            entry.label = 5  # type: ignore[misc]

    def test_str_contains_fields(self):
        text = str(LabelEntry(label=42, cos=1, s=1, ttl=9))
        assert "42" in text and "ttl=9" in text


class TestRequireRealLabel:
    def test_reserved_rejected(self):
        for reserved in (0, 1, 2, IMPLICIT_NULL, 15):
            with pytest.raises(InvalidLabelError):
                require_real_label(reserved)

    def test_real_accepted(self):
        assert require_real_label(16) == 16
        assert require_real_label(LABEL_MAX) == LABEL_MAX

    def test_out_of_range_rejected(self):
        with pytest.raises(InvalidLabelError):
            require_real_label(LABEL_MAX + 1)


class TestLabelOp:
    def test_two_bit_encoding(self):
        """The operation memory component is 2 bits wide (Figure 13)."""
        for op in LabelOp:
            assert 0 <= op.value <= 3

    def test_distinct_values(self):
        assert len({op.value for op in LabelOp}) == 4
