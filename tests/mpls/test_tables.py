"""Tests for the ILM and FTN tables."""

import pytest

from repro.mpls.errors import (
    InvalidLabelError,
    LabelLookupMiss,
    NoRouteError,
)
from repro.mpls.fec import CoSFEC, HostFEC, PrefixFEC
from repro.mpls.label import LabelOp
from repro.mpls.nhlfe import NHLFE
from repro.mpls.tables import FTN, ILM
from repro.net.packet import IPv4Packet


def swap_to(label, nh="peer"):
    return NHLFE(op=LabelOp.SWAP, out_label=label, next_hop=nh)


def pkt(dst="10.0.0.1", dscp=0):
    return IPv4Packet(src="1.1.1.1", dst=dst, dscp=dscp)


class TestILM:
    def test_install_lookup(self):
        ilm = ILM()
        ilm.install(100, swap_to(200))
        assert ilm.lookup(100).out_label == 200

    def test_miss_raises(self):
        ilm = ILM()
        with pytest.raises(LabelLookupMiss):
            ilm.lookup(999)

    def test_get_returns_none_on_miss(self):
        assert ILM().get(999) is None

    def test_reserved_label_rejected(self):
        ilm = ILM()
        with pytest.raises(InvalidLabelError):
            ilm.install(3, swap_to(200))

    def test_overwrite(self):
        ilm = ILM()
        ilm.install(100, swap_to(200))
        ilm.install(100, swap_to(300))
        assert ilm.lookup(100).out_label == 300
        assert len(ilm) == 1

    def test_remove(self):
        ilm = ILM()
        ilm.install(100, swap_to(200))
        ilm.remove(100)
        assert 100 not in ilm

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            ILM().remove(100)

    def test_generation_increments(self):
        ilm = ILM()
        g0 = ilm.generation
        ilm.install(100, swap_to(200))
        assert ilm.generation > g0

    def test_labels_sorted(self):
        ilm = ILM()
        for label in (300, 100, 200):
            ilm.install(label, swap_to(label + 1000))
        assert ilm.labels() == [100, 200, 300]

    def test_iteration(self):
        ilm = ILM()
        ilm.install(100, swap_to(200))
        assert dict(iter(ilm))[100].out_label == 200

    def test_clear(self):
        ilm = ILM()
        ilm.install(100, swap_to(200))
        ilm.clear()
        assert len(ilm) == 0


class TestFTN:
    def test_install_lookup(self):
        ftn = FTN()
        ftn.install(PrefixFEC("10.0.0.0/8"), swap_to(100))
        fec, nhlfe = ftn.lookup(pkt("10.1.2.3"))
        assert nhlfe.out_label == 100

    def test_no_route(self):
        ftn = FTN()
        with pytest.raises(NoRouteError):
            ftn.lookup(pkt())

    def test_longest_match_wins(self):
        ftn = FTN()
        ftn.install(PrefixFEC("10.0.0.0/8"), swap_to(100))
        ftn.install(PrefixFEC("10.1.0.0/16"), swap_to(200))
        _, nhlfe = ftn.lookup(pkt("10.1.2.3"))
        assert nhlfe.out_label == 200
        _, nhlfe = ftn.lookup(pkt("10.2.2.3"))
        assert nhlfe.out_label == 100

    def test_host_beats_prefix(self):
        ftn = FTN()
        ftn.install(PrefixFEC("10.0.0.0/8"), swap_to(100))
        ftn.install(HostFEC("10.1.2.3"), swap_to(300))
        _, nhlfe = ftn.lookup(pkt("10.1.2.3"))
        assert nhlfe.out_label == 300

    def test_cos_beats_plain(self):
        """EF-marked traffic takes the premium LSP, rest the default."""
        ftn = FTN()
        ftn.install(PrefixFEC("10.0.0.0/8"), swap_to(100))
        ftn.install(CoSFEC(PrefixFEC("10.0.0.0/8"), 46), swap_to(500))
        _, nhlfe = ftn.lookup(pkt("10.1.2.3", dscp=46))
        assert nhlfe.out_label == 500
        _, nhlfe = ftn.lookup(pkt("10.1.2.3", dscp=0))
        assert nhlfe.out_label == 100

    def test_reinstall_replaces(self):
        ftn = FTN()
        fec = PrefixFEC("10.0.0.0/8")
        ftn.install(fec, swap_to(100))
        ftn.install(fec, swap_to(200))
        assert len(ftn) == 1
        _, nhlfe = ftn.lookup(pkt("10.1.1.1"))
        assert nhlfe.out_label == 200

    def test_remove(self):
        ftn = FTN()
        fec = PrefixFEC("10.0.0.0/8")
        ftn.install(fec, swap_to(100))
        ftn.remove(fec)
        assert ftn.get(pkt("10.1.1.1")) is None

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            FTN().remove(PrefixFEC("10.0.0.0/8"))

    def test_generation_increments(self):
        ftn = FTN()
        g0 = ftn.generation
        ftn.install(PrefixFEC("10.0.0.0/8"), swap_to(100))
        assert ftn.generation > g0
