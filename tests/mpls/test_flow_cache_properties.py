"""Property tests: the flow cache never serves a stale decision.

Random interleavings of table mutations -- installs, removes,
transactional commit/rollback, LDP-withdraw-style stale flushes --
with packet processing, where every cache hit is cross-checked against
a fresh scalar lookup over the same tables
(``FlowCache(cross_check=True)`` raises on any divergence).  A second
oracle engine processes the same packet sequence scalar-style and the
OpCounts tallies must match exactly at the end.

Telemetry stays disabled throughout (the cross-check contract).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpls.fec import PrefixFEC
from repro.mpls.forwarding import ForwardingEngine
from repro.mpls.fastpath import FlowCache
from repro.mpls.label import LabelEntry, LabelOp
from repro.mpls.nhlfe import NHLFE
from repro.mpls.stack import LabelStack
from repro.net.packet import IPv4Packet, MPLSPacket

LABELS = [200, 201, 202, 203]
PREFIXES = ["10.0.0.0/8", "20.0.0.0/8"]
DESTS = ["10.0.0.1", "10.0.0.2", "20.0.0.5", "99.0.0.1"]

# one step of the interleaving: (kind, parameters...)
step = st.one_of(
    st.tuples(
        st.just("packet_ip"),
        st.sampled_from(DESTS),
        st.integers(min_value=1, max_value=64),  # ttl
    ),
    st.tuples(
        st.just("packet_mpls"),
        st.sampled_from(LABELS),
        st.integers(min_value=1, max_value=64),  # label ttl
    ),
    st.tuples(
        st.just("ilm_install"),
        st.sampled_from(LABELS),
        st.integers(min_value=100, max_value=999),  # out label
    ),
    st.tuples(st.just("ilm_remove"), st.sampled_from(LABELS)),
    st.tuples(
        st.just("ftn_install"),
        st.sampled_from(PREFIXES),
        st.integers(min_value=100, max_value=999),
    ),
    st.tuples(
        st.just("txn"),
        st.sampled_from(["commit", "rollback"]),
        st.sampled_from(LABELS),
        st.integers(min_value=100, max_value=999),
    ),
    st.tuples(st.just("withdraw_all")),  # mark stale + flush
)


def _apply_mutation(table_op, engine):
    kind = table_op[0]
    if kind == "ilm_install":
        _, label, out = table_op
        engine.ilm.install(
            label, NHLFE(op=LabelOp.SWAP, out_label=out, next_hop="n")
        )
    elif kind == "ilm_remove":
        _, label = table_op
        if engine.ilm.get(label) is not None:
            engine.ilm.remove(label)
    elif kind == "ftn_install":
        _, prefix, out = table_op
        engine.ftn.install(
            PrefixFEC(prefix),
            NHLFE(op=LabelOp.PUSH, out_label=out, next_hop="n"),
        )
    elif kind == "txn":
        _, mode, label, out = table_op
        engine.ilm.begin()
        engine.ilm.install(
            label, NHLFE(op=LabelOp.SWAP, out_label=out, next_hop="t")
        )
        if mode == "commit":
            engine.ilm.commit()
        else:
            engine.ilm.rollback()
    elif kind == "withdraw_all":
        engine.ilm.mark_all_stale()
        engine.ilm.flush_stale()


def _make_packet(table_op, seq):
    kind = table_op[0]
    if kind == "packet_ip":
        _, dst, ttl = table_op
        return IPv4Packet(
            src="192.168.0.1", dst=dst, ttl=ttl, seq=seq
        )
    _, label, ttl = table_op
    return MPLSPacket(
        LabelStack([LabelEntry(label=label, ttl=ttl)]),
        IPv4Packet(src="192.168.0.1", dst="10.0.0.9", seq=seq),
    )


@settings(max_examples=120, deadline=None)
@given(steps=st.lists(step, min_size=1, max_size=60))
def test_random_interleavings_never_serve_stale_decisions(steps):
    engine = ForwardingEngine(node_name="lsr-p")
    cache = FlowCache(engine, capacity=4, cross_check=True)
    oracle = ForwardingEngine(engine.ilm, engine.ftn, "lsr-p")
    seq = 0
    for table_op in steps:
        if table_op[0].startswith("packet"):
            packet = _make_packet(table_op, seq)
            seq += 1
            got = cache.process(packet)  # raises FlowCacheInconsistency
            want = oracle.process(packet)
            assert got.action is want.action
            assert got.packet == want.packet
            assert got.next_hop == want.next_hop
            assert got.reason == want.reason
        else:
            _apply_mutation(table_op, engine)
    # after any interleaving, the cached tally equals scalar processing
    assert engine.counts == oracle.counts


@settings(max_examples=60, deadline=None)
@given(
    steps=st.lists(step, min_size=1, max_size=40),
    capacity=st.integers(min_value=1, max_value=3),
)
def test_tiny_capacities_thrash_but_stay_consistent(steps, capacity):
    """Eviction pressure (capacity 1-3) exercises refill-after-evict
    against every mutation pattern."""
    engine = ForwardingEngine(node_name="lsr-t")
    cache = FlowCache(engine, capacity=capacity, cross_check=True)
    seq = 0
    for table_op in steps:
        if table_op[0].startswith("packet"):
            cache.process(_make_packet(table_op, seq))
            seq += 1
        else:
            _apply_mutation(table_op, engine)
    assert len(cache) <= capacity
