"""Tests for line-rate feasibility analysis."""

import pytest

from repro.analysis.throughput import line_rate_feasibility
from repro.core.device import FPGADevice


class TestLineRateFeasibility:
    def test_feasible_case(self):
        # 20 cycles/packet at 50 MHz = 2.5 Mpps; a 10 Mbps link of
        # 500-byte packets needs only 2500 pps
        feas = line_rate_feasibility(20, packet_size_bytes=500,
                                     link_bps=10e6)
        assert feas.feasible
        assert feas.modifier_pps == pytest.approx(2.5e6)
        assert feas.link_pps == pytest.approx(2500)
        assert feas.utilization == pytest.approx(0.001)

    def test_infeasible_case(self):
        # 3089 cycles/packet (n=1024 worst case) at 50 MHz ~ 16k pps;
        # 100 Mbps of 64-byte packets needs ~195k pps
        feas = line_rate_feasibility(3089, packet_size_bytes=64,
                                     link_bps=100e6)
        assert not feas.feasible
        assert feas.utilization > 1

    def test_max_line_rate(self):
        feas = line_rate_feasibility(20, packet_size_bytes=500,
                                     link_bps=10e6)
        assert feas.max_line_rate_bps == pytest.approx(2.5e6 * 4000)

    def test_custom_device(self):
        fast = FPGADevice("fast", clock_hz=200e6, memory_bits=1,
                          logic_elements=1)
        slow = line_rate_feasibility(100, device=fast)
        assert slow.modifier_pps == pytest.approx(2e6)

    def test_validation(self):
        with pytest.raises(ValueError):
            line_rate_feasibility(0)
        with pytest.raises(ValueError):
            line_rate_feasibility(10, packet_size_bytes=0)
        with pytest.raises(ValueError):
            line_rate_feasibility(10, link_bps=0)
