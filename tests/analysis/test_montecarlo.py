"""Tests for the Monte-Carlo latency model."""

import pytest

from repro.analysis.montecarlo import latency_sweep, sample_swap_latency
from repro.hw.model import SEARCH_HIT_BASE, SWAP_TAIL_CYCLES


class TestSampleSwapLatency:
    def test_bounds(self):
        dist = sample_swap_latency(64, samples=50_000, seed=1)
        floor = SEARCH_HIT_BASE + SWAP_TAIL_CYCLES
        ceiling = 3 * 63 + floor
        assert floor <= dist.p50_cycles <= dist.p99_cycles
        assert dist.max_cycles <= ceiling

    def test_uniform_mean_matches_expectation(self):
        n = 100
        dist = sample_swap_latency(n, samples=200_000, seed=2)
        expected = 3 * (n - 1) / 2 + SEARCH_HIT_BASE + SWAP_TAIL_CYCLES
        assert dist.mean_cycles == pytest.approx(expected, rel=0.02)

    def test_skew_towards_early_entries_lowers_latency(self):
        uniform = sample_swap_latency(256, samples=100_000, skew=0.0, seed=3)
        skewed = sample_swap_latency(256, samples=100_000, skew=1.5, seed=3)
        assert skewed.mean_cycles < uniform.mean_cycles
        assert skewed.p99_cycles <= uniform.p99_cycles

    def test_single_entry_is_deterministic(self):
        dist = sample_swap_latency(1, samples=1000)
        assert dist.mean_cycles == dist.max_cycles == 14

    def test_extra_cycles_shift_everything(self):
        base = sample_swap_latency(16, samples=10_000, seed=4)
        shifted = sample_swap_latency(16, samples=10_000, seed=4,
                                      extra_cycles=6)
        assert shifted.mean_cycles == pytest.approx(base.mean_cycles + 6)

    def test_deterministic_given_seed(self):
        a = sample_swap_latency(64, samples=10_000, seed=7)
        b = sample_swap_latency(64, samples=10_000, seed=7)
        assert a == b

    def test_seconds_conversion(self):
        dist = sample_swap_latency(16, samples=10_000)
        assert dist.mean_seconds == pytest.approx(
            dist.mean_cycles * 20e-9
        )
        assert dist.supported_pps_at_p99() == pytest.approx(
            1 / dist.p99_seconds
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_swap_latency(0)
        with pytest.raises(ValueError):
            sample_swap_latency(10, samples=0)
        with pytest.raises(ValueError):
            sample_swap_latency(10, skew=-1)


class TestLatencySweep:
    def test_sweep_shape(self):
        sweep = latency_sweep(table_sizes=(16, 64), skews=(0.0, 1.0),
                              samples=20_000)
        assert set(sweep) == {(16, 0.0), (16, 1.0), (64, 0.0), (64, 1.0)}
        # bigger tables cost more under uniform hits
        assert sweep[(64, 0.0)].mean_cycles > sweep[(16, 0.0)].mean_cycles
