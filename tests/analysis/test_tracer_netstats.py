"""Tests for packet tracing and network statistics."""

import pytest

from repro.analysis.netstats import (
    link_usage,
    render_link_usage,
    render_node_counters,
    render_summary,
)
from repro.analysis.tracer import NetworkTracer
from repro.control.ldp import LDPProcess
from repro.mpls.fec import PrefixFEC
from repro.mpls.forwarding import Action
from repro.mpls.router import RouterRole
from repro.net.network import MPLSNetwork
from repro.net.packet import IPv4Packet
from repro.net.topology import paper_figure1
from repro.net.traffic import CBRSource
from repro.obs import get_telemetry


@pytest.fixture(autouse=True)
def _no_telemetry_leak():
    """Constructing a NetworkTracer flips the process-wide telemetry
    switch on and attaches an everything-sampling span recorder;
    ``detach()`` is the restore contract.  These tests keep tracers
    alive to the end, so restore the global state here instead of
    leaking span capture into every later test module."""
    yield
    get_telemetry().disable().reset()


def _network():
    topo = paper_figure1(bandwidth_bps=10e6, delay_s=1e-3)
    net = MPLSNetwork(
        topo, roles={"ler-a": RouterRole.LER, "ler-b": RouterRole.LER}
    )
    net.attach_host("ler-b", "10.2.0.0/16")
    LDPProcess(topo, net.nodes).establish_fec(
        PrefixFEC("10.2.0.0/16"), egress="ler-b"
    )
    return net


class TestTracer:
    def test_trace_follows_the_lsp(self):
        net = _network()
        tracer = NetworkTracer(net)
        packet = IPv4Packet(src="10.1.0.5", dst="10.2.0.9")
        net.inject("ler-a", packet)
        net.run()
        trace = tracer.trace_of(packet.uid)
        assert trace.path == ["ler-a", "lsr-1", "lsr-2", "ler-b"]
        assert trace.delivered
        assert not trace.dropped

    def test_label_journey(self):
        net = _network()
        tracer = NetworkTracer(net)
        packet = IPv4Packet(src="10.1.0.5", dst="10.2.0.9")
        net.inject("ler-a", packet)
        net.run()
        journey = tracer.trace_of(packet.uid).label_journey()
        # pushed at the LER, swapped twice, popped at the egress; note
        # that label *values* may coincide across nodes -- each LSR has
        # its own per-platform label space
        assert len(journey[0][1]) == 1   # after ingress push
        assert len(journey[1][1]) == 1   # swapped
        assert journey[-1][1] == ()      # popped at egress
        # each hop carried the label the downstream node advertised
        binding = {
            name: net.nodes[name].ilm.labels()[0]
            for name in ("lsr-1", "lsr-2", "ler-b")
        }
        assert journey[0][1] == (binding["lsr-1"],)
        assert journey[1][1] == (binding["lsr-2"],)
        assert journey[2][1] == (binding["ler-b"],)

    def test_dropped_packet_traced_with_reason(self):
        net = _network()
        tracer = NetworkTracer(net)
        packet = IPv4Packet(src="10.1.0.5", dst="99.9.9.9")
        net.inject("ler-a", packet)
        net.run()
        trace = tracer.trace_of(packet.uid)
        assert trace.dropped
        assert trace.hops[-1].action is Action.DISCARD
        assert "no FEC" in trace.hops[-1].reason
        assert tracer.dropped_traces() == [trace]

    def test_traces_per_flow(self):
        net = _network()
        tracer = NetworkTracer(net)
        src = CBRSource(net.scheduler, net.source_sink("ler-a"),
                        src="10.1.0.5", dst="10.2.0.9", rate_bps=1e6,
                        packet_size=500, stop=0.05)
        src.begin()
        net.run(until=1.0)
        traces = tracer.traces_for_flow(src.flow_id)
        assert len(traces) == src.sent
        assert all(t.delivered for t in traces)

    def test_render(self):
        net = _network()
        tracer = NetworkTracer(net)
        packet = IPv4Packet(src="10.1.0.5", dst="10.2.0.9")
        net.inject("ler-a", packet)
        net.run()
        text = tracer.trace_of(packet.uid).render()
        assert "ler-a" in text and "forward-ip" in text


class TestNetstats:
    def _run(self):
        net = _network()
        src = CBRSource(net.scheduler, net.source_sink("ler-a"),
                        src="10.1.0.5", dst="10.2.0.9", rate_bps=1e6,
                        packet_size=500, stop=0.5)
        src.begin()
        net.run(until=1.0)
        return net, src

    def test_link_usage_counts(self):
        net, src = self._run()
        usage = {(u.src, u.dst): u for u in link_usage(net, duration=0.5)}
        assert usage[("ler-a", "lsr-1")].packets == src.sent
        assert usage[("lsr-1", "ler-a")].packets == 0
        assert usage[("lsr-1", "lsr-3")].packets == 0

    def test_utilization_fraction(self):
        net, src = self._run()
        usage = {(u.src, u.dst): u for u in link_usage(net, duration=0.5)}
        # ~1 Mbps + label overhead on a 10 Mbps link
        assert usage[("ler-a", "lsr-1")].utilization == pytest.approx(
            0.10, abs=0.02
        )

    def test_duration_validation(self):
        net, _ = self._run()
        with pytest.raises(ValueError):
            link_usage(net, duration=0)

    def test_renderers_produce_tables(self):
        net, src = self._run()
        links_text = render_link_usage(net, duration=0.5)
        nodes_text = render_node_counters(net)
        summary = render_summary(net)
        assert "ler-a -> lsr-1" in links_text
        assert "lsr-2" in nodes_text
        assert "mean latency" in summary
        assert str(net.delivered_count()) in summary
