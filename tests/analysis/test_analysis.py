"""Tests for the analysis helpers."""

import pytest

from repro.analysis.cycles import measure_table6
from repro.analysis.report import render_series, render_table
from repro.analysis.throughput import estimate_throughput


class TestMeasureTable6:
    def test_every_row_matches_formula(self):
        rows = measure_table6(search_sizes=(1, 5), ib_depth=64)
        assert rows, "no measurements returned"
        for row in rows:
            assert row.matches, f"{row.operation}: {row.expected} != {row.measured}"

    def test_row_structure(self):
        rows = measure_table6(search_sizes=(2,), ib_depth=16)
        names = [r.operation for r in rows]
        assert "Reset" in names
        assert any("Search" in n for n in names)
        assert any("Swap" in n for n in names)


class TestThroughput:
    def test_worst_case_rate(self):
        est = estimate_throughput(n_entries=1, packet_size_bytes=500)
        assert est.cycles_per_packet == 14
        assert est.packets_per_second == pytest.approx(50e6 / 14)
        assert est.mbps == pytest.approx(est.packets_per_second * 4000 / 1e6)

    def test_average_case_is_faster(self):
        worst = estimate_throughput(n_entries=1000)
        avg = estimate_throughput(n_entries=1000, average_case=True)
        assert avg.packets_per_second > worst.packets_per_second

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_throughput(n_entries=0)
        with pytest.raises(ValueError):
            estimate_throughput(n_entries=1, packet_size_bytes=0)


class TestReport:
    def test_render_table(self):
        text = render_table(
            ["op", "cycles"],
            [["reset", 3], ["push", 3]],
            title="Table 6",
        )
        assert "Table 6" in text
        assert "reset" in text and "push" in text
        lines = text.splitlines()
        assert len(lines) == 5  # title, header, separator, 2 rows

    def test_render_empty_table(self):
        text = render_table(["a", "b"], [])
        assert "a" in text

    def test_float_formatting(self):
        text = render_table(["x"], [[0.000123456], [1234567.0], [0.5], [0.0]])
        assert "1.235e-04" in text
        assert "1.235e+06" in text
        assert "0.5" in text

    def test_render_series(self):
        text = render_series("n", ["hw", "sw"], [[1, 2, 3], [10, 20, 30]])
        assert "n" in text and "hw" in text
