"""Unit tests for width-checked wires and registers."""

import pytest

from repro.hdl.signal import Reg, SignalError, WidthError, Wire


class TestSignalBasics:
    def test_default_value(self):
        w = Wire("w", width=4, default=5)
        assert w.value == 5

    def test_width_must_be_positive(self):
        with pytest.raises(WidthError):
            Wire("w", width=0)

    def test_value_out_of_range_rejected(self):
        with pytest.raises(WidthError):
            Wire("w", width=3, default=8)

    def test_int_conversion(self):
        w = Wire("w", width=8, default=42)
        assert int(w) == 42
        assert w == 42

    def test_bool_conversion(self):
        assert not Wire("w", width=1, default=0)
        assert Wire("w", width=1, default=1)

    def test_index_protocol(self):
        w = Wire("w", width=8, default=3)
        assert [10, 20, 30, 40][w] == 40

    def test_equality_between_signals(self):
        a = Wire("a", width=4, default=7)
        b = Wire("b", width=8, default=7)
        assert a == b


class TestWire:
    def test_drive_sets_value(self):
        w = Wire("w", width=8)
        w.begin_settle()
        assert w.drive(17) is True
        assert w.value == 17

    def test_drive_same_value_reports_no_change(self):
        w = Wire("w", width=8)
        w.begin_settle()
        w.drive(9)
        w.begin_settle()
        changed = w.drive(0)
        # after begin_settle the wire reverted to default 0, so driving 0
        # is not a change
        assert changed is False

    def test_conflicting_drives_raise(self):
        w = Wire("w", width=8)
        w.begin_settle()
        w.drive(1)
        with pytest.raises(SignalError):
            w.drive(2)

    def test_redrive_same_value_allowed(self):
        w = Wire("w", width=8)
        w.begin_settle()
        w.drive(3)
        w.drive(3)  # no exception
        assert w.value == 3

    def test_begin_settle_reverts_to_default(self):
        w = Wire("w", width=8, default=4)
        w.begin_settle()
        w.drive(200)
        w.begin_settle()
        assert w.value == 4

    def test_drive_out_of_range(self):
        w = Wire("w", width=4)
        w.begin_settle()
        with pytest.raises(WidthError):
            w.drive(16)


class TestReg:
    def test_stage_does_not_change_value(self):
        r = Reg("r", width=8, default=1)
        r.stage(200)
        assert r.value == 1
        assert r.next_value == 200

    def test_commit_adopts_staged(self):
        r = Reg("r", width=8)
        r.stage(55)
        assert r.commit() is True
        assert r.value == 55

    def test_commit_without_stage_is_noop(self):
        r = Reg("r", width=8, default=9)
        assert r.commit() is False
        assert r.value == 9

    def test_commit_same_value_reports_no_change(self):
        r = Reg("r", width=8, default=7)
        r.stage(7)
        assert r.commit() is False

    def test_stage_out_of_range(self):
        r = Reg("r", width=2)
        with pytest.raises(WidthError):
            r.stage(4)

    def test_reset_clears_staged(self):
        r = Reg("r", width=8, default=2)
        r.stage(100)
        r.reset()
        assert r.value == 2
        assert r.commit() is False
        assert r.value == 2

    def test_next_value_without_stage(self):
        r = Reg("r", width=8, default=6)
        assert r.next_value == 6
