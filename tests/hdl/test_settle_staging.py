"""Regression test: conditional register stages must not survive a
settle pass that revokes their condition.

Found while reproducing the paper's Figure 16: during the first settle
pass a comparator's output was computed from not-yet-driven inputs
(spuriously equal), a state machine staged its output registers under
that condition, and a later pass corrected the state transition but the
stale staged output still committed -- violating the figure's
"label_out and operation_out remain unchanged" observable.
"""

from repro.hdl.simulator import Component, Simulator


class _LateDriver(Component):
    """Drives a wire to 1; registered last, so earlier components see
    the wire's default (0) during the first settle pass."""

    def __init__(self, sim, wire):
        super().__init__(sim, "late")
        self._wire = wire

    def settle(self):
        self._wire.drive(1)


class _ConditionalStager(Component):
    """Stages its output register only when ``inhibit`` is low."""

    def __init__(self, sim):
        super().__init__(sim, "stager")
        self.inhibit = self.wire("inhibit", 1)
        self.out = self.reg("out", 8)

    def settle(self):
        if not self.inhibit.value:
            self.out.stage(99)


class TestConditionalStaging:
    def test_revoked_stage_does_not_commit(self):
        sim = Simulator()
        stager = _ConditionalStager(sim)
        _LateDriver(sim, stager.inhibit)
        # pass 1: inhibit reads 0 (default) -> stager stages 99
        # pass 2: inhibit reads 1 -> condition revoked, nothing staged
        sim.step()
        assert stager.out.value == 0

    def test_unrevoked_stage_commits(self):
        sim = Simulator()
        stager = _ConditionalStager(sim)
        sim.step()
        assert stager.out.value == 99

    def test_unstage_api(self):
        from repro.hdl.signal import Reg

        reg = Reg("r", width=8, default=7)
        reg.stage(42)
        reg.unstage()
        assert reg.commit() is False
        assert reg.value == 7
