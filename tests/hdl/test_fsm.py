"""Unit tests for the FSM framework."""

import pytest

from repro.hdl.fsm import FSM
from repro.hdl.simulator import Simulator


class _Blinker(FSM):
    """IDLE -> ON -> OFF -> IDLE cycle gated by an enable wire."""

    def __init__(self, sim):
        super().__init__(sim, "blink", ["IDLE", "ON", "OFF"])
        self.enable = self.wire("enable", 1)
        self.lamp = self.wire("lamp", 1)

    def transition(self):
        if self.in_state("IDLE"):
            return self.s("ON") if self.enable.value else self.s("IDLE")
        if self.in_state("ON"):
            return self.s("OFF")
        return self.s("IDLE")

    def output(self):
        self.lamp.drive(1 if self.in_state("ON") else 0)


class TestFSM:
    def test_reset_state_is_first(self):
        sim = Simulator()
        fsm = _Blinker(sim)
        assert fsm.state_name == "IDLE"

    def test_stays_idle_without_enable(self):
        sim = Simulator()
        fsm = _Blinker(sim)
        sim.step(3)
        assert fsm.state_name == "IDLE"

    def test_transition_takes_one_edge(self):
        sim = Simulator()
        fsm = _Blinker(sim)

        class _En:
            def __init__(self, sim, fsm):
                from repro.hdl.simulator import Component

                class D(Component):
                    def settle(s):
                        fsm.enable.drive(1)

                D(sim, "en")

        _En(sim, fsm)
        sim.step()
        assert fsm.state_name == "ON"
        sim.step()
        assert fsm.state_name == "OFF"
        sim.step()
        assert fsm.state_name == "IDLE"

    def test_moore_output_follows_state(self):
        sim = Simulator()
        fsm = _Blinker(sim)
        sim.settle_only()
        assert fsm.lamp.value == 0

    def test_unknown_state_lookup(self):
        sim = Simulator()
        fsm = _Blinker(sim)
        with pytest.raises(KeyError):
            fsm.s("NOPE")

    def test_duplicate_states_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FSM(sim, "bad", ["A", "A"])

    def test_empty_states_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FSM(sim, "bad", [])

    def test_state_codes_stable(self):
        sim = Simulator()
        fsm = _Blinker(sim)
        assert fsm.s("IDLE").code == 0
        assert fsm.s("ON").code == 1
        assert fsm.s("OFF").code == 2

    def test_reset_returns_to_first_state(self):
        sim = Simulator()
        fsm = _Blinker(sim)
        fsm._state_reg.stage(2)
        fsm._state_reg.commit()
        assert fsm.state_name == "OFF"
        sim.reset()
        assert fsm.state_name == "IDLE"

    def test_transition_type_checked(self):
        sim = Simulator()

        class Bad(FSM):
            def __init__(self, sim):
                super().__init__(sim, "badfsm", ["A"])

            def transition(self):
                return "A"  # not a State

        Bad(sim)
        with pytest.raises(TypeError):
            sim.step()
