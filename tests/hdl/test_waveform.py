"""Tests for the waveform recorder, ASCII rendering, and VCD dump."""

import os


from repro.hdl.simulator import Component, Simulator
from repro.hdl.waveform import WaveformRecorder, dump_vcd, render_ascii


class _Counter(Component):
    def __init__(self, sim):
        super().__init__(sim, "ctr")
        self.value = self.reg("value", 8)
        self.tick_bit = self.reg("tick", 1)

    def settle(self):
        self.value.stage((self.value.value + 1) % 256)
        self.tick_bit.stage(1 - self.tick_bit.value)


def _setup():
    sim = Simulator()
    ctr = _Counter(sim)
    recorder = WaveformRecorder(sim)
    return sim, ctr, recorder


class TestRecorder:
    def test_captures_every_cycle(self):
        sim, ctr, recorder = _setup()
        sim.step(5)
        assert recorder.cycles == [1, 2, 3, 4, 5]
        assert recorder.trace["ctr.value"] == [1, 2, 3, 4, 5]

    def test_selected_signals_only(self):
        sim = Simulator()
        ctr = _Counter(sim)
        recorder = WaveformRecorder(sim, [sim.signal("ctr.value")])
        sim.step(2)
        assert list(recorder.trace) == ["ctr.value"]

    def test_pause_resume(self):
        sim, ctr, recorder = _setup()
        sim.step(2)
        recorder.pause()
        sim.step(2)
        recorder.resume()
        sim.step(1)
        assert recorder.cycles == [1, 2, 5]

    def test_clear(self):
        sim, ctr, recorder = _setup()
        sim.step(3)
        recorder.clear()
        assert recorder.cycles == []
        sim.step(1)
        assert recorder.cycles == [4]

    def test_changes(self):
        sim, ctr, recorder = _setup()
        sim.step(4)
        changes = recorder.changes("ctr.tick")
        assert changes == [(1, 1), (2, 0), (3, 1), (4, 0)]

    def test_value_at(self):
        sim, ctr, recorder = _setup()
        sim.step(4)
        assert recorder.value_at("ctr.value", 3) == 3


class TestAsciiRendering:
    def test_renders_levels_and_values(self):
        sim, ctr, recorder = _setup()
        sim.step(4)
        text = render_ascii(recorder)
        assert "ctr.value" in text
        assert "###" in text  # tick high
        assert "___" in text  # tick low

    def test_empty_capture(self):
        sim, ctr, recorder = _setup()
        assert "no cycles" in render_ascii(recorder)

    def test_window(self):
        sim, ctr, recorder = _setup()
        sim.step(20)
        text = render_ascii(recorder, start=18, end=20)
        assert " 18" in text and " 20" in text
        assert "  5 " not in text


class TestVCD:
    def test_dump_loads_as_valid_vcd(self, tmp_path):
        sim, ctr, recorder = _setup()
        sim.step(5)
        path = os.path.join(tmp_path, "wave.vcd")
        dump_vcd(recorder, path)
        with open(path) as fh:
            content = fh.read()
        assert "$timescale 20 ns $end" in content
        assert "$var wire 8" in content
        assert "$enddefinitions" in content
        assert "#1" in content and "#5" in content
        # binary values for the multibit counter
        assert "b101 " in content

    def test_only_changes_emitted(self, tmp_path):
        sim = Simulator()

        class Constant(Component):
            def __init__(self, sim):
                super().__init__(sim, "konst")
                self.q = self.reg("q", 4, default=7)

            def settle(self):
                self.q.stage(7)

        Constant(sim)
        recorder = WaveformRecorder(sim)
        sim.step(10)
        path = os.path.join(tmp_path, "const.vcd")
        dump_vcd(recorder, path)
        with open(path) as fh:
            body = fh.read().split("$enddefinitions $end")[1]
        # one initial value change, then silence
        assert body.count("b111 ") == 1
