"""Unit tests for datapath primitives: memory, counter, register, mux,
comparator."""

import pytest

from repro.hdl.comparator import EqualityComparator
from repro.hdl.counter import Counter
from repro.hdl.memory import SyncMemory
from repro.hdl.mux import Mux
from repro.hdl.register import Register
from repro.hdl.signal import WidthError
from repro.hdl.simulator import Component, Simulator


class _Driver(Component):
    """Drives arbitrary wires to scripted values during settle."""

    def __init__(self, sim):
        super().__init__(sim, "drv")
        self.values = {}

    def set(self, wire, value):
        self.values[wire] = value

    def settle(self):
        for wire, value in self.values.items():
            wire.drive(value)


class TestSyncMemory:
    def test_write_then_registered_read(self):
        sim = Simulator()
        drv = _Driver(sim)
        mem = SyncMemory(sim, "mem", depth=16, width=8)
        drv.set(mem.wr_en, 1)
        drv.set(mem.wr_addr, 3)
        drv.set(mem.wr_data, 99)
        drv.set(mem.rd_addr, 3)
        sim.step()  # write lands, read of addr 3 sampled (pre-write data irrelevant)
        drv.set(mem.wr_en, 0)
        sim.step()  # rd_data now reflects addr 3
        assert mem.rd_data.value == 99

    def test_read_latency_is_one_cycle(self):
        sim = Simulator()
        drv = _Driver(sim)
        mem = SyncMemory(sim, "mem", depth=4, width=8)
        mem.poke(2, 42)
        drv.set(mem.rd_addr, 2)
        assert mem.rd_data.value == 0  # before any edge
        sim.step()
        assert mem.rd_data.value == 42

    def test_write_disabled_does_not_write(self):
        sim = Simulator()
        drv = _Driver(sim)
        mem = SyncMemory(sim, "mem", depth=4, width=8)
        drv.set(mem.wr_en, 0)
        drv.set(mem.wr_addr, 1)
        drv.set(mem.wr_data, 7)
        sim.step()
        assert mem.peek(1) == 0

    def test_reset_clears_array(self):
        sim = Simulator()
        mem = SyncMemory(sim, "mem", depth=4, width=8)
        mem.poke(0, 5)
        sim.reset()
        assert mem.peek(0) == 0

    def test_poke_width_checked(self):
        sim = Simulator()
        mem = SyncMemory(sim, "mem", depth=4, width=4)
        with pytest.raises(WidthError):
            mem.poke(0, 16)

    def test_depth_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            SyncMemory(sim, "mem", depth=0, width=8)

    def test_dump_is_copy(self):
        sim = Simulator()
        mem = SyncMemory(sim, "mem", depth=4, width=8)
        d = mem.dump()
        d[0] = 99
        assert mem.peek(0) == 0


class TestCounter:
    def _mk(self):
        sim = Simulator()
        drv = _Driver(sim)
        ctr = Counter(sim, "ctr", width=4)
        return sim, drv, ctr

    def test_count_up(self):
        sim, drv, ctr = self._mk()
        drv.set(ctr.en, 1)
        sim.step(3)
        assert ctr.count.value == 3

    def test_count_down_wraps(self):
        sim, drv, ctr = self._mk()
        drv.set(ctr.en, 1)
        drv.set(ctr.down, 1)
        sim.step()
        assert ctr.count.value == 15

    def test_load_wins_over_enable(self):
        sim, drv, ctr = self._mk()
        drv.set(ctr.en, 1)
        drv.set(ctr.load, 1)
        drv.set(ctr.load_value, 9)
        sim.step()
        assert ctr.count.value == 9

    def test_clear_wins_over_load(self):
        sim, drv, ctr = self._mk()
        drv.set(ctr.load, 1)
        drv.set(ctr.load_value, 9)
        drv.set(ctr.clear, 1)
        sim.step()
        assert ctr.count.value == 0

    def test_hold_when_idle(self):
        sim, drv, ctr = self._mk()
        drv.set(ctr.load, 1)
        drv.set(ctr.load_value, 5)
        sim.step()
        drv.set(ctr.load, 0)
        sim.step(4)
        assert ctr.count.value == 5

    def test_wrap_up(self):
        sim, drv, ctr = self._mk()
        drv.set(ctr.load, 1)
        drv.set(ctr.load_value, 15)
        sim.step()
        drv.set(ctr.load, 0)
        drv.set(ctr.en, 1)
        sim.step()
        assert ctr.count.value == 0


class TestRegister:
    def test_capture_on_enable(self):
        sim = Simulator()
        drv = _Driver(sim)
        r = Register(sim, "r", width=8)
        drv.set(r.d, 77)
        drv.set(r.en, 1)
        sim.step()
        assert r.q.value == 77

    def test_hold_without_enable(self):
        sim = Simulator()
        drv = _Driver(sim)
        r = Register(sim, "r", width=8)
        drv.set(r.d, 77)
        drv.set(r.en, 1)
        sim.step()
        drv.set(r.en, 0)
        drv.set(r.d, 1)
        sim.step(3)
        assert r.q.value == 77

    def test_clear(self):
        sim = Simulator()
        drv = _Driver(sim)
        r = Register(sim, "r", width=8)
        drv.set(r.d, 77)
        drv.set(r.en, 1)
        sim.step()
        drv.set(r.clear, 1)
        sim.step()
        assert r.q.value == 0


class TestComparator:
    def test_equal(self):
        sim = Simulator()
        drv = _Driver(sim)
        cmp32 = EqualityComparator(sim, "cmp", width=32)
        drv.set(cmp32.a, 123456)
        drv.set(cmp32.b, 123456)
        sim.settle_only()
        assert cmp32.eq.value == 1

    def test_not_equal(self):
        sim = Simulator()
        drv = _Driver(sim)
        c = EqualityComparator(sim, "cmp", width=20)
        drv.set(c.a, 5)
        drv.set(c.b, 6)
        sim.settle_only()
        assert c.eq.value == 0


class TestMux:
    def test_selects_input(self):
        sim = Simulator()
        drv = _Driver(sim)
        a = sim.add_wire("a", 8)
        b = sim.add_wire("b", 8)
        m = Mux(sim, "m", [a, b], width=8)
        drv.set(a, 10)
        drv.set(b, 20)
        drv.set(m.sel, 1)
        sim.settle_only()
        assert m.out.value == 20

    def test_too_wide_input_rejected(self):
        sim = Simulator()
        a = sim.add_wire("a", 16)
        with pytest.raises(ValueError):
            Mux(sim, "m", [a], width=8)

    def test_empty_inputs_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Mux(sim, "m", [], width=8)

    def test_out_of_range_select_raises(self):
        sim = Simulator()
        drv = _Driver(sim)
        a = sim.add_wire("a", 8)
        b = sim.add_wire("b", 8)
        c = sim.add_wire("c", 8)
        m = Mux(sim, "m", [a, b, c], width=8)
        drv.set(m.sel, 3)
        with pytest.raises(IndexError):
            sim.settle_only()
