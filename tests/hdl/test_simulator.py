"""Unit tests for the two-phase simulator."""

import pytest

from repro.hdl.simulator import (
    CombinationalLoopError,
    Component,
    Simulator,
)


class _ToggleBit(Component):
    """A register that inverts every cycle."""

    def __init__(self, sim):
        super().__init__(sim, "toggle")
        self.q = self.reg("q", 1)

    def settle(self):
        self.q.stage(1 - self.q.value)


class _Follower(Component):
    """A wire combinationally following a register (tests settle order)."""

    def __init__(self, sim, src):
        super().__init__(sim, "follower")
        self.src = src
        self.out = self.wire("out", 1)

    def settle(self):
        self.out.drive(self.src.value)


class _Oscillator(Component):
    """A deliberately unstable combinational loop."""

    def __init__(self, sim):
        super().__init__(sim, "osc")
        self.a = self.wire("a", 1)
        self._flip = 0

    def settle(self):
        # drives a different value every settle pass: never converges
        self._flip ^= 1
        self.a.drive(self._flip)


class TestSimulator:
    def test_register_updates_once_per_cycle(self):
        sim = Simulator()
        t = _ToggleBit(sim)
        assert t.q.value == 0
        sim.step()
        assert t.q.value == 1
        sim.step()
        assert t.q.value == 0

    def test_wire_follows_register_in_same_cycle(self):
        sim = Simulator()
        t = _ToggleBit(sim)
        f = _Follower(sim, t.q)
        sim.step()
        sim.settle_only()
        assert f.out.value == t.q.value == 1

    def test_cycle_counter(self):
        sim = Simulator()
        _ToggleBit(sim)
        sim.step(5)
        assert sim.cycle == 5

    def test_combinational_loop_detected(self):
        sim = Simulator(max_settle_passes=8)
        _Oscillator(sim)
        with pytest.raises(CombinationalLoopError):
            sim.step()

    def test_run_until(self):
        sim = Simulator()
        t = _ToggleBit(sim)
        used = sim.run_until(lambda: sim.cycle == 4)
        assert used == 4
        assert t.q.value == 0

    def test_run_until_timeout(self):
        sim = Simulator()
        _ToggleBit(sim)
        with pytest.raises(TimeoutError):
            sim.run_until(lambda: False, max_cycles=10)

    def test_reset_restores_defaults_and_cycle(self):
        sim = Simulator()
        t = _ToggleBit(sim)
        sim.step(3)
        sim.reset()
        assert sim.cycle == 0
        assert t.q.value == 0

    def test_duplicate_signal_names_rejected(self):
        sim = Simulator()
        sim.add_wire("x", 1)
        with pytest.raises(ValueError):
            sim.add_wire("x", 1)

    def test_signal_lookup(self):
        sim = Simulator()
        w = sim.add_wire("top.bus", 8)
        assert sim.signal("top.bus") is w

    def test_on_tick_hook_sees_cycle(self):
        sim = Simulator()
        _ToggleBit(sim)
        seen = []
        sim.on_tick(seen.append)
        sim.step(3)
        assert seen == [1, 2, 3]
