"""Tests for LSP ping and traceroute."""


from repro.control.ldp import LDPProcess
from repro.control.oam import lsp_ping, lsp_traceroute
from repro.mpls.fec import PrefixFEC
from repro.mpls.router import RouterRole
from repro.net.network import MPLSNetwork
from repro.net.topology import line, paper_figure1


def _network(topo=None, edges=("ler-a", "ler-b"), egress="ler-b",
             prefix="10.2.0.0/16"):
    topo = topo or paper_figure1(bandwidth_bps=10e6, delay_s=1e-3)
    roles = {name: RouterRole.LER for name in edges}
    net = MPLSNetwork(topo, roles)
    net.attach_host(egress, prefix)
    ldp = LDPProcess(topo, net.nodes)
    ldp.establish_fec(PrefixFEC(prefix), egress=egress)
    return net


class TestLSPPing:
    def test_healthy_lsp_pings(self):
        net = _network()
        result = lsp_ping(net, "ler-a", "10.2.0.9")
        assert result.reached
        assert result.egress == "ler-b"
        assert 0.003 < result.latency < 0.01

    def test_broken_lsp_fails_ping(self):
        net = _network()
        net.fail_link("lsr-1", "lsr-2")
        result = lsp_ping(net, "ler-a", "10.2.0.9")
        assert not result.reached
        assert result.latency is None

    def test_unroutable_destination_fails(self):
        net = _network()
        result = lsp_ping(net, "ler-a", "99.9.9.9")
        assert not result.reached

    def test_repeated_pings_independent(self):
        net = _network()
        first = lsp_ping(net, "ler-a", "10.2.0.9")
        second = lsp_ping(net, "ler-a", "10.2.0.9")
        assert first.reached and second.reached
        assert second.sent_at > first.sent_at


class TestLSPTraceroute:
    def test_walks_the_lsp(self):
        net = _network()
        result = lsp_traceroute(net, "ler-a", "10.2.0.9")
        assert result.complete
        # TTL 2 dies at the first LSR, TTL 3 at the second, TTL 4 lands
        assert result.path == ["lsr-1", "lsr-2", "ler-b"]

    def test_longer_path(self):
        topo = line(6, bandwidth_bps=10e6, delay_s=1e-4)
        net = _network(topo=topo, edges=("n0", "n5"), egress="n5",
                       prefix="10.5.0.0/16")
        result = lsp_traceroute(net, "n0", "10.5.0.1")
        assert result.complete
        assert result.path == ["n1", "n2", "n3", "n4", "n5"]

    def test_truncated_at_breakage(self):
        net = _network()
        net.fail_link("lsr-2", "ler-b")
        result = lsp_traceroute(net, "ler-a", "10.2.0.9", max_ttl=6)
        assert not result.complete
        # the walk reveals the hops before the break
        assert result.path[:2] == ["lsr-1", "lsr-2"]

    def test_max_ttl_bounds_the_walk(self):
        net = _network()
        net.fail_link("lsr-2", "ler-b")
        result = lsp_traceroute(net, "ler-a", "10.2.0.9", max_ttl=3)
        assert len(result.hops) <= 4
