"""Tests for LSP ping and traceroute."""


from repro.control.ldp import LDPProcess
from repro.control.oam import lsp_ping, lsp_traceroute
from repro.mpls.fec import PrefixFEC
from repro.mpls.router import RouterRole
from repro.net.network import MPLSNetwork
from repro.net.topology import line, paper_figure1


def _network(topo=None, edges=("ler-a", "ler-b"), egress="ler-b",
             prefix="10.2.0.0/16"):
    topo = topo or paper_figure1(bandwidth_bps=10e6, delay_s=1e-3)
    roles = {name: RouterRole.LER for name in edges}
    net = MPLSNetwork(topo, roles)
    net.attach_host(egress, prefix)
    ldp = LDPProcess(topo, net.nodes)
    ldp.establish_fec(PrefixFEC(prefix), egress=egress)
    return net


class TestLSPPing:
    def test_healthy_lsp_pings(self):
        net = _network()
        result = lsp_ping(net, "ler-a", "10.2.0.9")
        assert result.reached
        assert result.egress == "ler-b"
        assert 0.003 < result.latency < 0.01

    def test_broken_lsp_fails_ping(self):
        net = _network()
        net.fail_link("lsr-1", "lsr-2")
        result = lsp_ping(net, "ler-a", "10.2.0.9")
        assert not result.reached
        assert result.latency is None

    def test_unroutable_destination_fails(self):
        net = _network()
        result = lsp_ping(net, "ler-a", "99.9.9.9")
        assert not result.reached

    def test_repeated_pings_independent(self):
        net = _network()
        first = lsp_ping(net, "ler-a", "10.2.0.9")
        second = lsp_ping(net, "ler-a", "10.2.0.9")
        assert first.reached and second.reached
        assert second.sent_at > first.sent_at


class TestLSPTraceroute:
    def test_walks_the_lsp(self):
        net = _network()
        result = lsp_traceroute(net, "ler-a", "10.2.0.9")
        assert result.complete
        # TTL 2 dies at the first LSR, TTL 3 at the second, TTL 4 lands
        assert result.path == ["lsr-1", "lsr-2", "ler-b"]

    def test_longer_path(self):
        topo = line(6, bandwidth_bps=10e6, delay_s=1e-4)
        net = _network(topo=topo, edges=("n0", "n5"), egress="n5",
                       prefix="10.5.0.0/16")
        result = lsp_traceroute(net, "n0", "10.5.0.1")
        assert result.complete
        assert result.path == ["n1", "n2", "n3", "n4", "n5"]

    def test_truncated_at_breakage(self):
        net = _network()
        net.fail_link("lsr-2", "ler-b")
        result = lsp_traceroute(net, "ler-a", "10.2.0.9", max_ttl=6)
        assert not result.complete
        # the walk reveals the hops before the break
        assert result.path[:2] == ["lsr-1", "lsr-2"]

    def test_max_ttl_bounds_the_walk(self):
        net = _network()
        net.fail_link("lsr-2", "ler-b")
        result = lsp_traceroute(net, "ler-a", "10.2.0.9", max_ttl=3)
        assert len(result.hops) <= 4


class TestOAMMonitor:
    def _monitor(self, net, **kw):
        from repro.control.oam import OAMMonitor, ProbeTarget

        target = ProbeTarget(
            fec="10.2.0.0/16", ingress="ler-a", destination="10.2.0.9"
        )
        return OAMMonitor(net, [target], **kw)

    def test_healthy_fec_stays_up(self):
        net = _network()
        mon = self._monitor(net, period=0.05, timeout=0.05, stop=0.4)
        net.run(until=0.5)
        assert mon.up["10.2.0.0/16"] is True
        checked = [r for r in mon.records if r.checked]
        assert checked and all(r.reached for r in checked)
        assert all(r.rtt is not None and r.rtt < 0.05 for r in checked)
        # exactly one transition: unknown -> up at the first verdict
        assert [(t.up, t.time) for t in mon.transitions] == [(True, 0.05)]
        summary = mon.summary()
        [fec] = summary["fecs"]
        assert fec["reached"] == fec["probes"] == len(checked)
        assert fec["lost"] == 0 and fec["up_at_end"] is True
        assert 0 < fec["rtt_min_s"] <= fec["rtt_mean_s"] <= fec["rtt_max_s"]

    def test_probe_flows_are_negative_and_distinct(self):
        from repro.control.oam import OAMMonitor, PROBE_FLOW_BASE, ProbeTarget

        net = _network()
        targets = [
            ProbeTarget(fec=f"fec-{i}", ingress="ler-a",
                        destination="10.2.0.9")
            for i in range(3)
        ]
        mon = OAMMonitor(net, targets, period=0.1, stop=0.0)
        ids = mon.flow_ids
        assert sorted(ids.values(), reverse=True) == [
            PROBE_FLOW_BASE - i for i in range(3)
        ]
        assert all(v <= PROBE_FLOW_BASE for v in ids.values())

    def test_cut_lsp_flips_down_and_localizes(self):
        net = _network()
        mon = self._monitor(net, period=0.05, timeout=0.05, stop=0.4)
        net.scheduler.at(0.12, lambda: net.fail_link("lsr-1", "lsr-2"))
        net.run(until=0.5)
        assert mon.up["10.2.0.0/16"] is False
        ups = [t.up for t in mon.transitions]
        assert ups == [True, False]  # came up, then the cut took it down
        [fec] = mon.summary()["fecs"]
        assert fec["lost"] > 0
        # post-run traceroute walks as far as the break
        walk = mon.localize("10.2.0.0/16")
        assert not walk.complete
        assert walk.path[0] == "lsr-1"
        assert "lsr-2" not in walk.path

    def test_slo_breach_detected(self):
        net = _network()
        # the healthy RTT is ~4 ms: a 1 ms SLO makes every probe breach
        mon = self._monitor(
            net, period=0.05, timeout=0.05, stop=0.1, slo_rtt_s=0.001
        )
        net.run(until=0.3)
        checked = [r for r in mon.records if r.checked]
        assert checked and all(r.reached and r.breach for r in checked)
        # reached-but-breaching counts as down
        assert mon.up["10.2.0.0/16"] is False

    def test_metrics_and_events_published(self):
        from repro.obs import ListSink, telemetry_session

        with telemetry_session() as tel:
            sink = tel.events.add_sink(ListSink())
            net = _network()
            self._monitor(net, period=0.05, timeout=0.05, stop=0.2)
            net.run(until=0.3)
            probes = sink.by_kind("oam-probe")
            assert probes and all(e.fec == "10.2.0.0/16" for e in probes)
            assert tel.oam_probes.labels("10.2.0.0/16", "ok").value == len(
                probes
            )
            assert tel.oam_up.labels("10.2.0.0/16").value == 1.0
            assert tel.oam_rtt.labels("10.2.0.0/16").count == len(probes)

    def test_invalid_period_rejected(self):
        import pytest

        net = _network()
        with pytest.raises(ValueError):
            self._monitor(net, period=0.0)
