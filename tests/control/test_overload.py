"""Tests for control-plane overload protection (repro.control.overload)."""

import pytest

from repro.control.ldp_sessions import LDPMessage, MessageLDPProcess, MsgType
from repro.control.overload import (
    CLASS_NAMES,
    IngressShedder,
    MessageClass,
    OverloadConfig,
    PriorityControlQueue,
    ShedEntry,
    classify_message,
)
from repro.mpls.router import LSRNode, RouterRole
from repro.net.events import EventScheduler
from repro.net.topology import ring
from repro.obs import Telemetry, get_telemetry


class TestClassification:
    def test_liveness_kinds(self):
        for kind in (MsgType.HELLO, MsgType.INIT, MsgType.KEEPALIVE):
            assert classify_message(kind) is MessageClass.LIVENESS

    def test_teardown_outranks_setup(self):
        assert classify_message(MsgType.LABEL_WITHDRAW) is (
            MessageClass.TEARDOWN
        )
        assert classify_message(MsgType.LABEL_MAPPING) is MessageClass.SETUP
        assert MessageClass.TEARDOWN < MessageClass.SETUP

    def test_unknown_kind_is_sheddable_bulk(self):
        assert classify_message("mystery-tlv") is MessageClass.SETUP
        assert classify_message(None) is MessageClass.SETUP

    def test_every_class_has_a_name(self):
        assert set(CLASS_NAMES) == set(MessageClass)


class TestOverloadConfig:
    def test_defaults_valid(self):
        cfg = OverloadConfig()
        assert cfg.enabled
        assert cfg.low_watermark < cfg.high_watermark <= cfg.queue_capacity

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"queue_capacity": 0},
            {"high_watermark": 40},  # > capacity
            {"low_watermark": 24, "high_watermark": 24},
            {"service_time_s": 0.0},
            {"hold_time": 0.0},
            {"retry_jitter": 1.0},
            {"shed_low": 0.5, "shed_high": 0.5},
            {"shed_hysteresis": 0},
            {"max_shed_fraction": 1.5},
            {"shed_period": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            OverloadConfig(**kwargs)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown overload key"):
            OverloadConfig.from_dict({"enabled": True, "typo": 1})

    def test_from_dict_casts_and_keeps_horizon(self):
        cfg = OverloadConfig.from_dict(
            {
                "enabled": False,
                "queue_capacity": "16",
                "high_watermark": 12,
                "low_watermark": 4,
                "hold_time": "0.5",
            },
            horizon=2.0,
        )
        assert cfg.enabled is False
        assert cfg.queue_capacity == 16
        assert cfg.hold_time == 0.5
        assert cfg.horizon == 2.0


class TestPriorityControlQueue:
    def _q(self, capacity=8, high=6, low=2, prioritized=True):
        return PriorityControlQueue(
            capacity, high, low, prioritized=prioritized
        )

    def test_fifo_within_a_class(self):
        q = self._q()
        for i in range(3):
            q.offer(f"m{i}", MessageClass.SETUP)
        assert [q.pop()[0] for _ in range(3)] == ["m0", "m1", "m2"]

    def test_liveness_jumps_the_queue(self):
        q = self._q()
        q.offer("bulk", MessageClass.SETUP)
        q.offer("ka", MessageClass.LIVENESS)
        assert q.pop() == ("ka", MessageClass.LIVENESS)
        assert q.pop() == ("bulk", MessageClass.SETUP)

    def test_watermark_sheds_setup_only(self):
        q = self._q(capacity=8, high=4, low=1)
        for i in range(4):
            assert q.offer(i, MessageClass.SETUP)[0]
        # at the high watermark: setup arrivals shed, liveness accepted
        accepted, dropped = q.offer("x", MessageClass.SETUP)
        assert not accepted
        assert dropped == [("x", MessageClass.SETUP, "watermark-shed")]
        assert q.shed_by_class[MessageClass.SETUP] == 1
        accepted, _ = q.offer("ka", MessageClass.LIVENESS)
        assert accepted

    def test_shedding_hysteresis_clears_at_low_watermark(self):
        q = self._q(capacity=8, high=4, low=1)
        for i in range(4):
            q.offer(i, MessageClass.SETUP)
        q.offer("shed-me", MessageClass.SETUP)
        assert q.shedding
        q.pop()  # depth 3: still above low -- keeps shedding
        assert not q.offer("still", MessageClass.SETUP)[0]
        while len(q) > 1:
            q.pop()
        accepted, _ = q.offer("ok", MessageClass.SETUP)
        assert accepted
        assert not q.shedding

    def test_full_queue_evicts_newest_worse_class(self):
        q = self._q(capacity=2, high=2, low=0)
        q.offer("old-bulk", MessageClass.SETUP)
        q.offer("new-bulk", MessageClass.SETUP)
        accepted, dropped = q.offer("ka", MessageClass.LIVENESS)
        assert accepted
        assert dropped == [("new-bulk", MessageClass.SETUP, "evicted")]
        assert q.pop()[0] == "ka"
        assert q.pop()[0] == "old-bulk"

    def test_full_queue_tail_drops_equal_class(self):
        q = self._q(capacity=1, high=1, low=0)
        q.offer("a", MessageClass.LIVENESS)
        accepted, dropped = q.offer("b", MessageClass.LIVENESS)
        assert not accepted
        assert dropped == [("b", MessageClass.LIVENESS, "queue-full")]
        assert q.dropped_by_class[MessageClass.LIVENESS] == 1

    def test_capacity_one_liveness_evicts_bulk(self):
        q = self._q(capacity=1, high=1, low=0)
        q.offer("bulk", MessageClass.SETUP)
        accepted, dropped = q.offer("ka", MessageClass.LIVENESS)
        assert accepted
        assert dropped == [("bulk", MessageClass.SETUP, "evicted")]
        assert len(q) == 1
        assert q.pop()[0] == "ka"

    def test_unprioritized_is_plain_tail_drop(self):
        q = self._q(capacity=2, high=2, low=0, prioritized=False)
        q.offer("bulk1", MessageClass.SETUP)
        q.offer("bulk2", MessageClass.SETUP)
        accepted, dropped = q.offer("ka", MessageClass.LIVENESS)
        assert not accepted  # no eviction, no priority: keepalive dies
        assert dropped == [("ka", MessageClass.LIVENESS, "queue-full")]
        assert q.pop()[0] == "bulk1"  # strict FIFO

    def test_burst_conserves_messages(self):
        q = self._q(capacity=4, high=3, low=1)
        offered = 64
        accepted = sum(
            1 for i in range(offered) if q.offer(i, MessageClass.SETUP)[0]
        )
        drained = 0
        while q.pop() is not None:
            drained += 1
        lost = sum(q.dropped_by_class.values()) + sum(
            q.shed_by_class.values()
        )
        assert accepted == drained == q.serviced
        assert accepted + lost == offered
        assert q.max_depth <= q.capacity

    def test_validation(self):
        with pytest.raises(ValueError):
            PriorityControlQueue(0, 1, 0)
        with pytest.raises(ValueError):
            PriorityControlQueue(4, 5, 0)
        with pytest.raises(ValueError):
            PriorityControlQueue(4, 2, 2)


class TestIngressShedder:
    def _shedder(self, pressure, **cfg_kwargs):
        cfg_kwargs.setdefault("horizon", None)
        cfg = OverloadConfig(**cfg_kwargs)
        scheduler = EventScheduler()
        entries = [
            ShedEntry(prefix="10.0.0.0/16", cos=0, ingress="n0"),
            ShedEntry(prefix="10.1.0.0/16", cos=5, ingress="n0"),
        ]
        return IngressShedder(entries, pressure, cfg, scheduler)

    def test_sheds_lowest_cos_first_and_respects_floor(self):
        shedder = self._shedder(lambda: 1.0)
        shedder.observe()
        shedder.observe()
        shedder.observe()
        # max_shed_fraction 0.5 of 2 FECs = 1: only the cos-0 FEC shed
        assert [e.shed for e in shedder.entries] == [True, False]
        assert len(shedder.shed_events) == 1
        assert shedder.shed_events[0][2] == 0

    def test_restore_needs_consecutive_calm_ticks(self):
        readings = iter([1.0, 0.1, 0.4, 0.1, 0.1, 0.1])
        shedder = self._shedder(lambda: next(readings), shed_hysteresis=3)
        shedder.observe()  # shed
        shedder.observe()  # calm 1
        shedder.observe()  # mid-band: calm counter resets
        shedder.observe()  # calm 1
        shedder.observe()  # calm 2
        assert shedder.shed_count == 1
        shedder.observe()  # calm 3 -> restore
        assert shedder.shed_count == 0
        assert shedder.recovery_time_s == 0.0  # manual driving: now == 0

    def test_guard_drops_only_shed_matching_ingress(self):
        from repro.net.packet import IPv4Packet

        shedder = self._shedder(lambda: 1.0)
        shedder.observe()
        packet = IPv4Packet(src="9.9.9.9", dst="10.0.1.2")
        assert shedder.guard("n0", packet)  # shed FEC at its ingress
        assert not shedder.guard("n1", packet)  # wrong ingress
        other = IPv4Packet(src="9.9.9.9", dst="10.1.0.2")
        assert not shedder.guard("n0", other)  # cos-5 FEC not shed
        assert shedder.packets_shed == 1

    def test_arm_requires_horizon(self):
        shedder = self._shedder(lambda: 0.0)
        with pytest.raises(ValueError):
            shedder.arm()


def _storm_env(enabled, n=4, hold_time=0.2):
    """A ring with message-LDP behind bounded control queues."""
    topo = ring(n, delay_s=1e-3)
    nodes = {
        name: LSRNode(name, RouterRole.LSR) for name in topo.nodes
    }
    scheduler = EventScheduler()
    cfg = OverloadConfig(
        enabled=enabled,
        queue_capacity=32,
        high_watermark=24,
        low_watermark=8,
        hold_time=hold_time,
        horizon=2.0,
    )
    ldp = MessageLDPProcess(
        topo, nodes, scheduler, overload=cfg, jitter_seed=3
    )
    return topo, scheduler, ldp


def _flood(ldp, scheduler, target, start, window, mappings=2000):
    import random

    rng = random.Random(42)
    neighbors = sorted(ldp.topology.neighbors(target))
    for i in range(mappings):
        msg = LDPMessage(
            MsgType.LABEL_MAPPING,
            rng.choice(neighbors),
            target,
            fec_id=f"__flood-{i}",
            label=800_000 + i,
        )
        scheduler.at(
            start + rng.uniform(0.0, window), lambda m=msg: ldp.send(m)
        )


class TestStormSurvival:
    def test_unprotected_fifo_starves_keepalives(self):
        topo, scheduler, ldp = _storm_env(enabled=False)
        ldp.start()
        scheduler.run(until=0.15)
        assert ldp.all_sessions_up()
        _flood(ldp, scheduler, "n0", start=0.2, window=0.5)
        scheduler.run(until=1.0)
        # the flood tail-drops n0's keepalives: its sessions hold-expire
        assert ldp.holds_expired >= 2
        assert any("n0" in (a, b) for (_, a, b) in ldp.sessions_lost)

    def test_protected_queues_keep_sessions_up(self):
        topo, scheduler, ldp = _storm_env(enabled=True)
        ldp.start()
        scheduler.run(until=0.15)
        assert ldp.all_sessions_up()
        _flood(ldp, scheduler, "n0", start=0.2, window=0.5)
        scheduler.run(until=1.0)
        assert ldp.holds_expired == 0
        assert ldp.sessions_lost == []
        assert ldp.all_sessions_up()
        # protection worked by shedding bulk, not by magic
        shed = sum(
            q.shed_by_class[MessageClass.SETUP]
            for q in ldp.queues.values()
        )
        assert shed > 0

    def test_sessions_recover_after_the_storm(self):
        topo, scheduler, ldp = _storm_env(enabled=False)
        ldp.start()
        scheduler.run(until=0.15)
        _flood(ldp, scheduler, "n0", start=0.2, window=0.3)
        scheduler.run(until=2.0)
        assert ldp.sessions_lost  # the storm did damage
        assert ldp.all_sessions_up()  # ...and reconnect repaired it
        assert len(ldp.sessions_recovered) == len(ldp.sessions_lost)


class TestReconnectJitter:
    def _drop_and_time(self, jitter, seed=5):
        topo = ring(4, delay_s=1e-3)
        nodes = {
            name: LSRNode(name, RouterRole.LSR) for name in topo.nodes
        }
        scheduler = EventScheduler()
        ldp = MessageLDPProcess(
            topo, nodes, scheduler, retry_jitter=jitter, jitter_seed=seed
        )
        ldp.start()
        scheduler.run(until=0.2)
        for a, b in (("n0", "n1"), ("n1", "n2"), ("n2", "n3")):
            ldp.drop_session(a, b)
        scheduler.run(until=2.0)
        return [t for (t, _, _, _) in ldp.sessions_recovered]

    def test_zero_jitter_is_byte_identical_legacy(self):
        assert self._drop_and_time(0.0) == self._drop_and_time(0.0)

    def test_zero_jitter_synchronizes_reconnects(self):
        times = self._drop_and_time(0.0)
        assert len(set(times)) == 1  # the thundering herd

    def test_jitter_decorrelates_the_herd_deterministically(self):
        times = self._drop_and_time(0.25)
        assert len(set(times)) == len(times)  # all distinct now
        assert times == self._drop_and_time(0.25)  # still seeded
        assert times != self._drop_and_time(0.25, seed=6)

    def test_jitter_validation(self):
        topo = ring(3)
        nodes = {n: LSRNode(n, RouterRole.LSR) for n in topo.nodes}
        with pytest.raises(ValueError):
            MessageLDPProcess(
                topo, nodes, EventScheduler(), retry_jitter=1.0
            )


class TestHoldTimerExpiry:
    def test_silent_peer_hold_expires(self):
        topo, scheduler, ldp = _storm_env(enabled=True, hold_time=0.12)
        ldp.start()
        scheduler.run(until=0.1)
        assert ldp.all_sessions_up()
        # silence n1's CPU entirely: arrivals rejected before queuing
        ldp.queues["n1"].offer = lambda item, cls: (False, [])
        scheduler.run(until=0.6)
        # everyone adjacent to n1 stops hearing keepalives and expires
        assert ldp.holds_expired >= 1
        expired_pairs = {
            tuple(sorted((a, b))) for (_, a, b) in ldp.sessions_lost
        }
        assert all("n1" in pair for pair in expired_pairs)


class TestMetricsRegistration:
    def test_families_exist_even_when_disabled(self):
        tel = Telemetry(enabled=False)
        names = set(tel.registry._families)
        assert "repro_control_queue_depth" in names
        assert "repro_control_queue_drops_total" in names
        assert "repro_fecs_shed" in names
        assert "repro_lsp_preemptions_total" in names

    def test_default_telemetry_has_the_families(self):
        tel = get_telemetry()
        assert tel.control_queue_depth.kind == "gauge"
        assert tel.control_queue_drops.kind == "counter"
        assert tel.control_queue_drops.labelnames == (
            "node",
            "msg_class",
            "cause",
        )
