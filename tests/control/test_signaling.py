"""Tests for RSVP-TE and CR-LDP signalling."""

import pytest

from repro.control.cr_ldp import CRLDPSignaler
from repro.control.lsp import LSP, TunnelHierarchy
from repro.control.rsvp_te import RSVPTESignaler, SignalingError
from repro.mpls.fec import PrefixFEC
from repro.mpls.label import IMPLICIT_NULL, LabelOp
from repro.mpls.router import LSRNode, RouterRole
from repro.net.topology import paper_figure1


def _env(topo=None):
    topo = topo or paper_figure1(bandwidth_bps=100e6)
    nodes = {
        name: LSRNode(
            name,
            RouterRole.LER if name.startswith("ler") else RouterRole.LSR,
        )
        for name in topo.nodes
    }
    return topo, nodes


class TestRSVPTE:
    def test_setup_installs_state(self):
        topo, nodes = _env()
        sig = RSVPTESignaler(topo, nodes)
        lsp = sig.setup(
            "t1",
            "ler-a",
            "ler-b",
            explicit_route=["ler-a", "lsr-1", "lsr-2", "ler-b"],
            fec=PrefixFEC("10.2.0.0/16"),
        )
        assert lsp.up
        assert lsp.hops == 3
        # transit swap at lsr-1
        nhlfe = nodes["lsr-1"].ilm.lookup(lsp.hop_labels[0])
        assert nhlfe.op is LabelOp.SWAP
        assert nhlfe.out_label == lsp.hop_labels[1]
        # egress pop
        assert nodes["ler-b"].ilm.lookup(lsp.hop_labels[2]).op is LabelOp.POP
        # ingress FTN
        assert len(nodes["ler-a"].ftn) == 1

    def test_cspf_route_when_no_ero(self):
        topo, nodes = _env()
        sig = RSVPTESignaler(topo, nodes)
        lsp = sig.setup("t1", "ler-a", "ler-b")
        assert lsp.path[0] == "ler-a" and lsp.path[-1] == "ler-b"

    def test_bandwidth_reserved_and_released(self):
        topo, nodes = _env()
        sig = RSVPTESignaler(topo, nodes)
        lsp = sig.setup(
            "t1",
            "ler-a",
            "ler-b",
            explicit_route=["ler-a", "lsr-1", "lsr-2", "ler-b"],
            bandwidth_bps=40e6,
        )
        assert topo.link("ler-a", "lsr-1").reservable("ler-a") == pytest.approx(60e6)
        sig.teardown("t1")
        assert topo.link("ler-a", "lsr-1").reservable("ler-a") == pytest.approx(100e6)
        assert not lsp.up

    def test_admission_control_rejects(self):
        topo, nodes = _env()
        sig = RSVPTESignaler(topo, nodes)
        sig.setup("big", "ler-a", "ler-b",
                  explicit_route=["ler-a", "lsr-1", "lsr-2", "ler-b"],
                  bandwidth_bps=90e6)
        with pytest.raises(SignalingError):
            sig.setup("too-big", "ler-a", "ler-b",
                      explicit_route=["ler-a", "lsr-1", "lsr-2", "ler-b"],
                      bandwidth_bps=20e6)
        assert sig.stats.setup_failures == 1

    def test_cspf_diverts_second_lsp(self):
        """TE in action: the second big LSP takes the other core path."""
        topo, nodes = _env()
        # widen the shared access links so the core is the bottleneck
        topo.link("ler-a", "lsr-1").bandwidth_bps = 400e6
        sig = RSVPTESignaler(topo, nodes)
        first = sig.setup("t1", "ler-a", "ler-b", bandwidth_bps=60e6)
        second = sig.setup("t2", "ler-a", "ler-b", bandwidth_bps=60e6)
        shared = set(first.links()) & set(second.links())
        # only the unavoidable first hop may be shared (ler-a has one exit)
        assert all("ler-a" in link for link in shared)

    def test_php(self):
        topo, nodes = _env()
        sig = RSVPTESignaler(topo, nodes)
        lsp = sig.setup(
            "t1",
            "ler-a",
            "ler-b",
            explicit_route=["ler-a", "lsr-1", "lsr-2", "ler-b"],
            php=True,
        )
        assert lsp.hop_labels[-1] == IMPLICIT_NULL
        # the penultimate hop pops
        nhlfe = nodes["lsr-2"].ilm.lookup(lsp.hop_labels[1])
        assert nhlfe.op is LabelOp.POP

    def test_message_counts(self):
        topo, nodes = _env()
        sig = RSVPTESignaler(topo, nodes)
        sig.setup("t1", "ler-a", "ler-b",
                  explicit_route=["ler-a", "lsr-1", "lsr-2", "ler-b"])
        assert sig.stats.path_messages == 3
        assert sig.stats.resv_messages == 3

    def test_soft_state_expiry(self):
        topo, nodes = _env()
        sig = RSVPTESignaler(topo, nodes)
        sig.setup("t1", "ler-a", "ler-b")
        sig.setup("t2", "ler-a", "ler-b")
        sig.refresh("t1", now=100.0)
        stale = sig.expire_stale(now=150.0, hold_time=90.0)
        assert stale == ["t2"]
        assert "t1" in sig.lsps and "t2" not in sig.lsps

    def test_bad_routes_rejected(self):
        topo, nodes = _env()
        sig = RSVPTESignaler(topo, nodes)
        with pytest.raises(SignalingError):
            sig.setup("t", "ler-a", "ler-b", explicit_route=["ler-a"])
        with pytest.raises(SignalingError):
            sig.setup("t", "ler-a", "ler-b",
                      explicit_route=["ler-a", "lsr-2", "ler-b"])  # no link
        with pytest.raises(SignalingError):
            sig.setup("t", "ler-a", "ler-b",
                      explicit_route=["lsr-1", "lsr-2", "ler-b"])  # wrong head

    def test_duplicate_name_rejected(self):
        topo, nodes = _env()
        sig = RSVPTESignaler(topo, nodes)
        sig.setup("t1", "ler-a", "ler-b")
        with pytest.raises(SignalingError):
            sig.setup("t1", "ler-a", "ler-b")


class TestCRLDP:
    def test_setup_equivalent_forwarding_state(self):
        topo, nodes = _env()
        sig = CRLDPSignaler(topo, nodes)
        lsp = sig.setup(
            "c1",
            "ler-a",
            "ler-b",
            explicit_route=["ler-a", "lsr-1", "lsr-2", "ler-b"],
            fec=PrefixFEC("10.2.0.0/16"),
        )
        assert lsp.protocol == "cr-ldp"
        nhlfe = nodes["lsr-1"].ilm.lookup(lsp.hop_labels[0])
        assert nhlfe.op is LabelOp.SWAP

    def test_two_messages_per_hop_no_refresh(self):
        topo, nodes = _env()
        sig = CRLDPSignaler(topo, nodes)
        sig.setup("c1", "ler-a", "ler-b",
                  explicit_route=["ler-a", "lsr-1", "lsr-2", "ler-b"])
        assert sig.stats.request_messages == 3
        assert sig.stats.mapping_messages == 3
        assert not hasattr(sig.stats, "refresh_messages")

    def test_release(self):
        topo, nodes = _env()
        sig = CRLDPSignaler(topo, nodes)
        sig.setup("c1", "ler-a", "ler-b", bandwidth_bps=10e6)
        sig.release("c1")
        assert sig.stats.release_messages > 0
        assert all(len(n.ilm) == 0 for n in nodes.values())

    def test_atomic_failure_installs_nothing(self):
        topo, nodes = _env()
        sig = CRLDPSignaler(topo, nodes)
        with pytest.raises(SignalingError):
            sig.setup("c1", "ler-a", "ler-b",
                      explicit_route=["ler-a", "lsr-1", "lsr-2", "ler-b"],
                      bandwidth_bps=1e9)
        assert all(len(n.ilm) == 0 for n in nodes.values())
        assert topo.link("ler-a", "lsr-1").reservable("ler-a") == pytest.approx(100e6)


class TestLSPAndTunnels:
    def test_lsp_validation(self):
        with pytest.raises(ValueError):
            LSP(name="bad", path=["a"], hop_labels=[])
        with pytest.raises(ValueError):
            LSP(name="bad", path=["a", "b"], hop_labels=[1, 2])

    def test_label_at(self):
        lsp = LSP(name="l", path=["a", "b", "c"], hop_labels=[100, 200])
        assert lsp.label_at("a") == 100
        assert lsp.label_at("b") == 200
        assert lsp.label_at("c") is None
        with pytest.raises(KeyError):
            lsp.label_at("ghost")

    def test_tunnel_stack_depth(self):
        """The paper's Figure 3: a level-2 tunnel around part of an LSP."""
        hierarchy = TunnelHierarchy()
        inner = LSP(name="inner", path=["a", "b", "c", "d"],
                    hop_labels=[10, 20, 30])
        outer = LSP(name="outer", path=["b", "x", "c"], hop_labels=[99, 98])
        hierarchy.add(inner)
        hierarchy.add(outer)
        hierarchy.nest("inner", "outer")
        assert hierarchy.stack_at("inner", "a") == [10]
        # inside the tunnel: outer label on top of the inner one
        assert hierarchy.stack_at("inner", "b") == [99, 20]
        assert hierarchy.depth_at("inner", "b") == 2
        # after the tunnel egress, back to one level
        assert hierarchy.stack_at("inner", "c") == [30]

    def test_nest_validation(self):
        hierarchy = TunnelHierarchy()
        inner = LSP(name="inner", path=["a", "b", "c"], hop_labels=[1, 2])
        bad = LSP(name="bad", path=["x", "y"], hop_labels=[9])
        hierarchy.add(inner)
        hierarchy.add(bad)
        with pytest.raises(ValueError):
            hierarchy.nest("inner", "bad")

    def test_nesting_depth_limit(self):
        """More than 3 levels exceeds the architecture's support."""
        hierarchy = TunnelHierarchy()
        l1 = LSP(name="l1", path=["a", "b", "c", "d", "e"],
                 hop_labels=[1, 2, 3, 4])
        l2 = LSP(name="l2", path=["b", "c", "d"], hop_labels=[5, 6])
        l3 = LSP(name="l3", path=["b", "c"], hop_labels=[7])
        l4 = LSP(name="l4", path=["b", "c"], hop_labels=[8])
        for lsp in (l1, l2, l3, l4):
            hierarchy.add(lsp)
        hierarchy.nest("l1", "l2")
        hierarchy.nest("l2", "l3")
        with pytest.raises(ValueError):
            hierarchy.nest("l3", "l4")
