"""Tests for message-level LDP (discovery, sessions, distribution)."""

import pytest

from repro.control.ldp_sessions import MessageLDPProcess, MsgType
from repro.mpls.errors import NoRouteError
from repro.mpls.fec import PrefixFEC
from repro.mpls.label import LabelOp
from repro.mpls.router import LSRNode, RouterRole
from repro.net.events import EventScheduler
from repro.net.network import MPLSNetwork
from repro.net.packet import IPv4Packet
from repro.net.topology import line, paper_figure1, ring
from repro.net.traffic import CBRSource


def _env(topo=None, edges=("ler-a", "ler-b")):
    topo = topo or paper_figure1(delay_s=1e-3)
    nodes = {
        name: LSRNode(
            name, RouterRole.LER if name in edges else RouterRole.LSR
        )
        for name in topo.nodes
    }
    scheduler = EventScheduler()
    ldp = MessageLDPProcess(topo, nodes, scheduler)
    return topo, nodes, scheduler, ldp


class TestDiscoveryAndSessions:
    def test_sessions_form_on_every_link(self):
        topo, nodes, scheduler, ldp = _env()
        ldp.start()
        scheduler.run(until=1.0)
        assert ldp.all_sessions_up()
        assert len(ldp.sessions_established) == 2 * len(topo.links)

    def test_hello_counts(self):
        topo, nodes, scheduler, ldp = _env()
        ldp.start()
        scheduler.run(until=1.0)
        # one hello each way per adjacency
        assert ldp.message_counts[MsgType.HELLO] == 2 * len(topo.links)

    def test_one_init_exchange_per_link(self):
        topo, nodes, scheduler, ldp = _env()
        ldp.start()
        scheduler.run(until=1.0)
        assert ldp.message_counts[MsgType.INIT] == 2 * len(topo.links)

    def test_double_start_rejected(self):
        _, _, _, ldp = _env()
        ldp.start()
        with pytest.raises(RuntimeError):
            ldp.start()


class TestLabelDistribution:
    def _converge(self, topo=None, edges=("ler-a", "ler-b"),
                  egress="ler-b"):
        topo, nodes, scheduler, ldp = _env(topo, edges)
        ldp.start()
        scheduler.run(until=1.0)
        state = ldp.announce_fec(
            "f1", PrefixFEC("10.2.0.0/16"), egress=egress
        )
        scheduler.run(until=2.0)
        return topo, nodes, scheduler, ldp, state

    def test_converges(self):
        _, _, _, ldp, state = self._converge()
        assert ldp.converged("f1")

    def test_forwarding_state_installed(self):
        _, nodes, _, ldp, state = self._converge()
        # egress pops
        egress_label = state.advertised["ler-b"]
        assert nodes["ler-b"].ilm.lookup(egress_label).op is LabelOp.POP
        # ingress pushes towards its SPF next hop
        packet = IPv4Packet(src="10.1.0.5", dst="10.2.0.9")
        _, nhlfe = nodes["ler-a"].ftn.lookup(packet)
        assert nhlfe.op is LabelOp.PUSH
        assert nhlfe.next_hop == "lsr-1"

    def test_ordered_control_installs_egress_first(self):
        _, _, _, ldp, state = self._converge(topo=line(5),
                                             edges=("n0", "n4"),
                                             egress="n4")
        times = state.installed_at
        order = sorted(times, key=times.get)
        assert order == ["n4", "n3", "n2", "n1", "n0"]

    def test_convergence_time_scales_with_diameter(self):
        *_, ldp_short, state_short = self._converge(
            topo=line(3, delay_s=1e-3), edges=("n0", "n2"), egress="n2"
        )
        *_, ldp_long, state_long = self._converge(
            topo=line(8, delay_s=1e-3), edges=("n0", "n7"), egress="n7"
        )
        assert (ldp_long.convergence_time("f1")
                > ldp_short.convergence_time("f1"))

    def test_duplicate_announce_rejected(self):
        _, _, scheduler, ldp, _ = self._converge()
        with pytest.raises(ValueError):
            ldp.announce_fec("f1", PrefixFEC("10.9.0.0/16"), egress="ler-b")

    def test_works_on_a_ring(self):
        topo = ring(6, delay_s=1e-3)
        _, nodes, _, ldp, state = self._converge(
            topo=topo, edges=("n0", "n3"), egress="n3"
        )
        assert ldp.converged("f1")
        # every non-egress node advertised a label
        assert len(state.advertised) == 6


class TestWithdrawal:
    def test_withdraw_removes_all_state(self):
        topo, nodes, scheduler, ldp = _env()
        ldp.start()
        scheduler.run(until=1.0)
        ldp.announce_fec("f1", PrefixFEC("10.2.0.0/16"), egress="ler-b")
        scheduler.run(until=2.0)
        ldp.withdraw_fec("f1")
        scheduler.run(until=3.0)
        assert all(len(n.ilm) == 0 for n in nodes.values())
        assert all(len(n.ftn) == 0 for n in nodes.values())
        assert ldp.message_counts[MsgType.LABEL_WITHDRAW] > 0

    def test_mapping_after_withdraw_ignored(self):
        topo, nodes, scheduler, ldp = _env()
        ldp.start()
        scheduler.run(until=1.0)
        ldp.announce_fec("f1", PrefixFEC("10.2.0.0/16"), egress="ler-b")
        # withdraw while mappings are still in flight
        scheduler.after(1e-4, lambda: ldp.withdraw_fec("f1"))
        scheduler.run(until=3.0)
        # no stale FTN state survives at the ingress
        assert len(nodes["ler-a"].ftn) == 0


class TestSessionLoss:
    """Regression: a dropped session used to leave every upstream
    router holding stale label mappings through the dead peer (and a
    withdrawal could cascade around the whole network tearing down
    healthy state).  Session loss must withdraw exactly the mappings
    that depended on the lost peer, then recover via the
    exponential-backoff reconnect."""

    def _converged_env(self):
        topo, nodes, scheduler, ldp = _env()
        ldp.start()
        scheduler.run(until=1.0)
        ldp.announce_fec("f1", PrefixFEC("10.2.0.0/16"), egress="ler-b")
        scheduler.run(until=2.0)
        assert ldp.converged("f1")
        return topo, nodes, scheduler, ldp

    def _path_of(self, nodes, ldp):
        """(first hop, second hop) of ler-a's installed path."""
        packet = IPv4Packet(src="10.1.0.5", dst="10.2.0.9")
        _, nhlfe = nodes["ler-a"].ftn.lookup(packet)
        first = nhlfe.next_hop
        speaker = ldp.speakers[first]
        label = speaker.local_labels["f1"]
        second = nodes[first].ilm.lookup(label).next_hop
        return first, second

    def test_drop_withdraws_dependent_mappings(self):
        topo, nodes, scheduler, ldp = self._converged_env()
        first, second = self._path_of(nodes, ldp)
        before = ldp.message_counts[MsgType.LABEL_WITHDRAW]
        ldp.drop_session(first, second)
        # look before the first reconnect attempt (50 ms backoff)
        scheduler.run(until=scheduler.now + 0.02)
        # the transit router withdrew its mapping through the dead peer
        assert "f1" not in ldp.speakers[first].local_labels
        assert ldp.message_counts[MsgType.LABEL_WITHDRAW] > before
        # ... and the ingress no longer pushes into the black hole
        packet = IPv4Packet(src="10.1.0.5", dst="10.2.0.9")
        try:
            _, nhlfe = nodes["ler-a"].ftn.lookup(packet)
        except NoRouteError:
            pass  # the FTN entry was withdrawn entirely
        else:
            assert nhlfe.next_hop != first

    def test_drop_does_not_cascade_past_dependents(self):
        """Regression for the withdrawal cascade: routers whose state
        does not traverse the lost session must keep it."""
        topo, nodes, scheduler, ldp = self._converged_env()
        first, second = self._path_of(nodes, ldp)
        egress_label = ldp.speakers["ler-b"].local_labels["f1"]
        ldp.drop_session(first, second)
        scheduler.run(until=scheduler.now + 0.02)
        # the egress's origination is untouched
        assert ldp.speakers["ler-b"].local_labels["f1"] == egress_label
        assert nodes["ler-b"].ilm.lookup(egress_label).op is LabelOp.POP

    def test_reconnect_restores_convergence(self):
        topo, nodes, scheduler, ldp = self._converged_env()
        first, second = self._path_of(nodes, ldp)
        ldp.drop_session(first, second)
        scheduler.run(until=scheduler.now + 1.5)
        assert ldp.sessions_recovered, "session never re-established"
        _, _, _, downtime = ldp.sessions_recovered[0]
        assert downtime < 0.5
        assert ldp.converged("f1")
        packet = IPv4Packet(src="10.1.0.5", dst="10.2.0.9")
        assert nodes["ler-a"].ftn.lookup(packet) is not None

    def test_bindings_from_lost_peer_purged(self):
        topo, nodes, scheduler, ldp = self._converged_env()
        first, second = self._path_of(nodes, ldp)
        assert second in ldp.speakers[first].bindings.get("f1", {})
        ldp.drop_session(first, second)
        assert second not in ldp.speakers[first].bindings.get("f1", {})
        assert first not in ldp.speakers[second].bindings.get("f1", {})

    def test_reconnect_gives_up_when_link_stays_gone(self):
        topo, nodes, scheduler, _ = self._converged_env()
        ldp2 = MessageLDPProcess(
            topo, nodes, scheduler,
            retry_initial=1e-3, max_retries=3,
        )
        # sessions live in the speakers; fake one for the pair, then
        # remove the adjacency so reconnection can never succeed
        ldp2.speakers["lsr-1"].sessions.add("lsr-2")
        ldp2.speakers["lsr-2"].sessions.add("lsr-1")
        topo.remove_link("lsr-1", "lsr-2")
        try:
            ldp2.drop_session("lsr-1", "lsr-2")
            scheduler.run(until=scheduler.now + 5.0)
            assert ldp2.reconnects_abandoned == 1
            assert ldp2.reconnect_attempts == 3
            assert not ldp2.sessions_recovered
        finally:
            from repro.net.topology import LinkAttributes

            topo.restore_link("lsr-1", "lsr-2", LinkAttributes())


class TestDataPlaneAfterConvergence:
    def test_traffic_flows_once_converged(self):
        """The full story: sessions, distribution, then packets."""
        topo = paper_figure1(bandwidth_bps=10e6, delay_s=1e-3)
        net = MPLSNetwork(
            topo,
            roles={"ler-a": RouterRole.LER, "ler-b": RouterRole.LER},
        )
        net.attach_host("ler-b", "10.2.0.0/16")
        ldp = MessageLDPProcess(topo, net.nodes, net.scheduler)
        ldp.start()
        net.scheduler.after(
            0.1,
            lambda: ldp.announce_fec(
                "f1", PrefixFEC("10.2.0.0/16"), egress="ler-b"
            ),
        )
        src = CBRSource(net.scheduler, net.source_sink("ler-a"),
                        src="10.1.0.5", dst="10.2.0.9", rate_bps=1e6,
                        packet_size=500, start=0.5, stop=0.7)
        src.begin()
        net.run(until=2.0)
        assert ldp.converged("f1")
        assert net.delivered_count() == src.sent
