"""Tests for the shared seeded reconnect-backoff policy.

``repro.control.retry`` is the one implementation of exponential
backoff with per-key jitter; message-level LDP session recovery and
the PCE controller channel both delegate to it.  These tests pin the
schedule contract (bit-for-bit stability per seed) and prove the LDP
delegation produces the exact same schedule as a standalone policy
object built with the same parameters.
"""

import random
import zlib

import pytest

from repro.control.ldp_sessions import MessageLDPProcess
from repro.control.retry import ReconnectBackoff, jitter_rng
from repro.mpls.router import LSRNode, RouterRole
from repro.net.events import EventScheduler
from repro.net.topology import paper_figure1


class TestValidation:
    @pytest.mark.parametrize("bad", [-0.1, 1.0, 1.5])
    def test_jitter_out_of_range_rejected(self, bad):
        with pytest.raises(ValueError, match=r"retry_jitter must be in"):
            ReconnectBackoff(jitter=bad)

    def test_jitter_bounds_accepted(self):
        ReconnectBackoff(jitter=0.0)
        ReconnectBackoff(jitter=0.999)


class TestSchedule:
    def test_no_jitter_is_pure_exponential(self):
        b = ReconnectBackoff(initial=0.05, maximum=2.0, jitter=0.0)
        key = ("lsr-1", "lsr-2")
        assert b.first_delay(key) == 0.05
        # attempt n waits min(initial * 2**n, maximum), untouched
        assert [b.next_delay(key, n) for n in range(1, 8)] == [
            0.1, 0.2, 0.4, 0.8, 1.6, 2.0, 2.0
        ]

    def test_exhaustion_is_strict(self):
        b = ReconnectBackoff(max_retries=3)
        assert not b.exhausted(3)
        assert b.exhausted(4)

    def test_jitter_stays_within_band(self):
        b = ReconnectBackoff(initial=0.05, jitter=0.25, seed=42)
        key = ("a", "b")
        for n in range(1, 6):
            delay = b.next_delay(key, n)
            base = min(0.05 * 2.0 ** n, 2.0)
            assert base * 0.75 <= delay <= base * 1.25

    def test_jitter_matches_documented_formula(self):
        # the draw is delay * (1 + j*(2u-1)) from a Random seeded with
        # (seed << 16) ^ crc32("a|b"), one draw per scheduled delay
        seed, key, j = 9, ("ler-a", "lsr-1"), 0.2
        b = ReconnectBackoff(initial=0.05, jitter=j, seed=seed)
        rng = random.Random(
            (seed << 16) ^ zlib.crc32(b"ler-a|lsr-1")
        )
        got = [b.first_delay(key)] + [
            b.next_delay(key, n) for n in range(1, 5)
        ]
        want = [
            base * (1.0 + j * (2.0 * rng.random() - 1.0))
            for base in (0.05, 0.1, 0.2, 0.4, 0.8)
        ]
        assert got == want

    def test_jitter_rng_helper_agrees(self):
        assert (
            jitter_rng(7, ("a", "b")).random()
            == random.Random((7 << 16) ^ zlib.crc32(b"a|b")).random()
        )

    def test_same_seed_same_schedule(self):
        """Two policy objects with identical (seed, params) replay the
        exact same jittered schedule -- the regression the chaos
        reports' byte-stability rides on."""
        def schedule():
            b = ReconnectBackoff(initial=0.02, jitter=0.1, seed=5)
            out = []
            for key in [("controller", "lsr-1"), ("controller", "ler-a")]:
                out.append(b.first_delay(key))
                out.extend(b.next_delay(key, n) for n in range(1, 6))
            return out

        assert schedule() == schedule()

    def test_distinct_keys_decorrelate(self):
        b = ReconnectBackoff(initial=0.05, jitter=0.3, seed=1)
        assert b.first_delay(("a", "b")) != b.first_delay(("a", "c"))

    def test_forget_restarts_the_draw_sequence(self):
        b = ReconnectBackoff(initial=0.05, jitter=0.3, seed=1)
        key = ("a", "b")
        first = b.first_delay(key)
        assert b.first_delay(key) != first  # second draw differs
        b.forget(key)
        assert b.first_delay(key) == first  # fresh RNG, same sequence


class TestLDPDelegation:
    """Message-level LDP reuses the shared policy verbatim."""

    def _ldp(self, jitter=0.15, seed=11):
        topo = paper_figure1(delay_s=1e-3)
        nodes = {
            name: LSRNode(
                name,
                RouterRole.LER
                if name in ("ler-a", "ler-b")
                else RouterRole.LSR,
            )
            for name in topo.nodes
        }
        return MessageLDPProcess(
            topo, nodes, EventScheduler(),
            retry_jitter=jitter, jitter_seed=seed,
        )

    def test_ldp_backoff_is_the_shared_policy(self):
        ldp = self._ldp()
        assert isinstance(ldp.backoff, ReconnectBackoff)

    def test_ldp_schedule_identical_to_standalone_policy(self):
        """Same (seed, key, drop sequence) -> the LDP session schedule
        is bit-for-bit the schedule a bare ReconnectBackoff yields."""
        ldp = self._ldp(jitter=0.15, seed=11)
        bare = ReconnectBackoff(
            initial=50e-3, maximum=2.0, max_retries=20,
            jitter=0.15, seed=11,
        )
        key = ("lsr-1", "lsr-2")
        got = [ldp._jittered(key, 0.05)] + [
            ldp.backoff.next_delay(key, n) for n in range(1, 6)
        ]
        want = [bare.first_delay(key)] + [
            bare.next_delay(key, n) for n in range(1, 6)
        ]
        assert got == want

    def test_ldp_same_seed_same_reconnect_schedule(self):
        a, b = self._ldp(seed=3), self._ldp(seed=3)
        key = ("ler-a", "lsr-1")
        assert [a.backoff.first_delay(key)] + [
            a.backoff.next_delay(key, n) for n in range(1, 8)
        ] == [b.backoff.first_delay(key)] + [
            b.backoff.next_delay(key, n) for n in range(1, 8)
        ]

    def test_ldp_jitter_validation_propagates(self):
        with pytest.raises(ValueError, match=r"retry_jitter must be in"):
            self._ldp(jitter=1.0)
