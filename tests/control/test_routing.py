"""Tests for the link-state database and SPF."""

import pytest

from repro.control.routing import LinkStateDatabase, shortest_path
from repro.net.topology import (
    Topology,
    TopologyError,
    full_mesh,
    line,
    paper_figure1,
    ring,
)


class TestSPF:
    def test_line_path(self):
        result = LinkStateDatabase(line(4)).spf("n0")
        assert result.paths["n3"] == ["n0", "n1", "n2", "n3"]
        assert result.cost["n3"] == 3

    def test_next_hop(self):
        result = LinkStateDatabase(line(4)).spf("n0")
        assert result.next_hop("n3") == "n1"
        assert result.next_hop("n0") is None

    def test_metrics_respected(self):
        topo = Topology()
        for name in "abcd":
            topo.add_node(name)
        topo.add_link("a", "b", metric=1)
        topo.add_link("b", "d", metric=1)
        topo.add_link("a", "c", metric=5)
        topo.add_link("c", "d", metric=1)
        result = LinkStateDatabase(topo).spf("a")
        assert result.paths["d"] == ["a", "b", "d"]

    def test_high_metric_reroutes(self):
        topo = Topology()
        for name in "abcd":
            topo.add_node(name)
        topo.add_link("a", "b", metric=10)
        topo.add_link("b", "d", metric=10)
        topo.add_link("a", "c", metric=1)
        topo.add_link("c", "d", metric=1)
        result = LinkStateDatabase(topo).spf("a")
        assert result.paths["d"] == ["a", "c", "d"]

    def test_unreachable(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("island")
        result = LinkStateDatabase(topo).spf("a")
        assert not result.reachable("island")
        assert result.next_hop("island") is None

    def test_unknown_source(self):
        with pytest.raises(TopologyError):
            LinkStateDatabase(line(2)).spf("ghost")

    def test_negative_metric_rejected(self):
        topo = line(2)
        topo.link("n0", "n1").metric = -1
        with pytest.raises(TopologyError):
            LinkStateDatabase(topo).spf("n0")

    def test_source_path_to_itself(self):
        result = LinkStateDatabase(line(2)).spf("n0")
        assert result.paths["n0"] == ["n0"]
        assert result.cost["n0"] == 0

    def test_paper_figure1_shortest(self):
        path = shortest_path(paper_figure1(), "ler-a", "ler-b")
        # both core paths have equal metric; either 3-hop path is valid
        assert path[0] == "ler-a" and path[-1] == "ler-b"
        assert len(path) == 4

    def test_matches_networkx_reference(self):
        """Cross-check Dijkstra against networkx on a ring and mesh."""
        import networkx as nx

        for topo in (ring(8), full_mesh(6)):
            graph = nx.Graph()
            for a, b, attrs in topo.edges_with_attrs():
                graph.add_edge(a, b, weight=attrs.metric)
            lsdb = LinkStateDatabase(topo)
            for src in topo.nodes:
                ours = lsdb.spf(src)
                ref = nx.single_source_dijkstra_path_length(graph, src)
                assert {k: v for k, v in ours.cost.items()} == ref

    def test_spf_run_counter(self):
        lsdb = LinkStateDatabase(line(3))
        lsdb.spf("n0")
        lsdb.spf("n1")
        assert lsdb.spf_runs == 2
