"""Tests for RSVP-TE setup/hold priorities and soft preemption."""

import pytest

from repro.control.cspf import CSPFError, cspf_path
from repro.control.rsvp_te import RSVPTESignaler, SetupError, SignalingError
from repro.mpls.fec import PrefixFEC
from repro.mpls.router import LSRNode, RouterRole
from repro.net.topology import line, ring


def _env(topo):
    nodes = {name: LSRNode(name, RouterRole.LSR) for name in topo.nodes}
    return nodes, RSVPTESignaler(topo, nodes)


def _snapshot(topo, nodes, sig):
    """Everything a failed setup must leave untouched."""
    return (
        {
            (a, b, end): topo.link(a, b).reservable(end)
            for a, b in topo.links
            for end in (a, b)
        },
        {name: len(node.ilm) for name, node in nodes.items()},
        {name: len(node.ftn) for name, node in nodes.items()},
        sorted(sig.lsps),
    )


class TestPriorityValidation:
    def test_priorities_must_be_0_to_7(self):
        topo = ring(4)
        _, sig = _env(topo)
        with pytest.raises(SignalingError, match="0..7"):
            sig.setup("t", "n0", "n2", setup_priority=8)
        with pytest.raises(SignalingError, match="0..7"):
            sig.setup("t", "n0", "n2", setup_priority=0, hold_priority=-1)

    def test_hold_must_be_at_least_as_strong_as_setup(self):
        topo = ring(4)
        _, sig = _env(topo)
        with pytest.raises(SignalingError, match="hold_priority"):
            sig.setup("t", "n0", "n2", setup_priority=3, hold_priority=5)

    def test_hold_defaults_to_setup(self):
        topo = ring(4)
        _, sig = _env(topo)
        lsp = sig.setup("t", "n0", "n2", setup_priority=2)
        assert lsp.setup_priority == 2 and lsp.hold_priority == 2

    def test_setup_error_is_a_signaling_error(self):
        assert issubclass(SetupError, SignalingError)


class TestSoftPreemption:
    def test_victim_rerouted_make_before_break(self):
        topo = ring(4, bandwidth_bps=10e6)
        nodes, sig = _env(topo)
        low = sig.setup(
            "low",
            "n0",
            "n2",
            explicit_route=["n0", "n1", "n2"],
            bandwidth_bps=8e6,
            setup_priority=7,
            fec=PrefixFEC("10.2.0.0/16"),
        )
        high = sig.setup(
            "high",
            "n0",
            "n2",
            explicit_route=["n0", "n1", "n2"],
            bandwidth_bps=8e6,
            setup_priority=0,
        )
        assert high.up and low.up
        assert low.path == ["n0", "n3", "n2"]  # moved off the hot links
        assert sig.stats.preempt_reroutes == 1
        assert sig.stats.preempt_teardowns == 0
        # reservations follow the move exactly
        assert topo.link("n0", "n1").reservable("n0") == pytest.approx(2e6)
        assert topo.link("n0", "n3").reservable("n0") == pytest.approx(2e6)
        assert topo.link("n3", "n2").reservable("n3") == pytest.approx(2e6)
        # the victim's ingress FTN was rewritten onto the new path
        nhlfe = next(n for f, n in nodes["n0"].ftn)
        assert nhlfe.next_hop == "n3"
        assert nhlfe.out_label == low.hop_labels[0]
        # the old transit label at n1 is gone, the new one at n3 works
        assert low.hop_labels[0] in nodes["n3"].ilm

    def test_victim_torn_down_without_alternate_path(self):
        topo = line(3, bandwidth_bps=10e6)  # n0-n1-n2: no detour
        nodes, sig = _env(topo)
        low = sig.setup(
            "low",
            "n0",
            "n2",
            explicit_route=["n0", "n1", "n2"],
            bandwidth_bps=8e6,
            setup_priority=7,
        )
        high = sig.setup(
            "high",
            "n0",
            "n2",
            explicit_route=["n0", "n1", "n2"],
            bandwidth_bps=8e6,
            setup_priority=0,
        )
        assert "low" not in sig.lsps
        assert low.up is False
        assert sig.stats.preempt_teardowns == 1
        # the victim's labels were removed: each hop holds exactly the
        # winner's entry (the freed label numbers get reused)
        assert len(nodes["n1"].ilm) == 1
        assert len(nodes["n2"].ilm) == 1
        assert high.hop_labels[0] in nodes["n1"].ilm
        assert topo.link("n0", "n1").reservable("n0") == pytest.approx(2e6)

    def test_equal_hold_priority_is_not_preemptable(self):
        topo = ring(4, bandwidth_bps=10e6)
        nodes, sig = _env(topo)
        sig.setup(
            "first",
            "n0",
            "n2",
            explicit_route=["n0", "n1", "n2"],
            bandwidth_bps=8e6,
            setup_priority=4,
        )
        before = _snapshot(topo, nodes, sig)
        with pytest.raises(SetupError, match="admission control"):
            sig.setup(
                "second",
                "n0",
                "n2",
                explicit_route=["n0", "n1", "n2"],
                bandwidth_bps=8e6,
                setup_priority=4,  # hold 4 is not > setup 4
            )
        assert _snapshot(topo, nodes, sig) == before

    def test_preemption_disabled_restores_plain_admission(self):
        topo = ring(4, bandwidth_bps=10e6)
        _, sig = _env(topo)
        sig.preemption_enabled = False
        sig.setup(
            "low",
            "n0",
            "n2",
            explicit_route=["n0", "n1", "n2"],
            bandwidth_bps=8e6,
            setup_priority=7,
        )
        with pytest.raises(SetupError):
            sig.setup(
                "high",
                "n0",
                "n2",
                explicit_route=["n0", "n1", "n2"],
                bandwidth_bps=8e6,
                setup_priority=0,
            )
        assert "low" in sig.lsps
        assert sig.stats.preempt_reroutes == 0


class TestNoPartialState:
    def test_midpath_rejection_reserves_nothing(self):
        # first shortfall link carries a weak victim, the second a
        # strong one: admission must fail at PATH time with the victim
        # and every table byte-for-byte intact
        topo = ring(4, bandwidth_bps=10e6)
        nodes, sig = _env(topo)
        sig.setup(
            "weak",
            "n0",
            "n1",
            explicit_route=["n0", "n1"],
            bandwidth_bps=8e6,
            setup_priority=7,
        )
        sig.setup(
            "strong",
            "n1",
            "n2",
            explicit_route=["n1", "n2"],
            bandwidth_bps=8e6,
            setup_priority=1,
        )
        before = _snapshot(topo, nodes, sig)
        failures = sig.stats.setup_failures
        with pytest.raises(SetupError):
            sig.setup(
                "new",
                "n0",
                "n2",
                explicit_route=["n0", "n1", "n2"],
                bandwidth_bps=8e6,
                setup_priority=4,  # can preempt weak(7), not strong(1)
            )
        assert _snapshot(topo, nodes, sig) == before
        assert sig.stats.setup_failures == failures + 1
        assert sig.stats.preempt_reroutes == 0
        assert sig.stats.preempt_teardowns == 0

    def test_declined_plan_reserves_nothing_and_counts(self):
        # every shortfall link has preemptable victims, but preempting
        # all of them still cannot free enough: the planner declines
        # before touching anything
        topo = line(2, bandwidth_bps=10e6)
        nodes, sig = _env(topo)
        sig.setup(
            "small",
            "n0",
            "n1",
            explicit_route=["n0", "n1"],
            bandwidth_bps=4e6,
            setup_priority=7,
        )
        before = _snapshot(topo, nodes, sig)
        with pytest.raises(SetupError, match="preemption at priority"):
            sig.setup(
                "huge",
                "n0",
                "n1",
                explicit_route=["n0", "n1"],
                bandwidth_bps=12e6,  # > link capacity even freed
                setup_priority=0,
            )
        assert _snapshot(topo, nodes, sig) == before
        assert sig.stats.preempt_declined == 1
        assert "small" in sig.lsps  # the would-be victim is untouched


class TestCSPFAvoidLinks:
    def test_avoided_link_forces_the_detour(self):
        topo = ring(4)
        assert cspf_path(topo, "n0", "n2", avoid_links=[("n0", "n1")]) == [
            "n0",
            "n3",
            "n2",
        ]
        # orientation does not matter
        assert cspf_path(topo, "n0", "n2", avoid_links=[("n1", "n0")]) == [
            "n0",
            "n3",
            "n2",
        ]

    def test_avoiding_every_path_fails(self):
        topo = ring(4)
        with pytest.raises(CSPFError):
            cspf_path(
                topo,
                "n0",
                "n2",
                avoid_links=[("n0", "n1"), ("n0", "n3")],
            )
