"""Tests for the centralized PCE controller.

Unit coverage for the config/CSPF/transaction building blocks, plus
end-to-end crash and partition failover through ``run_scenario``: with
delegation the fallback to distributed control blackholes **zero**
FECs; without it the stale flush blackholes traffic until the
controller re-adopts.
"""

import copy

import pytest

from repro.control.controller import (
    STATE_ADOPTED,
    STATE_DISTRIBUTED,
    STATE_ORPHANED,
    ControllerConfig,
    PCEController,
)
from repro.control.cspf import CSPFError, cspf_over_view
from repro.faults import Scenario, run_scenario
from repro.mpls.label import LabelOp
from repro.mpls.nhlfe import NHLFE
from repro.mpls.router import LSRNode, RouterRole
from repro.mpls.transaction import TableTransaction
from repro.obs import telemetry_session

SCENARIO = {
    "name": "controller-e2e",
    "topology": {"kind": "paper_figure1",
                 "bandwidth_bps": 10e6, "delay_s": 1e-3},
    "control": "ldp",
    "duration": 1.2,
    "detection_delay_s": 1e-3,
    "traffic": [
        {"ingress": "ler-a", "egress": "ler-b", "prefix": "10.2.0.0/16",
         "src": "10.1.0.5", "dst": "10.2.0.9",
         "rate_bps": 2e6, "packet_size": 500},
        {"ingress": "ler-b", "egress": "ler-a", "prefix": "10.1.0.0/16",
         "src": "10.2.0.9", "dst": "10.1.0.5",
         "rate_bps": 1e6, "packet_size": 500},
    ],
    "controller": {},
    "faults": [
        {"at": 0.2, "kind": "controller-crash",
         "target": ["controller"], "heal_at": 0.5},
        {"at": 0.8, "kind": "controller-partition",
         "target": ["lsr-1"], "heal_at": 0.95},
    ],
}


def _run(seed=7, **controller_overrides):
    raw = copy.deepcopy(SCENARIO)
    raw["controller"].update(controller_overrides)
    with telemetry_session():
        return run_scenario(Scenario.from_dict(raw), seed=seed)


class TestControllerConfig:
    def test_defaults_are_valid(self):
        cfg = ControllerConfig()
        assert cfg.enabled and cfg.delegation

    def test_hold_time_must_exceed_keepalive(self):
        with pytest.raises(ValueError, match="hold_time"):
            ControllerConfig(keepalive_interval=0.05, hold_time=0.05)

    def test_watermark_ordering(self):
        with pytest.raises(ValueError, match="watermarks"):
            ControllerConfig(low_watermark=10, high_watermark=5)

    def test_jitter_range(self):
        with pytest.raises(ValueError, match="retry_jitter"):
            ControllerConfig(retry_jitter=1.0)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(
            ValueError,
            match=r"unknown controller key\(s\): delegatoin, hold_tme",
        ):
            ControllerConfig.from_dict(
                {"delegatoin": True, "hold_tme": 0.1}
            )

    def test_from_dict_casts_and_threads_horizon(self):
        cfg = ControllerConfig.from_dict(
            {"delegation": False, "missed_rpc_limit": 5}, horizon=2.5
        )
        assert cfg.delegation is False
        assert cfg.missed_rpc_limit == 5
        assert cfg.horizon == 2.5


class TestCspfOverView:
    VIEW = {
        "nodes": {"a": "up", "b": "up", "c": "up", "d": "up"},
        "links": {"a|b": "up", "b|d": "up", "a|c": "up",
                  "c|d": "up", "a|d": "down"},
    }

    def test_shortest_observed_path(self):
        # the direct a-d link is observed down; both two-hop detours
        # tie, and the sorted-neighbor order picks b first
        assert cspf_over_view(self.VIEW, "a", "d") == ["a", "b", "d"]

    def test_degraded_links_still_forward(self):
        view = copy.deepcopy(self.VIEW)
        view["links"]["a|d"] = "degraded"
        assert cspf_over_view(view, "a", "d") == ["a", "d"]

    def test_down_node_pruned(self):
        view = copy.deepcopy(self.VIEW)
        view["nodes"]["b"] = "down"
        assert cspf_over_view(view, "a", "d") == ["a", "c", "d"]

    def test_endpoint_down_raises(self):
        view = copy.deepcopy(self.VIEW)
        view["nodes"]["d"] = "down"
        with pytest.raises(CSPFError, match="endpoint down in the view"):
            cspf_over_view(view, "a", "d")

    def test_unreachable_raises(self):
        view = {
            "nodes": {"a": "up", "b": "up"},
            "links": {"a|b": "down"},
        }
        with pytest.raises(CSPFError, match="unreachable"):
            cspf_over_view(view, "a", "b")


class TestForNodesTransaction:
    def _nodes(self):
        nodes = {
            name: LSRNode(name, RouterRole.LSR) for name in ("n2", "n1")
        }
        nodes["n1"].ilm.install(
            100, NHLFE(op=LabelOp.POP, next_hop=None)
        )
        return nodes

    def test_rollback_spans_every_table(self):
        nodes = self._nodes()
        with pytest.raises(RuntimeError):
            with TableTransaction.for_nodes(nodes):
                nodes["n1"].ilm.install(
                    200, NHLFE(op=LabelOp.POP, next_hop=None)
                )
                nodes["n2"].ilm.install(
                    300, NHLFE(op=LabelOp.POP, next_hop=None)
                )
                raise RuntimeError("abort")
        assert nodes["n1"].ilm.get(200) is None
        assert nodes["n2"].ilm.get(300) is None
        assert nodes["n1"].ilm.get(100) is not None  # pre-txn survives

    def test_commit_keeps_writes(self):
        nodes = self._nodes()
        with TableTransaction.for_nodes(nodes):
            nodes["n2"].ilm.install(
                300, NHLFE(op=LabelOp.POP, next_hop=None)
            )
        assert nodes["n2"].ilm.get(300) is not None


class TestCrashFailover:
    def test_delegation_blackholes_nothing(self):
        report = _run(seed=7)
        ctl = report["controller"]
        assert ctl["enabled"] and ctl["delegation"]
        assert ctl["fecs_blackholed"] == 0
        assert ctl["blackholed_fecs"] == []
        assert ctl["fecs_blackholed_final"] == 0

    def test_failover_and_readopt_times_recorded(self):
        ctl = _run(seed=7)["controller"]
        assert ctl["time_to_failover_s"] is not None
        assert ctl["time_to_readopt_s"] is not None
        assert 0 < ctl["time_to_failover_s"] < 0.2
        assert 0 < ctl["time_to_readopt_s"] < 0.3

    def test_every_node_fails_over_and_readopts(self):
        ctl = _run(seed=7)["controller"]
        crash_overs = [f for f in ctl["failovers"]
                       if f["reason"] == "crash"]
        assert sorted(f["node"] for f in crash_overs) == [
            "ler-a", "ler-b", "lsr-1", "lsr-2", "lsr-3"
        ]
        assert all(f["delegated"] for f in ctl["failovers"])
        crash_readopts = [r for r in ctl["readopts"]
                          if r["reason"] == "crash"]
        assert sorted(r["node"] for r in crash_readopts) == [
            "ler-a", "ler-b", "lsr-1", "lsr-2", "lsr-3"
        ]
        assert ctl["crashes"] == 1 and ctl["restarts"] == 1

    def test_resync_is_transactional_and_counted(self):
        ctl = _run(seed=7)["controller"]
        # one read + one atomic write transaction per readopt
        assert ctl["resync"]["transactions"] == len(ctl["readopts"])
        assert ctl["resync"]["reads"] >= ctl["resync"]["transactions"]
        assert ctl["resync"]["rewrites"] > 0

    def test_delegation_off_blackholes_until_readopt(self):
        ctl = _run(seed=7, delegation=False)["controller"]
        assert ctl["fecs_blackholed"] > 0
        assert ctl["blackholed_fecs"]  # named, not just counted
        assert not any(f["delegated"] for f in ctl["failovers"])
        # the resync write repairs the flushed tables in the end
        assert ctl["fecs_blackholed_final"] == 0

    def test_orphan_accounting(self):
        ctl = _run(seed=7)["controller"]
        assert ctl["fecs_orphaned"] == 2  # one FEC per direction


class TestPartitionFailover:
    def test_only_the_cut_node_falls_back(self):
        ctl = _run(seed=7)["controller"]
        partition_overs = [f for f in ctl["failovers"]
                           if f["reason"] == "partition"]
        assert [f["node"] for f in partition_overs] == ["lsr-1"]

    def test_partition_readopt_anchored_to_heal(self):
        ctl = _run(seed=7)["controller"]
        readopts = [r for r in ctl["readopts"]
                    if r["reason"] == "partition"]
        assert len(readopts) == 1
        assert readopts[0]["node"] == "lsr-1"
        # healed at 0.95; re-adoption happens after, anchored to it
        assert readopts[0]["at"] > 0.95
        assert readopts[0]["restore_s"] == pytest.approx(
            readopts[0]["at"] - 0.95, abs=1e-9
        )

    def test_channel_drops_accounted(self):
        ctl = _run(seed=7)["controller"]
        assert ctl["channel"]["drops_by_cause"].get("partition", 0) > 0
        assert ctl["channel"]["timeouts"] > 0


class TestDeterminismAndGating:
    def test_same_seed_byte_identical(self):
        assert _run(seed=19).to_json() == _run(seed=19).to_json()

    def test_disabled_controller_is_inert(self):
        raw = copy.deepcopy(SCENARIO)
        raw["controller"]["enabled"] = False
        with telemetry_session():
            report = run_scenario(Scenario.from_dict(raw), seed=7)
        ctl = report["controller"]
        assert ctl["enabled"] is False
        assert ctl["adoptions"] == 0
        assert ctl["failovers"] == [] and ctl["readopts"] == []

    def test_reports_without_controller_key_unchanged(self):
        raw = copy.deepcopy(SCENARIO)
        del raw["controller"]
        raw["faults"] = [
            {"at": 0.2, "kind": "link-down",
             "target": ["lsr-1", "lsr-2"], "heal_at": 0.45},
        ]
        with telemetry_session():
            report = run_scenario(Scenario.from_dict(raw), seed=7)
        assert "controller" not in report.data


class TestAgentStates:
    def test_state_constants_are_distinct(self):
        assert len(
            {STATE_DISTRIBUTED, STATE_ADOPTED, STATE_ORPHANED}
        ) == 3

    def test_fec_specs_sorted_on_construction(self):
        from repro.mpls.fec import PrefixFEC
        from repro.net.topology import paper_figure1
        from repro.net.network import MPLSNetwork

        network = MPLSNetwork(paper_figure1(delay_s=1e-3))
        specs = [
            (PrefixFEC("10.2.0.0/16"), "ler-b", "ler-a"),
            (PrefixFEC("10.1.0.0/16"), "ler-a", "ler-b"),
        ]
        ctl = PCEController(network, ControllerConfig(), fec_specs=specs)
        assert [s[1] for s in ctl.fec_specs] == ["ler-a", "ler-b"]
