"""Property-based tests for CSPF against a networkx reference."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.cspf import CSPFError, cspf_path
from repro.net.topology import Topology


@st.composite
def random_topologies(draw):
    """Connected random graphs with random metrics and bandwidths."""
    n = draw(st.integers(min_value=2, max_value=10))
    names = [f"n{i}" for i in range(n)]
    topo = Topology()
    for name in names:
        topo.add_node(name)
    # spanning chain guarantees connectivity
    for a, b in zip(names, names[1:]):
        metric = draw(st.integers(min_value=1, max_value=10))
        bw = draw(st.sampled_from([10e6, 100e6]))
        topo.add_link(a, b, metric=metric, bandwidth_bps=bw)
    # random chords
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        i = draw(st.integers(min_value=0, max_value=n - 1))
        j = draw(st.integers(min_value=0, max_value=n - 1))
        if i != j and not topo.has_link(names[i], names[j]):
            metric = draw(st.integers(min_value=1, max_value=10))
            bw = draw(st.sampled_from([10e6, 100e6]))
            topo.add_link(names[i], names[j], metric=metric,
                          bandwidth_bps=bw)
    return topo, names


def _nx_graph(topo, bandwidth_floor=0.0):
    graph = nx.Graph()
    graph.add_nodes_from(topo.nodes)
    for a, b, attrs in topo.edges_with_attrs():
        if attrs.bandwidth_bps >= bandwidth_floor:
            graph.add_edge(a, b, weight=attrs.metric)
    return graph


class TestCSPFProperties:
    @settings(max_examples=60, deadline=None)
    @given(random_topologies())
    def test_unconstrained_matches_networkx(self, topo_names):
        topo, names = topo_names
        src, dst = names[0], names[-1]
        ours = cspf_path(topo, src, dst)
        ref_len = nx.shortest_path_length(
            _nx_graph(topo), src, dst, weight="weight"
        )
        ours_len = sum(
            topo.link(a, b).metric for a, b in zip(ours, ours[1:])
        )
        assert ours_len == ref_len

    @settings(max_examples=60, deadline=None)
    @given(random_topologies())
    def test_bandwidth_constraint_matches_pruned_networkx(self, topo_names):
        topo, names = topo_names
        src, dst = names[0], names[-1]
        floor = 50e6  # keeps only the 100 Mbps links
        pruned = _nx_graph(topo, bandwidth_floor=floor)
        try:
            ref_len = nx.shortest_path_length(
                pruned, src, dst, weight="weight"
            )
            feasible = True
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            feasible = False
        if feasible:
            ours = cspf_path(topo, src, dst, bandwidth_bps=floor)
            ours_len = sum(
                topo.link(a, b).metric for a, b in zip(ours, ours[1:])
            )
            assert ours_len == ref_len
            for a, b in zip(ours, ours[1:]):
                assert topo.link(a, b).bandwidth_bps >= floor
        else:
            with pytest.raises(CSPFError):
                cspf_path(topo, src, dst, bandwidth_bps=floor)

    @settings(max_examples=40, deadline=None)
    @given(random_topologies())
    def test_path_is_simple_and_wellformed(self, topo_names):
        topo, names = topo_names
        path = cspf_path(topo, names[0], names[-1])
        assert path[0] == names[0] and path[-1] == names[-1]
        assert len(set(path)) == len(path)  # no revisits
        for a, b in zip(path, path[1:]):
            assert topo.has_link(a, b)
