"""Tests for constraint-based SPF."""

import pytest

from repro.control.cspf import CSPFError, cspf_path
from repro.net.topology import Topology, line, paper_figure1


def _diamond():
    """a - b - d (fast) and a - c - d (slow but fat)."""
    topo = Topology()
    for name in "abcd":
        topo.add_node(name)
    topo.add_link("a", "b", metric=1, bandwidth_bps=10e6)
    topo.add_link("b", "d", metric=1, bandwidth_bps=10e6)
    topo.add_link("a", "c", metric=5, bandwidth_bps=100e6)
    topo.add_link("c", "d", metric=5, bandwidth_bps=100e6)
    return topo


class TestCSPF:
    def test_unconstrained_is_shortest(self):
        assert cspf_path(_diamond(), "a", "d") == ["a", "b", "d"]

    def test_bandwidth_constraint_diverts(self):
        assert cspf_path(_diamond(), "a", "d", bandwidth_bps=50e6) == [
            "a",
            "c",
            "d",
        ]

    def test_reservations_consume_headroom(self):
        topo = _diamond()
        topo.link("a", "b").reserve("a", 8e6)
        # only 2 Mbps left on a->b; a 5 Mbps LSP must divert
        assert cspf_path(topo, "a", "d", bandwidth_bps=5e6) == ["a", "c", "d"]

    def test_no_feasible_path(self):
        with pytest.raises(CSPFError):
            cspf_path(_diamond(), "a", "d", bandwidth_bps=1e9)

    def test_include_affinity(self):
        topo = _diamond()
        topo.link("a", "c").affinity = 0b10
        topo.link("c", "d").affinity = 0b10
        assert cspf_path(topo, "a", "d", include_affinity=0b10) == [
            "a",
            "c",
            "d",
        ]

    def test_exclude_affinity(self):
        topo = _diamond()
        topo.link("a", "b").affinity = 0b01
        assert cspf_path(topo, "a", "d", exclude_affinity=0b01) == [
            "a",
            "c",
            "d",
        ]

    def test_avoid_nodes_gives_disjoint_backup(self):
        topo = paper_figure1()
        primary = cspf_path(topo, "ler-a", "ler-b")
        middle = set(primary[1:-1]) - {"lsr-1"}
        backup = cspf_path(topo, "ler-a", "ler-b", avoid_nodes=middle)
        assert set(backup[1:-1]).isdisjoint(middle)

    def test_avoid_endpoint_rejected(self):
        with pytest.raises(CSPFError):
            cspf_path(_diamond(), "a", "d", avoid_nodes={"a"})

    def test_line_trivial(self):
        assert cspf_path(line(3), "n0", "n2") == ["n0", "n1", "n2"]
