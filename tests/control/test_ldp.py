"""Tests for LDP-style label distribution."""

import pytest

from repro.control.ldp import LDPProcess
from repro.mpls.fec import PrefixFEC
from repro.mpls.label import IMPLICIT_NULL, LabelOp
from repro.mpls.router import LSRNode, RouterRole
from repro.net.topology import line, paper_figure1


def _nodes(topo, edge_names):
    return {
        name: LSRNode(
            name,
            RouterRole.LER if name in edge_names else RouterRole.LSR,
        )
        for name in topo.nodes
    }


class TestLDP:
    def _setup(self, php=False):
        topo = line(4)  # n0 - n1 - n2 - n3
        nodes = _nodes(topo, edge_names={"n0", "n3"})
        ldp = LDPProcess(topo, nodes)
        fec = PrefixFEC("10.3.0.0/16")
        binding = ldp.establish_fec(fec, egress="n3", php=php)
        return topo, nodes, ldp, fec, binding

    def test_all_nodes_get_labels(self):
        _, _, _, _, binding = self._setup()
        assert set(binding.labels) == {"n0", "n1", "n2", "n3"}
        assert all(l >= 16 for l in binding.labels.values())

    def test_next_hops_follow_spf(self):
        _, _, _, _, binding = self._setup()
        assert binding.next_hops == {"n0": "n1", "n1": "n2", "n2": "n3"}

    def test_ingress_ftn_pushes_downstream_label(self):
        _, nodes, _, fec, binding = self._setup()
        from repro.net.packet import IPv4Packet

        packet = IPv4Packet(src="10.0.0.1", dst="10.3.0.1")
        _, nhlfe = nodes["n0"].ftn.lookup(packet)
        assert nhlfe.op is LabelOp.PUSH
        assert nhlfe.out_label == binding.labels["n1"]
        assert nhlfe.next_hop == "n1"

    def test_transit_swaps(self):
        _, nodes, _, _, binding = self._setup()
        nhlfe = nodes["n1"].ilm.lookup(binding.labels["n1"])
        assert nhlfe.op is LabelOp.SWAP
        assert nhlfe.out_label == binding.labels["n2"]

    def test_egress_pops(self):
        _, nodes, _, _, binding = self._setup()
        nhlfe = nodes["n3"].ilm.lookup(binding.labels["n3"])
        assert nhlfe.op is LabelOp.POP

    def test_php_advertises_implicit_null(self):
        _, nodes, _, _, binding = self._setup(php=True)
        assert binding.labels["n3"] == IMPLICIT_NULL
        # the penultimate hop pops instead of swapping
        nhlfe = nodes["n2"].ilm.lookup(binding.labels["n2"])
        assert nhlfe.op is LabelOp.POP
        assert nhlfe.next_hop == "n3"
        # nothing installed at the egress ILM
        assert len(nodes["n3"].ilm) == 0

    def test_withdraw_releases_everything(self):
        _, nodes, ldp, fec, binding = self._setup()
        ldp.withdraw_fec(binding)
        assert all(len(n.ilm) == 0 for n in nodes.values())
        assert all(len(n.ftn) == 0 for n in nodes.values())
        assert all(a.in_use == 0 for a in ldp.allocators.values())

    def test_withdraw_unknown_binding(self):
        _, _, ldp, _, binding = self._setup()
        ldp.withdraw_fec(binding)
        with pytest.raises(KeyError):
            ldp.withdraw_fec(binding)

    def test_explicit_ingress_list(self):
        topo = line(4)
        nodes = _nodes(topo, edge_names={"n0", "n3"})
        ldp = LDPProcess(topo, nodes)
        ldp.establish_fec(
            PrefixFEC("10.3.0.0/16"), egress="n3", ingresses=["n1"]
        )
        assert len(nodes["n1"].ftn) == 1
        assert len(nodes["n0"].ftn) == 0

    def test_reconvergence_after_link_failure(self):
        topo = paper_figure1()
        nodes = _nodes(topo, edge_names={"ler-a", "ler-b"})
        ldp = LDPProcess(topo, nodes)
        fec = PrefixFEC("10.2.0.0/16")
        ldp.establish_fec(fec, egress="ler-b")
        # break the primary path through lsr-2 and reconverge
        topo.remove_link("lsr-1", "lsr-2")
        ldp.reconverge()
        binding = ldp.bindings[0]
        assert binding.next_hops["lsr-1"] == "lsr-3"

    def test_unknown_egress(self):
        topo = line(2)
        nodes = _nodes(topo, edge_names={"n0", "n1"})
        ldp = LDPProcess(topo, nodes)
        with pytest.raises(KeyError):
            ldp.establish_fec(PrefixFEC("10.0.0.0/8"), egress="ghost")
