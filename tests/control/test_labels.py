"""Tests for the label allocator."""

import pytest

from repro.control.labels import LabelAllocator, LabelSpaceExhausted
from repro.mpls.label import LABEL_MAX, RESERVED_LABEL_MAX


class TestLabelAllocator:
    def test_starts_above_reserved(self):
        alloc = LabelAllocator()
        assert alloc.allocate() == RESERVED_LABEL_MAX + 1

    def test_sequential(self):
        alloc = LabelAllocator()
        assert [alloc.allocate() for _ in range(3)] == [16, 17, 18]

    def test_release_recycles_lowest_first(self):
        alloc = LabelAllocator()
        labels = [alloc.allocate() for _ in range(4)]
        alloc.release(labels[2])
        alloc.release(labels[0])
        assert alloc.allocate() == labels[0]
        assert alloc.allocate() == labels[2]

    def test_release_unallocated_rejected(self):
        alloc = LabelAllocator()
        with pytest.raises(KeyError):
            alloc.release(16)

    def test_in_use_count(self):
        alloc = LabelAllocator()
        a = alloc.allocate()
        alloc.allocate()
        alloc.release(a)
        assert alloc.in_use == 1

    def test_is_allocated(self):
        alloc = LabelAllocator()
        a = alloc.allocate()
        assert alloc.is_allocated(a)
        alloc.release(a)
        assert not alloc.is_allocated(a)

    def test_reserved_start_rejected(self):
        with pytest.raises(ValueError):
            LabelAllocator(first=5)

    def test_exhaustion(self):
        alloc = LabelAllocator(first=LABEL_MAX)
        alloc.allocate()
        with pytest.raises(LabelSpaceExhausted):
            alloc.allocate()
