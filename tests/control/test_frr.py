"""Tests for fast reroute (path protection)."""

import pytest

from repro.control.frr import FastRerouteManager
from repro.control.rsvp_te import RSVPTESignaler, SignalingError
from repro.mpls.fec import PrefixFEC
from repro.mpls.router import LSRNode, RouterRole
from repro.net.network import MPLSNetwork
from repro.net.packet import IPv4Packet
from repro.net.topology import line, paper_figure1
from repro.net.traffic import CBRSource


def _env():
    topo = paper_figure1(bandwidth_bps=10e6, delay_s=1e-3)
    nodes = {
        name: LSRNode(
            name,
            RouterRole.LER if name.startswith("ler") else RouterRole.LSR,
        )
        for name in topo.nodes
    }
    sig = RSVPTESignaler(topo, nodes)
    return topo, nodes, sig


class TestProtect:
    def test_primary_and_backup_signalled(self):
        _, _, sig = _env()
        frr = FastRerouteManager(sig)
        protected = frr.protect(
            "p1", "ler-a", "ler-b", PrefixFEC("10.2.0.0/16")
        )
        assert protected.primary.up and protected.backup.up
        assert protected.active == "primary"
        # maximally disjoint: no shared core links
        shared = set(protected.primary.links()) & set(
            protected.backup.links()
        )
        assert all("ler-a" in link for link in shared)

    def test_duplicate_name_rejected(self):
        _, _, sig = _env()
        frr = FastRerouteManager(sig)
        frr.protect("p1", "ler-a", "ler-b", PrefixFEC("10.2.0.0/16"))
        with pytest.raises(SignalingError):
            frr.protect("p1", "ler-a", "ler-b", PrefixFEC("10.3.0.0/16"))

    def test_no_disjoint_path_rejected(self):
        """On a pure line there is no alternative path at all."""
        topo = line(3, bandwidth_bps=10e6)
        nodes = {
            "n0": LSRNode("n0", RouterRole.LER),
            "n1": LSRNode("n1", RouterRole.LSR),
            "n2": LSRNode("n2", RouterRole.LER),
        }
        sig = RSVPTESignaler(topo, nodes)
        frr = FastRerouteManager(sig)
        with pytest.raises(SignalingError):
            frr.protect("p1", "n0", "n2", PrefixFEC("10.2.0.0/16"))


class TestSwitchover:
    def test_failure_on_primary_switches_to_backup(self):
        _, nodes, sig = _env()
        frr = FastRerouteManager(sig)
        protected = frr.protect(
            "p1", "ler-a", "ler-b", PrefixFEC("10.2.0.0/16")
        )
        mid = protected.primary.path[2]  # lsr-2 or lsr-3
        repaired = frr.handle_link_failure("lsr-1", mid)
        assert repaired == ["p1"]
        assert protected.active == "backup"
        assert frr.switchovers == 1
        # the ingress now pushes the backup's first label
        packet = IPv4Packet(src="10.1.0.5", dst="10.2.0.9")
        _, nhlfe = nodes["ler-a"].ftn.lookup(packet)
        assert nhlfe.out_label == protected.backup.hop_labels[0]

    def test_unrelated_failure_is_ignored(self):
        _, _, sig = _env()
        frr = FastRerouteManager(sig)
        protected = frr.protect(
            "p1", "ler-a", "ler-b", PrefixFEC("10.2.0.0/16")
        )
        backup_mid = protected.backup.path[2]
        repaired = frr.handle_link_failure(backup_mid, "ler-b")
        assert repaired == []
        assert protected.active == "primary"

    def test_revert(self):
        _, nodes, sig = _env()
        frr = FastRerouteManager(sig)
        protected = frr.protect(
            "p1", "ler-a", "ler-b", PrefixFEC("10.2.0.0/16")
        )
        mid = protected.primary.path[2]
        frr.handle_link_failure("lsr-1", mid)
        frr.revert("p1")
        assert protected.active == "primary"
        packet = IPv4Packet(src="10.1.0.5", dst="10.2.0.9")
        _, nhlfe = nodes["ler-a"].ftn.lookup(packet)
        assert nhlfe.out_label == protected.primary.hop_labels[0]

    def test_double_failure_leaves_state(self):
        _, _, sig = _env()
        frr = FastRerouteManager(sig)
        protected = frr.protect(
            "p1", "ler-a", "ler-b", PrefixFEC("10.2.0.0/16")
        )
        p_mid = protected.primary.path[2]
        b_mid = protected.backup.path[2]
        frr.handle_link_failure("lsr-1", p_mid)
        assert protected.active == "backup"
        # now the backup dies too: nothing to switch to
        repaired = frr.handle_link_failure("lsr-1", b_mid)
        assert repaired == []
        assert protected.active == "backup"


class TestLiveSwitchover:
    def test_traffic_survives_failure(self):
        """End to end: packets flow, the primary's core link dies, FRR
        steers onto the backup, packets keep flowing."""
        topo = paper_figure1(bandwidth_bps=10e6, delay_s=1e-3)
        net = MPLSNetwork(
            topo,
            roles={"ler-a": RouterRole.LER, "ler-b": RouterRole.LER},
        )
        net.attach_host("ler-b", "10.2.0.0/16")
        sig = RSVPTESignaler(topo, net.nodes)
        frr = FastRerouteManager(sig)
        protected = frr.protect(
            "p1", "ler-a", "ler-b", PrefixFEC("10.2.0.0/16")
        )
        src = CBRSource(net.scheduler, net.source_sink("ler-a"),
                        src="10.1.0.5", dst="10.2.0.9", rate_bps=1e6,
                        packet_size=500, stop=0.4)
        src.begin()
        mid = protected.primary.path[2]

        def fail_and_repair():
            net.fail_link("lsr-1", mid)
            frr.handle_link_failure("lsr-1", mid)

        net.scheduler.at(0.2, fail_and_repair)
        net.run(until=1.0)
        # at most a couple of in-flight packets die during switchover
        lost = src.sent - net.delivered_count()
        assert lost <= 3
        assert protected.active == "backup"
        # traffic after the failure used the backup's middle node
        backup_mid = protected.backup.path[2]
        assert net.nodes[backup_mid].stats.forwarded_mpls > 0
