"""Alert-engine tests: rule validation, threshold+hysteresis
lifecycle across every built-in signal, event emission, and the
summary/rendering surfaces."""

import pytest

from repro.obs import ListSink
from repro.obs.alerts import (
    AlertEngine,
    AlertRule,
    render_alert_history,
)
from repro.obs.flows import FlowAccountant, TrafficMatrix
from repro.obs.telemetry import Telemetry


def _engine(rules, tel=None):
    tel = tel if tel is not None else Telemetry(enabled=True)
    return AlertEngine(rules, telemetry=tel), tel


class TestRuleValidation:
    def test_clear_must_be_below_threshold(self):
        with pytest.raises(ValueError, match="hysteresis"):
            AlertRule(name="bad", signal="flow-count",
                      threshold=10.0, clear=10.0)

    def test_unknown_signal_rejected(self):
        with pytest.raises(ValueError, match="unknown signal"):
            AlertRule(name="bad", signal="cpu-temp",
                      threshold=1.0, clear=0.5)

    def test_metric_prefix_signal_accepted(self):
        rule = AlertRule(name="ok", signal="metric:repro_slo_breaches_total",
                         threshold=1.0, clear=0.5)
        assert rule.signal.startswith("metric:")

    def test_from_dict_defaults_clear_to_80_percent(self):
        rule = AlertRule.from_dict(
            {"name": "r", "signal": "flow-count", "threshold": 10.0}
        )
        assert rule.clear == pytest.approx(8.0)

    def test_duplicate_rule_names_rejected(self):
        rules = [
            {"name": "dup", "signal": "flow-count", "threshold": 2.0},
            {"name": "dup", "signal": "flow-count", "threshold": 3.0},
        ]
        with pytest.raises(ValueError, match="duplicate"):
            AlertEngine(rules, telemetry=Telemetry(enabled=True))


class TestHysteresis:
    RULE = {"name": "hot", "signal": "metric:repro_link_utilization_ratio",
            "threshold": 0.9, "clear": 0.5}

    def test_raise_hold_clear(self):
        engine, tel = _engine([self.RULE])
        gauge = tel.link_utilization.labels("a", "b")
        gauge.set(0.95)
        engine.evaluate(1.0)
        assert engine.active_count() == 1
        # in the hysteresis band: stays raised, no new transition
        gauge.set(0.7)
        engine.evaluate(2.0)
        assert engine.active_count() == 1
        assert len(engine.history) == 1
        gauge.set(0.4)
        engine.evaluate(3.0)
        assert engine.active_count() == 0
        raised, cleared = engine.history
        assert raised["transition"] == "raised"
        assert raised["subject"] == "a/b"
        assert raised["value"] == pytest.approx(0.95)
        assert cleared["transition"] == "cleared"
        assert cleared["duration"] == pytest.approx(2.0)
        assert cleared["peak"] == pytest.approx(0.95)

    def test_below_threshold_never_raises(self):
        engine, tel = _engine([self.RULE])
        tel.link_utilization.labels("a", "b").set(0.89)
        engine.evaluate(1.0)
        assert engine.active_count() == 0
        assert engine.history == []

    def test_transitions_metrics_mirror_state(self):
        engine, tel = _engine([self.RULE])
        gauge = tel.link_utilization.labels("a", "b")
        gauge.set(1.0)
        engine.evaluate(1.0)
        assert tel.alerts_active.labels("hot").value == 1
        assert tel.alert_transitions.labels("hot", "raised").value == 1
        gauge.set(0.0)
        engine.evaluate(2.0)
        assert tel.alerts_active.labels("hot").value == 0
        assert tel.alert_transitions.labels("hot", "cleared").value == 1

    def test_alert_events_emitted_into_log(self):
        engine, tel = _engine([self.RULE])
        sink = tel.events.add_sink(ListSink())
        gauge = tel.link_utilization.labels("a", "b")
        gauge.set(1.0)
        engine.evaluate(1.0)
        gauge.set(0.0)
        engine.evaluate(2.0)
        kinds = [event.kind for event in sink.events]
        assert kinds == ["alert-raised", "alert-cleared"]


class TestBuiltinSignals:
    def test_link_utilization_from_matrix(self):
        engine, _tel = _engine(
            [{"name": "hot-link", "signal": "link-utilization",
              "threshold": 0.9, "clear": 0.7}]
        )
        hot = TrafficMatrix(time=0.1, interval=0.1,
                            utilization={("a", "b"): 0.95})
        engine.evaluate(0.1, matrix=hot)
        assert engine.active_alerts()[0]["subject"] == "a->b"
        # the link disappears from the next snapshot: samples as 0,
        # so the alert clears instead of firing forever
        engine.evaluate(0.2, matrix=TrafficMatrix(time=0.2, interval=0.1))
        assert engine.active_count() == 0

    def test_queue_shed_rate_is_a_delta_rate(self):
        engine, tel = _engine(
            [{"name": "shed", "signal": "queue-shed-rate",
              "threshold": 100.0, "clear": 10.0}]
        )
        drops = tel.control_queue_drops.labels("n0", "mapping", "shed")
        drops.inc(50)
        engine.evaluate(1.0)  # 50 drops / 1 s = 50/s: below threshold
        assert engine.active_count() == 0
        drops.inc(200)
        engine.evaluate(2.0)  # 200/s: raised
        assert engine.active_count() == 1
        engine.evaluate(3.0)  # no new drops: 0/s clears
        assert engine.active_count() == 0

    def test_flow_count_per_node(self):
        tel = Telemetry(enabled=True)
        accountant = FlowAccountant(telemetry=tel)
        engine, _ = _engine(
            [{"name": "explosion", "signal": "flow-count",
              "threshold": 3.0, "clear": 1.0}],
            tel=tel,
        )
        for flow_id in range(3):
            accountant.record_packet("n0", flow_id, 100)
        engine.evaluate(1.0)
        assert engine.active_alerts()[0]["subject"] == "n0"
        accountant.finalize()
        engine.evaluate(2.0)
        assert engine.active_count() == 0

    def test_flow_count_without_accountant_is_silent(self):
        engine, _tel = _engine(
            [{"name": "explosion", "signal": "flow-count",
              "threshold": 1.0, "clear": 0.5}]
        )
        engine.evaluate(1.0)
        assert engine.active_count() == 0


class TestSurfaces:
    def test_summary_shape(self):
        engine, _tel = _engine(
            [{"name": "hot", "signal": "link-utilization",
              "threshold": 0.9, "clear": 0.7,
              "description": "a hot link"}]
        )
        engine.evaluate(
            0.1,
            matrix=TrafficMatrix(time=0.1, interval=0.1,
                                 utilization={("a", "b"): 1.0}),
        )
        summary = engine.summary()
        assert summary["rules"][0]["description"] == "a hot link"
        assert summary["evaluations"] == 1
        assert summary["history"][0]["transition"] == "raised"
        assert summary["active_at_end"][0]["subject"] == "a->b"

    def test_render_alert_history(self):
        engine, _tel = _engine(
            [{"name": "hot", "signal": "link-utilization",
              "threshold": 0.9, "clear": 0.7}]
        )
        engine.evaluate(
            0.1,
            matrix=TrafficMatrix(time=0.1, interval=0.1,
                                 utilization={("a", "b"): 1.0}),
        )
        engine.evaluate(0.2, matrix=TrafficMatrix(time=0.2, interval=0.1))
        text = render_alert_history(engine)
        assert "RAISED" in text and "cleared" in text
        assert "hot" in text and "a->b" in text

    def test_render_without_rules(self):
        engine, _tel = _engine([])
        assert "no rules configured" in render_alert_history(engine)
