"""Tests for the telemetry facade: the enable switch, session scoping,
and the end-to-end instrumentation of a simulated network run."""

from repro.control.ldp import LDPProcess
from repro.mpls.fec import PrefixFEC
from repro.mpls.router import RouterRole
from repro.net.network import MPLSNetwork
from repro.net.packet import IPv4Packet
from repro.net.topology import paper_figure1
from repro.obs import (
    ListSink,
    Telemetry,
    get_telemetry,
    set_telemetry,
    telemetry_session,
)


def _network():
    topo = paper_figure1(bandwidth_bps=10e6, delay_s=1e-3)
    net = MPLSNetwork(
        topo, roles={"ler-a": RouterRole.LER, "ler-b": RouterRole.LER}
    )
    net.attach_host("ler-b", "10.2.0.0/16")
    LDPProcess(topo, net.nodes).establish_fec(
        PrefixFEC("10.2.0.0/16"), egress="ler-b"
    )
    return net


class TestSwitch:
    def test_disabled_run_records_nothing(self):
        with telemetry_session(enabled=False) as tel:
            sink = tel.events.add_sink(ListSink())
            net = _network()
            net.inject("ler-a", IPv4Packet(src="10.1.0.5", dst="10.2.0.9"))
            net.run()
            assert net.delivered_count() == 1
            assert tel.events.emitted == 0
            assert len(sink) == 0
            # every pre-registered family is still empty
            assert all(len(f) == 0 for f in tel.registry.collect())

    def test_session_restores_previous_default(self):
        before = get_telemetry()
        with telemetry_session() as tel:
            assert get_telemetry() is tel
            assert tel.enabled
        assert get_telemetry() is before

    def test_set_telemetry_swaps_and_returns_previous(self):
        fresh = Telemetry()
        previous = set_telemetry(fresh)
        try:
            assert get_telemetry() is fresh
        finally:
            set_telemetry(previous)

    def test_reset_keeps_switch_position(self):
        tel = Telemetry(enabled=True)
        tel.packets.labels("n", "forward-ip").inc()
        tel.reset()
        assert tel.enabled
        assert tel.registry.value(
            "repro_packets_total", node="n", action="forward-ip"
        ) == 0


class TestInstrumentedRun:
    def test_packet_counters_match_node_stats(self):
        with telemetry_session() as tel:
            net = _network()
            for i in range(5):
                net.inject(
                    "ler-a", IPv4Packet(src="10.1.0.5", dst=f"10.2.0.{i + 1}")
                )
            net.run()
            assert net.delivered_count() == 5
            reg = tel.registry
            for name, node in net.nodes.items():
                recorded = sum(
                    child.value
                    for _, child in reg.get(
                        "repro_packets_total"
                    ).samples()
                    if _[0] == name and _[1] != "delivered"
                )
                assert recorded == node.stats.received

    def test_mpls_op_counters_mirror_opcounts(self):
        with telemetry_session() as tel:
            net = _network()
            net.inject("ler-a", IPv4Packet(src="10.1.0.5", dst="10.2.0.9"))
            net.run()
            reg = tel.registry
            for name, node in net.nodes.items():
                counts = node.engine.counts
                for attr, op in counts.REGISTRY_OPS.items():
                    assert reg.value(
                        "repro_mpls_ops_total", node=name, op=op
                    ) == getattr(counts, attr), (name, op)

    def test_link_counters_match_channels(self):
        with telemetry_session() as tel:
            net = _network()
            net.inject("ler-a", IPv4Packet(src="10.1.0.5", dst="10.2.0.9"))
            net.run()
            reg = tel.registry
            for link in net.links.values():
                for ch in (link.forward, link.reverse):
                    assert reg.value(
                        "repro_link_tx_packets_total",
                        src=ch.src.node,
                        dst=ch.dst.node,
                    ) == ch.tx_packets

    def test_drop_events_carry_reason(self):
        with telemetry_session() as tel:
            sink = tel.events.add_sink(ListSink())
            net = _network()
            net.inject("ler-a", IPv4Packet(src="10.1.0.5", dst="99.9.9.9"))
            net.run()
            drops = sink.by_kind("packet-dropped")
            assert len(drops) == 1
            assert "no FEC" in drops[0].reason
            assert tel.registry.value(
                "repro_drops_total",
                node="ler-a",
                reason="no FEC matches packet to 99.9.9.9",
            ) == 1

    def test_label_mapping_events_on_ldp_convergence(self):
        with telemetry_session() as tel:
            sink = tel.events.add_sink(ListSink())
            _network()
            installs = sink.by_kind("label-mapping-installed")
            # one install per router in the Figure 1 topology
            assert sorted(e.node for e in installs) == [
                "ler-a", "ler-b", "lsr-1", "lsr-2", "lsr-3"
            ]
            assert tel.events.emitted >= len(installs)
