"""Tests for the telemetry subsystem (repro.obs)."""
