"""Exporter tests: the golden Prometheus exposition and JSON snapshots."""

import json
from pathlib import Path

from repro.obs.export import snapshot, to_json, to_prometheus
from repro.obs.metrics import MetricsRegistry

GOLDEN = Path(__file__).parent / "golden_prometheus.txt"


def _demo_registry() -> MetricsRegistry:
    """A small, fully deterministic registry exercising every metric
    kind, multi-label children, escaping, and histogram buckets."""
    reg = MetricsRegistry()
    packets = reg.counter(
        "demo_packets_total", "Packets processed", ("node", "action")
    )
    packets.labels("ler-a", "forward-mpls").inc(3)
    packets.labels("ler-b", "forward-ip").inc()
    drops = reg.counter("demo_drops_total", "Drops by reason", ("reason",))
    drops.labels('label "16" missing\nat lsr-1').inc(2)
    depth = reg.gauge("demo_queue_depth", "Queue occupancy", ("link",))
    depth.labels("a->b").set(2.5)
    latency = reg.histogram(
        "demo_latency_seconds",
        "End-to-end latency",
        buckets=(0.1, 1.0),
    )
    for v in (0.05, 0.5, 5.0):
        latency.observe(v)
    return reg


class TestPrometheus:
    def test_matches_golden_file(self):
        assert to_prometheus(_demo_registry()) == GOLDEN.read_text()

    def test_deterministic(self):
        assert to_prometheus(_demo_registry()) == to_prometheus(
            _demo_registry()
        )

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""

    def test_unused_family_omitted(self):
        reg = MetricsRegistry()
        reg.counter("unused_total", "never incremented", ("n",))
        assert to_prometheus(reg) == ""

    def test_integer_values_have_no_decimal_point(self):
        reg = MetricsRegistry()
        reg.counter("n_total", "n").inc(7)
        assert "n_total 7\n" in to_prometheus(reg)


class TestPrometheusEdgeCases:
    """Escaping and histogram-shape corners of the exposition format."""

    def test_label_value_with_quotes(self):
        reg = MetricsRegistry()
        reg.counter("q_total", "q", ("who",)).labels('say "hi"').inc()
        assert 'who="say \\"hi\\""' in to_prometheus(reg)

    def test_label_value_with_backslashes(self):
        reg = MetricsRegistry()
        reg.counter("b_total", "b", ("path",)).labels("C:\\tmp\\x").inc()
        assert 'path="C:\\\\tmp\\\\x"' in to_prometheus(reg)

    def test_label_value_with_newlines(self):
        reg = MetricsRegistry()
        reg.counter("n_total", "n", ("msg",)).labels("two\nlines").inc()
        text = to_prometheus(reg)
        assert 'msg="two\\nlines"' in text
        # the literal newline must never leak into the sample line
        sample = [ln for ln in text.splitlines() if ln.startswith("n_total{")]
        assert len(sample) == 1

    def test_backslash_escaped_before_quote(self):
        # the order of replacements matters: escaping the quote first
        # would double-escape the backslash it introduces
        reg = MetricsRegistry()
        reg.counter("o_total", "o", ("v",)).labels('\\"').inc()
        assert 'v="\\\\\\""' in to_prometheus(reg)

    def test_empty_registry_snapshot_and_json(self):
        reg = MetricsRegistry()
        assert snapshot(reg) == {}
        assert json.loads(to_json(reg)) == {}

    def test_unobserved_histogram_omitted(self):
        reg = MetricsRegistry()
        reg.histogram("h_seconds", "h", buckets=(0.1, 1.0))
        # the family exists but has no samples: nothing renders
        assert to_prometheus(reg) == ""

    def test_histogram_bucket_ordering_and_cumulation(self):
        reg = MetricsRegistry()
        hist = reg.histogram(
            "lat_seconds", "lat", buckets=(0.01, 0.1, 1.0, 10.0)
        )
        for v in (0.005, 0.05, 0.5, 5.0, 50.0):
            hist.observe(v)
        text = to_prometheus(reg)
        bucket_lines = [
            ln for ln in text.splitlines()
            if ln.startswith("lat_seconds_bucket")
        ]
        bounds = [
            ln.split('le="')[1].split('"')[0] for ln in bucket_lines
        ]
        counts = [int(ln.rsplit(" ", 1)[1]) for ln in bucket_lines]
        # finite bounds ascend and +Inf comes last
        assert bounds == ["0.01", "0.1", "1", "10", "+Inf"]
        # cumulative counts are monotonically non-decreasing and the
        # +Inf bucket equals the observation count
        assert counts == sorted(counts)
        assert counts[-1] == 5
        assert "lat_seconds_count 5" in text

    def test_histogram_boundary_value_lands_in_its_bucket(self):
        # le is inclusive: an observation exactly on a bound counts there
        reg = MetricsRegistry()
        hist = reg.histogram("edge_seconds", "edge", buckets=(1.0, 2.0))
        hist.observe(1.0)
        text = to_prometheus(reg)
        assert 'edge_seconds_bucket{le="1"} 1' in text


class TestJSON:
    def test_snapshot_shape(self):
        snap = snapshot(_demo_registry())
        assert snap["demo_packets_total"]["type"] == "counter"
        samples = snap["demo_packets_total"]["samples"]
        assert {
            "labels": {"node": "ler-a", "action": "forward-mpls"},
            "value": 3.0,
        } in samples
        hist = snap["demo_latency_seconds"]["samples"][0]["value"]
        assert hist["buckets"] == [0.1, 1.0]
        assert hist["counts"] == [1, 1, 1]
        assert hist["count"] == 3

    def test_to_json_round_trips(self):
        parsed = json.loads(to_json(_demo_registry()))
        assert parsed == json.loads(to_json(_demo_registry()))
        assert parsed["demo_queue_depth"]["samples"][0]["value"] == 2.5
