"""Exporter tests: the golden Prometheus exposition and JSON snapshots."""

import json
from pathlib import Path

from repro.obs.export import snapshot, to_json, to_prometheus
from repro.obs.metrics import MetricsRegistry

GOLDEN = Path(__file__).parent / "golden_prometheus.txt"


def _demo_registry() -> MetricsRegistry:
    """A small, fully deterministic registry exercising every metric
    kind, multi-label children, escaping, and histogram buckets."""
    reg = MetricsRegistry()
    packets = reg.counter(
        "demo_packets_total", "Packets processed", ("node", "action")
    )
    packets.labels("ler-a", "forward-mpls").inc(3)
    packets.labels("ler-b", "forward-ip").inc()
    drops = reg.counter("demo_drops_total", "Drops by reason", ("reason",))
    drops.labels('label "16" missing\nat lsr-1').inc(2)
    depth = reg.gauge("demo_queue_depth", "Queue occupancy", ("link",))
    depth.labels("a->b").set(2.5)
    latency = reg.histogram(
        "demo_latency_seconds",
        "End-to-end latency",
        buckets=(0.1, 1.0),
    )
    for v in (0.05, 0.5, 5.0):
        latency.observe(v)
    return reg


class TestPrometheus:
    def test_matches_golden_file(self):
        assert to_prometheus(_demo_registry()) == GOLDEN.read_text()

    def test_deterministic(self):
        assert to_prometheus(_demo_registry()) == to_prometheus(
            _demo_registry()
        )

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""

    def test_unused_family_omitted(self):
        reg = MetricsRegistry()
        reg.counter("unused_total", "never incremented", ("n",))
        assert to_prometheus(reg) == ""

    def test_integer_values_have_no_decimal_point(self):
        reg = MetricsRegistry()
        reg.counter("n_total", "n").inc(7)
        assert "n_total 7\n" in to_prometheus(reg)


class TestJSON:
    def test_snapshot_shape(self):
        snap = snapshot(_demo_registry())
        assert snap["demo_packets_total"]["type"] == "counter"
        samples = snap["demo_packets_total"]["samples"]
        assert {
            "labels": {"node": "ler-a", "action": "forward-mpls"},
            "value": 3.0,
        } in samples
        hist = snap["demo_latency_seconds"]["samples"][0]["value"]
        assert hist["buckets"] == [0.1, 1.0]
        assert hist["counts"] == [1, 1, 1]
        assert hist["count"] == 3

    def test_to_json_round_trips(self):
        parsed = json.loads(to_json(_demo_registry()))
        assert parsed == json.loads(to_json(_demo_registry()))
        assert parsed["demo_queue_depth"]["samples"][0]["value"] == 2.5
