"""Lint: every metric family used anywhere under ``src/repro`` must be
pre-registered by ``Telemetry._register_core_families``.

The invariant (PRs 5, 6 and 8 each re-established it by hand): hot
paths only ever pay ``.labels()`` child lookups, never family
creation, and the Prometheus scrape schema is identical whether or not
a subsystem armed during the run -- which also means a family must
exist even on a ``Telemetry(enabled=False)`` instance.

This test walks the source tree for the ``<telemetry>.<family>.<verb>``
idiom and asserts each discovered attribute resolves to a registered
:class:`~repro.obs.metrics.MetricFamily` on a fresh disabled instance.
"""

import os
import re

from repro.obs.metrics import MetricFamily
from repro.obs.telemetry import Telemetry

SRC_ROOT = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "src", "repro"
)

#: ``tel.packets.labels(...)``, ``telemetry.hw_cycles.inc()``,
#: ``get_telemetry().drops.labels(...)`` and the ``self.telemetry.``
#: spelling -- any attribute a metric verb is called on.
_USAGE = re.compile(
    r"(?:\btel\b|\btelemetry\b|get_telemetry\(\))"
    r"\.([a-z_][a-z0-9_]*)\.(?:labels|inc|dec|set|observe)\("
)

#: Telemetry attributes that are not metric families.
_NON_METRIC_ATTRS = frozenset(
    {"enabled", "registry", "events", "spans", "flows", "topo"}
)


def _walk_usages():
    usages = {}
    for dirpath, _dirnames, filenames in os.walk(SRC_ROOT):
        for filename in filenames:
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            for match in _USAGE.finditer(text):
                attr = match.group(1)
                if attr not in _NON_METRIC_ATTRS:
                    usages.setdefault(attr, set()).add(
                        os.path.relpath(path, SRC_ROOT)
                    )
    return usages


def test_source_scan_finds_the_known_families():
    usages = _walk_usages()
    # sanity: the scan must actually see the tree (a broken regex or
    # path would vacuously pass the lint below)
    for expected in (
        "packets", "drops", "link_utilization", "hw_cycles",
        "attacks_detected", "topo_deltas",
    ):
        assert expected in usages, f"scan lost track of {expected}"
    assert len(usages) > 30


def test_every_emitted_family_is_registered_even_when_disabled():
    telemetry = Telemetry(enabled=False)
    problems = []
    for attr, files in sorted(_walk_usages().items()):
        family = getattr(telemetry, attr, None)
        if not isinstance(family, MetricFamily):
            problems.append(
                f"{attr} (used in {', '.join(sorted(files))}) is not a "
                "registered MetricFamily on Telemetry(enabled=False)"
            )
            continue
        if telemetry.registry.get(family.name) is not family:
            problems.append(
                f"{attr} -> {family.name} is not in the registry"
            )
    assert not problems, "\n".join(problems)


def test_registry_schema_is_identical_enabled_or_disabled():
    on = Telemetry(enabled=True).registry
    off = Telemetry(enabled=False).registry
    schema = lambda reg: [  # noqa: E731
        (f.name, f.kind, f.labelnames) for f in reg.collect()
    ]
    assert schema(on) == schema(off)
