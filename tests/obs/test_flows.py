"""Flow-accounting tests: telemetry-slot lifecycle, IPFIX expiry
edges (capacity-1 caches, zero-length flows), the matrix collector,
and byte-stability of seeded exports."""

import io
import json

import pytest

from repro.faults import Scenario, run_scenario
from repro.net.events import EventScheduler
from repro.obs import get_telemetry, to_prometheus
from repro.obs.events import JSONL_SCHEMA_VERSION
from repro.obs.flows import (
    END_ACTIVE,
    END_EVICTED,
    END_FINAL,
    END_IDLE,
    END_TEARDOWN,
    FlowAccountant,
    MatrixCollector,
    TrafficMatrix,
    flows_to_jsonl,
    matrices_to_json,
    render_flow_summary,
)
from repro.obs.telemetry import Telemetry, telemetry_session

#: Every flow/alert family must exist in a scrape even when accounting
#: never ran -- dashboards are schema-stable against feature flags.
FLOW_FAMILIES = (
    "repro_flow_records_active",
    "repro_flow_records_opened_total",
    "repro_flow_records_expired_total",
    "repro_flow_packets_total",
    "repro_flow_bytes_total",
    "repro_traffic_matrix_snapshots_total",
    "repro_link_utilization_ratio",
    "repro_alerts_active",
    "repro_alert_transitions_total",
)


class _Clock:
    """A hand-cranked clock for driving expiry deterministically."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def _accountant(**kw):
    tel = Telemetry(enabled=False)
    clock = _Clock()
    tel.events.clock = clock
    return FlowAccountant(telemetry=tel, **kw), tel, clock


class TestTelemetrySlot:
    def test_families_registered_even_when_accounting_disabled(self):
        with telemetry_session(enabled=False) as tel:
            assert tel.flows is None
            for family in FLOW_FAMILIES:
                assert family in tel.registry
            # registration is schema-stable, not sample-noisy: a scrape
            # with accounting off stays free of flow samples
            scrape = to_prometheus(tel.registry)
            assert "repro_flow_records_opened_total{" not in scrape

    def test_reset_clears_flows_slot_and_keeps_families(self):
        tel = Telemetry(enabled=False)
        accountant = FlowAccountant(telemetry=tel)
        accountant.record_packet("n0", 1, 500)
        assert tel.flows is accountant
        tel.reset()
        assert tel.flows is None
        for family in FLOW_FAMILIES:
            assert family in tel.registry
        # reset wiped the samples the accountant had published
        scrape = to_prometheus(tel.registry)
        assert 'repro_flow_records_opened_total{node="n0"}' not in scrape

    def test_attach_enables_and_detach_restores(self):
        tel = Telemetry(enabled=False)
        accountant = FlowAccountant(telemetry=tel)
        assert tel.enabled
        accountant.detach()
        assert not tel.enabled
        assert tel.flows is None
        # detaching someone else's accountant is a no-op on the slot
        first = FlowAccountant(telemetry=tel)
        second = FlowAccountant(telemetry=tel)
        first.detach()
        assert tel.flows is second

    def test_session_scoping_does_not_leak_accountant(self):
        with telemetry_session() as tel:
            accountant = FlowAccountant(telemetry=tel)
            assert get_telemetry().flows is accountant
        assert get_telemetry().flows is None

    def test_hooks_publish_metric_families(self):
        accountant, tel, _clock = _accountant(flow_fecs={1: "10.2.0.0/16"})
        accountant.record_packet("n0", 1, 500)
        accountant.record_packet("n0", 1, 500)
        assert tel.flow_packets.labels("n0", "10.2.0.0/16").value == 2
        assert tel.flow_bytes.labels("n0", "10.2.0.0/16").value == 1000
        assert tel.flow_opened.labels("n0").value == 1
        assert tel.flow_active.labels("n0").value == 1


class TestExpiryEdges:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            FlowAccountant(capacity=0, telemetry=Telemetry(enabled=False))
        with pytest.raises(ValueError):
            FlowAccountant(idle_timeout=0.0, telemetry=Telemetry(enabled=False))
        with pytest.raises(ValueError):
            FlowAccountant(
                active_timeout=-1.0, telemetry=Telemetry(enabled=False)
            )

    def test_capacity_one_cache_evicts_lru(self):
        accountant, tel, clock = _accountant(capacity=1)
        clock.now = 0.1
        accountant.record_packet("n0", 1, 500)
        clock.now = 0.2
        accountant.record_packet("n0", 2, 700)
        assert accountant.evictions == 1
        assert accountant.active_count() == 1
        victim = accountant.finished[0]
        assert victim.end_reason == END_EVICTED
        assert victim.end_time == victim.last_seen == pytest.approx(0.1)
        assert tel.flow_expired.labels("n0", END_EVICTED).value == 1
        # the survivor keeps accounting normally
        clock.now = 0.25
        accountant.record_packet("n0", 2, 300)
        assert accountant.active_records()[0].bytes == 1000

    def test_zero_length_flow_single_packet(self):
        accountant, _tel, clock = _accountant(idle_timeout=0.25)
        clock.now = 0.5
        accountant.record_packet("n0", 1, 64)
        clock.now = 10.0
        accountant.finalize()
        (record,) = accountant.finished
        assert record.packets == 1
        assert record.first_seen == record.last_seen == 0.5
        # the close time is capped at last_seen + idle_timeout, not
        # whenever finalize happened to run
        assert record.end_time == pytest.approx(0.75)
        assert record.end_reason == END_FINAL

    def test_zero_duration_when_finalized_immediately(self):
        accountant, _tel, clock = _accountant()
        clock.now = 0.5
        accountant.record_packet("n0", 1, 64)
        accountant.finalize()
        (record,) = accountant.finished
        assert record.end_time == 0.5
        assert record.duration == 0.0

    def test_finalize_is_idempotent(self):
        accountant, _tel, clock = _accountant()
        accountant.record_packet("n0", 1, 64)
        accountant.finalize()
        accountant.finalize()
        assert len(accountant.finished) == 1

    def test_idle_rotation_on_next_packet(self):
        accountant, _tel, clock = _accountant(idle_timeout=0.25)
        clock.now = 0.0
        accountant.record_packet("n0", 1, 500)
        clock.now = 1.0
        accountant.record_packet("n0", 1, 500)
        (stale,) = accountant.finished
        assert stale.end_reason == END_IDLE
        assert stale.end_time == 0.0  # closed at its last packet
        assert stale.seq == 0
        assert accountant.active_records()[0].seq == 1

    def test_active_timeout_rotation(self):
        accountant, _tel, clock = _accountant(
            active_timeout=0.25, idle_timeout=10.0
        )
        for clock.now in (0.0, 0.1, 0.2, 0.3):
            accountant.record_packet("n0", 1, 500)
        (rotated,) = accountant.finished
        assert rotated.end_reason == END_ACTIVE
        assert rotated.end_time == pytest.approx(0.3)
        assert rotated.packets == 3
        assert accountant.active_records()[0].packets == 1

    def test_expire_idle_sweep(self):
        accountant, _tel, clock = _accountant(idle_timeout=0.25)
        accountant.record_packet("n0", 1, 500)
        accountant.record_packet("n1", 2, 500)
        assert accountant.expire_idle(1.0) == 2
        assert accountant.active_count() == 0
        assert {r.end_reason for r in accountant.finished} == {END_IDLE}

    def test_close_fec_teardown(self):
        accountant, _tel, clock = _accountant(
            flow_fecs={1: "10.2.0.0/16", 2: "10.5.0.0/16"}
        )
        accountant.record_packet("n0", 1, 500)
        accountant.record_packet("n0", 2, 500)
        assert accountant.close_fec("10.2.0.0/16") == 1
        (torn,) = accountant.finished
        assert torn.end_reason == END_TEARDOWN
        assert torn.fec == "10.2.0.0/16"
        assert accountant.active_count() == 1

    def test_early_hw_cycles_are_parked_then_folded(self):
        accountant, _tel, clock = _accountant()
        accountant.record_hw_cycles("n0", 1, 14)
        accountant.record_packet("n0", 1, 500)
        accountant.record_hw_cycles("n0", 1, 6)
        (record,) = accountant.active_records()
        assert record.hw_cycles == 20

    def test_probe_flows_stay_out_of_the_demand_matrix(self):
        accountant, _tel, clock = _accountant()
        accountant.record_delivery("n2", -1, 64)
        assert accountant.drain_demands() == {}


class TestCollector:
    def test_ticks_snapshot_and_sweep(self):
        tel = Telemetry(enabled=False)
        scheduler = EventScheduler()
        tel.events.clock = lambda: scheduler.now
        accountant = FlowAccountant(telemetry=tel, idle_timeout=0.05)
        collector = MatrixCollector(
            accountant,
            scheduler,
            bandwidths={("a", "b"): 1e6},
            period=0.1,
            stop=0.35,
        )

        def traffic():
            accountant.record_packet("a", 1, 500)
            accountant.record_delivery("b", 1, 500)
            accountant.record_link_tx("a", "b", 500)

        scheduler.at(0.01, traffic)
        scheduler.run(until=1.0)
        assert len(collector.matrices) == 3  # 0.1, 0.2, 0.3; stop caps it
        first = collector.matrices[0]
        assert first.utilization[("a", "b")] == pytest.approx(
            500 * 8 / (1e6 * 0.1)
        )
        assert first.demands[("a", "b", "flow-1")] == (1, 500)
        # the idle sweep on the first tick closed the quiet record
        assert accountant.active_count() == 0
        assert accountant.finished[0].end_reason == END_IDLE
        # later intervals drained to empty
        assert collector.matrices[-1].demands == {}
        assert tel.registry.value("repro_traffic_matrix_snapshots_total") == 3
        assert collector.peak_utilization()[("a", "b")] == pytest.approx(0.04)

    def test_rejects_nonpositive_period(self):
        accountant, tel, _clock = _accountant()
        with pytest.raises(ValueError):
            MatrixCollector(accountant, EventScheduler(), period=0.0)


#: A short seeded scenario used for the byte-stability contract.
FLOW_SCENARIO = {
    "name": "flows-stability",
    "topology": {"kind": "paper_figure1",
                 "bandwidth_bps": 10e6, "delay_s": 1e-3},
    "control": "ldp",
    "duration": 0.6,
    "traffic": [
        {"ingress": "ler-a", "egress": "ler-b", "prefix": "10.2.0.0/16",
         "src": "10.1.0.5", "dst": "10.2.0.9",
         "rate_bps": 2e6, "packet_size": 500}
    ],
    "faults": [
        {"at": 0.2, "kind": "link-loss",
         "target": ["ler-a", "lsr-1"], "rate": 0.3, "heal_at": 0.4},
    ],
    "flows": {"active_timeout": 0.25, "idle_timeout": 0.1,
              "matrix_period": 0.1},
}


def _export(seed):
    with telemetry_session():
        report = run_scenario(Scenario.from_dict(FLOW_SCENARIO), seed=seed)
    stream = io.StringIO()
    flows_to_jsonl(
        report.flows.all_records(),
        stream,
        matrices=report.collector.matrices,
    )
    return stream.getvalue(), matrices_to_json(report.collector.matrices)


class TestExports:
    def test_jsonl_lines_carry_schema_version_and_type(self):
        accountant, _tel, clock = _accountant(flow_fecs={1: "10.2.0.0/16"})
        clock.now = 0.1
        accountant.record_packet("n0", 1, 500, labels=(16, 17))
        accountant.finalize()
        matrix = TrafficMatrix(
            time=0.1, interval=0.1,
            demands={("n0", "n2", "10.2.0.0/16"): (1, 500)},
            utilization={("n0", "n1"): 0.25},
        )
        stream = io.StringIO()
        written = flows_to_jsonl(
            accountant.all_records(), stream, matrices=[matrix],
            alerts=[{"transition": "raised", "rule": "r", "subject": "s",
                     "time": 0.1, "value": 1.0}],
        )
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert written == len(lines) == 3
        assert [line["type"] for line in lines] == ["flow", "matrix", "alert"]
        assert all(line["v"] == JSONL_SCHEMA_VERSION for line in lines)
        assert lines[0]["labels"] == [16, 17]
        assert lines[1]["demands"][0]["rate_bps"] == pytest.approx(40000.0)

    def test_two_seeded_runs_export_identical_bytes(self):
        first_jsonl, first_matrix = _export(seed=3)
        second_jsonl, second_matrix = _export(seed=3)
        assert first_jsonl == second_jsonl
        assert first_matrix == second_matrix
        assert first_jsonl  # non-trivial: records were actually written

    def test_seeded_matrix_export_has_demand(self):
        _jsonl, matrix_doc = _export(seed=3)
        doc = json.loads(matrix_doc)
        assert doc["v"] == JSONL_SCHEMA_VERSION
        demands = [d for m in doc["matrices"] for d in m["demands"]]
        assert any(
            d["ingress"] == "ler-a" and d["egress"] == "ler-b" for d in demands
        )

    def test_render_flow_summary_smoke(self):
        accountant, _tel, clock = _accountant(flow_fecs={1: "10.2.0.0/16"})
        accountant.record_packet("n0", 1, 500, labels=(16,))
        accountant.finalize()
        text = render_flow_summary(accountant)
        assert "flow accounting summary" in text
        assert "10.2.0.0/16" in text
