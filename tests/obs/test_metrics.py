"""Tests for the metrics registry: families, labels, histograms."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestPrimitives:
    def test_counter_increments(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge()
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12


class TestHistogram:
    def test_bucketing(self):
        h = Histogram(buckets=(1.0, 5.0, 10.0))
        for v in (0.5, 1.0, 3.0, 7.0, 100.0):
            h.observe(v)
        # per-bucket: <=1: {0.5, 1.0}, <=5: {3.0}, <=10: {7.0}, +Inf: {100}
        assert h.bucket_counts == [2, 1, 1, 1]
        assert h.cumulative_counts() == [2, 3, 4, 5]
        assert h.count == 5
        assert h.sum == pytest.approx(111.5)

    def test_cumulative_ends_at_count(self):
        h = Histogram(buckets=(1.0,))
        h.observe(0.1)
        h.observe(99.0)
        assert h.cumulative_counts()[-1] == h.count == 2

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(5.0, 1.0))

    def test_inf_bound_rejected(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, float("inf")))

    def test_needs_a_bound(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())


class TestFamiliesAndLabels:
    def test_children_per_label_tuple(self):
        reg = MetricsRegistry()
        fam = reg.counter("x_total", "x", ("node", "op"))
        fam.labels("a", "push").inc()
        fam.labels("a", "push").inc()
        fam.labels("b", "pop").inc()
        assert reg.value("x_total", node="a", op="push") == 2
        assert reg.value("x_total", node="b", op="pop") == 1
        assert len(fam) == 2

    def test_keyword_labels_match_positional(self):
        reg = MetricsRegistry()
        fam = reg.counter("x_total", "x", ("node", "op"))
        fam.labels("a", "push").inc()
        fam.labels(op="push", node="a").inc()
        assert reg.value("x_total", node="a", op="push") == 2

    def test_label_values_coerced_to_str(self):
        reg = MetricsRegistry()
        fam = reg.gauge("depth", "d", ("n",))
        fam.labels(1024).set(3)
        assert reg.value("depth", n="1024") == 3

    def test_wrong_label_count_rejected(self):
        fam = MetricsRegistry().counter("x_total", "x", ("a", "b"))
        with pytest.raises(ValueError):
            fam.labels("only-one")

    def test_unknown_keyword_rejected(self):
        fam = MetricsRegistry().counter("x_total", "x", ("a",))
        with pytest.raises(ValueError):
            fam.labels(a="1", nope="2")

    def test_unlabelled_family_acts_as_child(self):
        reg = MetricsRegistry()
        fam = reg.counter("events_total", "e")
        fam.inc(4)
        assert reg.value("events_total") == 4

    def test_labelled_family_refuses_solo_use(self):
        fam = MetricsRegistry().counter("x_total", "x", ("a",))
        with pytest.raises(ValueError):
            fam.inc()


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "x", ("n",))
        b = reg.counter("x_total", "x", ("n",))
        assert a is b

    def test_schema_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "x", ("n",))
        with pytest.raises(ValueError):
            reg.gauge("x_total", "x", ("n",))
        with pytest.raises(ValueError):
            reg.counter("x_total", "x", ("n", "m"))

    def test_collect_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("zzz_total", "z")
        reg.counter("aaa_total", "a")
        assert [f.name for f in reg.collect()] == ["aaa_total", "zzz_total"]

    def test_reset_clears_values(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "x").inc()
        reg.reset()
        assert reg.value("x_total") == 0
