"""Cycle-profiler tests: attribution, conservation, and the Table 6
integration (per-FSM-state totals equal the simulator's total cycles)."""

import pytest

from repro.analysis.cycles import measure_table6
from repro.hw.driver import ModifierDriver
from repro.mpls.label import LabelEntry, LabelOp
from repro.obs import CycleProfiler, ListSink, telemetry_session
from repro.obs.profiling import IDLE, ConservationError


def _profiled_driver(ib_depth=64, telemetry=None):
    drv = ModifierDriver(ib_depth=ib_depth)
    profiler = CycleProfiler(drv.sim, telemetry=telemetry)
    drv.attach_profiler(profiler)
    return drv, profiler


class TestAttribution:
    def test_operation_scoping_names_the_cycles(self):
        drv, profiler = _profiled_driver()
        drv.reset()
        drv.user_push(LabelEntry(label=100, ttl=9, s=1))
        drv.write_pair(2, 16, 500, LabelOp.SWAP)
        assert profiler.operation_cycles["RESET"] == 3
        assert profiler.operation_cycles["USER_PUSH"] == 3
        assert profiler.operation_cycles["WRITE_PAIR"] == 3
        assert IDLE not in profiler.operation_cycles

    def test_unscoped_cycles_land_in_idle(self):
        drv, profiler = _profiled_driver()
        drv.sim.step(5)
        assert profiler.operation_cycles == {IDLE: 5}

    def test_profiler_total_equals_driver_total(self):
        drv, profiler = _profiled_driver()
        drv.reset()
        for i in range(8):
            drv.write_pair(2, 16 + i, 500 + i, LabelOp.SWAP)
        drv.search(2, 0xFFFFF)
        assert profiler.cycles == drv.total_cycles

    def test_detach_stops_counting(self):
        drv, profiler = _profiled_driver()
        drv.reset()
        seen = profiler.cycles
        profiler.detach()
        drv.profiler = None
        drv.user_push(LabelEntry(label=1, ttl=9, s=1))
        assert profiler.cycles == seen

    def test_fsm_transitions_emitted_when_telemetry_enabled(self):
        with telemetry_session() as tel:
            sink = tel.events.add_sink(ListSink())
            drv, _ = _profiled_driver(telemetry=tel)
            drv.reset()
            drv.user_push(LabelEntry(label=100, ttl=9, s=1))
            transitions = sink.by_kind("fsm-transition")
            assert transitions, "expected FSM transition events"
            fsms = {t.fsm for t in transitions}
            assert any("main" in name for name in fsms)


class TestConservation:
    def test_per_fsm_state_totals_equal_observed_cycles(self):
        drv, profiler = _profiled_driver()
        drv.reset()
        for i in range(4):
            drv.write_pair(2, 16 + i, 500 + i, LabelOp.SWAP)
        drv.search(2, 0xFFFFF)
        drv.update()
        for per_state in profiler.fsm_state_cycles.values():
            assert sum(per_state.values()) == profiler.cycles
        assert sum(profiler.operation_cycles.values()) == profiler.cycles
        profiler.check_conservation()  # must not raise

    def test_violation_detected(self):
        drv, profiler = _profiled_driver()
        drv.reset()
        # corrupt one per-state tally: conservation must catch it
        fsm_name = next(iter(profiler.fsm_state_cycles))
        per_state = profiler.fsm_state_cycles[fsm_name]
        state = next(iter(per_state))
        per_state[state] += 1
        with pytest.raises(ConservationError):
            profiler.check_conservation()


class TestTable6Integration:
    """The profiler generalizes the static table in
    ``benchmarks/results/table6_cycles.txt``: measured per-operation
    cycles agree with the paper's formulas, and every simulated cycle
    is attributed."""

    def test_table6_measured_under_profiler(self):
        drv, profiler = _profiled_driver(ib_depth=128)
        rows = measure_table6(search_sizes=(1, 10), driver=drv)
        assert all(r.matches for r in rows), [
            (r.operation, r.expected, r.measured) for r in rows
        ]
        profiler.check_conservation()
        # conservation against the simulator: the driver counted every
        # cycle it stepped, and so did the profiler
        assert profiler.cycles == drv.total_cycles
        # the per-operation totals also reconcile with the transaction
        # log: RESET cycles come 3 at a time
        assert profiler.operation_cycles["RESET"] % 3 == 0

    def test_worst_case_composite_conserves(self):
        """The Section 4 scenario (reset + 3 pushes + fill + swap =
        6167 cycles) under the profiler."""
        drv, profiler = _profiled_driver(ib_depth=1024)
        drv.reset()
        for i, label in enumerate((100, 200, 300)):
            drv.user_push(LabelEntry(label=label, ttl=9, s=1 if i == 0 else 0))
        for i in range(1023):
            drv.write_pair(3, 1000 + i, 500, LabelOp.SWAP)
        drv.write_pair(3, 300, 999, LabelOp.SWAP)
        drv.update()
        assert profiler.cycles == drv.total_cycles == 6167
        profiler.check_conservation()
        for per_state in profiler.fsm_state_cycles.values():
            assert sum(per_state.values()) == 6167
        # the composite is dominated by the information-base fill
        assert profiler.operation_cycles["WRITE_PAIR"] == 3072
        assert profiler.operation_cycles["RESET"] == 3
        assert profiler.operation_cycles["USER_PUSH"] == 9
        assert profiler.operation_cycles["UPDATE"] == 3083

    def test_memory_port_activity_recorded(self):
        drv, profiler = _profiled_driver()
        drv.reset()
        for i in range(4):
            drv.write_pair(2, 16 + i, 500 + i, LabelOp.SWAP)
        drv.search(2, 0xFFFFF)
        writes = sum(profiler.memory_write_cycles.values())
        reads = sum(profiler.memory_read_cycles.values())
        assert writes >= 4    # at least one write strobe per pair
        assert reads >= 4     # the search walked the level
