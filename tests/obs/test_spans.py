"""Span-layer tests: sampling, trace folding, hardware phase spans,
fault annotation, and the byte-stable exporters."""

import io
import itertools
import json

import pytest

import repro.net.packet as packet_mod
import repro.net.traffic as traffic_mod
from repro.control.ldp import LDPProcess
from repro.mpls.fec import PrefixFEC
from repro.mpls.router import RouterRole
from repro.net.network import MPLSNetwork
from repro.net.packet import IPv4Packet
from repro.net.topology import paper_figure1
from repro.obs.events import (
    CLOCK_CYCLES,
    FaultHealed,
    FaultInjected,
    PacketDelivered,
    PacketDropped,
    PacketForwarded,
)
from repro.obs.spans import (
    KIND_HOP,
    KIND_HW_PHASE,
    KIND_PACKET,
    KIND_RTL,
    SpanRecorder,
    export_chrome_trace,
    quantile,
    render_summary,
    sample_hash,
    spans_to_jsonl,
    to_chrome_trace,
)
from repro.obs.telemetry import telemetry_session


def _forwarded(uid=1, flow_id=1, node="ler-a", time=None, **kw):
    event = PacketForwarded(
        node=node,
        uid=uid,
        flow_id=flow_id,
        action="forward-mpls",
        labels_in=kw.pop("labels_in", ()),
        labels_out=kw.pop("labels_out", (16,)),
        ttl_in=kw.pop("ttl_in", 64),
        next_hop=kw.pop("next_hop", "lsr-1"),
    )
    event.time = time
    return event


def _delivered(uid=1, flow_id=1, node="ler-b", time=None, latency=0.004):
    event = PacketDelivered(
        node=node, uid=uid, flow_id=flow_id, latency=latency
    )
    event.time = time
    return event


def _dropped(uid=1, flow_id=1, node="lsr-1", time=None):
    event = PacketDropped(
        node=node,
        uid=uid,
        flow_id=flow_id,
        reason="lsr-1: no next hop",
        labels_in=(16,),
        ttl_in=63,
    )
    event.time = time
    return event


class TestSampling:
    def test_hash_is_deterministic_and_bounded(self):
        values = [sample_hash(uid) for uid in range(1, 200)]
        assert values == [sample_hash(uid) for uid in range(1, 200)]
        assert all(0.0 <= v < 1.0 for v in values)
        # the multiplicative hash actually spreads: not all on one side
        assert any(v < 0.5 for v in values)
        assert any(v >= 0.5 for v in values)

    def test_rate_one_keeps_everything(self):
        with telemetry_session():
            rec = SpanRecorder(sample_rate=1.0)
            assert all(rec.wants(1, uid) for uid in range(1, 50))
            assert rec.sampled_out == 0

    def test_rate_zero_keeps_nothing(self):
        with telemetry_session():
            rec = SpanRecorder(sample_rate=0.0)
            assert not any(rec.wants(1, uid) for uid in range(1, 50))
            assert rec.sampled_out == 49

    def test_per_flow_override(self):
        with telemetry_session():
            rec = SpanRecorder(sample_rate=1.0, flow_rates={7: 0.0})
            assert rec.wants(1, 1)
            assert not rec.wants(7, 2)

    def test_decision_is_cached_per_uid(self):
        with telemetry_session():
            rec = SpanRecorder(sample_rate=0.0)
            assert not rec.wants(1, 5)
            assert not rec.wants(1, 5)
            assert rec.sampled_out == 1  # counted once, not per ask

    def test_invalid_rate_rejected(self):
        with telemetry_session():
            with pytest.raises(ValueError):
                SpanRecorder(sample_rate=1.5)

    def test_quantile_nearest_rank(self):
        values = [float(i) for i in range(1, 11)]
        assert quantile(values, 0.50) == 5.0
        assert quantile(values, 0.95) == 10.0
        assert quantile(values, 0.99) == 10.0
        assert quantile([3.0], 0.5) == 3.0


class TestFolding:
    def test_delivered_packet_builds_root_and_hops(self):
        with telemetry_session() as tel:
            rec = SpanRecorder(sample_rate=1.0)
            tel.events.emit(_forwarded(node="ler-a", time=0.001))
            tel.events.emit(_forwarded(node="lsr-1", time=0.002))
            tel.events.emit(_delivered(node="ler-b", time=0.005))
            rec.finalize()
            [trace] = rec.traces()
            assert trace.delivered and not trace.dropped
            assert trace.root.kind == KIND_PACKET
            assert trace.path == ["ler-a", "lsr-1"]
            # arriving at the next hop closes the previous hop span
            first, second = trace.hop_spans
            assert first.end == 0.002
            assert second.end == 0.005
            assert trace.root.end == 0.005
            assert trace.root.attributes["latency"] == 0.004
            assert all(
                h.parent_id == trace.root.span_id for h in trace.hop_spans
            )

    def test_drop_closes_the_trace_with_a_reason(self):
        with telemetry_session() as tel:
            rec = SpanRecorder(sample_rate=1.0)
            tel.events.emit(_forwarded(node="ler-a", time=0.001))
            tel.events.emit(_dropped(node="lsr-1", time=0.002))
            rec.finalize()
            [trace] = rec.traces()
            assert trace.dropped and not trace.delivered
            drop_hop = trace.hop_spans[-1]
            assert drop_hop.attributes["action"] == "discard"
            assert "no next hop" in drop_hop.attributes["reason"]
            assert trace.root.end == 0.002

    def test_node_filter_ignores_foreign_networks(self):
        with telemetry_session() as tel:
            rec = SpanRecorder(sample_rate=1.0, nodes={"ler-a"})
            tel.events.emit(_forwarded(node="ler-a", time=0.001))
            tel.events.emit(_forwarded(node="elsewhere", time=0.002))
            rec.finalize()
            [trace] = rec.traces()
            assert trace.path == ["ler-a"]

    def test_slo_histogram_sees_unsampled_deliveries(self):
        with telemetry_session() as tel:
            rec = SpanRecorder(
                sample_rate=0.0, flow_fecs={1: "10.2.0.0/16"}
            )
            for uid in range(1, 6):
                tel.events.emit(
                    _delivered(uid=uid, time=0.01, latency=0.001 * uid)
                )
            rec.finalize()
            assert rec.traces() == []  # nothing sampled...
            quants = rec.quantiles["10.2.0.0/16"]  # ...but SLO is full
            assert quants["p50"] == 0.003
            assert quants["p99"] == 0.005
            # and the gauges were published
            gauge = tel.fec_latency_quantiles.labels("10.2.0.0/16", "p99")
            assert gauge.value == 0.005

    def test_probe_flows_stay_out_of_the_slo(self):
        with telemetry_session():
            rec = SpanRecorder(sample_rate=1.0)
            rec.telemetry.events.emit(
                _delivered(uid=1, flow_id=-1000, time=0.01)
            )
            rec.finalize()
            assert rec.quantiles == {}

    def test_detach_restores_telemetry(self):
        with telemetry_session(enabled=False) as tel:
            rec = SpanRecorder(sample_rate=1.0, telemetry=tel)
            assert tel.enabled and tel.spans is rec
            rec.detach()
            assert tel.spans is None
            assert not tel.enabled
            tel.enable()
            tel.events.emit(_forwarded(time=0.001))
            assert rec.traces() == []  # sink is gone


class TestFaultAnnotations:
    def test_overlapping_trace_is_annotated(self):
        with telemetry_session() as tel:
            rec = SpanRecorder(sample_rate=1.0)
            tel.events.emit(_forwarded(node="lsr-1", time=0.010))
            fault = FaultInjected(
                fault="link-down", target="lsr-1<->lsr-2", detail="cut"
            )
            fault.time = 0.012
            tel.events.emit(fault)
            heal = FaultHealed(fault="link-down", target="lsr-1<->lsr-2")
            heal.time = 0.020
            tel.events.emit(heal)
            tel.events.emit(_delivered(node="ler-b", time=0.015))
            rec.finalize()
            [trace] = rec.traces()
            [note] = trace.root.annotations
            assert note.label == "fault:link-down"
            assert note.time == 0.012
            assert "lsr-1<->lsr-2 (cut)" == note.detail
            # the hop at the faulted node carries its own annotation
            [hop_note] = trace.hop_spans[0].annotations
            assert hop_note.label == "fault:link-down"

    def test_disjoint_trace_is_not_annotated(self):
        with telemetry_session() as tel:
            rec = SpanRecorder(sample_rate=1.0)
            tel.events.emit(_forwarded(time=0.001))
            tel.events.emit(_delivered(time=0.002))
            fault = FaultInjected(fault="link-down", target="x<->y")
            fault.time = 0.5
            tel.events.emit(fault)
            rec.finalize()
            [trace] = rec.traces()
            assert trace.root.annotations == []


def _hw_network():
    from repro.core.hwnode import HardwareLSRNode

    topo = paper_figure1(bandwidth_bps=10e6, delay_s=1e-3)
    roles = {"ler-a": RouterRole.LER, "ler-b": RouterRole.LER}
    net = MPLSNetwork(topo, roles, node_factory=HardwareLSRNode)
    net.attach_host("ler-b", "10.2.0.0/16")
    LDPProcess(topo, net.nodes).establish_fec(
        PrefixFEC("10.2.0.0/16"), egress="ler-b"
    )
    return net


class TestHardwareTrace:
    def test_three_layers_with_cycle_accounting(self):
        with telemetry_session():
            rec = SpanRecorder(sample_rate=1.0)
            net = _hw_network()
            for _ in range(2):
                net.inject(
                    "ler-a", IPv4Packet(src="10.1.0.5", dst="10.2.0.9")
                )
            net.run(until=0.1)
            rec.finalize()
            trace = next(t for t in rec.traces() if t.delivered)
            # layer 1: hops in sim time
            assert trace.path == ["ler-a", "lsr-1", "lsr-2", "ler-b"]
            # layer 2: hardware phases under the hops
            phases = trace.spans_of_kind(KIND_HW_PHASE)
            names = {s.name for s in phases}
            assert {"stack-load", "update", "stack-drain"} <= names
            hop_ids = {h.span_id for h in trace.hop_spans}
            assert all(s.parent_id in hop_ids for s in phases)
            assert all(s.clock_domain == CLOCK_CYCLES for s in phases)
            # layer 3: the RTL search/modify split nests under update
            rtl = trace.spans_of_kind(KIND_RTL)
            assert {s.name for s in rtl} == {"search", "modify"}
            update_ids = {
                s.span_id for s in phases if s.name == "update"
            }
            assert all(s.parent_id in update_ids for s in rtl)
            # a transit update is 14 cycles: search (hit) + modify
            update = next(
                s
                for s in phases
                if s.name == "update"
                and s.attributes["node"] == "lsr-1"
            )
            children = [s for s in rtl if s.parent_id == update.span_id]
            assert (
                sum(s.attributes["cycles"] for s in children)
                == update.attributes["cycles"]
            )
            # the cycle-to-time anchor places phases inside their hop
            hop = next(
                h
                for h in trace.hop_spans
                if h.attributes["node"] == "lsr-1"
            )
            assert hop.start <= update.start <= update.end

    def test_sampled_out_packet_emits_no_phase_spans(self):
        with telemetry_session():
            rec = SpanRecorder(sample_rate=0.0)
            net = _hw_network()
            net.inject(
                "ler-a", IPv4Packet(src="10.1.0.5", dst="10.2.0.9")
            )
            net.run(until=0.1)
            rec.finalize()
            assert rec.traces() == []
            assert net.delivered_count() == 1


def _run_scenario_fresh(sample_rate=1.0):
    """One seeded chaos run from pristine uid/flow counters, so two
    invocations produce identical packets end to end."""
    from repro.faults.chaos import run_scenario
    from repro.faults.scenario import Scenario

    packet_mod._packet_ids = itertools.count(1)
    traffic_mod._flow_counter = iter(range(1, 1 << 31))
    scenario = Scenario.from_dict(
        {
            "name": "span-export",
            "duration": 0.25,
            "hardware": True,
            "control": "ldp",
            "topology": {
                "kind": "paper_figure1",
                "bandwidth_bps": 10e6,
                "delay_s": 1e-3,
            },
            "traffic": [
                {
                    "ingress": "ler-a",
                    "egress": "ler-b",
                    "prefix": "10.2.0.0/16",
                    "src": "10.1.0.5",
                    "dst": "10.2.0.9",
                    "rate_bps": 1e6,
                    "packet_size": 500,
                }
            ],
            "faults": [
                {
                    "at": 0.08,
                    "kind": "link-down",
                    "target": ["lsr-1", "lsr-2"],
                    "heal_at": 0.15,
                }
            ],
            "oam": {"period": 0.05, "timeout": 0.05, "slo_rtt_s": 0.01},
        }
    )
    with telemetry_session():
        return run_scenario(scenario, seed=0, sample_rate=sample_rate)


class TestExport:
    def test_seeded_run_exports_byte_identical_traces(self):
        exports = []
        reports = []
        for _ in range(2):
            report = _run_scenario_fresh()
            out = io.StringIO()
            export_chrome_trace(report.recorder.traces(), out)
            exports.append(out.getvalue())
            reports.append(report.to_json())
        assert exports[0] == exports[1]
        assert reports[0] == reports[1]

    def test_chrome_trace_has_all_layers_and_a_fault_annotation(self):
        report = _run_scenario_fresh()
        doc = to_chrome_trace(report.recorder.traces())
        events = doc["traceEvents"]
        cats = {e["cat"] for e in events}
        assert {"packet", "hop", "hw-phase", "rtl", "annotation"} <= cats
        notes = [e for e in events if e["cat"] == "annotation"]
        assert any(e["name"] == "fault:link-down" for e in notes)
        assert all(e["ph"] == "i" and e["s"] == "p" for e in notes)
        # complete events carry microsecond timestamps and durations
        slices = [e for e in events if e["ph"] == "X"]
        assert slices and all(e["dur"] > 0 for e in slices)
        # every trace names its process for the Perfetto sidebar
        meta = [e for e in events if e["ph"] == "M"]
        assert len(meta) == len(report.recorder.traces())
        probe_names = [
            e["args"]["name"]
            for e in meta
            if e["args"]["name"].startswith("OAM probe")
        ]
        assert probe_names  # the monitor's probes are traces too
        # the report carries the oam and spans sections
        assert report["oam"]["fecs"][0]["probes"] > 0
        assert report["spans"]["spans_by_kind"]["rtl"] > 0

    def test_spans_jsonl_is_schema_v2(self):
        report = _run_scenario_fresh()
        out = io.StringIO()
        count = spans_to_jsonl(report.recorder.traces()[:3], out)
        lines = out.getvalue().splitlines()
        assert len(lines) == count > 0
        for line in lines:
            record = json.loads(line)
            assert record["v"] == 2
            assert record["type"] == "span"
            assert record["trace_id"].startswith("flow")

    def test_render_summary_mentions_the_key_counts(self):
        report = _run_scenario_fresh()
        text = render_summary(report.recorder, slowest=3)
        assert "span tracing summary" in text
        assert "slowest 3 traces" in text
        assert "10.2.0.0/16" in text

    def test_zero_rate_skips_trace_building(self):
        report = _run_scenario_fresh(sample_rate=0.0)
        assert report.recorder.traces() == []
        assert report.recorder.sampled_out > 0
        # the SLO quantiles still cover every delivered packet
        assert report["spans"]["fec_latency_quantiles"]
