"""Tests for the topology observatory (``repro.obs.topo``)."""

import json

import pytest

from repro.net.topology import paper_figure1
from repro.obs.events import (
    FaultHealed,
    FaultInjected,
    LabelMappingInstalled,
    LabelMappingWithdrawn,
    LSPEvent,
    SessionStateChange,
    StaleEntriesFlushed,
)
from repro.obs.telemetry import Telemetry, telemetry_session
from repro.obs.topo import TopologyObserver, TopologyView


def _observer(snapshot_every=64):
    return TopologyObserver(paper_figure1(), snapshot_every=snapshot_every)


def _emit(obs, event, at):
    event.time = at
    obs.consume(event)


class TestLiveView:
    def test_initial_view_has_every_node_and_link_up(self):
        obs = _observer()
        view = obs.live_view()
        assert view.data["nodes"] == {
            name: "up"
            for name in ("ler-a", "ler-b", "lsr-1", "lsr-2", "lsr-3")
        }
        assert all(s == "up" for s in view.data["links"].values())
        assert obs.version == 0

    def test_live_view_is_a_copy(self):
        obs = _observer()
        obs.live_view().data["nodes"]["ler-a"] = "down"
        assert obs.live_view().data["nodes"]["ler-a"] == "up"

    def test_install_and_withdraw_round_trip(self):
        obs = _observer()
        _emit(obs, LabelMappingInstalled(
            node="lsr-1", fec_id="10.2.0.0/16", label=17, next_hop="lsr-2"
        ), 0.1)
        assert obs.live_view().data["fecs"]["10.2.0.0/16"] == {
            "lsr-1": {"label": 17, "next_hop": "lsr-2"}
        }
        _emit(obs, LabelMappingWithdrawn(
            node="lsr-1", fec_id="10.2.0.0/16", label=17
        ), 0.2)
        assert "10.2.0.0/16" not in obs.live_view().data["fecs"]

    def test_identical_install_does_not_journal_a_delta(self):
        obs = _observer()
        event = LabelMappingInstalled(
            node="lsr-1", fec_id="f", label=17, next_hop="lsr-2"
        )
        _emit(obs, event, 0.1)
        version = obs.version
        again = LabelMappingInstalled(
            node="lsr-1", fec_id="f", label=17, next_hop="lsr-2"
        )
        _emit(obs, again, 0.2)
        assert obs.version == version

    def test_directed_adjacencies(self):
        obs = _observer()
        _emit(obs, SessionStateChange(
            node="lsr-1", peer="lsr-2", state="up"
        ), 0.0)
        assert obs.live_view().data["adjacencies"] == {"lsr-1>lsr-2": "up"}

    def test_data_plane_kinds_are_ignored(self):
        from repro.obs.events import PacketForwarded

        obs = _observer()
        _emit(obs, PacketForwarded(node="lsr-1", uid=1, flow_id=1), 0.5)
        assert obs.version == 0


class TestFaultModel:
    def test_link_down_and_heal(self):
        obs = _observer()
        _emit(obs, FaultInjected(
            fault="link-down", target="lsr-1-lsr-2"
        ), 0.2)
        view = obs.live_view().data
        assert view["links"]["lsr-1|lsr-2"] == "down"
        assert view["faults"] == {"link-down|lsr-1-lsr-2": 0.2}
        _emit(obs, FaultHealed(
            fault="link-down", target="lsr-1-lsr-2", downtime=0.1
        ), 0.3)
        view = obs.live_view().data
        assert view["links"]["lsr-1|lsr-2"] == "up"
        assert view["faults"] == {}

    def test_hyphenated_target_labels_split_against_node_set(self):
        obs = _observer()
        assert obs._split_link_target("ler-a-lsr-1") == ("ler-a", "lsr-1")
        assert obs._split_link_target("lsr-1-lsr-3") == ("lsr-1", "lsr-3")
        assert obs._split_link_target("nonsense") is None

    def test_loss_degrades_without_downing(self):
        obs = _observer()
        _emit(obs, FaultInjected(
            fault="link-loss", target="ler-a-lsr-1"
        ), 0.1)
        assert obs.live_view().data["links"]["ler-a|lsr-1"] == "degraded"
        _emit(obs, FaultHealed(
            fault="link-loss", target="ler-a-lsr-1", downtime=0.1
        ), 0.2)
        assert obs.live_view().data["links"]["ler-a|lsr-1"] == "up"

    def test_node_crash_downs_incident_links(self):
        obs = _observer()
        _emit(obs, FaultInjected(fault="node-crash", target="lsr-1"), 0.1)
        view = obs.live_view().data
        assert view["nodes"]["lsr-1"] == "down"
        assert view["links"]["ler-a|lsr-1"] == "down"
        assert view["links"]["lsr-1|lsr-2"] == "down"
        assert view["links"]["ler-b|lsr-2"] == "up"
        _emit(obs, FaultHealed(
            fault="node-crash", target="lsr-1", downtime=0.1
        ), 0.2)
        view = obs.live_view().data
        assert view["nodes"]["lsr-1"] == "up"
        assert view["links"]["ler-a|lsr-1"] == "up"

    def test_crash_then_heal_keeps_separately_failed_link_down(self):
        obs = _observer()
        _emit(obs, FaultInjected(
            fault="link-down", target="lsr-1-lsr-2"
        ), 0.1)
        _emit(obs, FaultInjected(fault="node-crash", target="lsr-1"), 0.2)
        _emit(obs, FaultHealed(
            fault="node-crash", target="lsr-1", downtime=0.1
        ), 0.3)
        view = obs.live_view().data
        # the link-down fault is still active: only the node heal
        # must not resurrect the link
        assert view["links"]["lsr-1|lsr-2"] == "down"
        assert view["links"]["ler-a|lsr-1"] == "up"

    def test_skipped_reinjection_mirrors_the_injector(self):
        obs = _observer()
        _emit(obs, FaultInjected(
            fault="link-down", target="lsr-1-lsr-2"
        ), 0.1)
        disruptions = len(obs.disruptions)
        # the injector emits FaultInjected even for a skipped fault
        # (link already down); the observer must not double-count it
        _emit(obs, FaultInjected(
            fault="link-down", target="lsr-1-lsr-2",
            detail="link already down",
        ), 0.15)
        assert len(obs.disruptions) == disruptions

    def test_node_restart_is_warm(self):
        obs = _observer()
        _emit(obs, FaultInjected(fault="node-restart", target="lsr-2"), 0.1)
        view = obs.live_view().data
        assert view["nodes"]["lsr-2"] == "restarting"
        # warm restart: the data plane keeps forwarding
        assert view["links"]["lsr-1|lsr-2"] == "up"


class TestLSPTracking:
    def test_setup_reroute_teardown(self):
        obs = _observer()
        _emit(obs, LSPEvent(
            name="t1", event="setup",
            detail="ler-a->lsr-1->lsr-2 @ 1e+06 bps",
        ), 0.0)
        assert obs.live_view().data["lsps"]["t1"] == {
            "state": "up", "route": "ler-a->lsr-1->lsr-2"
        }
        _emit(obs, LSPEvent(
            name="t1", event="preempt-reroute",
            detail="ler-a->lsr-1->lsr-3",
        ), 0.1)
        assert obs.live_view().data["lsps"]["t1"] == {
            "state": "up", "route": "ler-a->lsr-1->lsr-3"
        }
        _emit(obs, LSPEvent(name="t1", event="teardown"), 0.2)
        assert obs.live_view().data["lsps"]["t1"]["state"] == "down"

    def test_frr_switchover_and_revert(self):
        obs = _observer()
        _emit(obs, LSPEvent(
            name="p1", event="frr-switchover",
            detail="link lsr-1-lsr-2 failed; now on backup",
        ), 0.1)
        assert obs.live_view().data["frr"]["p1"] == "backup"
        _emit(obs, LSPEvent(
            name="p1", event="frr-revert", detail="back on primary"
        ), 0.2)
        assert obs.live_view().data["frr"]["p1"] == "primary"


class TestTimeTravel:
    def _scripted(self, snapshot_every=4):
        obs = _observer(snapshot_every=snapshot_every)
        for i in range(10):
            _emit(obs, LabelMappingInstalled(
                node="lsr-1", fec_id=f"fec-{i}", label=16 + i,
                next_hop="lsr-2",
            ), 0.1 * (i + 1))
        _emit(obs, FaultInjected(
            fault="link-down", target="lsr-1-lsr-2"
        ), 1.5)
        return obs

    def test_at_end_equals_live_view_byte_for_byte(self):
        obs = self._scripted()
        live = obs.live_view()
        replayed = obs.at(99.0)
        assert (
            json.dumps(replayed.data, sort_keys=True)
            == json.dumps(live.data, sort_keys=True)
        )

    def test_at_mid_run_reconstructs_the_moment(self):
        obs = self._scripted()
        view = obs.at(0.35)  # after fec-0..2, before fec-3
        assert set(view.data["fecs"]) == {"fec-0", "fec-1", "fec-2"}
        assert view.data["links"]["lsr-1|lsr-2"] == "up"

    def test_at_zero_is_the_initial_topology(self):
        obs = self._scripted()
        view = obs.at(0.0)
        assert view.data["fecs"] == {}
        assert all(s == "up" for s in view.data["links"].values())

    def test_snapshot_cadence(self):
        obs = self._scripted(snapshot_every=4)
        # the delta count is >= 12 (10 installs, fault ledger + link)
        assert len(obs.snapshots) == 1 + obs.version // 4

    def test_replay_from_every_snapshot_agrees(self):
        obs = self._scripted(snapshot_every=3)
        for t in (0.0, 0.15, 0.45, 0.95, 1.5, 2.0):
            replayed = obs.at(t)
            # replaying the full delta prefix from snapshot 0 must give
            # the same bytes as the bisected snapshot's shorter replay
            idx = len([x for x in obs._delta_times if x <= t])
            full = json.loads(json.dumps(obs.snapshots[0]["view"]))
            for delta in obs.deltas[:idx]:
                TopologyObserver._apply(full, delta)
            assert (
                json.dumps(replayed.data, sort_keys=True)
                == json.dumps(full, sort_keys=True)
            )

    def test_diff_lists_leaf_changes(self):
        obs = self._scripted()
        before, after = obs.at(1.4), obs.at(1.6)
        changes = before.diff(after)
        paths = {c["path"] for c in changes}
        assert "links.lsr-1|lsr-2" in paths
        assert "faults.link-down|lsr-1-lsr-2" in paths
        assert before.diff(before) == []


class TestHealthAndExports:
    def test_health_scores(self):
        obs = _observer()
        _emit(obs, FaultInjected(fault="node-crash", target="lsr-1"), 0.1)
        health = obs.live_view().health()
        assert health["nodes"]["lsr-1"] == 0.0
        assert health["nodes"]["ler-a"] == 1.0
        assert health["links"]["lsr-1|lsr-2"] == 0.0
        assert 0.0 < health["overall"] < 1.0

    def test_congested_link_scores_half(self):
        obs = _observer()
        obs.record_utilization(0.1, {("ler-a", "lsr-1"): 0.97})
        health = obs.live_view().health()
        assert health["links"]["ler-a|lsr-1"] == 0.5

    def test_to_json_is_stable(self):
        obs = _observer()
        assert obs.live_view().to_json() == obs.live_view().to_json()
        assert obs.live_view().to_json().endswith("\n")

    def test_to_dot_renders_states(self):
        obs = _observer()
        _emit(obs, FaultInjected(
            fault="link-down", target="lsr-1-lsr-2"
        ), 0.1)
        dot = obs.live_view().to_dot()
        assert dot.startswith("graph topology {")
        assert '"lsr-1" -- "lsr-2" [color=red]' in dot


class TestConvergence:
    def test_changes_attribute_to_the_latest_disruption(self):
        obs = _observer()
        _emit(obs, LabelMappingInstalled(
            node="lsr-1", fec_id="f", label=16, next_hop="lsr-2"
        ), 0.0)
        _emit(obs, FaultInjected(
            fault="link-down", target="lsr-1-lsr-2"
        ), 0.2)
        _emit(obs, LabelMappingWithdrawn(
            node="lsr-1", fec_id="f", label=16
        ), 0.201)
        _emit(obs, LabelMappingInstalled(
            node="lsr-1", fec_id="f", label=16, next_hop="lsr-3"
        ), 0.202)
        conv = obs.convergence()
        assert conv["initial"]["table_transactions"] == 1
        [disruption] = conv["disruptions"]
        assert disruption["kind"] == "link-down"
        assert disruption["table_transactions"] == 2
        assert disruption["settled_at"] == 0.202
        assert disruption["time_to_converge_s"] == pytest.approx(0.002)

    def test_stale_flush_counts_tables_without_view_change(self):
        obs = _observer()
        _emit(obs, FaultInjected(
            fault="node-restart", target="lsr-1"
        ), 0.1)
        version = obs.version
        _emit(obs, StaleEntriesFlushed(
            node="lsr-1", ilm_flushed=3, ftn_flushed=2
        ), 0.4)
        assert obs.version == version  # no delta: bindings unchanged
        [disruption] = obs.convergence()["disruptions"]
        assert disruption["table_transactions"] == 5

    def test_convergence_seconds_metric_published_on_finalize(self):
        tel = Telemetry(enabled=True)
        with telemetry_session(telemetry=tel):
            obs = _observer()
            obs.attach(tel)
            _emit(obs, FaultInjected(
                fault="link-down", target="lsr-1-lsr-2"
            ), 0.2)
            _emit(obs, LabelMappingInstalled(
                node="lsr-1", fec_id="f", label=16, next_hop="lsr-3"
            ), 0.25)
            obs.finalize()
            obs.detach()
            family = tel.registry.get("repro_topo_convergence_seconds")
            [(labels, child)] = family.samples()
            assert labels == ("link-down",)
            assert child.count == 1
            # the link is still down at finalize: health reflects it
            health = tel.registry.value("repro_topo_health")
            assert 0.0 < health < 1.0
            assert health == obs.live_view().health()["overall"]


class TestAttachment:
    def test_attach_consumes_emitted_events(self):
        tel = Telemetry(enabled=True)
        obs = _observer()
        obs.attach(tel)
        assert tel.topo is obs
        event = FaultInjected(fault="link-down", target="lsr-1-lsr-2")
        event.time = 0.1
        tel.events.emit(event)
        assert obs.live_view().data["links"]["lsr-1|lsr-2"] == "down"
        assert tel.registry.value("repro_topo_deltas_total") > 0
        obs.detach()
        assert tel.topo is None

    def test_double_attach_raises(self):
        tel = Telemetry(enabled=True)
        obs = _observer()
        obs.attach(tel)
        with pytest.raises(RuntimeError):
            obs.attach(tel)
        obs.detach()

    def test_snapshot_every_must_be_positive(self):
        with pytest.raises(ValueError):
            TopologyObserver(paper_figure1(), snapshot_every=0)


class TestUtilization:
    def test_mirrors_collector_ticks(self):
        obs = _observer()
        obs.record_utilization(0.1, {("ler-a", "lsr-1"): 0.25})
        assert obs.live_view().data["utilization"] == {
            "ler-a>lsr-1": 0.25
        }
        # a link with no traffic this interval keeps its last gauge
        # value (Prometheus semantics)
        obs.record_utilization(0.2, {("lsr-1", "lsr-2"): 0.5})
        assert obs.live_view().data["utilization"] == {
            "ler-a>lsr-1": 0.25,
            "lsr-1>lsr-2": 0.5,
        }
