"""Events-schema v2 back-compat across *all* exporters.

The schema bump (PR 4: explicit ``v`` and ``clock_domain``) was only
ever regression-tested on ``read_jsonl``.  These tests pin the
contract for every exporter that writes event-derived artifacts --
event JSONL, flow/matrix/alert JSONL, span JSONL, Chrome trace-event
JSON, Prometheus text -- so a future v3 bump has to confront each one
deliberately.
"""

import io
import json

from repro.obs.events import (
    CLOCK_CYCLES,
    CLOCK_SIM,
    JSONL_SCHEMA_VERSION,
    EventLog,
    FSMTransition,
    JSONLSink,
    LabelMappingWithdrawn,
    PacketForwarded,
    read_jsonl,
)
from repro.obs.export import to_prometheus
from repro.obs.flows import FlowRecord, TrafficMatrix, flows_to_jsonl
from repro.obs.spans import (
    Span,
    Trace,
    export_chrome_trace,
    spans_to_jsonl,
)
from repro.obs.telemetry import Telemetry


def _event_lines(*events):
    stream = io.StringIO()
    log = EventLog(clock=lambda: 0.5)
    log.add_sink(JSONLSink(stream))
    for event in events:
        log.emit(event)
    stream.seek(0)
    return [json.loads(line) for line in stream if line.strip()]


class TestEventJSONL:
    def test_v2_lines_carry_version_and_domain(self):
        sim = PacketForwarded(node="ler-a", uid=1, flow_id=7)
        hw = FSMTransition(fsm="modifier", src="IDLE", dst="SEARCH", cycle=42)
        hw.time = 42.0
        [sim_line, hw_line] = _event_lines(sim, hw)
        assert sim_line["v"] == JSONL_SCHEMA_VERSION == 2
        assert sim_line["clock_domain"] == CLOCK_SIM
        assert sim_line["time"] == 0.5  # stamped by the log clock
        assert hw_line["clock_domain"] == CLOCK_CYCLES
        assert hw_line["time"] == 42.0  # cycle stamps are preserved

    def test_new_event_kinds_ride_the_v2_schema(self):
        # an event type added after the schema bump must serialize
        # with the same envelope as the originals
        [line] = _event_lines(
            LabelMappingWithdrawn(node="lsr-1", fec_id="f", label=17)
        )
        assert line["v"] == 2
        assert line["kind"] == "label-mapping-withdrawn"
        assert line["clock_domain"] == CLOCK_SIM

    def test_controller_events_ride_the_v2_schema(self):
        # PR 10's centralized-controller events joined after the bump:
        # same envelope, sim clock domain, payload fields intact
        from repro.obs.events import ControllerFailover, ControllerReadopt

        [fail, readopt] = _event_lines(
            ControllerFailover(node="lsr-1", reason="crash",
                               delegated=True, orphaned_fecs=2,
                               detect_s=0.09),
            ControllerReadopt(node="lsr-1", reason="crash",
                              rewrites=3, restore_s=0.08),
        )
        assert fail["v"] == readopt["v"] == 2
        assert fail["kind"] == "controller-failover"
        assert readopt["kind"] == "controller-readopt"
        assert fail["clock_domain"] == CLOCK_SIM
        assert readopt["clock_domain"] == CLOCK_SIM
        assert fail["delegated"] is True and fail["orphaned_fecs"] == 2
        assert readopt["rewrites"] == 3

    def test_round_trip_preserves_both_domains(self):
        sim = PacketForwarded(node="ler-a", uid=1, flow_id=7)
        hw = FSMTransition(fsm="modifier", src="IDLE", dst="SEARCH", cycle=42)
        hw.time = 42.0
        stream = io.StringIO()
        log = EventLog(clock=lambda: 0.5)
        log.add_sink(JSONLSink(stream))
        log.emit(sim)
        log.emit(hw)
        stream.seek(0)
        records = list(read_jsonl(stream))
        assert [r["clock_domain"] for r in records] == [
            CLOCK_SIM, CLOCK_CYCLES
        ]
        assert [r["v"] for r in records] == [2, 2]

    def test_mixed_v1_and_v2_streams_read_coherently(self):
        mixed = "\n".join([
            json.dumps({"kind": "packet-forwarded", "time": 0.1}),
            json.dumps({
                "kind": "packet-forwarded", "time": 0.2,
                "v": 2, "clock_domain": CLOCK_SIM,
            }),
            json.dumps({"kind": "fsm-transition", "time": 42}),
        ])
        records = list(read_jsonl(io.StringIO(mixed)))
        assert [r["v"] for r in records] == [1, 2, 1]
        assert [r["clock_domain"] for r in records] == [
            CLOCK_SIM, CLOCK_SIM, CLOCK_CYCLES
        ]


class TestFlowsExporter:
    def test_every_line_type_carries_v2(self):
        record = FlowRecord(
            node="ler-a", flow_id=1, fec="10.2.0.0/16",
            packets=3, bytes=1500, first_seen=0.1, last_seen=0.4,
        )
        matrix = TrafficMatrix(
            time=0.5, interval=0.1,
            demands={("ler-a", "ler-b", "10.2.0.0/16"): (3, 1500)},
            utilization={("ler-a", "lsr-1"): 0.25},
        )
        alert = {"time": 0.5, "rule": "hot-link", "transition": "raised"}
        stream = io.StringIO()
        written = flows_to_jsonl([record], stream, [matrix], [alert])
        assert written == 3
        lines = [
            json.loads(line)
            for line in stream.getvalue().splitlines()
        ]
        assert [line["type"] for line in lines] == [
            "flow", "matrix", "alert"
        ]
        assert all(line["v"] == JSONL_SCHEMA_VERSION for line in lines)

    def test_flow_lines_are_self_describing(self):
        record = FlowRecord(
            node="ler-a", flow_id=1, fec="f", labels=(17, 20)
        )
        stream = io.StringIO()
        flows_to_jsonl([record], stream)
        [line] = [json.loads(x) for x in stream.getvalue().splitlines()]
        # a v2 consumer must find the flow identity without positional
        # knowledge
        for key in ("node", "flow_id", "fec", "labels", "v", "type"):
            assert key in line


class TestSpanExporters:
    def _trace(self):
        root = Span(
            span_id=1, parent_id=None, name="pkt", kind="packet",
            start=0.1, end=0.4,
        )
        hw = Span(
            span_id=2, parent_id=1, name="modify", kind="hw-phase",
            start=0.2, end=0.3, clock_domain=CLOCK_CYCLES,
            cycle_start=0, cycle_end=12,
        )
        return Trace(
            uid=1, flow_id=7, fec="10.2.0.0/16", root=root, spans=[hw],
            delivered=True,
        )

    def test_span_jsonl_lines_carry_v2_and_domain(self):
        stream = io.StringIO()
        written = spans_to_jsonl([self._trace()], stream)
        assert written == 2
        lines = [
            json.loads(line)
            for line in stream.getvalue().splitlines()
        ]
        assert all(line["v"] == 2 for line in lines)
        assert all(line["type"] == "span" for line in lines)
        assert {line["clock_domain"] for line in lines} == {
            CLOCK_SIM, CLOCK_CYCLES
        }

    def test_chrome_trace_is_one_valid_json_document(self):
        stream = io.StringIO()
        events = export_chrome_trace([self._trace()], stream)
        assert events > 0
        doc = json.loads(stream.getvalue())
        assert doc["displayTimeUnit"] == "ms"
        assert all("ph" in entry for entry in doc["traceEvents"])


class TestPrometheusExporter:
    def test_families_without_samples_are_omitted(self):
        # registering new families (as the topo observatory does) must
        # not change the exposition of runs that never touch them
        exposition = to_prometheus(Telemetry(enabled=True).registry)
        assert exposition == ""

    def test_schema_version_never_leaks_into_prometheus(self):
        telemetry = Telemetry(enabled=True)
        telemetry.topo_deltas.inc()
        exposition = to_prometheus(telemetry.registry)
        assert "repro_topo_deltas_total 1" in exposition
        assert "clock_domain" not in exposition
