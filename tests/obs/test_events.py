"""Tests for the structured event log: typed records and sinks."""

import io
import json

import pytest

from repro.obs.events import (
    CallbackSink,
    EventLog,
    JSONLSink,
    LabelOpApplied,
    ListSink,
    PacketDropped,
    PacketForwarded,
)


def _packet_event(uid=1):
    return PacketForwarded(
        node="ler-a",
        uid=uid,
        flow_id=7,
        action="forward-mpls",
        labels_in=(),
        labels_out=(16,),
        ttl_in=64,
        next_hop="lsr-1",
    )


class TestEventLog:
    def test_sinks_receive_events_in_emit_order(self):
        log = EventLog()
        first, second = ListSink(), ListSink()
        log.add_sink(first)
        log.add_sink(second)
        events = [_packet_event(uid=i) for i in range(5)]
        for e in events:
            log.emit(e)
        assert first.events == events
        assert second.events == events
        assert [e.uid for e in first.events] == [0, 1, 2, 3, 4]
        assert log.emitted == 5

    def test_sink_fanout_order_is_attachment_order(self):
        log = EventLog()
        seen = []
        log.add_sink(CallbackSink(lambda e: seen.append("a")))
        log.add_sink(CallbackSink(lambda e: seen.append("b")))
        log.emit(_packet_event())
        assert seen == ["a", "b"]

    def test_removed_sink_stops_receiving(self):
        log = EventLog()
        sink = log.add_sink(ListSink())
        log.emit(_packet_event())
        log.remove_sink(sink)
        log.emit(_packet_event())
        assert len(sink) == 1

    def test_clock_stamps_time(self):
        now = [0.25]
        log = EventLog(clock=lambda: now[0])
        sink = log.add_sink(ListSink())
        log.emit(_packet_event())
        now[0] = 0.75
        log.emit(_packet_event())
        assert [e.time for e in sink.events] == [0.25, 0.75]

    def test_preset_time_is_kept(self):
        log = EventLog(clock=lambda: 99.0)
        sink = log.add_sink(ListSink())
        event = _packet_event()
        event.time = 1.5
        log.emit(event)
        assert sink.events[0].time == 1.5

    def test_by_kind_filters(self):
        log = EventLog()
        sink = log.add_sink(ListSink())
        log.emit(_packet_event())
        log.emit(PacketDropped(node="lsr-1", uid=2, flow_id=7,
                               reason="no ILM entry"))
        log.emit(LabelOpApplied(node="lsr-1", op="swap",
                                label_in=16, label_out=17))
        assert len(sink.by_kind("packet-forwarded")) == 1
        assert len(sink.by_kind("packet-dropped")) == 1
        assert len(sink.by_kind("label-op")) == 1


class TestRecords:
    def test_as_dict_includes_kind_and_time(self):
        event = _packet_event()
        event.time = 0.5
        d = event.as_dict()
        assert d["kind"] == "packet-forwarded"
        assert d["time"] == 0.5
        assert d["node"] == "ler-a"
        assert d["next_hop"] == "lsr-1"

    def test_time_is_not_a_constructor_argument(self):
        with pytest.raises(TypeError):
            PacketForwarded(node="x", time=1.0)


class TestJSONLSink:
    def test_one_json_object_per_line(self):
        stream = io.StringIO()
        log = EventLog(clock=lambda: 0.125)
        log.add_sink(JSONLSink(stream))
        log.emit(_packet_event(uid=1))
        log.emit(PacketDropped(node="lsr-1", uid=2, flow_id=7, reason="ttl"))
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["kind"] == "packet-forwarded"
        assert first["uid"] == 1
        assert first["time"] == 0.125
        second = json.loads(lines[1])
        assert second["kind"] == "packet-dropped"
        assert second["reason"] == "ttl"

    def test_keys_sorted_for_stable_diffs(self):
        stream = io.StringIO()
        log = EventLog()
        log.add_sink(JSONLSink(stream))
        log.emit(_packet_event())
        line = stream.getvalue().strip()
        keys = list(json.loads(line))
        assert keys == sorted(keys)
