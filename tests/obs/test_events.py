"""Tests for the structured event log: typed records and sinks."""

import io
import json

import pytest

from repro.obs.events import (
    CLOCK_CYCLES,
    CLOCK_SIM,
    JSONL_SCHEMA_VERSION,
    CallbackSink,
    EventLog,
    FilterSink,
    FSMTransition,
    JSONLSink,
    LabelOpApplied,
    ListSink,
    PacketDropped,
    PacketForwarded,
    read_jsonl,
)


def _packet_event(uid=1):
    return PacketForwarded(
        node="ler-a",
        uid=uid,
        flow_id=7,
        action="forward-mpls",
        labels_in=(),
        labels_out=(16,),
        ttl_in=64,
        next_hop="lsr-1",
    )


class TestEventLog:
    def test_sinks_receive_events_in_emit_order(self):
        log = EventLog()
        first, second = ListSink(), ListSink()
        log.add_sink(first)
        log.add_sink(second)
        events = [_packet_event(uid=i) for i in range(5)]
        for e in events:
            log.emit(e)
        assert first.events == events
        assert second.events == events
        assert [e.uid for e in first.events] == [0, 1, 2, 3, 4]
        assert log.emitted == 5

    def test_sink_fanout_order_is_attachment_order(self):
        log = EventLog()
        seen = []
        log.add_sink(CallbackSink(lambda e: seen.append("a")))
        log.add_sink(CallbackSink(lambda e: seen.append("b")))
        log.emit(_packet_event())
        assert seen == ["a", "b"]

    def test_removed_sink_stops_receiving(self):
        log = EventLog()
        sink = log.add_sink(ListSink())
        log.emit(_packet_event())
        log.remove_sink(sink)
        log.emit(_packet_event())
        assert len(sink) == 1

    def test_clock_stamps_time(self):
        now = [0.25]
        log = EventLog(clock=lambda: now[0])
        sink = log.add_sink(ListSink())
        log.emit(_packet_event())
        now[0] = 0.75
        log.emit(_packet_event())
        assert [e.time for e in sink.events] == [0.25, 0.75]

    def test_preset_time_is_kept(self):
        log = EventLog(clock=lambda: 99.0)
        sink = log.add_sink(ListSink())
        event = _packet_event()
        event.time = 1.5
        log.emit(event)
        assert sink.events[0].time == 1.5

    def test_by_kind_filters(self):
        log = EventLog()
        sink = log.add_sink(ListSink())
        log.emit(_packet_event())
        log.emit(PacketDropped(node="lsr-1", uid=2, flow_id=7,
                               reason="no ILM entry"))
        log.emit(LabelOpApplied(node="lsr-1", op="swap",
                                label_in=16, label_out=17))
        assert len(sink.by_kind("packet-forwarded")) == 1
        assert len(sink.by_kind("packet-dropped")) == 1
        assert len(sink.by_kind("label-op")) == 1


class TestRecords:
    def test_as_dict_includes_kind_and_time(self):
        event = _packet_event()
        event.time = 0.5
        d = event.as_dict()
        assert d["kind"] == "packet-forwarded"
        assert d["time"] == 0.5
        assert d["node"] == "ler-a"
        assert d["next_hop"] == "lsr-1"

    def test_time_is_not_a_constructor_argument(self):
        with pytest.raises(TypeError):
            PacketForwarded(node="x", time=1.0)


class TestJSONLSink:
    def test_one_json_object_per_line(self):
        stream = io.StringIO()
        log = EventLog(clock=lambda: 0.125)
        log.add_sink(JSONLSink(stream))
        log.emit(_packet_event(uid=1))
        log.emit(PacketDropped(node="lsr-1", uid=2, flow_id=7, reason="ttl"))
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["kind"] == "packet-forwarded"
        assert first["uid"] == 1
        assert first["time"] == 0.125
        second = json.loads(lines[1])
        assert second["kind"] == "packet-dropped"
        assert second["reason"] == "ttl"

    def test_keys_sorted_for_stable_diffs(self):
        stream = io.StringIO()
        log = EventLog()
        log.add_sink(JSONLSink(stream))
        log.emit(_packet_event())
        line = stream.getvalue().strip()
        keys = list(json.loads(line))
        assert keys == sorted(keys)

    def test_lines_carry_schema_version_and_clock_domain(self):
        stream = io.StringIO()
        log = EventLog(clock=lambda: 0.5)
        log.add_sink(JSONLSink(stream))
        log.emit(_packet_event())
        record = json.loads(stream.getvalue())
        assert record["v"] == JSONL_SCHEMA_VERSION == 2
        assert record["clock_domain"] == CLOCK_SIM

    def test_cycles_domain_events_say_so(self):
        stream = io.StringIO()
        log = EventLog(clock=lambda: 0.5)
        log.add_sink(JSONLSink(stream))
        fsm = FSMTransition(fsm="search", src="IDLE", dst="COMPARE", cycle=12)
        fsm.time = 12.0  # an RTL cycle number, not seconds
        log.emit(fsm)
        record = json.loads(stream.getvalue())
        assert record["clock_domain"] == CLOCK_CYCLES
        # the scheduler clock must NOT overwrite a cycle timestamp
        assert record["time"] == 12.0


class TestReadJSONL:
    def test_reads_v2_lines_verbatim(self):
        stream = io.StringIO()
        log = EventLog(clock=lambda: 0.25)
        log.add_sink(JSONLSink(stream))
        log.emit(_packet_event())
        stream.seek(0)
        [record] = list(read_jsonl(stream))
        assert record["v"] == 2
        assert record["clock_domain"] == CLOCK_SIM

    def test_backfills_v1_lines(self):
        v1 = "\n".join([
            json.dumps({"kind": "packet-forwarded", "time": 0.1}),
            json.dumps({"kind": "fsm-transition", "time": 42}),
            "",  # blank lines are skipped
        ])
        records = list(read_jsonl(io.StringIO(v1)))
        assert [r["v"] for r in records] == [1, 1]
        assert records[0]["clock_domain"] == CLOCK_SIM
        assert records[1]["clock_domain"] == CLOCK_CYCLES


class TestFilterSink:
    def test_flow_allow_list(self):
        inner = ListSink()
        sink = FilterSink(inner, flows=[7])
        sink.write(_packet_event(uid=1))       # flow_id 7
        other = PacketDropped(node="x", uid=2, flow_id=9, reason="r")
        sink.write(other)
        assert [e.uid for e in inner.events] == [1]
        assert sink.passed == 1 and sink.filtered == 1

    def test_node_allow_list(self):
        inner = ListSink()
        sink = FilterSink(inner, nodes=["lsr-1"])
        sink.write(_packet_event())            # node ler-a
        sink.write(PacketDropped(node="lsr-1", uid=2, flow_id=7,
                                 reason="r"))
        assert [e.node for e in inner.events] == ["lsr-1"]

    def test_event_without_the_attribute_is_filtered(self):
        inner = ListSink()
        sink = FilterSink(inner, flows=[7])
        sink.write(FSMTransition(fsm="search", src="IDLE", dst="COMPARE", cycle=12))
        assert len(inner) == 0 and sink.filtered == 1

    def test_streams_through_no_buffering(self):
        stream = io.StringIO()
        sink = FilterSink(JSONLSink(stream), flows=[7])
        sink.write(_packet_event(uid=1))
        # the line is in the stream immediately, not at flush/close
        assert json.loads(stream.getvalue())["uid"] == 1
