"""Integration at scale: a larger random network, several FECs, mixed
traffic -- validating determinism and conservation at sizes beyond the
toy topologies."""

import random


from repro.control.ldp import LDPProcess
from repro.mpls.fec import PrefixFEC
from repro.mpls.router import RouterRole
from repro.net.network import MPLSNetwork
from repro.net.topology import Topology
from repro.net.traffic import CBRSource, PoissonSource


def random_topology(n_nodes=24, extra_links=20, seed=7):
    """A connected random graph: a spanning chain plus chords."""
    rng = random.Random(seed)
    topo = Topology()
    names = [f"r{i}" for i in range(n_nodes)]
    for name in names:
        topo.add_node(name)
    for a, b in zip(names, names[1:]):
        topo.add_link(a, b, bandwidth_bps=50e6, delay_s=0.2e-3)
    added = 0
    while added < extra_links:
        a, b = rng.sample(names, 2)
        if not topo.has_link(a, b):
            topo.add_link(a, b, bandwidth_bps=50e6, delay_s=0.2e-3)
            added += 1
    return topo, names


def build_network(seed=7):
    topo, names = random_topology(seed=seed)
    edges = {names[0], names[-1], names[len(names) // 2]}
    roles = {name: RouterRole.LER for name in edges}
    net = MPLSNetwork(topo, roles)
    ldp = LDPProcess(topo, net.nodes)
    hosts = {
        names[-1]: "10.100.0.0/16",
        names[len(names) // 2]: "10.200.0.0/16",
    }
    for egress, prefix in hosts.items():
        net.attach_host(egress, prefix)
        ldp.establish_fec(PrefixFEC(prefix), egress=egress)
    return net, names, hosts


def run_traffic(net, ingress, seed=1):
    flows = [
        CBRSource(net.scheduler, net.source_sink(ingress),
                  src="10.0.0.1", dst="10.100.0.9", rate_bps=2e6,
                  packet_size=700, stop=0.3, seed=seed),
        PoissonSource(net.scheduler, net.source_sink(ingress),
                      src="10.0.0.2", dst="10.200.0.9", rate_pps=300,
                      packet_size=300, stop=0.3, seed=seed + 1),
    ]
    for flow in flows:
        flow.begin()
    net.run(until=1.0)
    return flows


class TestScale:
    def test_conservation(self):
        """Every packet is delivered or accounted for as a drop."""
        net, names, _ = build_network()
        flows = run_traffic(net, names[0])
        sent = sum(f.sent for f in flows)
        assert sent > 100
        assert net.delivered_count() + net.drop_count() == sent

    def test_all_delivered_below_capacity(self):
        net, names, _ = build_network()
        flows = run_traffic(net, names[0])
        assert net.drop_count() == 0
        for flow in flows:
            assert net.delivered_count(flow.flow_id) == flow.sent

    def test_deterministic_across_runs(self):
        results = []
        for _ in range(2):
            net, names, _ = build_network()
            run_traffic(net, names[0])
            results.append(
                (
                    net.delivered_count(),
                    [round(l, 12) for l in net.latencies()[:50]],
                )
            )
        assert results[0] == results[1]

    def test_paths_follow_spf(self):
        """Transit load only appears on SPF paths."""
        from repro.control.routing import shortest_path

        net, names, hosts = build_network()
        flows = run_traffic(net, names[0])
        for egress in hosts:
            path = shortest_path(net.topology, names[0], egress)
            for node in path[1:-1]:
                assert net.nodes[node].stats.forwarded_mpls > 0

    def test_label_spaces_stay_disjoint_per_node(self):
        net, _, _ = build_network()
        for node in net.nodes.values():
            labels = node.ilm.labels()
            assert len(labels) == len(set(labels))
