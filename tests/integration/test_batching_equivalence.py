"""Differential equivalence: batched fast path vs the scalar oracle.

The batched data plane (per-node flow caches, see
``repro.mpls.fastpath``) must be *observably identical* to the scalar
per-packet path: same chaos report byte for byte, same flow-accounting
export, same final ILM/FTN tables.  Every example scenario -- chaos
with FRR switchovers, signaling storms, graceful restarts, hardware
scrubbing, flow alerting, span sampling -- runs twice under the same
seed, once per mode, and the artifacts are compared verbatim.

Any divergence here means the flow cache served a stale or
wrongly-rebuilt decision; the cache is a pure memoization layer and
has no license to change behavior.
"""

import io
import os

import pytest

from repro.faults.chaos import build_run, summarize
from repro.faults.scenario import Scenario
from repro.obs import ListSink, get_telemetry, telemetry_session
from repro.obs.flows import flows_to_jsonl

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "examples"
)

# (scenario file, seed): ten seeded differential cases covering every
# invalidation source -- LDP withdraws, FRR switchover, restart
# flushes, scrub repairs -- plus the signaling-storm stress case
CASES = [
    ("chaos_smoke.json", 0),
    ("chaos_smoke.json", 13),
    ("chaos_frr.json", 1),
    ("chaos_frr.json", 23),
    ("chaos_graceful_restart.json", 2),
    ("chaos_hw_scrub.json", 3),
    ("chaos_ldp_sessions.json", 4),
    ("chaos_signaling_storm.json", 5),
    ("chaos_flow_alerts.json", 6),
    ("chaos_spans.json", 7),
    # adversarial suite: quarantine-driven invalidation (the cross-FEC
    # audit removes a poisoned ILM entry mid-run) plus forged traffic
    ("chaos_security.json", 7),
    ("chaos_security.json", 11),
    # topology observatory armed: the convergence ledger is derived
    # from the event stream, so it must match across modes too
    ("chaos_topo.json", 17),
    # centralized PCE armed: crash + partition failover, delegation
    # fallback and the readopt resync transaction all ride the same
    # scheduler, so the controller section must match across modes
    ("chaos_controller.json", 19),
    ("chaos_controller.json", 29),
]


def _run(path, seed, batching):
    """One scenario run; returns (report json, flow export, tables).

    Mirrors ``run_scenario`` but keeps the live run object so the
    final forwarding tables and the flow-accounting export can be
    captured alongside the report.
    """
    scenario = Scenario.load(path)
    with telemetry_session():
        run = build_run(scenario, seed)
        if batching:
            run.network.enable_batching()
        tel = get_telemetry()
        sink = tel.events.add_sink(ListSink()) if tel.enabled else None
        try:
            processed = run.network.run(until=scenario.duration)
        finally:
            if sink is not None:
                tel.events.remove_sink(sink)
        run.injector.finalize()
        if run.security is not None:
            run.security.finalize()
        if run.flows is not None:
            run.flows.finalize()
            run.flows.detach()
        report = summarize(run, processed, sink)
    flows_export = None
    if run.flows is not None:
        buffer = io.StringIO()
        flows_to_jsonl(run.flows.all_records(), buffer)
        flows_export = buffer.getvalue()
    tables = {
        name: {
            "ilm": sorted(
                (label, repr(nhlfe)) for label, nhlfe in node.ilm
            ),
            "ftn": sorted(
                (repr(fec), repr(nhlfe)) for fec, nhlfe in node.ftn
            ),
        }
        for name, node in run.network.nodes.items()
    }
    return report.to_json(), flows_export, tables


@pytest.mark.parametrize("name,seed", CASES)
def test_batched_report_is_byte_identical(name, seed):
    path = os.path.join(EXAMPLES_DIR, name)
    scalar_report, scalar_flows, scalar_tables = _run(path, seed, False)
    batched_report, batched_flows, batched_tables = _run(path, seed, True)
    assert batched_report == scalar_report
    assert batched_flows == scalar_flows
    assert batched_tables == scalar_tables


def test_batched_mode_actually_caches():
    """Guard against the trivial pass: the equivalence above must be
    exercised by real cache hits, not a cache that never engages."""
    path = os.path.join(EXAMPLES_DIR, "chaos_smoke.json")
    scenario = Scenario.load(path)
    with telemetry_session():
        run = build_run(scenario, seed=0)
        run.network.enable_batching()
        run.network.run(until=scenario.duration)
    hits = 0
    for node in run.network.nodes.values():
        if getattr(node, "flow_cache", None) is not None:
            hits += node.flow_cache.hits
        hits += getattr(node, "hw_memo_hits", 0)
    assert hits > 0


def test_batched_mode_caches_on_hardware_nodes():
    """The hardware scenario must exercise the hardware memo."""
    path = os.path.join(EXAMPLES_DIR, "chaos_hw_scrub.json")
    scenario = Scenario.load(path)
    with telemetry_session():
        run = build_run(scenario, seed=3)
        run.network.enable_batching()
        run.network.run(until=scenario.duration)
    hits = sum(
        getattr(node, "hw_memo_hits", 0)
        for node in run.network.nodes.values()
    )
    assert hits > 0
