"""Integration: control plane + data plane network scenarios.

Failure injection, re-signalling, QoS under congestion, and tunnel
hierarchies -- each exercising several subpackages together.
"""


from repro.control.ldp import LDPProcess
from repro.control.rsvp_te import RSVPTESignaler
from repro.mpls.fec import CoSFEC, PrefixFEC
from repro.mpls.router import RouterRole
from repro.net.network import MPLSNetwork
from repro.net.packet import IPv4Packet
from repro.net.topology import paper_figure1
from repro.net.traffic import CBRSource, VoIPSource, DSCP_EF
from repro.qos.scheduler import PriorityScheduler


def _net(queue_factory=None, bandwidth=10e6):
    topo = paper_figure1(bandwidth_bps=bandwidth, delay_s=1e-3)
    roles = {"ler-a": RouterRole.LER, "ler-b": RouterRole.LER}
    kwargs = {"queue_factory": queue_factory} if queue_factory else {}
    net = MPLSNetwork(topo, roles, **kwargs)
    net.attach_host("ler-b", "10.2.0.0/16")
    return topo, net


class TestFailureRecovery:
    def test_link_failure_then_reconvergence(self):
        topo, net = _net()
        ldp = LDPProcess(topo, net.nodes)
        ldp.establish_fec(PrefixFEC("10.2.0.0/16"), egress="ler-b")

        first = CBRSource(net.scheduler, net.source_sink("ler-a"),
                          src="10.1.0.5", dst="10.2.0.9",
                          rate_bps=1e6, packet_size=500, stop=0.1)
        first.begin()
        net.run(until=0.2)
        delivered_before = net.delivered_count()
        assert delivered_before == first.sent

        # fail the primary core link and reconverge LDP
        topo.remove_link("lsr-1", "lsr-2")
        ldp.reconverge()

        second = CBRSource(net.scheduler, net.source_sink("ler-a"),
                           src="10.1.0.5", dst="10.2.0.9",
                           rate_bps=1e6, packet_size=500,
                           start=0.2, stop=0.3)
        second.begin()
        net.run(until=0.5)
        assert net.delivered_count() == delivered_before + second.sent
        # the detour carried the post-failure traffic
        assert net.nodes["lsr-3"].stats.forwarded_mpls == second.sent

    def test_stale_forwarding_state_drops_after_failure(self):
        """Without reconvergence, traffic for the broken path dies in
        the core: the LSP's next hop no longer has a link."""
        topo, net = _net()
        ldp = LDPProcess(topo, net.nodes)
        ldp.establish_fec(PrefixFEC("10.2.0.0/16"), egress="ler-b")
        net.fail_link("lsr-1", "lsr-2")
        net.inject("ler-a", IPv4Packet(src="10.1.0.5", dst="10.2.0.9"))
        net.run()
        assert net.delivered_count() == 0
        assert any("no link towards" in d.reason for d in net.drops)

    def test_rsvp_backup_path_protection(self):
        """Primary + node-disjoint backup; after failure the backup FEC
        steering restores service."""
        topo, net = _net()
        sig = RSVPTESignaler(topo, net.nodes)
        fec = PrefixFEC("10.2.0.0/16")
        sig.setup("primary", "ler-a", "ler-b",
                  explicit_route=["ler-a", "lsr-1", "lsr-2", "ler-b"],
                  fec=fec)
        net.inject("ler-a", IPv4Packet(src="10.1.0.5", dst="10.2.0.9"))
        net.run()
        assert net.delivered_count() == 1
        # fail lsr-2: tear down primary, steer onto a backup LSP
        sig.teardown("primary")
        sig.setup("backup", "ler-a", "ler-b",
                  explicit_route=["ler-a", "lsr-1", "lsr-3", "ler-b"],
                  fec=fec)
        net.inject("ler-a", IPv4Packet(src="10.1.0.5", dst="10.2.0.9"))
        net.run()
        assert net.delivered_count() == 2
        assert net.nodes["lsr-3"].stats.forwarded_mpls == 1


class TestQoSUnderCongestion:
    def _run_scenario(self, queue_factory):
        topo, net = _net(queue_factory=queue_factory, bandwidth=2e6)
        ldp = LDPProcess(topo, net.nodes)
        # EF traffic onto one FEC, best effort onto another; both ride
        # the same links -- the queue discipline decides who suffers.
        fec_voice = CoSFEC(PrefixFEC("10.2.0.0/16"), DSCP_EF)
        fec_data = PrefixFEC("10.2.0.0/16")
        ldp.establish_fec(fec_data, egress="ler-b")
        ldp.establish_fec(fec_voice, egress="ler-b")
        voice = VoIPSource(net.scheduler, net.source_sink("ler-a"),
                           src="10.1.0.5", dst="10.2.0.9", stop=1.0)
        # data deliberately overruns the 2 Mbps links
        data = CBRSource(net.scheduler, net.source_sink("ler-a"),
                         src="10.1.0.6", dst="10.2.0.10",
                         rate_bps=4e6, packet_size=1000, stop=1.0)
        voice.begin()
        data.begin()
        net.run(until=3.0)
        voice_delivered = net.delivered_count(voice.flow_id)
        return voice, data, net, voice_delivered

    def test_fifo_congestion_hurts_voice(self):
        voice, _, net, voice_delivered = self._run_scenario(None)
        assert voice_delivered < voice.sent  # voice loses packets too

    def test_priority_scheduler_protects_voice(self):
        voice, data, net, voice_delivered = self._run_scenario(
            lambda: PriorityScheduler(capacity_per_class=64)
        )
        assert voice_delivered == voice.sent
        # data still congested
        assert net.delivered_count(data.flow_id) < data.sent

    def test_voice_latency_bounded_under_priority(self):
        voice, _, net, _ = self._run_scenario(
            lambda: PriorityScheduler(capacity_per_class=64)
        )
        lat = net.latencies(voice.flow_id)
        # voice never waits behind more than one in-flight data packet
        # per hop: 3 hops x (1ms prop + ~0.7ms tx + <=4ms wait) << 20 ms
        assert max(lat) < 0.02
