"""Smoke-run every example script: examples must never rot.

Each example is executed in a subprocess with a generous timeout; a
non-zero exit (including any failed internal assertion) fails the
test.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "examples"
)

EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


def test_example_inventory():
    """The deliverable demands at least three runnable examples."""
    assert len(EXAMPLES) >= 3
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_clean(name):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, (
        f"{name} exited {result.returncode}\n"
        f"stdout:\n{result.stdout[-2000:]}\n"
        f"stderr:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{name} produced no output"
