"""Integration: a frame's full journey through a chain of embedded
MPLS routers, crossing layer-2 technologies.

This is the paper's Figure 2 end to end: a layer-2 network generates a
packet, the ingress LER labels it, LSRs swap the label, and the egress
LER strips it and hands it to a different layer-2 network (Ethernet in,
ATM out) -- all through the EmbeddedMPLS architecture with real frame
bytes at every hop.
"""

import pytest

from repro.core.architecture import EmbeddedMPLS
from repro.mpls.label import LabelOp
from repro.mpls.router import RouterRole
from repro.net.atm import reassemble_aal5, segment_aal5
from repro.net.ethernet import ETHERTYPE_IPV4, EthernetFrame
from repro.net.packet import IPv4Packet

DST = int.from_bytes(bytes([10, 2, 0, 9]), "big")


def build_chain(backend="model"):
    """ingress LER -> lsr1 -> lsr2 -> egress LER, labels 100->200->300."""
    ingress = EmbeddedMPLS(role=RouterRole.LER, backend=backend)
    ingress.install_ingress_route(DST, 100)
    lsr1 = EmbeddedMPLS(role=RouterRole.LSR, backend=backend)
    lsr1.install_swap(100, 200)
    lsr2 = EmbeddedMPLS(role=RouterRole.LSR, backend=backend)
    lsr2.install_swap(200, 300)
    egress = EmbeddedMPLS(role=RouterRole.LER, backend=backend)
    egress.install_pop(300)
    return ingress, lsr1, lsr2, egress


def original_packet(ttl=64):
    return IPv4Packet(
        src="10.1.0.5", dst="10.2.0.9", ttl=ttl, dscp=46,
        payload=b"voice sample bytes",
    )


def ethernet_in(packet):
    return EthernetFrame(
        dst_mac="02:00:00:00:00:01",
        src_mac="02:00:00:00:00:02",
        ethertype=ETHERTYPE_IPV4,
        payload=packet.serialize(),
    )


@pytest.mark.parametrize("backend", ["model", "rtl"])
class TestFullChain:
    def test_labels_along_the_path(self, backend):
        ingress, lsr1, lsr2, egress = build_chain(backend)
        r1 = ingress.process_frame(ethernet_in(original_packet()))
        assert [e.label for e in r1.stack_after] == [100]
        r2 = lsr1.process_frame(r1.frame)
        assert [e.label for e in r2.stack_after] == [200]
        r3 = lsr2.process_frame(r2.frame)
        assert [e.label for e in r3.stack_after] == [300]
        r4 = egress.process_frame(r3.frame)
        assert r4.stack_after == ()
        assert r4.performed == LabelOp.POP

    def test_payload_integrity_end_to_end(self, backend):
        ingress, lsr1, lsr2, egress = build_chain(backend)
        frame = ethernet_in(original_packet())
        for node in (ingress, lsr1, lsr2, egress):
            frame = node.process_frame(frame).frame
        inner = IPv4Packet.deserialize(frame.payload)
        assert inner.payload == b"voice sample bytes"
        assert inner.dst == "10.2.0.9"
        assert inner.dscp == 46

    def test_ttl_accounting(self, backend):
        """One decrement per router, uniform model."""
        ingress, lsr1, lsr2, egress = build_chain(backend)
        frame = ethernet_in(original_packet(ttl=64))
        for node in (ingress, lsr1, lsr2, egress):
            frame = node.process_frame(frame).frame
        inner = IPv4Packet.deserialize(frame.payload)
        assert inner.ttl == 64 - 4

    def test_cos_preserved_across_swaps(self, backend):
        """'The CoS bits are not modified by the embedded
        implementation of MPLS.'"""
        ingress, lsr1, lsr2, _ = build_chain(backend)
        r1 = ingress.process_frame(ethernet_in(original_packet()))
        assert r1.stack_after[0].cos == 5  # EF -> CoS 5
        r2 = lsr1.process_frame(r1.frame)
        r3 = lsr2.process_frame(r2.frame)
        assert r2.stack_after[0].cos == 5
        assert r3.stack_after[0].cos == 5


class TestCrossTechnology:
    def test_ethernet_in_atm_out(self):
        """The egress LER forwards into an ATM attachment circuit."""
        ingress, lsr1, lsr2, egress = build_chain()
        frame = ethernet_in(original_packet())
        for node in (ingress, lsr1, lsr2):
            frame = node.process_frame(frame).frame
        # re-frame the labelled packet onto ATM before the egress LER
        labelled_bytes = frame.payload
        cells = segment_aal5(labelled_bytes, vpi=2, vci=99)
        result = egress.process_frame(cells)
        assert isinstance(result.frame, list)
        pdu = reassemble_aal5(result.frame)
        inner = IPv4Packet.deserialize(pdu.payload)
        assert inner.payload == b"voice sample bytes"

    def test_expired_packet_never_reaches_egress(self):
        ingress, lsr1, _, _ = build_chain()
        r1 = ingress.process_frame(ethernet_in(original_packet(ttl=2)))
        assert not r1.discarded  # ttl 2 -> 1 at ingress
        r2 = lsr1.process_frame(r1.frame)
        assert r2.discarded  # 1 -> would be 0 at the first LSR
