"""Integration: every layer-2 technology through the full chain.

The paper's Figure 1 shows LERs bridging Ethernet, ATM and Frame Relay
into one MPLS core.  This matrix drives a packet through
ingress LER -> LSR -> egress LER for every (ingress tech, egress tech)
combination, with genuine frame bytes at both edges.
"""

import pytest

from repro.core.architecture import EmbeddedMPLS
from repro.core.packet_processing import IngressPacketProcessor
from repro.mpls.router import RouterRole
from repro.net.atm import reassemble_aal5, segment_aal5
from repro.net.ethernet import ETHERTYPE_IPV4, ETHERTYPE_MPLS, EthernetFrame
from repro.net.frame_relay import FrameRelayFrame
from repro.net.packet import IPv4Packet

DST = int.from_bytes(bytes([10, 2, 0, 9]), "big")
TECHS = ("ethernet", "atm", "frame-relay")


def make_ingress_frame(tech, payload_bytes):
    if tech == "ethernet":
        return EthernetFrame(
            dst_mac="02:00:00:00:00:01",
            src_mac="02:00:00:00:00:02",
            ethertype=ETHERTYPE_IPV4,
            payload=payload_bytes,
        )
    if tech == "atm":
        return segment_aal5(payload_bytes, vpi=1, vci=42)
    return FrameRelayFrame(dlci=77, payload=payload_bytes)


def reframe(frame, tech):
    """Move a labelled payload onto a different layer-2 technology
    (what the far-side attachment circuit would carry)."""
    if isinstance(frame, EthernetFrame):
        payload = frame.payload
    elif isinstance(frame, list):
        payload = reassemble_aal5(frame).payload
    else:
        payload = frame.payload
    if tech == "ethernet":
        return EthernetFrame(
            dst_mac="02:00:00:00:00:03",
            src_mac="02:00:00:00:00:04",
            ethertype=ETHERTYPE_MPLS,
            payload=payload,
        )
    if tech == "atm":
        return segment_aal5(payload, vpi=9, vci=99)
    return FrameRelayFrame(dlci=99, payload=payload)


def extract_ip(frame):
    if isinstance(frame, EthernetFrame):
        return IPv4Packet.deserialize(frame.payload)
    if isinstance(frame, list):
        return IPv4Packet.deserialize(reassemble_aal5(frame).payload)
    return IPv4Packet.deserialize(frame.payload)


@pytest.mark.parametrize("ingress_tech", TECHS)
@pytest.mark.parametrize("egress_tech", TECHS)
def test_cross_technology_journey(ingress_tech, egress_tech):
    packet = IPv4Packet(src="10.1.0.5", dst="10.2.0.9", ttl=32,
                        payload=b"cross-tech payload")
    ingress = EmbeddedMPLS(role=RouterRole.LER)
    ingress.install_ingress_route(DST, 100)
    lsr = EmbeddedMPLS(role=RouterRole.LSR)
    lsr.install_swap(100, 200)
    egress = EmbeddedMPLS(role=RouterRole.LER)
    egress.install_pop(200)

    frame = make_ingress_frame(ingress_tech, packet.serialize())
    labelled = ingress.process_frame(frame)
    assert not labelled.discarded
    swapped = lsr.process_frame(labelled.frame)
    assert [e.label for e in swapped.stack_after] == [200]
    # the last segment hands the labelled packet to the egress LER on
    # its own attachment technology
    final = egress.process_frame(reframe(swapped.frame, egress_tech))
    assert final.stack_after == ()

    inner = extract_ip(final.frame)
    assert inner.payload == b"cross-tech payload"
    assert str(inner.dst) == "10.2.0.9"
    assert inner.ttl == 32 - 3  # one decrement per router


@pytest.mark.parametrize("tech", TECHS)
def test_ingress_parses_every_technology(tech):
    packet = IPv4Packet(src="10.1.0.5", dst="10.2.0.9")
    parsed = IngressPacketProcessor().parse(
        make_ingress_frame(tech, packet.serialize())
    )
    assert parsed.packet_identifier == DST
    assert parsed.stack.is_empty
