"""Differential verification of the topology observatory.

The :class:`~repro.obs.topo.TopologyObserver` builds its link-state
database purely from the telemetry event stream; this suite pins the
three contracts that make the database trustworthy:

* **ground truth** -- at end of run the observed view equals the actual
  network/table state, for every example scenario, in both scalar and
  batched modes (``TopologyObserver.verify`` returns no mismatches);
* **time travel** -- reconstructing the end-of-run view from snapshot +
  deltas is byte-identical to the recorded live view;
* **byte stability** -- the ``convergence`` report section of two
  same-seed runs is identical, and scenarios *without* a ``topo`` key
  produce reports without the section (pre-existing reports stay
  byte-identical).
"""

import glob
import json
import os

import pytest

from repro.faults.chaos import run_scenario
from repro.faults.scenario import Scenario
from repro.obs import telemetry_session

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "examples"
)

EXAMPLES = sorted(
    os.path.basename(p)
    for p in glob.glob(os.path.join(EXAMPLES_DIR, "chaos_*.json"))
)


def _load_with_topo(name):
    raw = json.load(open(os.path.join(EXAMPLES_DIR, name)))
    raw["topo"] = {"snapshot_every": 16}
    return Scenario.from_dict(raw)


def test_every_example_is_covered():
    # the glob above must keep tracking the example set as it grows
    assert "chaos_topo.json" in EXAMPLES
    assert len(EXAMPLES) >= 10


@pytest.mark.parametrize("name", EXAMPLES)
@pytest.mark.parametrize("batching", [False, True])
def test_observed_view_matches_ground_truth(name, batching):
    scenario = _load_with_topo(name)
    with telemetry_session():
        report = run_scenario(scenario, seed=3, batching=batching)
    conv = report["convergence"]
    assert conv["mismatches"] == []
    assert conv["verified"] is True
    assert conv["deltas"] > 0


@pytest.mark.parametrize("name", EXAMPLES)
def test_time_travel_reconstruction_is_byte_identical(name):
    scenario = _load_with_topo(name)
    with telemetry_session():
        report = run_scenario(scenario, seed=5)
    observer = report.topo
    live = observer.live_view()
    replayed = observer.at(scenario.duration + 1.0)
    # full serialization, time stamp and derived health included
    assert replayed.to_json() == live.to_json()


def test_mid_run_reconstruction_round_trips_through_snapshots():
    scenario = _load_with_topo("chaos_smoke.json")
    with telemetry_session():
        report = run_scenario(scenario, seed=3)
    observer = report.topo
    assert len(observer.snapshots) > 1  # cadence actually exercised
    # every delta timestamp is a queryable instant; spot-check a spread
    times = observer._delta_times
    for t in (times[0], times[len(times) // 2], times[-1], 0.0):
        view = observer.at(t)
        assert isinstance(view.data, dict)
        # the view at any instant is valid JSON with the full shape
        assert set(view.data) == {
            "nodes", "links", "adjacencies", "fecs", "lsps", "frr",
            "faults", "attacks", "utilization",
        }


@pytest.mark.parametrize(
    "name", ["chaos_topo.json", "chaos_ldp_sessions.json", "chaos_frr.json"]
)
def test_convergence_section_is_byte_stable(name):
    scenario = _load_with_topo(name)
    with telemetry_session():
        first = run_scenario(scenario, seed=9)
    with telemetry_session():
        second = run_scenario(_load_with_topo(name), seed=9)
    assert (
        json.dumps(first["convergence"], sort_keys=True)
        == json.dumps(second["convergence"], sort_keys=True)
    )
    assert first.to_json() == second.to_json()


def test_reports_without_topo_key_are_untouched():
    scenario = Scenario.load(
        os.path.join(EXAMPLES_DIR, "chaos_smoke.json")
    )
    with telemetry_session() as tel:
        report = run_scenario(scenario, seed=3)
        assert tel.topo is None
    assert "convergence" not in report.data
    assert report.topo is None
    # the gated withdraw event must not leak into the events section
    assert "label-mapping-withdrawn" not in report.data.get("events", {})


def test_observer_not_armed_when_telemetry_disabled():
    scenario = _load_with_topo("chaos_smoke.json")
    with telemetry_session(enabled=False):
        report = run_scenario(scenario, seed=3)
    assert report.topo is None
    assert "convergence" not in report.data


def test_convergence_accounts_every_disruption():
    scenario = _load_with_topo("chaos_smoke.json")
    with telemetry_session():
        report = run_scenario(scenario, seed=3)
    conv = report["convergence"]
    applied = [f for f in report["faults"] if not f["skipped"]]
    injects = [d for d in conv["disruptions"] if d["phase"] == "inject"]
    assert len(injects) == len(applied)
    # scalar LDP reconverges on every detected change: each link fault
    # produces table transactions attributed to it
    for disruption in injects:
        if disruption["kind"] == "link-down":
            assert disruption["table_transactions"] > 0
            assert disruption["time_to_converge_s"] is not None
