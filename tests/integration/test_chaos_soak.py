"""Chaos soak: a long randomized fault schedule on a multi-LSR ring.

For several distinct seeds, an 8-router ring with two opposing flows
absorbs a randomized schedule of link failures and node crashes (all
healing before the horizon) while converged LDP reconverges after each
detected change.  The soak asserts the safety and liveness properties
the fault subsystem promises:

* **no packet crosses a down link** -- every link arrival happens while
  the injector's timeline says the adjacency was up (the epoch
  invalidation in :mod:`repro.net.link` is what makes this hold for
  packets in flight when the link dies);
* **stale forwarding is bounded by the detection delay** -- a node may
  keep forwarding towards a dead neighbour only until the control
  plane notices (those packets are dropped at the missing adjacency,
  never delivered);
* **the network reconverges** -- after the last heal settles, both
  flows deliver again and all failed state is restored.
"""

import pytest

from repro.faults import Scenario
from repro.faults.chaos import build_run
from repro.obs import ListSink, telemetry_session

DETECTION = 1e-3
DURATION = 3.0

SOAK = {
    "name": "soak",
    "topology": {"kind": "ring", "n": 8,
                 "bandwidth_bps": 10e6, "delay_s": 1e-3},
    "edges": ["n0", "n4"],
    "control": "ldp",
    "duration": DURATION,
    "detection_delay_s": DETECTION,
    "traffic": [
        {"ingress": "n0", "egress": "n4", "prefix": "10.4.0.0/16",
         "src": "10.0.0.5", "dst": "10.4.0.9",
         "rate_bps": 1.5e6, "packet_size": 500, "stop": 2.8},
        {"ingress": "n4", "egress": "n0", "prefix": "10.0.0.0/16",
         "src": "10.4.0.5", "dst": "10.0.0.9",
         "rate_bps": 1.5e6, "packet_size": 500, "stop": 2.8},
    ],
    "random_faults": {
        "count": 8,
        "kinds": ["link-down", "node-crash"],
        "window": [0.2, 2.2],
        "mean_outage": 0.08,
    },
}

SEEDS = [7, 11, 23]


def _soak(seed):
    """Run the soak once, recording every link arrival and every
    forwarding decision."""
    arrivals = []

    with telemetry_session() as tel:
        sink = tel.events.add_sink(ListSink())
        run = build_run(Scenario.from_dict(SOAK), seed=seed)
        for (a, b), link in run.network.links.items():
            for channel, src, dst in (
                (link.forward, a, b),
                (link.reverse, b, a),
            ):
                original = channel.on_deliver

                def wrapped(
                    iface, packet, _orig=original, _a=src, _b=dst,
                    _net=run.network,
                ):
                    arrivals.append((_net.scheduler.now, _a, _b))
                    _orig(iface, packet)

                channel.on_deliver = wrapped
        run.network.run(until=DURATION)
        forwarded = [
            e for e in sink.events if e.kind == "packet-forwarded"
        ]
    return run, arrivals, forwarded


@pytest.mark.parametrize("seed", SEEDS)
class TestChaosSoak:
    def test_soak(self, seed):
        run, arrivals, forwarded = _soak(seed)
        injector = run.injector
        network = run.network

        # the schedule actually exercised the network
        executed = [r for r in injector.records if not r.skipped]
        assert len(executed) >= 4, "soak schedule degenerated"

        # -- safety: nothing ever crossed a down link -------------------
        assert arrivals, "no traffic flowed at all"
        for when, a, b in arrivals:
            assert injector.link_was_up(a, b, when), (
                f"seed {seed}: packet arrived over {a}-{b} at {when:.6f} "
                "while the link was down"
            )

        # -- stale forwarding is bounded by the detection delay ----------
        for event in forwarded:
            if event.next_hop is None:
                continue
            when = event.time
            if injector.link_was_up(event.node, event.next_hop, when):
                continue
            down_for = _downtime_at(injector, event.node, event.next_hop,
                                    when)
            assert down_for <= DETECTION * 2, (
                f"seed {seed}: {event.node} still forwarded towards "
                f"{event.next_hop} {down_for * 1e3:.2f} ms after the "
                "link died (reconvergence should have repaired it)"
            )

        # -- liveness: everything healed and traffic resumed -------------
        heals = [r.healed_at for r in executed if r.healed_at is not None]
        assert heals, "no fault healed before the horizon"
        settle = max(heals) + DETECTION + 0.05
        assert settle < DURATION, "schedule leaves no settle window"
        late_flows = {
            d.packet.flow_id for d in network.deliveries if d.time > settle
        }
        want_flows = {s.flow_id for s in run.sources}
        assert late_flows == want_flows, (
            f"seed {seed}: flows {want_flows - late_flows} never "
            "recovered after the last heal"
        )

        # all fault state fully restored
        assert not network._failed_links
        assert not network._down_nodes
        for record in executed:
            assert record.recovered_at is not None, (
                f"{record.spec.kind.value} on {record.spec.label} "
                "never finished recovering"
            )

        # sanity: the domain stayed mostly usable
        sent = sum(s.sent for s in run.sources)
        assert network.delivered_count() > sent * 0.5


def _downtime_at(injector, a, b, t):
    """How long the adjacency (or an endpoint) had been down at ``t``."""
    key = (a, b) if a <= b else (b, a)
    down_since = None
    for ts, up in injector._link_log.get(key, []):
        if ts > t:
            break
        down_since = None if up else ts
    candidates = [down_since] if down_since is not None else []
    for name in (a, b):
        node_down = None
        for ts, up in injector._node_log.get(name, []):
            if ts > t:
                break
            node_down = None if up else ts
        if node_down is not None:
            candidates.append(node_down)
    if not candidates:
        return 0.0
    return t - min(candidates)


def test_distinct_seeds_produce_distinct_schedules():
    scenario = Scenario.from_dict(SOAK)
    schedules = {
        tuple((s.kind, s.at, s.target) for s in scenario.materialize(seed))
        for seed in SEEDS
    }
    assert len(schedules) == len(SEEDS)
