#!/usr/bin/env python
"""VoIP over a congested MPLS core: the paper's motivating scenario.

Section 1 of the paper: "Resource intensive Internet applications like
voice over Internet Protocol (VoIP) and real-time streaming video
perform poorly when the core network of the Internet is relatively
congested. ... Long term relief can only be achieved through efficient
prioritization of network resources and traffic."

This example runs that claim: a G.711 voice call and a video stream
share 2 Mbit/s links with an aggressive data flow, twice --

1. **best effort**: one FIFO per link; everyone suffers together,
2. **CoS-aware**: EF-marked voice and AF41 video ride LSPs whose CoS
   bits drive a strict-priority scheduler at every hop.

Run:  python examples/voip_qos.py
"""

from repro.analysis.report import render_table
from repro.control.ldp import LDPProcess
from repro.mpls.fec import CoSFEC, PrefixFEC
from repro.mpls.router import RouterRole
from repro.net.network import MPLSNetwork
from repro.net.topology import paper_figure1
from repro.net.traffic import (
    CBRSource,
    DSCP_AF41,
    DSCP_EF,
    VideoSource,
    VoIPSource,
)
from repro.qos.scheduler import PriorityScheduler

DURATION = 2.0


def run_scenario(queue_factory=None):
    topology = paper_figure1(bandwidth_bps=2e6, delay_s=1e-3)
    kwargs = {"queue_factory": queue_factory} if queue_factory else {}
    network = MPLSNetwork(
        topology,
        roles={"ler-a": RouterRole.LER, "ler-b": RouterRole.LER},
        **kwargs,
    )
    network.attach_host("ler-b", "10.2.0.0/16")

    ldp = LDPProcess(topology, network.nodes)
    # one FEC per class: CoS-qualified FECs are more specific, so the
    # marked traffic matches them first
    ldp.establish_fec(PrefixFEC("10.2.0.0/16"), egress="ler-b")
    ldp.establish_fec(
        CoSFEC(PrefixFEC("10.2.0.0/16"), DSCP_EF), egress="ler-b"
    )
    ldp.establish_fec(
        CoSFEC(PrefixFEC("10.2.0.0/16"), DSCP_AF41), egress="ler-b"
    )

    sink = network.source_sink("ler-a")
    voice = VoIPSource(network.scheduler, sink, src="10.1.0.5",
                       dst="10.2.0.9", stop=DURATION)
    video = VideoSource(network.scheduler, sink, src="10.1.0.6",
                        dst="10.2.0.10", fps=10, i_frame_size=6000,
                        p_frame_size=1500, stop=DURATION)
    data = CBRSource(network.scheduler, sink, src="10.1.0.7",
                     dst="10.2.0.11", rate_bps=3e6, packet_size=1000,
                     stop=DURATION)
    for source in (voice, video, data):
        source.begin()
    network.run(until=DURATION + 2.0)

    def stats(source):
        delivered = network.delivered_count(source.flow_id)
        latencies = network.latencies(source.flow_id)
        loss = 100.0 * (1 - delivered / source.sent) if source.sent else 0.0
        mean_ms = (sum(latencies) / len(latencies) * 1e3) if latencies else 0
        worst_ms = max(latencies) * 1e3 if latencies else 0
        return delivered, loss, mean_ms, worst_ms

    return {
        "voice": stats(voice),
        "video": stats(video),
        "data": stats(data),
        "sent": {"voice": voice.sent, "video": video.sent, "data": data.sent},
    }


def main() -> None:
    fifo = run_scenario(None)
    prio = run_scenario(lambda: PriorityScheduler(capacity_per_class=64))

    rows = []
    for flow in ("voice", "video", "data"):
        d1, l1, m1, w1 = fifo[flow]
        d2, l2, m2, w2 = prio[flow]
        rows.append([flow, fifo["sent"][flow],
                     f"{l1:.1f}%", f"{m1:.2f}", f"{w1:.2f}",
                     f"{l2:.1f}%", f"{m2:.2f}", f"{w2:.2f}"])
    print(render_table(
        ["flow", "sent",
         "BE loss", "BE mean ms", "BE worst ms",
         "CoS loss", "CoS mean ms", "CoS worst ms"],
        rows,
        title="VoIP/video under congestion: best effort vs CoS priority",
    ))
    print(
        "\nWith CoS-aware scheduling the EF voice flow is lossless and its "
        "latency stays\nnear the propagation floor, while best-effort data "
        "absorbs the congestion --\nthe prioritization the paper's "
        "introduction calls for."
    )


if __name__ == "__main__":
    main()
