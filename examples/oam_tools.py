#!/usr/bin/env python
"""Operating the network: LSP ping and traceroute.

Brings up the Figure 1 domain with LDP, then uses the OAM tools to
verify the LSP end to end, map its actual forwarding path with
expiring TTLs, break a core link, and localize the fault -- the
day-two operations story for the architecture.

Run:  python examples/oam_tools.py
"""

from repro.control.ldp import LDPProcess
from repro.control.oam import lsp_ping, lsp_traceroute
from repro.mpls.fec import PrefixFEC
from repro.mpls.router import RouterRole
from repro.net.network import MPLSNetwork
from repro.net.topology import paper_figure1


def main() -> None:
    topology = paper_figure1(bandwidth_bps=10e6, delay_s=1e-3)
    network = MPLSNetwork(
        topology,
        roles={"ler-a": RouterRole.LER, "ler-b": RouterRole.LER},
    )
    network.attach_host("ler-b", "10.2.0.0/16")
    ldp = LDPProcess(topology, network.nodes)
    ldp.establish_fec(PrefixFEC("10.2.0.0/16"), egress="ler-b")

    print("== healthy LSP ==")
    ping = lsp_ping(network, "ler-a", "10.2.0.9")
    print(f"ping 10.2.0.9: reached={ping.reached} via {ping.egress} "
          f"in {ping.latency * 1e3:.3f} ms")
    trace = lsp_traceroute(network, "ler-a", "10.2.0.9")
    print(f"traceroute: {' -> '.join(trace.path)} "
          f"(complete={trace.complete})")

    print("\n== after a core link failure ==")
    network.fail_link("lsr-2", "ler-b")
    ping = lsp_ping(network, "ler-a", "10.2.0.9")
    print(f"ping 10.2.0.9: reached={ping.reached}")
    trace = lsp_traceroute(network, "ler-a", "10.2.0.9", max_ttl=6)
    print(f"traceroute: {' -> '.join(trace.path)} "
          f"(complete={trace.complete})")
    print(f"fault localized after {trace.path[-1]} -- the probe with one "
          "more hop of TTL never returned")

    print("\n== repaired by LDP reconvergence ==")
    ldp.reconverge()
    ping = lsp_ping(network, "ler-a", "10.2.0.9")
    trace = lsp_traceroute(network, "ler-a", "10.2.0.9")
    print(f"ping 10.2.0.9: reached={ping.reached} "
          f"in {ping.latency * 1e3:.3f} ms")
    print(f"traceroute: {' -> '.join(trace.path)} "
          f"(now via the redundant path)")
    assert "lsr-3" in trace.path


if __name__ == "__main__":
    main()
