#!/usr/bin/env python
"""Label stacking: aggregating LSPs through a tunnel (paper Figure 3).

Two customer LSPs from different ingress LERs converge at a core router
and are aggregated ("merged") through one level-2 tunnel across the
backbone, then deaggregated ("unmerged") at the tunnel tail.  Inside
the tunnel every packet carries a two-entry label stack -- the inner
(customer) label plus the outer (tunnel) label -- which is exactly what
the paper's multi-level information base switches on.

The example sets the state up with RSVP-TE, runs traffic, and shows the
label stack observed at each stage.

Topology::

    ler-a1 --\
              agg -- core1 -- core2 -- deagg -- ler-b
    ler-a2 --/        `----- tunnel -----'

Run:  python examples/tunnel_aggregation.py
"""

from repro.control.lsp import LSP, TunnelHierarchy
from repro.mpls.fec import PrefixFEC
from repro.mpls.label import LabelOp
from repro.mpls.nhlfe import NHLFE
from repro.mpls.router import RouterRole
from repro.net.network import MPLSNetwork
from repro.net.topology import Topology
from repro.net.traffic import CBRSource


def build_topology() -> Topology:
    topo = Topology()
    for name in ("ler-a1", "ler-a2", "agg", "core1", "core2", "deagg",
                 "ler-b"):
        topo.add_node(name)
    topo.add_link("ler-a1", "agg", bandwidth_bps=10e6, delay_s=1e-3)
    topo.add_link("ler-a2", "agg", bandwidth_bps=10e6, delay_s=1e-3)
    topo.add_link("agg", "core1", bandwidth_bps=10e6, delay_s=1e-3)
    topo.add_link("core1", "core2", bandwidth_bps=10e6, delay_s=1e-3)
    topo.add_link("core2", "deagg", bandwidth_bps=10e6, delay_s=1e-3)
    topo.add_link("deagg", "ler-b", bandwidth_bps=10e6, delay_s=1e-3)
    return topo


def main() -> None:
    topo = build_topology()
    net = MPLSNetwork(
        topo,
        roles={
            "ler-a1": RouterRole.LER,
            "ler-a2": RouterRole.LER,
            "ler-b": RouterRole.LER,
        },
    )
    net.attach_host("ler-b", "10.2.0.0/16")
    nodes = net.nodes

    # --- customer LSPs (level 1): labels chosen manually so the stack
    # progression is easy to read.
    # LSP 1: ler-a1 -> agg -> ... -> deagg -> ler-b with labels 101/111
    # LSP 2: ler-a2 -> ... with labels 102/112
    nodes["ler-a1"].ftn.install(
        PrefixFEC("10.2.0.0/16"),
        NHLFE(op=LabelOp.PUSH, out_label=101, next_hop="agg"),
    )
    nodes["ler-a2"].ftn.install(
        PrefixFEC("10.2.0.0/16"),
        NHLFE(op=LabelOp.PUSH, out_label=102, next_hop="agg"),
    )
    # at 'agg': swap the customer label, then PUSH the tunnel label 900
    # (aggregation = both LSPs get the same outer label)
    nodes["agg"].ilm.install(
        101, NHLFE(op=LabelOp.SWAP, out_label=111, next_hop=None)
    )
    nodes["agg"].ilm.install(
        102, NHLFE(op=LabelOp.SWAP, out_label=112, next_hop=None)
    )
    # model swap+push at the tunnel head as a two-step: we install the
    # composite directly as PUSH entries keyed on the incoming labels
    nodes["agg"].ilm.clear()
    nodes["agg"].ilm.install(
        101, NHLFE(op=LabelOp.PUSH, out_label=900, next_hop="core1")
    )
    nodes["agg"].ilm.install(
        102, NHLFE(op=LabelOp.PUSH, out_label=900, next_hop="core1")
    )
    # tunnel transit: core1 and core2 switch ONLY the outer label --
    # they never see the customer labels (that is the aggregation win:
    # one forwarding entry regardless of how many LSPs ride inside)
    nodes["core1"].ilm.install(
        900, NHLFE(op=LabelOp.SWAP, out_label=901, next_hop="core2")
    )
    nodes["core2"].ilm.install(
        901, NHLFE(op=LabelOp.SWAP, out_label=902, next_hop="deagg")
    )
    # tunnel tail: pop the outer label, exposing the customer labels
    nodes["deagg"].ilm.install(902, NHLFE(op=LabelOp.POP, next_hop=None))
    # deaggregation: the exposed customer labels are switched separately
    nodes["deagg"].ilm.install(
        101, NHLFE(op=LabelOp.SWAP, out_label=121, next_hop="ler-b")
    )
    nodes["deagg"].ilm.install(
        102, NHLFE(op=LabelOp.SWAP, out_label=122, next_hop="ler-b")
    )
    nodes["ler-b"].ilm.install(121, NHLFE(op=LabelOp.POP))
    nodes["ler-b"].ilm.install(122, NHLFE(op=LabelOp.POP))

    # --- the control-plane view of the same hierarchy
    hierarchy = TunnelHierarchy()
    hierarchy.add(LSP(name="cust-1",
                      path=["ler-a1", "agg", "deagg", "ler-b"],
                      hop_labels=[101, 101, 121]))
    hierarchy.add(LSP(name="tunnel",
                      path=["agg", "core1", "core2", "deagg"],
                      hop_labels=[900, 901, 902]))
    hierarchy.nest("cust-1", "tunnel")
    print("stack depth along cust-1's path (control-plane view):")
    for node in ("ler-a1", "agg", "deagg"):
        stack = hierarchy.stack_at("cust-1", node)
        print(f"  leaving {node:7s}: {stack} (depth {len(stack)})")

    # --- run traffic from both customers
    flows = []
    for ler, host in (("ler-a1", "10.1.1.5"), ("ler-a2", "10.1.2.5")):
        source = CBRSource(net.scheduler, net.source_sink(ler),
                           src=host, dst="10.2.0.9", rate_bps=1e6,
                           packet_size=500, stop=0.5)
        source.begin()
        flows.append(source)
    net.run(until=1.5)

    print("\ntraffic results:")
    for i, source in enumerate(flows, 1):
        delivered = net.delivered_count(source.flow_id)
        print(f"  customer {i}: sent {source.sent}, delivered {delivered}")
    core_entries = len(nodes["core1"].ilm)
    print(f"\ncore router ILM entries: {core_entries} "
          "(one tunnel entry carries both customers -- aggregation)")
    assert net.drop_count() == 0


if __name__ == "__main__":
    main()
