#!/usr/bin/env python
"""Quickstart: an MPLS domain in ~60 lines.

Builds the paper's Figure 1 network (two LERs around a small LSR core),
lets LDP distribute labels for a destination prefix, sends a constant
bit-rate flow across it, and prints what happened at every router.

Run:  python examples/quickstart.py
"""

from repro.control.ldp import LDPProcess
from repro.mpls.fec import PrefixFEC
from repro.mpls.router import RouterRole
from repro.net.network import MPLSNetwork
from repro.net.topology import paper_figure1
from repro.net.traffic import CBRSource


def main() -> None:
    # 1. Topology: ler-a -- lsr-1 -- lsr-2 -- ler-b, with a redundant
    #    path through lsr-3 (the paper's Figure 1 in miniature).
    topology = paper_figure1(bandwidth_bps=10e6, delay_s=1e-3)
    network = MPLSNetwork(
        topology,
        roles={"ler-a": RouterRole.LER, "ler-b": RouterRole.LER},
    )
    network.attach_host("ler-b", "10.2.0.0/16")

    # 2. Control plane: LDP binds labels for the destination prefix.
    ldp = LDPProcess(topology, network.nodes)
    binding = ldp.establish_fec(PrefixFEC("10.2.0.0/16"), egress="ler-b")
    print("label bindings (node -> expected label):")
    for node, label in sorted(binding.labels.items()):
        print(f"  {node:8s} -> {label}")

    # 3. Data plane: a 1 Mbit/s CBR flow from a host behind ler-a.
    source = CBRSource(
        network.scheduler,
        network.source_sink("ler-a"),
        src="10.1.0.5",
        dst="10.2.0.9",
        rate_bps=1e6,
        packet_size=500,
        stop=1.0,
    )
    source.begin()
    network.run(until=2.0)

    # 4. Results.
    latencies = network.latencies()
    print(f"\nsent {source.sent}, delivered {network.delivered_count()}, "
          f"dropped {network.drop_count()}")
    print(f"mean latency {sum(latencies) / len(latencies) * 1e3:.3f} ms")
    print("\nper-node forwarding:")
    for name in sorted(network.nodes):
        stats = network.nodes[name].stats
        print(f"  {name:8s} mpls={stats.forwarded_mpls:4d} "
              f"ip={stats.forwarded_ip:4d} drops={stats.discarded}")


if __name__ == "__main__":
    main()
