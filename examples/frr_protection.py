#!/usr/bin/env python
"""Fast reroute: surviving a core link failure mid-call.

Builds the Figure 1 network, protects a voice flow's FEC with a
primary/backup LSP pair (RSVP-TE + CSPF), then kills the primary's core
link in the middle of a call.  The ingress switches the FEC onto the
pre-signalled backup in a single FTN rewrite -- the traffic-engineering
payoff of MPLS's explicit paths that the paper's introduction argues
for.

Run:  python examples/frr_protection.py
"""

from repro.control.frr import FastRerouteManager
from repro.control.rsvp_te import RSVPTESignaler
from repro.mpls.fec import PrefixFEC
from repro.mpls.router import RouterRole
from repro.net.network import MPLSNetwork
from repro.net.topology import paper_figure1
from repro.net.traffic import VoIPSource

CALL_SECONDS = 2.0
FAIL_AT = 1.0


def main() -> None:
    topology = paper_figure1(bandwidth_bps=10e6, delay_s=1e-3)
    network = MPLSNetwork(
        topology,
        roles={"ler-a": RouterRole.LER, "ler-b": RouterRole.LER},
    )
    network.attach_host("ler-b", "10.2.0.0/16")

    signaler = RSVPTESignaler(topology, network.nodes)
    frr = FastRerouteManager(signaler)
    protected = frr.protect(
        "voice", "ler-a", "ler-b", PrefixFEC("10.2.0.0/16")
    )
    print(f"primary: {' -> '.join(protected.primary.path)}")
    print(f"backup : {' -> '.join(protected.backup.path)}")

    call = VoIPSource(
        network.scheduler,
        network.source_sink("ler-a"),
        src="10.1.0.5",
        dst="10.2.0.9",
        stop=CALL_SECONDS,
    )
    call.begin()

    failed_link = ("lsr-1", protected.primary.path[2])

    def fail():
        print(f"\nt={network.scheduler.now:.3f}s: "
              f"link {failed_link[0]}-{failed_link[1]} fails")
        network.fail_link(*failed_link)
        # 1 ms failure detection, then the one-operation switchover
        network.scheduler.after(1e-3, repair)

    def repair():
        repaired = frr.handle_link_failure(*failed_link)
        print(f"t={network.scheduler.now:.3f}s: fast reroute switched "
              f"{repaired} onto the backup")

    network.scheduler.at(FAIL_AT, fail)
    network.run(until=CALL_SECONDS + 1.0)

    delivered = network.delivered_count(call.flow_id)
    lost = call.sent - delivered
    print(f"\ncall: {call.sent} voice frames sent, {delivered} delivered, "
          f"{lost} lost ({lost / call.sent:.1%})")
    print(f"active path after failure: {protected.active}")
    backup_mid = protected.backup.path[2]
    print(f"frames via backup node {backup_mid}: "
          f"{network.nodes[backup_mid].stats.forwarded_mpls}")
    assert lost <= 2, "FRR should lose at most the in-flight frames"


if __name__ == "__main__":
    main()
