#!/usr/bin/env python
"""Drive the RTL label stack modifier and render the paper's waveforms.

Re-creates the three simulations of the paper's Results section on the
cycle-accurate RTL model:

* Figure 14 -- write ten label pairs at level 1 (packet identifiers
  600-609 -> new labels 500-509), then look up identifier 604,
* Figure 15 -- the same at level 2 with old labels 1-10,
* Figure 16 -- a lookup of label 27, which is absent, raising
  ``packetdiscard``.

Prints the key signal transitions as an ASCII waveform and (optionally)
dumps a VCD file loadable in GTKWave.

Run:  python examples/hardware_simulation.py [--vcd out.vcd]
"""

import argparse

from repro.hdl.waveform import WaveformRecorder, dump_vcd, render_ascii
from repro.hw.driver import ModifierDriver
from repro.mpls.label import LabelOp

OPS = [LabelOp.PUSH, LabelOp.SWAP, LabelOp.POP]


def trace_signals(drv):
    m = drv.modifier
    level2 = m.dp.info_base.level(2)
    level1 = m.dp.info_base.level(1)
    return [
        m.sim.signal(level1.write_counter.count.name),
        m.sim.signal(level1.read_counter.count.name),
        m.sim.signal(level2.write_counter.count.name),
        m.sim.signal(level2.read_counter.count.name),
        m.sim.signal(m.search.label_out.name),
        m.sim.signal(m.search.op_out.name),
        m.sim.signal(m.search.done.name),
        m.sim.signal(m.search.miss.name),
    ]


def figure14(drv, recorder):
    print("=" * 72)
    print("Figure 14: level-1 label pair writes + lookup of id 604")
    print("=" * 72)
    drv.reset()
    recorder.clear()
    for i in range(10):
        drv.write_pair(1, 600 + i, 500 + i, OPS[i % 3])
    w_index = drv.modifier.dp.info_base.level(1).write_counter.count.value
    print(f"w_index after the ten writes: {w_index}")
    result = drv.search(1, 604)
    print(f"lookup(604): found={result.found} label_out={result.label} "
          f"operation_out={result.op.name} cycles={result.cycles} "
          f"packetdiscard={result.discarded}")
    assert result.label == 504 and not result.discarded


def figure15(drv, recorder):
    print("=" * 72)
    print("Figure 15: level-2 label pairs (old 1-10 -> new 500-509)")
    print("=" * 72)
    drv.reset()
    recorder.clear()
    for i in range(10):
        drv.write_pair(2, i + 1, 500 + i, OPS[i % 3])
    result = drv.search(2, 5)
    print(f"lookup(label 5): found={result.found} label_out={result.label} "
          f"cycles={result.cycles} packetdiscard={result.discarded}")
    assert result.found and not result.discarded


def figure16(drv, recorder):
    print("=" * 72)
    print("Figure 16: lookup of absent label 27 -> packet discard")
    print("=" * 72)
    drv.reset()
    recorder.clear()
    for i in range(10):
        drv.write_pair(2, i + 1, 500 + i, OPS[i % 3])
    result = drv.search(2, 27)
    print(f"lookup(label 27): found={result.found} "
          f"cycles={result.cycles} (= 3n+5 with n=10) "
          f"packetdiscard={result.discarded}")
    assert not result.found and result.discarded
    assert result.cycles == 3 * 10 + 5
    print("\nwaveform around the exhaustive scan "
          "(r_index walks all ten pairs):")
    print(render_ascii(
        recorder,
        names=[
            drv.modifier.dp.info_base.level(2).read_counter.count.name,
            drv.modifier.search.done.name,
            drv.modifier.search.miss.name,
        ],
        start=max(0, recorder.cycles[-1] - 39),
        max_width=40,
    ))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vcd", help="dump a VCD waveform to this path")
    args = parser.parse_args()

    drv = ModifierDriver(ib_depth=1024)
    drv.reset()
    recorder = WaveformRecorder(drv.sim, trace_signals(drv))

    figure14(drv, recorder)
    figure15(drv, recorder)
    figure16(drv, recorder)

    if args.vcd:
        dump_vcd(recorder, args.vcd)
        print(f"\nVCD written to {args.vcd}")


if __name__ == "__main__":
    main()
