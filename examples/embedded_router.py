#!/usr/bin/env python
"""A network of embedded (hardware-backed) MPLS routers, observed.

Every router in this run forwards with the paper's label stack modifier
(the functional model, RTL-equivalent by property test), so each packet
carries an exact clock-cycle price.  The example shows:

* the level-1 flow cache learning destinations (slow path once, then
  pure hardware),
* per-node hardware cycle accounting and what line rate the 50 MHz
  modifier could sustain at the measured cost,
* a full per-packet trace (the paper's Figure 2 view), and
* link utilization for the run.

Run:  python examples/embedded_router.py
"""

from repro.analysis.netstats import render_link_usage, render_node_counters
from repro.analysis.throughput import line_rate_feasibility
from repro.analysis.tracer import NetworkTracer
from repro.control.ldp import LDPProcess
from repro.core.hwnode import HardwareLSRNode
from repro.mpls.fec import PrefixFEC
from repro.mpls.router import RouterRole
from repro.net.network import MPLSNetwork
from repro.net.packet import IPv4Packet
from repro.net.topology import paper_figure1
from repro.net.traffic import CBRSource

DURATION = 0.5


def main() -> None:
    topology = paper_figure1(bandwidth_bps=10e6, delay_s=1e-3)
    network = MPLSNetwork(
        topology,
        roles={"ler-a": RouterRole.LER, "ler-b": RouterRole.LER},
        node_factory=HardwareLSRNode,
    )
    network.attach_host("ler-b", "10.2.0.0/16")
    LDPProcess(topology, network.nodes).establish_fec(
        PrefixFEC("10.2.0.0/16"), egress="ler-b"
    )
    tracer = NetworkTracer(network)

    # one traced packet first, then a steady flow
    probe = IPv4Packet(src="10.1.0.5", dst="10.2.0.77")
    network.inject("ler-a", probe)
    flow = CBRSource(network.scheduler, network.source_sink("ler-a"),
                     src="10.1.0.5", dst="10.2.0.9", rate_bps=2e6,
                     packet_size=500, stop=DURATION)
    flow.begin()
    network.run(until=DURATION + 1.0)

    print("=== the probe packet's journey (Figure 2 view) ===")
    print(tracer.trace_of(probe.uid).render())

    print("\n=== hardware accounting per node ===")
    for name in sorted(network.nodes):
        node = network.nodes[name]
        print(f"  {name:8s} slow-path={node.slow_path_packets:3d} "
              f"fast-path={node.fast_path_packets:4d} "
              f"data-cycles={node.hw_data_cycles:6d} "
              f"control-cycles={node.hw_control_cycles:5d} "
              f"mean={node.mean_hw_cycles_per_packet:5.1f} cyc/pkt")

    lsr = network.nodes["lsr-1"]
    feas = line_rate_feasibility(
        lsr.mean_hw_cycles_per_packet, packet_size_bytes=500, link_bps=10e6
    )
    print(f"\nat {lsr.mean_hw_cycles_per_packet:.0f} cycles/packet the "
          f"50 MHz modifier handles {feas.modifier_pps / 1e6:.2f} Mpps -- "
          f"up to {feas.max_line_rate_bps / 1e6:.0f} Mbps of 500-byte "
          f"packets ({feas.utilization:.2%} busy at this run's line rate)")

    print()
    print(render_node_counters(network))
    print()
    print(render_link_usage(network, duration=DURATION))
    print(f"\ndelivered {network.delivered_count()} of "
          f"{flow.sent + 1} packets, {network.drop_count()} dropped")


if __name__ == "__main__":
    main()
