"""Setup shim.

The environment has no ``wheel`` package and no network, so PEP-517
editable installs fail; ``python setup.py develop`` (or
``pip install -e .`` on machines with wheel) both work through this
shim.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
