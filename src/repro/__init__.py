"""Reproduction of *Embedded MPLS Architecture* (Peterkin & Ionescu,
2005).

The package reproduces the paper's hardware/software MPLS architecture
in Python, from the cycle-accurate RTL of the label stack modifier up
to a full simulated MPLS network with its control plane:

* :mod:`repro.hdl`  -- synchronous RTL simulation kernel,
* :mod:`repro.hw`   -- the label stack modifier (control unit + datapath),
* :mod:`repro.mpls` -- the MPLS protocol library (RFC 3031/3032),
* :mod:`repro.net`  -- packets, layer-2 framing, links, topologies,
  discrete-event simulation, traffic generators,
* :mod:`repro.control` -- SPF routing, LDP, CSPF, RSVP-TE, CR-LDP,
* :mod:`repro.qos`  -- classification, marking, policing, queueing,
  scheduling,
* :mod:`repro.core` -- the assembled embedded architecture and its
  timing/device models,
* :mod:`repro.analysis` -- measurement and reporting for the
  benchmarks.

Quickstart::

    from repro.core import EmbeddedMPLS
    from repro.mpls.router import RouterRole

    ler = EmbeddedMPLS(role=RouterRole.LER)
    ler.install_ingress_route(destination=0x0A000001, label=777)
    result = ler.process_frame(ethernet_frame)
"""

__version__ = "1.0.0"

__all__ = [
    "hdl",
    "hw",
    "mpls",
    "net",
    "control",
    "qos",
    "core",
    "analysis",
]
