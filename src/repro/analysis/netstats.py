"""Network run summaries: link utilization and node counters.

Turns a finished :class:`~repro.net.network.MPLSNetwork` run into the
tables an operator would look at: per-link carried bytes/utilization
per direction, per-node forwarding counters, and the delivery/loss/
latency roll-up -- rendered with :mod:`repro.analysis.report`.

The ``render_telemetry_*`` views consume the
:class:`~repro.obs.telemetry.Telemetry` metrics registry instead of
reaching into simulator objects, so they summarize whatever a run
recorded -- including the hardware cycle counters and the control-plane
event tallies that have no network-object equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.report import render_table
from repro.net.network import MPLSNetwork
from repro.obs.telemetry import Telemetry, get_telemetry


@dataclass(frozen=True)
class LinkUsage:
    """One direction of one link over the observed window."""

    src: str
    dst: str
    packets: int
    bytes: int
    dropped: int
    utilization: float


def link_usage(network: MPLSNetwork, duration: float) -> List[LinkUsage]:
    """Per-direction link statistics over ``duration`` seconds."""
    if duration <= 0:
        raise ValueError("duration must be positive")
    out = []
    for (a, b), link in sorted(network.links.items()):
        for channel in (link.forward, link.reverse):
            out.append(
                LinkUsage(
                    src=channel.src.node,
                    dst=channel.dst.node,
                    packets=channel.tx_packets,
                    bytes=channel.tx_bytes,
                    dropped=channel.dropped + getattr(
                        channel.queue, "dropped", 0
                    ),
                    utilization=(
                        channel.tx_bytes * 8 / duration
                    ) / channel.bandwidth_bps,
                )
            )
    return out


def render_link_usage(network: MPLSNetwork, duration: float) -> str:
    rows = [
        [f"{u.src} -> {u.dst}", u.packets, u.bytes,
         u.dropped, f"{u.utilization:.1%}"]
        for u in link_usage(network, duration)
    ]
    return render_table(
        ["direction", "packets", "bytes", "dropped", "utilization"],
        rows,
        title=f"Link usage over {duration:g} s",
    )


def render_node_counters(network: MPLSNetwork) -> str:
    rows = []
    for name in sorted(network.nodes):
        stats = network.nodes[name].stats
        rows.append(
            [name, stats.received, stats.forwarded_mpls,
             stats.forwarded_ip, stats.discarded]
        )
    return render_table(
        ["node", "received", "mpls out", "ip out", "discarded"],
        rows,
        title="Per-node forwarding counters",
    )


def render_summary(network: MPLSNetwork) -> str:
    latencies = network.latencies()
    rows = [
        ["delivered", network.delivered_count()],
        ["dropped", network.drop_count()],
    ]
    if latencies:
        rows.extend(
            [
                ["mean latency", f"{sum(latencies)/len(latencies)*1e3:.3f} ms"],
                ["min latency", f"{min(latencies)*1e3:.3f} ms"],
                ["max latency", f"{max(latencies)*1e3:.3f} ms"],
            ]
        )
    return render_table(["metric", "value"], rows, title="Run summary")


# -- telemetry-registry views ------------------------------------------------
def _counter_rows(
    telemetry: Telemetry, name: str
) -> List[Tuple[Tuple[str, ...], float]]:
    for family in telemetry.registry.collect():
        if family.name == name:
            return [
                (labels, child.value) for labels, child in family.samples()
            ]
    return []


def telemetry_packet_counts(
    telemetry: Optional[Telemetry] = None,
) -> Dict[str, Dict[str, int]]:
    """node -> action -> packets, from ``repro_packets_total``."""
    tel = telemetry if telemetry is not None else get_telemetry()
    out: Dict[str, Dict[str, int]] = {}
    for (node, action), value in _counter_rows(tel, "repro_packets_total"):
        out.setdefault(node, {})[action] = int(value)
    return out


def render_telemetry_counters(telemetry: Optional[Telemetry] = None) -> str:
    """Per-node packet outcomes, as the metrics registry recorded them."""
    rows = [
        [node, action, count]
        for node, actions in sorted(telemetry_packet_counts(telemetry).items())
        for action, count in sorted(actions.items())
    ]
    return render_table(
        ["node", "action", "packets"],
        rows,
        title="Packet outcomes (telemetry)",
    )


def render_telemetry_drops(telemetry: Optional[Telemetry] = None) -> str:
    """Drop reasons per node, from ``repro_drops_total``."""
    tel = telemetry if telemetry is not None else get_telemetry()
    rows = [
        [node, reason, int(value)]
        for (node, reason), value in _counter_rows(tel, "repro_drops_total")
    ]
    return render_table(
        ["node", "reason", "dropped"],
        rows,
        title="Drop reasons (telemetry)",
    )


def render_telemetry_ops(telemetry: Optional[Telemetry] = None) -> str:
    """Elementary label operations per node, the registry's view of the
    :class:`~repro.mpls.forwarding.OpCounts` tally."""
    tel = telemetry if telemetry is not None else get_telemetry()
    rows = [
        [node, op, int(value)]
        for (node, op), value in _counter_rows(tel, "repro_mpls_ops_total")
    ]
    return render_table(
        ["node", "operation", "count"],
        rows,
        title="Label operations (telemetry)",
    )
