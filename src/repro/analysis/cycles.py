"""Measure Table 6 on the live RTL.

Runs each operation of the paper's Table 6 on a fresh
:class:`~repro.hw.driver.ModifierDriver` and reports measured cycles
next to the paper's formula -- the agreement is asserted by the
Table 6 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.hw.driver import ModifierDriver
from repro.hw.model import search_cycles, SWAP_TAIL_CYCLES
from repro.mpls.label import LabelEntry, LabelOp


@dataclass(frozen=True)
class CycleMeasurement:
    """One row of the measured Table 6."""

    operation: str
    formula: str
    expected: int
    measured: int

    @property
    def matches(self) -> bool:
        return self.expected == self.measured


def measure_table6(
    search_sizes: Sequence[int] = (1, 10, 100),
    ib_depth: int = 1024,
    driver: Optional[ModifierDriver] = None,
) -> List[CycleMeasurement]:
    """Measure every Table 6 row on the RTL.

    Pass a ``driver`` to reuse an existing simulator instance -- e.g.
    one with a :class:`~repro.obs.profiling.CycleProfiler` attached, so
    the measurement doubles as a per-operation cycle profile
    (``python -m repro stats`` does exactly that).
    """
    rows: List[CycleMeasurement] = []
    drv = driver if driver is not None else ModifierDriver(ib_depth=ib_depth)

    rows.append(
        CycleMeasurement("Reset", "3", 3, drv.reset())
    )
    rows.append(
        CycleMeasurement(
            "Push entry from the user",
            "3",
            3,
            drv.user_push(LabelEntry(label=600, ttl=9)),
        )
    )
    rows.append(
        CycleMeasurement(
            "Pop entry from the user", "3", 3, drv.user_pop()[1]
        )
    )
    rows.append(
        CycleMeasurement(
            "Write label pair",
            "3",
            3,
            drv.write_pair(2, 16, 500, LabelOp.SWAP),
        )
    )

    for n in search_sizes:
        drv.reset()
        for i in range(n):
            drv.write_pair(2, 16 + i, 500 + i, LabelOp.SWAP)
        result = drv.search(2, 0xFFFFF)  # guaranteed miss: full scan
        rows.append(
            CycleMeasurement(
                f"Search information base (n={n})",
                "3n + 5",
                search_cycles(n, None),
                result.cycles,
            )
        )

    # swap from the information base: measured as the update's cost
    # beyond its (first-hit) search
    drv.reset()
    drv.write_pair(1, 100, 200, LabelOp.SWAP)
    drv.user_push(LabelEntry(label=100, ttl=9, s=1))
    update = drv.update()
    swap_tail = update.cycles - search_cycles(1, 0)
    rows.append(
        CycleMeasurement(
            "Swap from the information base",
            "6",
            SWAP_TAIL_CYCLES,
            swap_tail,
        )
    )
    return rows
