"""Monte-Carlo latency analysis of the label stack modifier.

Table 6 gives the worst case; operators care about the distribution.
This module samples per-packet cycle costs under a model of where hits
land in the information base (uniform by default, or skewed towards
hot entries the control plane installed early) and reports latency
percentiles and the packet rates they support.

Vectorized with numpy: a million-packet sample is a handful of array
operations, following the scientific-Python guidance of profiling and
vectorizing the hot loop rather than iterating in Python.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.core.device import FPGADevice, STRATIX_EP1S40
from repro.hw.model import (
    SEARCH_HIT_BASE,
    SEARCH_PER_ENTRY,
    SWAP_TAIL_CYCLES,
)


@dataclass(frozen=True)
class LatencyDistribution:
    """Per-packet cycle statistics over a sampled workload."""

    n_entries: int
    samples: int
    mean_cycles: float
    p50_cycles: float
    p99_cycles: float
    max_cycles: int
    mean_seconds: float
    p99_seconds: float

    def supported_pps_at_p99(self) -> float:
        """Sustained packet rate if every packet took the p99 cost."""
        return 1.0 / self.p99_seconds


def sample_swap_latency(
    n_entries: int,
    samples: int = 1_000_000,
    skew: float = 0.0,
    seed: int = 0,
    device: FPGADevice = STRATIX_EP1S40,
    extra_cycles: int = 0,
) -> LatencyDistribution:
    """Sample the cycle cost of information-base-driven swaps.

    Parameters
    ----------
    n_entries:
        Occupancy of the searched level.
    skew:
        0.0 = hits uniform over positions (labels equally active).
        Larger values weight *early* positions more (a Zipf-ish
        exponent) -- the realistic case when the control plane installs
        hot LSPs first or the table is sorted by activity.
    extra_cycles:
        Fixed per-packet additions (e.g. stack load/drain).
    """
    if n_entries < 1:
        raise ValueError("n_entries must be >= 1")
    if samples < 1:
        raise ValueError("samples must be >= 1")
    if skew < 0:
        raise ValueError("skew must be >= 0")
    rng = np.random.default_rng(seed)
    positions = np.arange(n_entries, dtype=np.float64)
    if skew == 0.0:
        hit_positions = rng.integers(0, n_entries, size=samples)
    else:
        weights = 1.0 / np.power(positions + 1.0, skew)
        weights /= weights.sum()
        hit_positions = rng.choice(n_entries, size=samples, p=weights)
    cycles = (
        SEARCH_PER_ENTRY * hit_positions
        + SEARCH_HIT_BASE
        + SWAP_TAIL_CYCLES
        + extra_cycles
    ).astype(np.int64)
    cycle_time = device.cycle_time_s
    return LatencyDistribution(
        n_entries=n_entries,
        samples=samples,
        mean_cycles=float(cycles.mean()),
        p50_cycles=float(np.percentile(cycles, 50)),
        p99_cycles=float(np.percentile(cycles, 99)),
        max_cycles=int(cycles.max()),
        mean_seconds=float(cycles.mean()) * cycle_time,
        p99_seconds=float(np.percentile(cycles, 99)) * cycle_time,
    )


def latency_sweep(
    table_sizes: Tuple[int, ...] = (16, 64, 256, 1024),
    skews: Tuple[float, ...] = (0.0, 1.0),
    samples: int = 200_000,
    seed: int = 0,
) -> Dict[Tuple[int, float], LatencyDistribution]:
    """Distributions across table sizes and hit skews."""
    return {
        (n, skew): sample_swap_latency(
            n, samples=samples, skew=skew, seed=seed
        )
        for n in table_sizes
        for skew in skews
    }
