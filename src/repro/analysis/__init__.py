"""Measurement and reporting helpers for the benchmarks.

* :mod:`repro.analysis.cycles` -- measures operation cycle counts on
  the live RTL and checks them against the Table 6 formulas,
* :mod:`repro.analysis.throughput` -- packets/s and bits/s estimators
  from cycle costs and clock rates,
* :mod:`repro.analysis.report` -- plain-text table/series rendering so
  every benchmark prints the paper's rows next to the measured ones.
"""

from repro.analysis.cycles import CycleMeasurement, measure_table6
from repro.analysis.throughput import (
    LineRateFeasibility,
    ThroughputEstimate,
    estimate_throughput,
    line_rate_feasibility,
)
from repro.analysis.report import render_table, render_series
from repro.analysis.tracer import NetworkTracer, PacketTrace, HopRecord
from repro.analysis.montecarlo import (
    LatencyDistribution,
    latency_sweep,
    sample_swap_latency,
)
from repro.analysis.netstats import (
    LinkUsage,
    link_usage,
    render_link_usage,
    render_node_counters,
    render_summary,
)

__all__ = [
    "CycleMeasurement",
    "measure_table6",
    "ThroughputEstimate",
    "estimate_throughput",
    "LineRateFeasibility",
    "line_rate_feasibility",
    "render_table",
    "render_series",
    "NetworkTracer",
    "PacketTrace",
    "HopRecord",
    "LinkUsage",
    "link_usage",
    "render_link_usage",
    "render_node_counters",
    "render_summary",
    "LatencyDistribution",
    "latency_sweep",
    "sample_swap_latency",
]
