"""Plain-text table and series rendering for the benchmarks.

Every benchmark prints the rows the paper reports next to the measured
values, using these helpers so the output is uniform and diffable.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width ASCII table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in cells))
        if cells
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    y_labels: Sequence[str],
    points: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """A figure rendered as its data series (x followed by each y)."""
    return render_table([x_label, *y_labels], points, title=title)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
