"""Packet tracing: record a packet's journey hop by hop.

Attaches to an :class:`~repro.net.network.MPLSNetwork` by wrapping each
node's ``receive``; every processing step is recorded with the
timestamp, the node, the label stack on arrival, and the decision --
producing the per-packet view of the paper's Figure 2 ("MPLS packet
exchange") for any traffic the simulation carries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.mpls.forwarding import Action, ForwardingDecision
from repro.net.network import MPLSNetwork
from repro.net.packet import IPv4Packet, MPLSPacket


@dataclass(frozen=True)
class HopRecord:
    """One node's handling of one packet."""

    time: float
    node: str
    stack_in: Tuple[int, ...]
    ttl_in: int
    action: Action
    stack_out: Tuple[int, ...]
    reason: Optional[str]


@dataclass
class PacketTrace:
    """The full journey of one packet (keyed by its uid)."""

    uid: int
    flow_id: int
    hops: List[HopRecord] = field(default_factory=list)

    @property
    def path(self) -> List[str]:
        return [hop.node for hop in self.hops]

    @property
    def delivered(self) -> bool:
        return bool(self.hops) and self.hops[-1].action is Action.FORWARD_IP

    @property
    def dropped(self) -> bool:
        return any(hop.action is Action.DISCARD for hop in self.hops)

    def label_journey(self) -> List[Tuple[str, Tuple[int, ...]]]:
        """(node, outgoing label stack) along the path -- the Figure 2
        view of label evolution."""
        return [(hop.node, hop.stack_out) for hop in self.hops]

    def render(self) -> str:
        lines = [f"packet uid={self.uid} flow={self.flow_id}:"]
        for hop in self.hops:
            stack_in = list(hop.stack_in) or "unlabelled"
            stack_out = list(hop.stack_out) or "unlabelled"
            outcome = hop.action.value
            if hop.reason:
                outcome += f" ({hop.reason})"
            lines.append(
                f"  t={hop.time * 1e3:8.3f}ms {hop.node:10s} "
                f"in={stack_in!s:>16} out={stack_out!s:>16} {outcome}"
            )
        return "\n".join(lines)


def _stack_labels(
    packet: Union[IPv4Packet, MPLSPacket]
) -> Tuple[int, ...]:
    if isinstance(packet, MPLSPacket):
        return tuple(e.label for e in packet.stack)
    return ()


def _ttl(packet: Union[IPv4Packet, MPLSPacket]) -> int:
    if isinstance(packet, MPLSPacket):
        return packet.stack.top.ttl if not packet.stack.is_empty else packet.inner.ttl
    return packet.ttl


class NetworkTracer:
    """Records every packet's journey through a network.

    Construct *after* the network (it wraps the nodes' ``receive``
    methods in place).  Traces accumulate in :attr:`traces`.
    """

    def __init__(self, network: MPLSNetwork) -> None:
        self.network = network
        self.traces: Dict[int, PacketTrace] = {}
        for node in network.nodes.values():
            self._wrap(node)

    def _wrap(self, node) -> None:
        original = node.receive

        def traced(packet, _original=original, _node=node):
            stack_in = _stack_labels(packet)
            ttl_in = _ttl(packet)
            decision: ForwardingDecision = _original(packet)
            inner = packet.inner if isinstance(packet, MPLSPacket) else packet
            trace = self.traces.setdefault(
                inner.uid, PacketTrace(uid=inner.uid, flow_id=inner.flow_id)
            )
            out = decision.packet
            trace.hops.append(
                HopRecord(
                    time=self.network.scheduler.now,
                    node=_node.name,
                    stack_in=stack_in,
                    ttl_in=ttl_in,
                    action=decision.action,
                    stack_out=_stack_labels(out) if out is not None else (),
                    reason=decision.reason,
                )
            )
            return decision

        node.receive = traced

    # -- queries --------------------------------------------------------
    def trace_of(self, uid: int) -> PacketTrace:
        return self.traces[uid]

    def traces_for_flow(self, flow_id: int) -> List[PacketTrace]:
        return [t for t in self.traces.values() if t.flow_id == flow_id]

    def dropped_traces(self) -> List[PacketTrace]:
        return [t for t in self.traces.values() if t.dropped]
