"""Packet tracing: record a packet's journey hop by hop.

The tracer is a *consumer of the telemetry event stream*: it attaches a
:class:`~repro.obs.events.CallbackSink` to the process-wide event log
and folds every :class:`~repro.obs.events.PacketForwarded` /
:class:`~repro.obs.events.PacketDropped` record into per-packet
:class:`PacketTrace` objects -- producing the per-packet view of the
paper's Figure 2 ("MPLS packet exchange") for any traffic the
simulation carries, without wrapping or monkey-patching any node.

Constructing a tracer enables telemetry on the default
:class:`~repro.obs.telemetry.Telemetry` (the data plane emits nothing
otherwise); :meth:`NetworkTracer.detach` restores the previous state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.mpls.forwarding import Action
from repro.net.network import MPLSNetwork
from repro.obs.events import (
    CallbackSink,
    Event,
    PacketDropped,
    PacketForwarded,
)
from repro.obs.telemetry import Telemetry, get_telemetry


@dataclass(frozen=True)
class HopRecord:
    """One node's handling of one packet."""

    time: float
    node: str
    stack_in: Tuple[int, ...]
    ttl_in: int
    action: Action
    stack_out: Tuple[int, ...]
    reason: Optional[str]


@dataclass
class PacketTrace:
    """The full journey of one packet (keyed by its uid)."""

    uid: int
    flow_id: int
    hops: List[HopRecord] = field(default_factory=list)

    @property
    def path(self) -> List[str]:
        return [hop.node for hop in self.hops]

    @property
    def delivered(self) -> bool:
        return bool(self.hops) and self.hops[-1].action is Action.FORWARD_IP

    @property
    def dropped(self) -> bool:
        return any(hop.action is Action.DISCARD for hop in self.hops)

    def label_journey(self) -> List[Tuple[str, Tuple[int, ...]]]:
        """(node, outgoing label stack) along the path -- the Figure 2
        view of label evolution."""
        return [(hop.node, hop.stack_out) for hop in self.hops]

    def render(self) -> str:
        lines = [f"packet uid={self.uid} flow={self.flow_id}:"]
        for hop in self.hops:
            stack_in = list(hop.stack_in) or "unlabelled"
            stack_out = list(hop.stack_out) or "unlabelled"
            outcome = hop.action.value
            if hop.reason:
                outcome += f" ({hop.reason})"
            lines.append(
                f"  t={hop.time * 1e3:8.3f}ms {hop.node:10s} "
                f"in={stack_in!s:>16} out={stack_out!s:>16} {outcome}"
            )
        return "\n".join(lines)


class NetworkTracer:
    """Records every packet's journey through a network.

    Construct *after* the network; traces accumulate in :attr:`traces`
    as the simulation emits packet events.  Only events for nodes that
    belong to ``network`` are folded in, so concurrent networks sharing
    the default telemetry do not pollute each other's traces.
    """

    def __init__(
        self, network: MPLSNetwork, telemetry: Optional[Telemetry] = None
    ) -> None:
        self.network = network
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        self.traces: Dict[int, PacketTrace] = {}
        self._was_enabled = self.telemetry.enabled
        self.telemetry.enable()
        self._sink = self.telemetry.events.add_sink(
            CallbackSink(self._on_event)
        )

    def _on_event(self, event: Event) -> None:
        if isinstance(event, PacketForwarded):
            if event.node not in self.network.nodes:
                return
            self._hop(
                event,
                action=Action(event.action),
                stack_out=tuple(event.labels_out),
                reason=None,
            )
        elif isinstance(event, PacketDropped):
            if event.node not in self.network.nodes:
                return
            self._hop(
                event,
                action=Action.DISCARD,
                stack_out=(),
                reason=event.reason,
            )

    def _hop(
        self,
        event,
        action: Action,
        stack_out: Tuple[int, ...],
        reason: Optional[str],
    ) -> None:
        trace = self.traces.setdefault(
            event.uid, PacketTrace(uid=event.uid, flow_id=event.flow_id)
        )
        time = (
            event.time
            if event.time is not None
            else self.network.scheduler.now
        )
        trace.hops.append(
            HopRecord(
                time=time,
                node=event.node,
                stack_in=tuple(event.labels_in),
                ttl_in=event.ttl_in,
                action=action,
                stack_out=stack_out,
                reason=reason,
            )
        )

    def detach(self) -> None:
        """Stop tracing and restore the telemetry switch."""
        self.telemetry.events.remove_sink(self._sink)
        if not self._was_enabled:
            self.telemetry.disable()

    # -- queries --------------------------------------------------------
    def trace_of(self, uid: int) -> PacketTrace:
        return self.traces[uid]

    def traces_for_flow(self, flow_id: int) -> List[PacketTrace]:
        return [t for t in self.traces.values() if t.flow_id == flow_id]

    def dropped_traces(self) -> List[PacketTrace]:
        return [t for t in self.traces.values() if t.dropped]
