"""Packet tracing: record a packet's journey hop by hop.

The tracer is a thin view over the span layer: it attaches a
:class:`~repro.obs.spans.SpanRecorder` (sampling everything) to the
process-wide event log and projects each packet's hop spans down to
the flat :class:`PacketTrace` / :class:`HopRecord` shape -- the
per-packet view of the paper's Figure 2 ("MPLS packet exchange") for
any traffic the simulation carries, without wrapping or
monkey-patching any node.  Consumers that want the full tree (hardware
phases, RTL sub-spans, fault annotations) read
:attr:`NetworkTracer.recorder` directly.

Constructing a tracer enables telemetry on the default
:class:`~repro.obs.telemetry.Telemetry` (the data plane emits nothing
otherwise); :meth:`NetworkTracer.detach` restores the previous state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.mpls.forwarding import Action
from repro.net.network import MPLSNetwork
from repro.obs.spans import KIND_HOP, SpanRecorder, Trace
from repro.obs.telemetry import Telemetry, get_telemetry


@dataclass(frozen=True)
class HopRecord:
    """One node's handling of one packet."""

    time: float
    node: str
    stack_in: Tuple[int, ...]
    ttl_in: int
    action: Action
    stack_out: Tuple[int, ...]
    reason: Optional[str]


@dataclass
class PacketTrace:
    """The full journey of one packet (keyed by its uid)."""

    uid: int
    flow_id: int
    hops: List[HopRecord] = field(default_factory=list)

    @property
    def path(self) -> List[str]:
        return [hop.node for hop in self.hops]

    @property
    def delivered(self) -> bool:
        return bool(self.hops) and self.hops[-1].action is Action.FORWARD_IP

    @property
    def dropped(self) -> bool:
        return any(hop.action is Action.DISCARD for hop in self.hops)

    def label_journey(self) -> List[Tuple[str, Tuple[int, ...]]]:
        """(node, outgoing label stack) along the path -- the Figure 2
        view of label evolution."""
        return [(hop.node, hop.stack_out) for hop in self.hops]

    def render(self) -> str:
        lines = [f"packet uid={self.uid} flow={self.flow_id}:"]
        for hop in self.hops:
            stack_in = list(hop.stack_in) or "unlabelled"
            stack_out = list(hop.stack_out) or "unlabelled"
            outcome = hop.action.value
            if hop.reason:
                outcome += f" ({hop.reason})"
            lines.append(
                f"  t={hop.time * 1e3:8.3f}ms {hop.node:10s} "
                f"in={stack_in!s:>16} out={stack_out!s:>16} {outcome}"
            )
        return "\n".join(lines)


def _project(trace: Trace) -> PacketTrace:
    """Flatten one span tree to the hop-record view."""
    out = PacketTrace(uid=trace.uid, flow_id=trace.flow_id)
    for span in trace.spans:
        if span.kind != KIND_HOP:
            continue
        attrs = span.attributes
        out.hops.append(
            HopRecord(
                time=span.start,
                node=attrs["node"],
                stack_in=tuple(attrs.get("labels_in", ())),
                ttl_in=attrs.get("ttl_in", 0),
                action=Action(attrs["action"]),
                stack_out=tuple(attrs.get("labels_out", ())),
                reason=attrs.get("reason"),
            )
        )
    return out


class NetworkTracer:
    """Records every packet's journey through a network.

    Construct *after* the network; traces accumulate as the simulation
    emits packet events.  Only events for nodes that belong to
    ``network`` are folded in, so concurrent networks sharing the
    default telemetry do not pollute each other's traces.
    """

    def __init__(
        self, network: MPLSNetwork, telemetry: Optional[Telemetry] = None
    ) -> None:
        self.network = network
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        self.recorder = SpanRecorder(
            sample_rate=1.0,
            nodes=set(network.nodes),
            telemetry=self.telemetry,
        )

    @property
    def traces(self) -> Dict[int, PacketTrace]:
        return {
            trace.uid: _project(trace)
            for trace in self.recorder.traces(include_probes=True)
        }

    def detach(self) -> None:
        """Stop tracing and restore the telemetry switch."""
        self.recorder.detach()

    # -- queries --------------------------------------------------------
    def trace_of(self, uid: int) -> PacketTrace:
        return _project(self.recorder.trace_of(uid))

    def traces_for_flow(self, flow_id: int) -> List[PacketTrace]:
        return [
            _project(t)
            for t in self.recorder.traces(flow=flow_id)
        ]

    def dropped_traces(self) -> List[PacketTrace]:
        return [
            t for t in self.traces.values() if t.dropped
        ]
