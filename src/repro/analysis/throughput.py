"""Throughput estimation from cycle costs.

Converts per-packet clock-cycle costs into packet and bit rates at a
device clock, and derives the line rate the architecture can sustain
for a given packet size -- the practical reading of the paper's
Table 6.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.device import FPGADevice, STRATIX_EP1S40
from repro.core.timing import HardwareCycleModel


@dataclass(frozen=True)
class ThroughputEstimate:
    """Label-switching throughput at one operating point."""

    n_entries: int
    cycles_per_packet: int
    packets_per_second: float
    packet_size_bytes: int
    bits_per_second: float

    @property
    def mbps(self) -> float:
        return self.bits_per_second / 1e6


@dataclass(frozen=True)
class LineRateFeasibility:
    """Can the modifier keep a link busy at a given operating point?"""

    cycles_per_packet: float
    packet_size_bytes: int
    link_bps: float
    modifier_pps: float
    link_pps: float

    @property
    def feasible(self) -> bool:
        return self.modifier_pps >= self.link_pps

    @property
    def utilization(self) -> float:
        """Fraction of the modifier consumed at full line rate."""
        return self.link_pps / self.modifier_pps

    @property
    def max_line_rate_bps(self) -> float:
        """The fastest link this operating point can saturate."""
        return self.modifier_pps * self.packet_size_bytes * 8


def line_rate_feasibility(
    cycles_per_packet: float,
    packet_size_bytes: int = 500,
    link_bps: float = 100e6,
    device: FPGADevice = STRATIX_EP1S40,
) -> LineRateFeasibility:
    """Compare the modifier's packet rate against a link's.

    ``cycles_per_packet`` is typically a measured mean from a
    :class:`~repro.core.hwnode.HardwareLSRNode` run, or a Table 6
    worst case.
    """
    if cycles_per_packet <= 0:
        raise ValueError("cycles_per_packet must be positive")
    if packet_size_bytes < 1 or link_bps <= 0:
        raise ValueError("packet size and link rate must be positive")
    modifier_pps = device.clock_hz / cycles_per_packet
    link_pps = link_bps / (packet_size_bytes * 8)
    return LineRateFeasibility(
        cycles_per_packet=cycles_per_packet,
        packet_size_bytes=packet_size_bytes,
        link_bps=link_bps,
        modifier_pps=modifier_pps,
        link_pps=link_pps,
    )


def estimate_throughput(
    n_entries: int,
    packet_size_bytes: int = 500,
    device: FPGADevice = STRATIX_EP1S40,
    average_case: bool = False,
) -> ThroughputEstimate:
    """Throughput of the worst-case (or average-case) label swap.

    ``average_case`` assumes hits are uniformly distributed through the
    table, halving the expected scan length.
    """
    if n_entries < 1:
        raise ValueError("n_entries must be >= 1")
    if packet_size_bytes < 1:
        raise ValueError("packet size must be >= 1")
    hw = HardwareCycleModel(device)
    if average_case:
        # expected hit position is (n-1)/2
        mean_pos = (n_entries - 1) // 2
        cycles = hw.search_hit(mean_pos) + 6
    else:
        cycles = hw.update_swap_worst(n_entries)
    pps = device.clock_hz / cycles
    return ThroughputEstimate(
        n_entries=n_entries,
        cycles_per_packet=cycles,
        packets_per_second=pps,
        packet_size_bytes=packet_size_bytes,
        bits_per_second=pps * packet_size_bytes * 8,
    )
