"""Two-phase synchronous simulator.

Every simulated clock cycle runs in two phases:

1. **Settle** -- all combinational processes are evaluated repeatedly
   until no wire changes value (a fixed point).  The iteration bound
   catches combinational loops, which are modelling errors.
2. **Tick** -- all sequential elements (registers, memories, FSM state)
   commit their staged updates atomically, then tracing hooks observe
   the new architectural state.

Components register themselves with the simulator on construction, so a
design is simply a tree of :class:`Component` objects sharing one
:class:`Simulator`.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.hdl.signal import Reg, Signal, Wire


class CombinationalLoopError(RuntimeError):
    """The settle phase did not reach a fixed point.

    Raised when wires keep changing after ``max_settle_passes``
    iterations -- the Python analogue of an unstable combinational loop
    in RTL.
    """


class Component:
    """Base class for everything that lives in the simulated design.

    Subclasses override any of:

    * :meth:`settle` -- combinational logic; read any signal, drive
      wires, stage registers.  May run several times per cycle and must
      therefore be side-effect free apart from signal updates.
    * :meth:`tick` -- sequential commit beyond plain :class:`Reg`
      commits (e.g. memory arrays).  Runs exactly once per cycle.
    * :meth:`reset` -- return internal state to power-on values.
    """

    def __init__(self, sim: "Simulator", name: str) -> None:
        self.sim = sim
        self.name = name
        sim._register_component(self)

    # -- construction helpers ------------------------------------------------
    def wire(self, name: str, width: int = 1, default: int = 0) -> Wire:
        return self.sim.add_wire(f"{self.name}.{name}", width, default)

    def reg(self, name: str, width: int = 1, default: int = 0) -> Reg:
        return self.sim.add_reg(f"{self.name}.{name}", width, default)

    # -- simulation hooks ----------------------------------------------------
    def settle(self) -> None:  # pragma: no cover - default no-op
        """Combinational logic; may run multiple times per cycle."""

    def tick(self) -> None:  # pragma: no cover - default no-op
        """Extra sequential commit work (memories etc.)."""

    def reset(self) -> None:  # pragma: no cover - default no-op
        """Restore power-on state beyond signal defaults."""


class Simulator:
    """Owns the clock, the signal table, and the component list.

    Parameters
    ----------
    max_settle_passes:
        Upper bound on fixed-point iterations per cycle before a
        :class:`CombinationalLoopError` is raised.  Real designs here
        settle in a handful of passes.
    """

    def __init__(self, max_settle_passes: int = 64) -> None:
        self.max_settle_passes = max_settle_passes
        self.cycle = 0
        self._components: List[Component] = []
        self._wires: List[Wire] = []
        self._regs: List[Reg] = []
        self._signals: Dict[str, Signal] = {}
        self._tick_hooks: List[Callable[[int], None]] = []

    # -- registration ----------------------------------------------------
    def _register_component(self, component: Component) -> None:
        self._components.append(component)

    def add_wire(self, name: str, width: int = 1, default: int = 0) -> Wire:
        wire = Wire(name, width, default)
        self._add_signal(wire)
        self._wires.append(wire)
        return wire

    def add_reg(self, name: str, width: int = 1, default: int = 0) -> Reg:
        reg = Reg(name, width, default)
        self._add_signal(reg)
        self._regs.append(reg)
        return reg

    def _add_signal(self, signal: Signal) -> None:
        if signal.name in self._signals:
            raise ValueError(f"duplicate signal name {signal.name!r}")
        self._signals[signal.name] = signal

    @property
    def signals(self) -> Dict[str, Signal]:
        """Name -> signal mapping (read-only view by convention)."""
        return self._signals

    @property
    def components(self) -> List[Component]:
        """The registered components, in construction order.

        Observability tooling (:class:`repro.obs.profiling.CycleProfiler`)
        discovers FSMs and memories from this list instead of reaching
        into private state.
        """
        return list(self._components)

    def signal(self, name: str) -> Signal:
        return self._signals[name]

    def on_tick(self, hook: Callable[[int], None]) -> None:
        """Register a hook called after each clock edge with the cycle
        number just completed (used by waveform recorders and the cycle
        profiler)."""
        self._tick_hooks.append(hook)

    def remove_tick_hook(self, hook: Callable[[int], None]) -> None:
        """Detach a hook previously passed to :meth:`on_tick`."""
        self._tick_hooks.remove(hook)

    # -- simulation ------------------------------------------------------
    def _settle(self) -> None:
        for wire in self._wires:
            wire.begin_settle()
        for pass_index in range(self.max_settle_passes):
            before = [w.value for w in self._wires]
            if pass_index:
                for wire in self._wires:
                    wire.clear_driven()
                # conditional stages from earlier passes may rest on
                # wire values that this pass revises; only the final
                # pass's staging is authoritative
                for reg in self._regs:
                    reg.unstage()
            for component in self._components:
                component.settle()
            after = [w.value for w in self._wires]
            if before == after:
                return
        raise CombinationalLoopError(
            f"combinational logic failed to settle within "
            f"{self.max_settle_passes} passes at cycle {self.cycle}"
        )

    def step(self, cycles: int = 1) -> int:
        """Advance the clock by ``cycles`` edges; returns the new cycle
        count."""
        for _ in range(cycles):
            self._settle()
            for reg in self._regs:
                reg.commit()
            for component in self._components:
                component.tick()
            self.cycle += 1
            for hook in self._tick_hooks:
                hook(self.cycle)
        return self.cycle

    def settle_only(self) -> None:
        """Settle combinational logic without advancing the clock.

        Useful for observing Mealy outputs that depend on inputs applied
        since the last edge.
        """
        self._settle()

    def run_until(
        self,
        condition: Callable[[], bool],
        max_cycles: int = 100_000,
    ) -> int:
        """Step until ``condition()`` is true *after* a clock edge.

        Returns the number of cycles consumed.  Raises ``TimeoutError``
        if the condition does not become true within ``max_cycles`` --
        in a cycle-accurate model an unbounded wait is always a bug.
        """
        start = self.cycle
        for _ in range(max_cycles):
            self.step()
            if condition():
                return self.cycle - start
        raise TimeoutError(
            f"condition not met within {max_cycles} cycles "
            f"(started at cycle {start})"
        )

    def reset(self) -> None:
        """Asynchronous reset: all signals to defaults, components to
        power-on state, cycle counter rezeroed."""
        for signal in self._signals.values():
            signal.reset()
        for component in self._components:
            component.reset()
        self.cycle = 0
