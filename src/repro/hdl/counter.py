"""Loadable up/down counter.

The paper's datapath (Figures 12 and 13) uses counters in two roles:
read/write address generation for the information-base memory
components, and the TTL decrementer for the label entry being updated.
One parameterized counter covers both.

Control wires (inputs, sampled at the clock edge):

* ``en``   -- count enable; when high the counter increments or
  decrements according to ``down``.
* ``down`` -- direction select (0 = up, 1 = down).
* ``load`` -- when high, the counter adopts ``load_value`` instead of
  counting (load wins over ``en``).
* ``clear`` -- synchronous clear to zero (wins over everything).

Output:

* ``count`` (reg) -- the current value.

The counter wraps modulo ``2**width``, as a hardware counter would.
"""

from __future__ import annotations

from repro.hdl.simulator import Component, Simulator


class Counter(Component):
    """An up/down counter with synchronous load and clear."""

    def __init__(self, sim: Simulator, name: str, width: int) -> None:
        super().__init__(sim, name)
        self.width = width
        self._modulus = 1 << width
        self.en = self.wire("en", 1)
        self.down = self.wire("down", 1)
        self.load = self.wire("load", 1)
        self.load_value = self.wire("load_value", width)
        self.clear = self.wire("clear", 1)
        self.count = self.reg("count", width)

    def settle(self) -> None:
        if self.clear.value:
            self.count.stage(0)
        elif self.load.value:
            self.count.stage(self.load_value.value)
        elif self.en.value:
            delta = -1 if self.down.value else 1
            self.count.stage((self.count.value + delta) % self._modulus)
        else:
            self.count.stage(self.count.value)
