"""Declarative finite state machine framework.

The paper's control unit is four communicating state machines (main,
label-stack interface, information-base interface, search).  This module
gives them a common shape:

* the current state lives in a :class:`~repro.hdl.signal.Reg`, so state
  changes take effect exactly one clock edge after the transition logic
  decides them -- matching the Moore machines in the paper's Figures
  8-11;
* subclasses implement :meth:`FSM.transition` (next-state logic, reads
  inputs, returns the next state) and :meth:`FSM.output` (output logic,
  drives wires as a function of the *current* state and, for Mealy
  outputs, the inputs);
* both run during the settle phase; the state register commits on the
  tick like every other register.

States are interned :class:`State` objects so typos fail fast instead of
silently creating new states.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.hdl.simulator import Component, Simulator


class State:
    """An interned FSM state with a stable integer encoding."""

    __slots__ = ("name", "code")

    def __init__(self, name: str, code: int) -> None:
        self.name = name
        self.code = code

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<State {self.name}={self.code}>"


class FSM(Component):
    """A clocked state machine.

    Parameters
    ----------
    sim, name:
        As for :class:`~repro.hdl.simulator.Component`.
    states:
        Iterable of state names.  The first is the reset state.
    """

    def __init__(self, sim: Simulator, name: str, states: Iterable[str]) -> None:
        super().__init__(sim, name)
        names = list(states)
        if not names:
            raise ValueError(f"{name}: an FSM needs at least one state")
        if len(set(names)) != len(names):
            raise ValueError(f"{name}: duplicate state names in {names}")
        self._states: Dict[str, State] = {
            n: State(n, i) for i, n in enumerate(names)
        }
        self._by_code: Tuple[State, ...] = tuple(self._states.values())
        width = max(1, (len(names) - 1).bit_length())
        self._state_reg = self.reg("state", width=width, default=0)

    # -- state access ------------------------------------------------------
    @property
    def state(self) -> State:
        """The current (registered) state."""
        return self._by_code[self._state_reg.value]

    @property
    def state_name(self) -> str:
        return self.state.name

    def s(self, name: str) -> State:
        """Look up a state by name (typo-safe)."""
        try:
            return self._states[name]
        except KeyError:
            raise KeyError(f"{self.name}: unknown state {name!r}") from None

    def in_state(self, name: str) -> bool:
        return self._state_reg.value == self.s(name).code

    # -- subclass interface --------------------------------------------------
    def transition(self) -> State:
        """Next-state logic.  Read inputs, return the next state."""
        raise NotImplementedError

    def output(self) -> None:
        """Output logic.  Drive wires from the current state/inputs."""

    # -- simulation hooks ------------------------------------------------------
    def settle(self) -> None:
        self.output()
        nxt = self.transition()
        if not isinstance(nxt, State):
            raise TypeError(
                f"{self.name}.transition() must return a State, got {nxt!r}"
            )
        self._state_reg.stage(nxt.code)

    def reset(self) -> None:
        self._state_reg.reset()
