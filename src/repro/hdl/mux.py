"""Combinational multiplexer.

The datapath of Figure 12 is full of source selectors: the CoS bits of a
new stack entry come either from the old entry or from the control path;
the TTL comes from the decrement counter or from the control path; the
label comes from external data or from the information base; the search
index comes from memory or from a stack entry.  All are instances of an
n-way mux.
"""

from __future__ import annotations

from typing import Sequence

from repro.hdl.signal import Signal
from repro.hdl.simulator import Component, Simulator


class Mux(Component):
    """``out = inputs[sel]`` -- an n-way combinational selector.

    The inputs are existing signals (wires or registers) owned by other
    components; the mux only creates its ``sel`` input and ``out``
    output.  An out-of-range select raises, as it indicates a control
    bug rather than a don't-care.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        inputs: Sequence[Signal],
        width: int,
    ) -> None:
        super().__init__(sim, name)
        if not inputs:
            raise ValueError(f"{name}: a mux needs at least one input")
        for sig in inputs:
            if sig.width > width:
                raise ValueError(
                    f"{name}: input {sig.name} is wider ({sig.width}) than "
                    f"the mux output ({width})"
                )
        self.inputs = tuple(inputs)
        self.width = width
        sel_width = max(1, (len(inputs) - 1).bit_length())
        self.sel = self.wire("sel", sel_width)
        self.out = self.wire("out", width)

    def settle(self) -> None:
        sel = self.sel.value
        if sel >= len(self.inputs):
            raise IndexError(
                f"{self.name}: select {sel} out of range "
                f"({len(self.inputs)} inputs)"
            )
        self.out.drive(self.inputs[sel].value)
