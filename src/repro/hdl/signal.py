"""Width-checked signals: the wires and registers of the RTL model.

Two signal kinds exist, matching the two roles a net plays in a
synchronous design:

* :class:`Wire` -- a combinational net.  Its value is (re)driven during
  the settle phase of every cycle by exactly one combinational process.
  Reading an undriven wire returns its ``default``.
* :class:`Reg` -- a clocked register.  Combinational logic *stages* the
  next value via :meth:`Reg.stage`; the simulator commits all staged
  values atomically on the clock edge.  Between edges, reads always
  observe the pre-edge value, which is what gives the simulation its
  race-free, cycle-accurate semantics.

All signals carry a bit ``width`` and reject out-of-range values, so a
modelling bug that would silently truncate in Python is caught loudly
(the hardware analogue -- a too-narrow bus -- is one of the classic RTL
mistakes).
"""

from __future__ import annotations

from typing import Optional


class SignalError(Exception):
    """Base class for signal misuse (double-drive, bad stage, ...)."""


class WidthError(SignalError, ValueError):
    """A value does not fit in the signal's declared bit width."""


class Signal:
    """Common behaviour for wires and registers.

    Parameters
    ----------
    name:
        Hierarchical name used in traces and error messages.
    width:
        Bit width; values must satisfy ``0 <= value < 2**width``.
    default:
        Reset / undriven value.
    """

    __slots__ = ("name", "width", "default", "_value", "_max")

    def __init__(self, name: str, width: int = 1, default: int = 0) -> None:
        if width < 1:
            raise WidthError(f"{name}: width must be >= 1, got {width}")
        self.name = name
        self.width = width
        self._max = (1 << width) - 1
        self.default = self._check(default)
        self._value = self.default

    def _check(self, value: int) -> int:
        if not isinstance(value, int) or isinstance(value, bool):
            value = int(value)
        if value < 0 or value > self._max:
            raise WidthError(
                f"{self.name}: value {value} does not fit in {self.width} bits"
            )
        return value

    @property
    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        """Return the signal to its default value."""
        self._value = self.default

    def __int__(self) -> int:
        return self._value

    def __bool__(self) -> bool:
        return bool(self._value)

    def __index__(self) -> int:
        return self._value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Signal):
            return self._value == other._value
        if isinstance(other, int):
            return self._value == other
        return NotImplemented

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}[{self.width}]={self._value}>"


class Wire(Signal):
    """A combinational net, driven during the settle phase.

    The simulator clears the *driven* flag at the start of each settle
    phase; a combinational process then calls :meth:`drive`.  Driving a
    wire twice in one settle pass with different values indicates two
    processes fighting over the net and raises :class:`SignalError`.
    """

    __slots__ = ("_driven",)

    def __init__(self, name: str, width: int = 1, default: int = 0) -> None:
        super().__init__(name, width, default)
        self._driven = False

    def begin_settle(self) -> None:
        """Called by the simulator once at the start of the settle
        phase: revert to the default (undriven) value."""
        self._driven = False
        self._value = self.default

    def clear_driven(self) -> None:
        """Called between settle passes: keep the value from the
        previous pass (so early readers observe it) but allow the
        driver to re-drive."""
        self._driven = False

    def drive(self, value: int) -> bool:
        """Drive the wire; returns True if the value changed.

        The change indication is what the simulator's fixed-point
        iteration uses to decide whether another settle pass is needed.
        """
        value = self._check(value)
        if self._driven and self._value != value:
            raise SignalError(
                f"wire {self.name} driven to conflicting values "
                f"{self._value} and {value} in one settle pass"
            )
        changed = self._value != value
        self._value = value
        self._driven = True
        return changed


class Reg(Signal):
    """A clocked register with staged-next-value semantics."""

    __slots__ = ("_next", "_staged")

    def __init__(self, name: str, width: int = 1, default: int = 0) -> None:
        super().__init__(name, width, default)
        self._next: Optional[int] = None
        self._staged = False

    def stage(self, value: int) -> None:
        """Stage ``value`` to be committed at the next clock edge."""
        self._next = self._check(value)
        self._staged = True

    @property
    def staged(self) -> bool:
        return self._staged

    @property
    def next_value(self) -> int:
        """The value this register will hold after the next edge."""
        return self._next if self._staged else self._value

    def unstage(self) -> None:
        """Discard any staged value.

        Called by the simulator between settle passes: combinational
        logic re-runs every pass, so only the final pass's staging may
        survive.  Without this, a stage() performed under a condition
        that a later pass revokes (e.g. a comparator output before its
        inputs settled) would commit stale data.
        """
        self._next = None
        self._staged = False

    def commit(self) -> bool:
        """Clock edge: adopt the staged value.  Returns True on change."""
        if not self._staged:
            return False
        changed = self._value != self._next
        self._value = self._next  # type: ignore[assignment]
        self._next = None
        self._staged = False
        return changed

    def force(self, value: int) -> None:
        """Asynchronously load ``value``, bypassing the clock.

        The hardware analogue of a parallel-load / preset pin: the
        register adopts the value immediately and any staged next value
        is discarded.  Used by backdoor paths that change state without
        a clock edge (e.g. the info-base bank swap loading the write
        counter), never by ordinary combinational logic -- that must
        :meth:`stage`.
        """
        self._value = self._check(value)
        self._next = None
        self._staged = False

    def reset(self) -> None:
        super().reset()
        self._next = None
        self._staged = False
