"""Equality comparators.

The paper's datapath contains three comparators of different widths
(32, 20 and 10 bits) used to match packet identifiers and labels against
information-base contents, and to compare the read index against the
write index when deciding whether a search has exhausted the stored
pairs.  The comparator is purely combinational: ``eq`` follows ``a`` and
``b`` within the settle phase.
"""

from __future__ import annotations

from repro.hdl.simulator import Component, Simulator


class EqualityComparator(Component):
    """Combinational ``a == b`` over ``width`` bits.

    Wires: ``a``, ``b`` (inputs), ``eq`` (output, 1 bit).
    """

    def __init__(self, sim: Simulator, name: str, width: int) -> None:
        super().__init__(sim, name)
        self.width = width
        self.a = self.wire("a", width)
        self.b = self.wire("b", width)
        self.eq = self.wire("eq", 1)

    def settle(self) -> None:
        self.eq.drive(1 if self.a.value == self.b.value else 0)
