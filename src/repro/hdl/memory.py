"""Synchronous single-port RAM, the model for FPGA block memory.

The information base of the paper (Figure 13) is built from memory
components for the index, label and operation of each stored pair.  FPGA
block RAM has *registered* reads: the read address presented in cycle
``t`` produces data in cycle ``t+1``.  That one-cycle latency is exactly
what gives the paper's search loop its 3-cycles-per-entry cost
(set address / wait for data / compare), so the model preserves it.

Writes are likewise synchronous: ``wr_en``/``wr_addr``/``wr_data``
sampled at the clock edge take effect in the array immediately after
the edge (write-first is irrelevant here because the design never reads
and writes the same address in one cycle).
"""

from __future__ import annotations

from typing import List

from repro.hdl.signal import WidthError
from repro.hdl.simulator import Component, Simulator


class SyncMemory(Component):
    """A ``depth`` x ``width`` synchronous RAM.

    Signals (all created on construction, prefixed with the instance
    name):

    * ``rd_addr`` (wire, input) -- read address, sampled at the edge.
    * ``rd_data`` (reg, output) -- data for the address sampled at the
      previous edge.
    * ``wr_en`` (wire, input) -- write strobe.
    * ``wr_addr`` / ``wr_data`` (wires, inputs).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        depth: int,
        width: int,
    ) -> None:
        super().__init__(sim, name)
        if depth < 1:
            raise ValueError(f"{name}: depth must be >= 1, got {depth}")
        self.depth = depth
        self.width = width
        addr_width = max(1, (depth - 1).bit_length())
        self.addr_width = addr_width
        self.rd_addr = self.wire("rd_addr", addr_width)
        self.rd_data = self.reg("rd_data", width)
        self.wr_en = self.wire("wr_en", 1)
        self.wr_addr = self.wire("wr_addr", addr_width)
        self.wr_data = self.wire("wr_data", width)
        self._array: List[int] = [0] * depth
        self._max = (1 << width) - 1

    def tick(self) -> None:
        if self.wr_en.value:
            addr = self.wr_addr.value
            if addr >= self.depth:
                raise IndexError(
                    f"{self.name}: write address {addr} out of range "
                    f"(depth {self.depth})"
                )
            self._array[addr] = self.wr_data.value
        rd = self.rd_addr.value
        if rd >= self.depth:
            raise IndexError(
                f"{self.name}: read address {rd} out of range "
                f"(depth {self.depth})"
            )
        self.rd_data.stage(self._array[rd])
        self.rd_data.commit()

    def reset(self) -> None:
        self._array = [0] * self.depth

    # -- test/debug backdoor ------------------------------------------------
    def peek(self, addr: int) -> int:
        """Read the array directly, bypassing the clocked port."""
        return self._array[addr]

    def poke(self, addr: int, value: int) -> None:
        """Write the array directly, bypassing the clocked port."""
        if value < 0 or value > self._max:
            raise WidthError(
                f"{self.name}: poke value {value} exceeds {self.width} bits"
            )
        self._array[addr] = value

    def dump(self) -> List[int]:
        """A copy of the backing array (for assertions in tests)."""
        return list(self._array)
