"""Clocked register with write enable.

Models the "new label entry" register of the paper's datapath
(Figure 12): it captures a value presented on its data input whenever
the enable is asserted at a clock edge, and holds it otherwise.
"""

from __future__ import annotations

from repro.hdl.simulator import Component, Simulator


class Register(Component):
    """A ``width``-bit register with a write-enable input.

    Wires: ``d`` (data in), ``en`` (write enable), ``clear``
    (synchronous clear).  Output: ``q`` (registered value).
    """

    def __init__(self, sim: Simulator, name: str, width: int) -> None:
        super().__init__(sim, name)
        self.width = width
        self.d = self.wire("d", width)
        self.en = self.wire("en", 1)
        self.clear = self.wire("clear", 1)
        self.q = self.reg("q", width)

    def settle(self) -> None:
        if self.clear.value:
            self.q.stage(0)
        elif self.en.value:
            self.q.stage(self.d.value)
        else:
            self.q.stage(self.q.value)
