"""Per-cycle signal tracing with ASCII and VCD rendering.

The paper's results (Figures 14-16) are simulator waveform screenshots.
:class:`WaveformRecorder` captures selected signals after every clock
edge; :func:`render_ascii` turns a capture into the textual waveform the
benchmarks print, and :func:`dump_vcd` emits an IEEE-1364 value change
dump loadable in GTKWave for anyone who wants the genuine waveform view.
"""

from __future__ import annotations

import io
from typing import Dict, Iterable, List, Optional, Sequence

from repro.hdl.signal import Signal
from repro.hdl.simulator import Simulator


class WaveformRecorder:
    """Records the value of selected signals after every clock edge.

    Parameters
    ----------
    sim:
        The simulator to attach to (via its tick hook).
    signals:
        Signals to trace.  If ``None``, every signal in the simulator at
        attach time is traced.
    """

    def __init__(
        self,
        sim: Simulator,
        signals: Optional[Iterable[Signal]] = None,
    ) -> None:
        self.sim = sim
        if signals is None:
            signals = list(sim.signals.values())
        self.signals: List[Signal] = list(signals)
        self.cycles: List[int] = []
        self.trace: Dict[str, List[int]] = {s.name: [] for s in self.signals}
        self._enabled = True
        sim.on_tick(self._capture)

    def _capture(self, cycle: int) -> None:
        if not self._enabled:
            return
        self.cycles.append(cycle)
        for sig in self.signals:
            self.trace[sig.name].append(sig.value)

    def pause(self) -> None:
        self._enabled = False

    def resume(self) -> None:
        self._enabled = True

    def clear(self) -> None:
        self.cycles.clear()
        for values in self.trace.values():
            values.clear()

    def changes(self, name: str) -> List[tuple]:
        """``(cycle, value)`` pairs at which the named signal changed."""
        values = self.trace[name]
        out = []
        prev = None
        for cycle, value in zip(self.cycles, values):
            if value != prev:
                out.append((cycle, value))
                prev = value
        return out

    def value_at(self, name: str, cycle: int) -> int:
        """The traced value of ``name`` at ``cycle``."""
        idx = self.cycles.index(cycle)
        return self.trace[name][idx]


def render_ascii(
    recorder: WaveformRecorder,
    names: Optional[Sequence[str]] = None,
    start: int = 0,
    end: Optional[int] = None,
    max_width: int = 100,
) -> str:
    """Render a recorder's capture as an ASCII waveform table.

    Single-bit signals render as ``_``/``#`` level bars; multi-bit
    signals render their value at each change and ``.`` while stable.
    """
    if names is None:
        names = [s.name for s in recorder.signals]
    if not recorder.cycles:
        return "(no cycles captured)"
    end = end if end is not None else recorder.cycles[-1]
    window = [
        i
        for i, c in enumerate(recorder.cycles)
        if start <= c <= end
    ][: max_width]
    label_width = max(len(n) for n in names) + 1
    out = io.StringIO()
    header = " " * label_width + "cycle " + " ".join(
        f"{recorder.cycles[i] % 100:>3d}" for i in window
    )
    out.write(header + "\n")
    sig_by_name = {s.name: s for s in recorder.signals}
    for name in names:
        values = recorder.trace[name]
        sig = sig_by_name[name]
        row: List[str] = []
        prev: Optional[int] = None
        for i in window:
            v = values[i]
            if sig.width == 1:
                row.append("###" if v else "___")
            else:
                row.append(f"{v:>3d}" if v != prev else "  .")
            prev = v
        out.write(f"{name:<{label_width}}      " + " ".join(row) + "\n")
    return out.getvalue()


def dump_vcd(
    recorder: WaveformRecorder,
    path: str,
    timescale: str = "20 ns",
) -> None:
    """Write the capture as a Value Change Dump file.

    The default timescale of 20 ns per cycle corresponds to the paper's
    50 MHz clock on the Altera Stratix device.
    """
    # VCD identifier codes: printable ASCII starting at '!'
    ids = {}
    code = 33
    for sig in recorder.signals:
        ids[sig.name] = chr(code)
        code += 1
        if code == 127:  # skip DEL, wrap into two-char codes
            code = 33 * 128
    with open(path, "w") as fh:
        fh.write("$date reproduction run $end\n")
        fh.write("$version repro.hdl.waveform $end\n")
        fh.write(f"$timescale {timescale} $end\n")
        fh.write("$scope module top $end\n")
        for sig in recorder.signals:
            ident = ids[sig.name]
            safe = sig.name.replace(" ", "_")
            fh.write(f"$var wire {sig.width} {ident} {safe} $end\n")
        fh.write("$upscope $end\n$enddefinitions $end\n")
        prev: Dict[str, Optional[int]] = {s.name: None for s in recorder.signals}
        for i, cycle in enumerate(recorder.cycles):
            wrote_time = False
            for sig in recorder.signals:
                v = recorder.trace[sig.name][i]
                if v != prev[sig.name]:
                    if not wrote_time:
                        fh.write(f"#{cycle}\n")
                        wrote_time = True
                    if sig.width == 1:
                        fh.write(f"{v}{ids[sig.name]}\n")
                    else:
                        fh.write(f"b{v:b} {ids[sig.name]}\n")
                    prev[sig.name] = v
