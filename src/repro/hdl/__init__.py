"""Cycle-accurate synchronous RTL simulation kernel.

This subpackage is the substrate on which the paper's hardware (the MPLS
label stack modifier) is modelled.  It provides the minimal but complete
set of abstractions needed to express register-transfer-level designs in
Python and simulate them with exact clock-cycle fidelity:

* :mod:`repro.hdl.signal` -- width-checked wires and registers,
* :mod:`repro.hdl.simulator` -- a two-phase (combinational settle /
  clock tick) simulator with combinational-loop detection,
* :mod:`repro.hdl.fsm` -- a declarative Moore/Mealy state machine
  framework,
* :mod:`repro.hdl.memory` -- synchronous single-port RAM with registered
  reads (one cycle of read latency, like FPGA block RAM),
* :mod:`repro.hdl.counter`, :mod:`repro.hdl.register`,
  :mod:`repro.hdl.comparator`, :mod:`repro.hdl.mux` -- the datapath
  primitives used by the paper's Figure 12,
* :mod:`repro.hdl.waveform` -- per-cycle signal tracing with ASCII and
  VCD rendering, used to regenerate the paper's Figures 14-16.

The simulation model is deliberately simple: all sequential elements
belong to one clock domain, every cycle first settles combinational
processes to a fixed point and then commits all staged sequential
updates atomically.  This mirrors how a synthesis-friendly synchronous
design behaves and makes the cycle counts reported by
:mod:`repro.analysis.cycles` directly comparable to the paper's Table 6.
"""

from repro.hdl.signal import Signal, Wire, Reg, SignalError, WidthError
from repro.hdl.simulator import Simulator, Component, CombinationalLoopError
from repro.hdl.fsm import FSM, State
from repro.hdl.memory import SyncMemory
from repro.hdl.counter import Counter
from repro.hdl.register import Register
from repro.hdl.comparator import EqualityComparator
from repro.hdl.mux import Mux
from repro.hdl.waveform import WaveformRecorder, render_ascii, dump_vcd

__all__ = [
    "Signal",
    "Wire",
    "Reg",
    "SignalError",
    "WidthError",
    "Simulator",
    "Component",
    "CombinationalLoopError",
    "FSM",
    "State",
    "SyncMemory",
    "Counter",
    "Register",
    "EqualityComparator",
    "Mux",
    "WaveformRecorder",
    "render_ascii",
    "dump_vcd",
]
