"""Schedulers keyed on the 3-bit CoS field.

These implement the "scheduling ... algorithms" the paper says the CoS
bits select.  Both expose the link-queue protocol (``enqueue(item,
cos)`` / ``dequeue()`` / ``__len__``) so a
:class:`~repro.net.link.SimplexChannel` can use them directly:

* :class:`PriorityScheduler` -- strict priority: higher CoS always
  transmits first.  Gives voice hard protection but can starve lower
  classes.
* :class:`WFQScheduler` -- weighted fair queueing via deficit round
  robin: each class gets bandwidth proportional to its weight, so no
  class starves.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional


class PriorityScheduler:
    """Strict-priority over 8 CoS classes (7 = highest)."""

    def __init__(self, capacity_per_class: int = 64) -> None:
        if capacity_per_class < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity_per_class = capacity_per_class
        self._queues: List[Deque[Any]] = [deque() for _ in range(8)]
        self.dropped_by_cos: Dict[int, int] = {}
        self.enqueued = 0

    @property
    def dropped(self) -> int:
        return sum(self.dropped_by_cos.values())

    def enqueue(self, item: Any, cos: int = 0) -> bool:
        cos = max(0, min(7, cos))
        queue = self._queues[cos]
        if len(queue) >= self.capacity_per_class:
            self.dropped_by_cos[cos] = self.dropped_by_cos.get(cos, 0) + 1
            return False
        queue.append(item)
        self.enqueued += 1
        return True

    def dequeue(self) -> Optional[Any]:
        for cos in range(7, -1, -1):
            if self._queues[cos]:
                return self._queues[cos].popleft()
        return None

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues)

    def depth(self, cos: int) -> int:
        return len(self._queues[cos])


class WFQScheduler:
    """Deficit-round-robin approximation of weighted fair queueing.

    ``weights[cos]`` sets each class's share; classes absent from the
    mapping get weight 1.  The quantum is ``weight * quantum_unit``
    bytes per round.  Items enqueued by the links are ``(packet,
    size_bytes)`` tuples, which is where the byte costs come from; a
    bare item counts as one quantum unit.
    """

    def __init__(
        self,
        weights: Optional[Dict[int, float]] = None,
        capacity_per_class: int = 64,
        quantum_unit: int = 1500,
    ) -> None:
        if capacity_per_class < 1:
            raise ValueError("capacity must be >= 1")
        self.weights = {cos: 1.0 for cos in range(8)}
        if weights:
            for cos, weight in weights.items():
                if not 0 <= cos <= 7:
                    raise ValueError(f"CoS {cos} out of range")
                if weight <= 0:
                    raise ValueError(f"weight for CoS {cos} must be positive")
                self.weights[cos] = float(weight)
        self.capacity_per_class = capacity_per_class
        self.quantum_unit = quantum_unit
        self._queues: List[Deque[Any]] = [deque() for _ in range(8)]
        self._deficit: List[float] = [0.0] * 8
        self._active: Deque[int] = deque()
        self.dropped_by_cos: Dict[int, int] = {}
        self.enqueued = 0

    @property
    def dropped(self) -> int:
        return sum(self.dropped_by_cos.values())

    @staticmethod
    def _size_of(item: Any) -> int:
        if isinstance(item, tuple) and len(item) == 2 and isinstance(item[1], int):
            return item[1]
        return 1500

    def enqueue(self, item: Any, cos: int = 0) -> bool:
        cos = max(0, min(7, cos))
        queue = self._queues[cos]
        if len(queue) >= self.capacity_per_class:
            self.dropped_by_cos[cos] = self.dropped_by_cos.get(cos, 0) + 1
            return False
        if not queue and cos not in self._active:
            self._active.append(cos)
            self._deficit[cos] = 0.0
        queue.append(item)
        self.enqueued += 1
        return True

    def dequeue(self) -> Optional[Any]:
        # Each full rotation adds weight*quantum to every active class's
        # deficit, so an item is released within
        # ceil(max_size / (min_weight * quantum)) rotations; 10k
        # iterations is far beyond any sane configuration and guards
        # against a mis-set quantum looping forever.
        for _ in range(10_000):
            if not self._active:
                return None
            cos = self._active[0]
            queue = self._queues[cos]
            if not queue:
                self._active.popleft()
                continue
            head_size = self._size_of(queue[0])
            if self._deficit[cos] >= head_size:
                self._deficit[cos] -= head_size
                item = queue.popleft()
                if not queue:
                    self._active.popleft()
                return item
            # grant this class its quantum and move it to the back
            self._deficit[cos] += self.weights[cos] * self.quantum_unit
            self._active.rotate(-1)
        raise RuntimeError(
            "WFQ failed to release an item in 10k rotations; "
            "check weights/quantum configuration"
        )

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues)

    def depth(self, cos: int) -> int:
        return len(self._queues[cos])
