"""Token-bucket policing.

The paper lists "admission control" among the QoS functions.  The
token bucket is its data-plane half: traffic conforming to the
configured rate and burst passes; excess is dropped (policing) or can
be remarked by the caller.
"""

from __future__ import annotations

from enum import Enum


class PolicerAction(Enum):
    CONFORM = "conform"
    EXCEED = "exceed"


class TokenBucket:
    """A classic single-rate token bucket.

    Parameters
    ----------
    rate_bps:
        Token refill rate (bits per second).
    burst_bytes:
        Bucket depth in bytes.

    The bucket is lazily refilled from wall-clock timestamps supplied by
    the caller (the event scheduler's ``now``), avoiding any timer
    machinery of its own.
    """

    def __init__(self, rate_bps: float, burst_bytes: int) -> None:
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        if burst_bytes <= 0:
            raise ValueError(f"burst must be positive, got {burst_bytes}")
        self.rate_bps = rate_bps
        self.burst_bytes = burst_bytes
        self._tokens = float(burst_bytes)
        self._last = 0.0
        self.conformed = 0
        self.exceeded = 0
        self.conformed_bytes = 0
        self.exceeded_bytes = 0

    def _refill(self, now: float) -> None:
        if now < self._last:
            raise ValueError(
                f"time went backwards: {now} < {self._last}"
            )
        self._tokens = min(
            float(self.burst_bytes),
            self._tokens + (now - self._last) * self.rate_bps / 8.0,
        )
        self._last = now

    def offer(self, size_bytes: int, now: float) -> PolicerAction:
        """Offer a packet of ``size_bytes`` at time ``now``."""
        self._refill(now)
        if size_bytes <= self._tokens:
            self._tokens -= size_bytes
            self.conformed += 1
            self.conformed_bytes += size_bytes
            return PolicerAction.CONFORM
        self.exceeded += 1
        self.exceeded_bytes += size_bytes
        return PolicerAction.EXCEED

    @property
    def tokens(self) -> float:
        return self._tokens
