"""Quality of Service substrate (paper sections 1-2).

"The CoS bits affect the scheduling and/or discard algorithms applied
to the packet as it is transmitted through the network."  This
subpackage supplies those scheduling and discard algorithms, plus the
classification and policing that feed them:

* :mod:`repro.qos.classifier` -- packet -> CoS classification,
* :mod:`repro.qos.marker` -- DSCP/CoS marking policies,
* :mod:`repro.qos.policer` -- token-bucket policing and shaping,
* :mod:`repro.qos.queues` -- tail-drop and RED queues,
* :mod:`repro.qos.scheduler` -- strict-priority and weighted-fair
  schedulers keyed on the CoS bits, pluggable into
  :class:`~repro.net.link.SimplexChannel`.
"""

from repro.qos.classifier import Classifier, cos_of_packet
from repro.qos.marker import Marker, MarkRule
from repro.qos.policer import TokenBucket, PolicerAction
from repro.qos.queues import REDQueue, TailDropQueue
from repro.qos.scheduler import PriorityScheduler, WFQScheduler

__all__ = [
    "Classifier",
    "cos_of_packet",
    "Marker",
    "MarkRule",
    "TokenBucket",
    "PolicerAction",
    "TailDropQueue",
    "REDQueue",
    "PriorityScheduler",
    "WFQScheduler",
]
