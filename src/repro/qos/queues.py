"""Discard algorithms: tail drop and Random Early Detection.

"The CoS bits affect the ... discard algorithms applied to the
packet."  Two discard disciplines are provided behind the same queue
protocol the links use (``enqueue(item, cos)`` / ``dequeue()`` /
``__len__``):

* :class:`TailDropQueue` -- drop arrivals when full (the baseline; a
  per-CoS statistics superset of the link's built-in queue),
* :class:`REDQueue` -- probabilistic early dropping between a min and
  max threshold on the EWMA queue length, the classic congestion
  avoidance discipline.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Deque, Dict, Optional


class TailDropQueue:
    """Bounded FIFO with per-CoS drop accounting."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._queue: Deque[Any] = deque()
        self.dropped = 0
        self.dropped_by_cos: Dict[int, int] = {}
        self.enqueued = 0

    def enqueue(self, item: Any, cos: int = 0) -> bool:
        if len(self._queue) >= self.capacity:
            self.dropped += 1
            self.dropped_by_cos[cos] = self.dropped_by_cos.get(cos, 0) + 1
            return False
        self._queue.append(item)
        self.enqueued += 1
        return True

    def dequeue(self) -> Optional[Any]:
        return self._queue.popleft() if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)


class REDQueue:
    """Random Early Detection over a bounded FIFO.

    Drops arrivals with probability rising linearly from 0 at
    ``min_threshold`` to ``max_probability`` at ``max_threshold`` of the
    EWMA queue length; everything above ``max_threshold`` is dropped.
    Deterministic given the seed.
    """

    def __init__(
        self,
        capacity: int = 64,
        min_threshold: float = 16,
        max_threshold: float = 48,
        max_probability: float = 0.1,
        weight: float = 0.2,
        seed: int = 0,
    ) -> None:
        if not 0 < min_threshold < max_threshold <= capacity:
            raise ValueError(
                "need 0 < min_threshold < max_threshold <= capacity"
            )
        if not 0 < max_probability <= 1:
            raise ValueError("max_probability must be in (0, 1]")
        if not 0 < weight <= 1:
            raise ValueError("EWMA weight must be in (0, 1]")
        self.capacity = capacity
        self.min_threshold = min_threshold
        self.max_threshold = max_threshold
        self.max_probability = max_probability
        self.weight = weight
        self._rng = random.Random(seed)
        self._queue: Deque[Any] = deque()
        self._avg = 0.0
        self.dropped_early = 0
        self.dropped_forced = 0
        self.enqueued = 0

    @property
    def average(self) -> float:
        return self._avg

    @property
    def dropped(self) -> int:
        return self.dropped_early + self.dropped_forced

    def enqueue(self, item: Any, cos: int = 0) -> bool:
        self._avg = (
            (1 - self.weight) * self._avg + self.weight * len(self._queue)
        )
        if len(self._queue) >= self.capacity or self._avg >= self.max_threshold:
            self.dropped_forced += 1
            return False
        if self._avg > self.min_threshold:
            span = self.max_threshold - self.min_threshold
            p = self.max_probability * (self._avg - self.min_threshold) / span
            if self._rng.random() < p:
                self.dropped_early += 1
                return False
        self._queue.append(item)
        self.enqueued += 1
        return True

    def dequeue(self) -> Optional[Any]:
        return self._queue.popleft() if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)
