"""DSCP / CoS marking.

Admission to a premium LSP usually begins with (re)marking traffic at
the edge: a marker rewrites the DSCP of packets matching a rule, so
everything downstream (the classifier, the CoS bits pushed into the
label entry, the schedulers) treats them consistently.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from repro.net.addressing import IPv4Prefix
from repro.net.packet import IPv4Packet


@dataclass(frozen=True)
class MarkRule:
    """Rewrite the DSCP of matching packets."""

    new_dscp: int
    src: Optional[IPv4Prefix] = None
    dst: Optional[IPv4Prefix] = None
    protocol: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0 <= self.new_dscp <= 63:
            raise ValueError(f"DSCP {self.new_dscp} out of range")

    def matches(self, packet: IPv4Packet) -> bool:
        if self.src is not None and not self.src.contains(packet.src):
            return False
        if self.dst is not None and not self.dst.contains(packet.dst):
            return False
        if self.protocol is not None and packet.protocol != self.protocol:
            return False
        return True


class Marker:
    """Applies the first matching rule; unmatched packets pass as-is."""

    def __init__(self) -> None:
        self._rules: List[MarkRule] = []
        self.marked = 0
        self.passed = 0

    def add_rule(self, rule: MarkRule) -> None:
        self._rules.append(rule)

    def mark(self, packet: IPv4Packet) -> IPv4Packet:
        for rule in self._rules:
            if rule.matches(packet):
                self.marked += 1
                return replace(packet, dscp=rule.new_dscp)
        self.passed += 1
        return packet
