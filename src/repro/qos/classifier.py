"""Packet classification: deciding a packet's class of service.

QoS functions the paper lists start with "packet classification".  The
classifier maps a packet to a 3-bit CoS value -- the same 3 bits the
MPLS label entry carries -- from ordered match rules over the fields
the data plane can see (addresses, DSCP, protocol).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from repro.mpls.forwarding import _dscp_to_cos
from repro.net.addressing import IPv4Prefix
from repro.net.packet import IPv4Packet, MPLSPacket


def cos_of_packet(packet: Union[IPv4Packet, MPLSPacket]) -> int:
    """The CoS a queueing element should use for ``packet``.

    Labelled packets carry it in the top stack entry; unlabelled
    packets derive it from the DSCP class-selector bits.
    """
    if isinstance(packet, MPLSPacket):
        if packet.stack.is_empty:
            return _dscp_to_cos(packet.inner.dscp)
        return packet.stack.top.cos
    return _dscp_to_cos(packet.dscp)


@dataclass
class Rule:
    """One ordered classification rule."""

    cos: int
    src: Optional[IPv4Prefix] = None
    dst: Optional[IPv4Prefix] = None
    dscp_min: int = 0
    dscp_max: int = 63
    protocol: Optional[int] = None

    def matches(self, packet: IPv4Packet) -> bool:
        if self.src is not None and not self.src.contains(packet.src):
            return False
        if self.dst is not None and not self.dst.contains(packet.dst):
            return False
        if not self.dscp_min <= packet.dscp <= self.dscp_max:
            return False
        if self.protocol is not None and packet.protocol != self.protocol:
            return False
        return True


class Classifier:
    """Ordered-rule classifier with a default class."""

    def __init__(self, default_cos: int = 0) -> None:
        if not 0 <= default_cos <= 7:
            raise ValueError(f"CoS {default_cos} out of 3-bit range")
        self.default_cos = default_cos
        self._rules: List[Rule] = []
        self.hits = 0
        self.defaults = 0

    def add_rule(
        self,
        cos: int,
        src: Optional[str] = None,
        dst: Optional[str] = None,
        dscp_min: int = 0,
        dscp_max: int = 63,
        protocol: Optional[int] = None,
    ) -> None:
        if not 0 <= cos <= 7:
            raise ValueError(f"CoS {cos} out of 3-bit range")
        self._rules.append(
            Rule(
                cos=cos,
                src=IPv4Prefix(src) if src else None,
                dst=IPv4Prefix(dst) if dst else None,
                dscp_min=dscp_min,
                dscp_max=dscp_max,
                protocol=protocol,
            )
        )

    def classify(self, packet: IPv4Packet) -> int:
        for rule in self._rules:
            if rule.matches(packet):
                self.hits += 1
                return rule.cos
        self.defaults += 1
        return self.default_cos

    def __len__(self) -> int:
        return len(self._rules)
