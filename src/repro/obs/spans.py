"""Cross-layer span tracing: the packet flight recorder.

A :class:`SpanRecorder` is a sink over the existing
:class:`~repro.obs.events.EventLog` that correlates the flat event
stream into per-packet trace trees:

* a **root span** per packet (trace id = flow id + uid),
* a **hop span** per node traversal (ingress-to-egress in
  event-scheduler seconds, folded from ``PacketForwarded`` /
  ``PacketDropped`` / ``PacketDelivered``),
* **phase spans** per hardware operation beneath each hop
  (label-stack-modifier work in RTL cycles, folded from
  ``HWOpExecuted`` and placed on the simulation timeline via the
  cycle-to-time anchor the hardware node publishes), with **RTL spans**
  (search/modify) nested one level further down.

Sampling is head-based and deterministic: the keep/drop decision is a
pure hash of the packet uid against ``sample_rate`` (with per-flow
overrides), so the same seeded run always samples the same packets and
exports are byte-stable.  Fault-injection events annotate every trace
whose lifetime overlaps the fault window.  SLO latency histograms are
observed per FEC for *every* delivered packet regardless of sampling;
p50/p95/p99 are published as gauges at :meth:`SpanRecorder.finalize`.

Exporters: :func:`to_chrome_trace` (Chrome trace-event JSON, loadable
in Perfetto / ``chrome://tracing``) and :func:`spans_to_jsonl` (the
repo's JSONL line format, schema v2).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, TextIO, Tuple

from repro.obs.events import (
    CLOCK_CYCLES,
    CLOCK_SIM,
    Event,
    FaultHealed,
    FaultInjected,
    HWOpExecuted,
    JSONL_SCHEMA_VERSION,
    LabelOpApplied,
    OAMProbeCompleted,
    PacketDelivered,
    PacketDropped,
    PacketForwarded,
)
from repro.obs.telemetry import Telemetry, get_telemetry

#: Span kinds, from root to leaf.
KIND_PACKET = "packet"
KIND_HOP = "hop"
KIND_LABEL_OP = "label-op"
KIND_HW_PHASE = "hw-phase"
KIND_RTL = "rtl"

#: Quantiles published per FEC at finalize.
SLO_QUANTILES = (0.50, 0.95, 0.99)


def sample_hash(uid: int) -> float:
    """Map a packet uid to [0, 1) deterministically (no RNG, so the
    same seeded run samples the same packets on every execution)."""
    return ((uid * 0x9E3779B1) & 0xFFFFFFFF) / 4294967296.0


def quantile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted non-empty list."""
    n = len(sorted_values)
    rank = max(1, min(n, int(-(-q * n // 1))))  # ceil without math
    return sorted_values[rank - 1]


@dataclass
class SpanAnnotation:
    """A point-in-time note attached to a span (e.g. a fault event)."""

    time: float
    label: str
    detail: str = ""


@dataclass
class Span:
    """One timed unit of work inside a trace."""

    span_id: int
    parent_id: Optional[int]
    name: str
    kind: str
    start: float
    end: Optional[float] = None
    clock_domain: str = CLOCK_SIM
    #: Packet-relative RTL cycle interval for hardware spans.
    cycle_start: Optional[int] = None
    cycle_end: Optional[int] = None
    attributes: Dict[str, Any] = field(default_factory=dict)
    annotations: List[SpanAnnotation] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "clock_domain": self.clock_domain,
            "cycle_start": self.cycle_start,
            "cycle_end": self.cycle_end,
            "attributes": dict(self.attributes),
            "annotations": [
                {"time": a.time, "label": a.label, "detail": a.detail}
                for a in self.annotations
            ],
        }


@dataclass
class Trace:
    """One packet's span tree, keyed by the packet uid."""

    uid: int
    flow_id: int
    fec: str
    root: Span
    #: All non-root spans, in creation order.
    spans: List[Span] = field(default_factory=list)
    delivered: bool = False
    dropped: bool = False
    probe: bool = False

    @property
    def trace_id(self) -> str:
        return f"flow{self.flow_id}/pkt{self.uid}"

    @property
    def start(self) -> float:
        return self.root.start

    @property
    def end(self) -> float:
        if self.root.end is not None:
            return self.root.end
        ends = [s.end for s in self.spans if s.end is not None]
        return max(ends) if ends else self.root.start

    @property
    def latency(self) -> float:
        return self.end - self.start

    def spans_of_kind(self, kind: str) -> List[Span]:
        return [s for s in self.spans if s.kind == kind]

    @property
    def hop_spans(self) -> List[Span]:
        return self.spans_of_kind(KIND_HOP)

    @property
    def path(self) -> List[str]:
        return [s.attributes["node"] for s in self.hop_spans]

    def all_spans(self) -> List[Span]:
        return [self.root, *self.spans]


@dataclass
class FaultWindow:
    """The [injected, healed] interval of one fault, for annotation."""

    start: float
    fault: str
    target: str
    detail: str = ""
    end: Optional[float] = None

    def overlaps(self, t0: float, t1: float) -> bool:
        if self.start > t1:
            return False
        return self.end is None or self.end >= t0


class SpanRecorder:
    """Folds the event stream into per-packet traces.

    Constructing a recorder enables telemetry on ``telemetry`` (the
    default instance otherwise), attaches itself as an event sink, and
    publishes itself at ``telemetry.spans`` so hardware nodes know to
    emit per-packet phase events; :meth:`detach` undoes all three.

    Parameters
    ----------
    sample_rate:
        Fraction of packets to trace, decided per uid at the first
        event (head-based).  1.0 traces everything, 0.0 nothing.
    flow_rates:
        Per-flow-id overrides of ``sample_rate`` (the per-FEC override
        knob: map the flow ids carrying a FEC to its rate).
    flow_fecs:
        flow id -> FEC name, used for SLO attribution and trace
        labelling; unmapped flows fall back to ``flow-<id>``.
    nodes:
        Restrict folding to these node names (a network's node set), so
        concurrent networks sharing the default telemetry do not
        pollute each other's traces.
    """

    def __init__(
        self,
        sample_rate: float = 1.0,
        flow_rates: Optional[Mapping[int, float]] = None,
        flow_fecs: Optional[Mapping[int, str]] = None,
        nodes: Optional[Iterable[str]] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate not in [0, 1]: {sample_rate}")
        self.sample_rate = sample_rate
        self.flow_rates = dict(flow_rates or {})
        self.flow_fecs = dict(flow_fecs or {})
        self.nodes = frozenset(nodes) if nodes is not None else None
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        self._traces: Dict[int, Trace] = {}
        self._open_hop: Dict[int, Span] = {}
        self._decisions: Dict[int, bool] = {}
        self._pending_ops: Dict[str, List[LabelOpApplied]] = {}
        self.fault_windows: List[FaultWindow] = []
        self._latencies: Dict[str, List[float]] = {}
        self.quantiles: Dict[str, Dict[str, float]] = {}
        self.sampled_out = 0
        self._next_span_id = 1
        self._finalized = False
        self._was_enabled = self.telemetry.enabled
        self.telemetry.enable()
        self.telemetry.spans = self
        self.telemetry.events.add_sink(self)

    # -- sampling ----------------------------------------------------------
    def wants(self, flow_id: int, uid: int) -> bool:
        """The head-based keep/drop decision for one packet (cached)."""
        decision = self._decisions.get(uid)
        if decision is None:
            rate = self.flow_rates.get(flow_id, self.sample_rate)
            decision = sample_hash(uid) < rate
            self._decisions[uid] = decision
            if not decision:
                self.sampled_out += 1
        return decision

    def fec_of(self, flow_id: int) -> str:
        return self.flow_fecs.get(flow_id, f"flow-{flow_id}")

    # -- sink protocol -----------------------------------------------------
    def write(self, event: Event) -> None:
        if isinstance(event, PacketForwarded):
            self._on_hop(event, dropped=False)
        elif isinstance(event, PacketDropped):
            self._on_hop(event, dropped=True)
        elif isinstance(event, PacketDelivered):
            self._on_delivered(event)
        elif isinstance(event, LabelOpApplied):
            self._pending_ops.setdefault(event.node, []).append(event)
        elif isinstance(event, HWOpExecuted):
            self._on_hw_op(event)
        elif isinstance(event, FaultInjected):
            self.fault_windows.append(
                FaultWindow(
                    start=event.time if event.time is not None else 0.0,
                    fault=event.fault,
                    target=event.target,
                    detail=event.detail,
                )
            )
        elif isinstance(event, FaultHealed):
            for window in reversed(self.fault_windows):
                if (
                    window.end is None
                    and window.fault == event.fault
                    and window.target == event.target
                ):
                    window.end = event.time
                    break
        elif isinstance(event, OAMProbeCompleted):
            self._on_probe(event)

    # -- folding -----------------------------------------------------------
    def _span(self, **kwargs: Any) -> Span:
        span = Span(span_id=self._next_span_id, **kwargs)
        self._next_span_id += 1
        return span

    def _trace_for(
        self, uid: int, flow_id: int, start: float
    ) -> Trace:
        trace = self._traces.get(uid)
        if trace is None:
            root = self._span(
                parent_id=None,
                name=f"packet {uid}",
                kind=KIND_PACKET,
                start=start,
                attributes={"uid": uid, "flow_id": flow_id},
            )
            trace = Trace(
                uid=uid,
                flow_id=flow_id,
                fec=self.fec_of(flow_id),
                root=root,
            )
            self._traces[uid] = trace
        return trace

    def _on_hop(self, event: Any, dropped: bool) -> None:
        # label-op buffers are keyed by node and must drain whether or
        # not this packet is sampled (the node processes synchronously,
        # so pending ops always belong to the packet just recorded)
        pending = self._pending_ops.pop(event.node, None)
        if self.nodes is not None and event.node not in self.nodes:
            return
        if not self.wants(event.flow_id, event.uid):
            return
        time = event.time if event.time is not None else 0.0
        trace = self._trace_for(event.uid, event.flow_id, time)
        previous = self._open_hop.get(event.uid)
        if previous is not None and previous.end is None:
            previous.end = time
        attributes: Dict[str, Any] = {
            "node": event.node,
            "labels_in": list(event.labels_in),
            "ttl_in": event.ttl_in,
        }
        if dropped:
            attributes["action"] = "discard"
            attributes["reason"] = event.reason
        else:
            attributes["action"] = event.action
            attributes["labels_out"] = list(event.labels_out)
            attributes["next_hop"] = event.next_hop
        hop = self._span(
            parent_id=trace.root.span_id,
            name=f"hop {event.node}",
            kind=KIND_HOP,
            start=time,
            attributes=attributes,
        )
        trace.spans.append(hop)
        if dropped:
            hop.end = time
            trace.dropped = True
            if trace.root.end is None or trace.root.end < time:
                trace.root.end = time
            self._open_hop.pop(event.uid, None)
        else:
            self._open_hop[event.uid] = hop
        for op in pending or ():
            op_time = op.time if op.time is not None else time
            trace.spans.append(
                self._span(
                    parent_id=hop.span_id,
                    name=f"{op.op} {op.label_in}->{op.label_out}",
                    kind=KIND_LABEL_OP,
                    start=op_time,
                    end=op_time,
                    attributes={
                        "op": op.op,
                        "label_in": op.label_in,
                        "label_out": op.label_out,
                    },
                )
            )

    def _on_delivered(self, event: PacketDelivered) -> None:
        if self.nodes is not None and event.node not in self.nodes:
            return
        # the SLO histogram sees every delivery, sampled or not; probe
        # flows (negative ids) are the OAM monitor's business instead
        if event.flow_id >= 0:
            fec = self.fec_of(event.flow_id)
            self._latencies.setdefault(fec, []).append(event.latency)
            tel = self.telemetry
            if tel.enabled:
                tel.fec_latency.labels(fec).observe(event.latency)
        if not self.wants(event.flow_id, event.uid):
            return
        time = event.time if event.time is not None else 0.0
        trace = self._trace_for(event.uid, event.flow_id, time)
        trace.delivered = True
        trace.root.end = time
        trace.root.attributes["latency"] = event.latency
        hop = self._open_hop.pop(event.uid, None)
        if hop is not None and hop.end is None:
            hop.end = time

    def _on_hw_op(self, event: HWOpExecuted) -> None:
        if self.nodes is not None and event.node not in self.nodes:
            return
        if not self.wants(event.flow_id, event.uid):
            return
        hz = event.clock_hz if event.clock_hz > 0 else 1.0
        start = event.anchor_time + event.cycle_start / hz
        end = event.anchor_time + event.cycle_end / hz
        trace = self._trace_for(event.uid, event.flow_id, start)
        parent: Optional[Span] = None
        if event.parent_phase is not None:
            for span in reversed(trace.spans):
                if (
                    span.kind == KIND_HW_PHASE
                    and span.name == event.parent_phase
                ):
                    parent = span
                    break
        if parent is None:
            parent = self._last_hop_at(trace, event.node)
        kind = KIND_RTL if event.parent_phase is not None else KIND_HW_PHASE
        trace.spans.append(
            self._span(
                parent_id=(parent or trace.root).span_id,
                name=event.phase,
                kind=kind,
                start=start,
                end=end,
                clock_domain=CLOCK_CYCLES,
                cycle_start=event.cycle_start,
                cycle_end=event.cycle_end,
                attributes={
                    "node": event.node,
                    "cycles": event.cycle_end - event.cycle_start,
                },
            )
        )

    def _last_hop_at(self, trace: Trace, node: str) -> Optional[Span]:
        for span in reversed(trace.spans):
            if span.kind == KIND_HOP and span.attributes.get("node") == node:
                return span
        return None

    def _on_probe(self, event: OAMProbeCompleted) -> None:
        trace = self._traces.get(event.uid)
        if trace is None:
            return
        trace.probe = True
        trace.fec = event.fec
        trace.root.name = f"probe {event.uid}"
        trace.root.attributes.update(
            {"fec": event.fec, "reached": event.reached, "rtt": event.rtt}
        )
        if event.breach:
            trace.root.annotations.append(
                SpanAnnotation(
                    time=event.time if event.time is not None else trace.end,
                    label="slo-breach",
                    detail=f"fec {event.fec} rtt {event.rtt}",
                )
            )

    # -- lifecycle ---------------------------------------------------------
    def finalize(self) -> None:
        """Close open spans, attach fault annotations, publish SLO
        quantile gauges.  Idempotent."""
        if self._finalized:
            return
        self._finalized = True
        for hop in self._open_hop.values():
            if hop.end is None:
                hop.end = hop.start
        self._open_hop.clear()
        for trace in self._traces.values():
            if trace.root.end is None:
                trace.root.end = trace.end
            self._annotate_faults(trace)
        for fec in sorted(self._latencies):
            values = sorted(self._latencies[fec])
            per_fec: Dict[str, float] = {}
            for q in SLO_QUANTILES:
                name = f"p{int(q * 100)}"
                per_fec[name] = quantile(values, q)
                if self.telemetry.enabled:
                    self.telemetry.fec_latency_quantiles.labels(
                        fec, name
                    ).set(per_fec[name])
            self.quantiles[fec] = per_fec

    def _annotate_faults(self, trace: Trace) -> None:
        t0, t1 = trace.start, trace.end
        for window in self.fault_windows:
            if not window.overlaps(t0, t1):
                continue
            at = min(max(window.start, t0), t1)
            detail = window.target
            if window.detail:
                detail += f" ({window.detail})"
            trace.root.annotations.append(
                SpanAnnotation(
                    time=at, label=f"fault:{window.fault}", detail=detail
                )
            )
            for hop in trace.hop_spans:
                if hop.attributes.get("node", "") in window.target:
                    hop.annotations.append(
                        SpanAnnotation(
                            time=min(max(window.start, hop.start), hop.end or t1),
                            label=f"fault:{window.fault}",
                            detail=detail,
                        )
                    )

    def detach(self) -> None:
        """Stop recording: drop the sink, clear ``telemetry.spans``,
        restore the telemetry switch."""
        self.telemetry.events.remove_sink(self)
        if self.telemetry.spans is self:
            self.telemetry.spans = None
        if not self._was_enabled:
            self.telemetry.disable()

    # -- queries -----------------------------------------------------------
    def traces(
        self,
        flow: Optional[int] = None,
        fec: Optional[str] = None,
        include_probes: bool = True,
    ) -> List[Trace]:
        out = [
            t
            for t in self._traces.values()
            if (flow is None or t.flow_id == flow)
            and (fec is None or t.fec == fec)
            and (include_probes or not t.probe)
        ]
        out.sort(key=lambda t: (t.start, t.uid))
        return out

    def trace_of(self, uid: int) -> Trace:
        return self._traces[uid]

    def slowest(self, n: int = 5) -> List[Trace]:
        """The n delivered traces with the largest end-to-end latency."""
        delivered = [t for t in self._traces.values() if t.delivered]
        delivered.sort(key=lambda t: (-t.latency, t.uid))
        return delivered[:n]

    def summary(self) -> Dict[str, Any]:
        traces = self.traces()
        kinds: Dict[str, int] = {}
        annotated = 0
        for trace in traces:
            for span in trace.all_spans():
                kinds[span.kind] = kinds.get(span.kind, 0) + 1
            if any(s.annotations for s in trace.all_spans()):
                annotated += 1
        return {
            "sample_rate": self.sample_rate,
            "traces": len(traces),
            "sampled_out": self.sampled_out,
            "delivered": sum(1 for t in traces if t.delivered),
            "dropped": sum(1 for t in traces if t.dropped),
            "probes": sum(1 for t in traces if t.probe),
            "annotated": annotated,
            "spans_by_kind": dict(sorted(kinds.items())),
            "fec_latency_quantiles": {
                fec: dict(per_fec)
                for fec, per_fec in sorted(self.quantiles.items())
            },
        }


# -- exporters ---------------------------------------------------------------
_CATEGORY = {
    KIND_PACKET: "packet",
    KIND_HOP: "hop",
    KIND_LABEL_OP: "label-op",
    KIND_HW_PHASE: "hw-phase",
    KIND_RTL: "rtl",
}

#: Minimum rendered slice width so zero-duration spans stay visible.
_MIN_DUR_US = 0.001


def _us(seconds: float) -> float:
    return round(seconds * 1e6, 3)


def to_chrome_trace(traces: Iterable[Trace]) -> Dict[str, Any]:
    """Render traces as a Chrome trace-event document (Perfetto JSON).

    One trace becomes one "process" (pid = packet uid) whose slices
    nest by time containment on a single thread: the root packet span
    contains the hop spans, each hop contains its hardware phases, and
    phases contain their RTL sub-spans.  Annotations become instant
    events; software label ops too (they are points in sim time).
    """
    events: List[Dict[str, Any]] = []
    for trace in sorted(traces, key=lambda t: (t.start, t.uid)):
        pid = trace.uid
        label = f"flow {trace.flow_id} packet {trace.uid}"
        if trace.probe:
            label = f"OAM probe {trace.uid} fec {trace.fec}"
        events.append(
            {
                "cat": "__metadata",
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "ts": 0,
                "args": {"name": label},
            }
        )
        for span in trace.all_spans():
            end = span.end if span.end is not None else span.start
            args: Dict[str, Any] = {
                k: v for k, v in sorted(span.attributes.items())
            }
            if span.cycle_start is not None:
                args["cycle_start"] = span.cycle_start
                args["cycle_end"] = span.cycle_end
            base = {
                "cat": _CATEGORY.get(span.kind, span.kind),
                "name": span.name,
                "pid": pid,
                "tid": 0,
                "args": args,
            }
            if span.kind == KIND_LABEL_OP:
                events.append(
                    {**base, "ph": "i", "s": "t", "ts": _us(span.start)}
                )
            else:
                events.append(
                    {
                        **base,
                        "ph": "X",
                        "ts": _us(span.start),
                        "dur": max(_us(end) - _us(span.start), _MIN_DUR_US),
                    }
                )
            for note in span.annotations:
                events.append(
                    {
                        "cat": "annotation",
                        "name": note.label,
                        "ph": "i",
                        "s": "p",
                        "pid": pid,
                        "tid": 0,
                        "ts": _us(note.time),
                        "args": {"detail": note.detail, "span": span.name},
                    }
                )
    return {"displayTimeUnit": "ms", "traceEvents": events}


def export_chrome_trace(
    traces: Iterable[Trace], stream: TextIO
) -> int:
    """Write the Chrome trace-event document, byte-stably.  Returns the
    number of trace events written."""
    doc = to_chrome_trace(traces)
    stream.write(
        json.dumps(doc, sort_keys=True, separators=(",", ":"))
    )
    stream.write("\n")
    return len(doc["traceEvents"])


def spans_to_jsonl(traces: Iterable[Trace], stream: TextIO) -> int:
    """Write one JSON line per span (schema v2).  Returns the number of
    lines written."""
    written = 0
    for trace in sorted(traces, key=lambda t: (t.start, t.uid)):
        for span in trace.all_spans():
            record = span.as_dict()
            record["v"] = JSONL_SCHEMA_VERSION
            record["type"] = "span"
            record["trace_id"] = trace.trace_id
            record["uid"] = trace.uid
            record["flow_id"] = trace.flow_id
            record["fec"] = trace.fec
            stream.write(json.dumps(record, sort_keys=True))
            stream.write("\n")
            written += 1
    return written


def render_summary(recorder: SpanRecorder, slowest: int = 5) -> str:
    """The ``repro spans`` summary table, as a plain string."""
    info = recorder.summary()
    lines = ["span tracing summary", "--------------------"]
    lines.append(
        f"  traces: {info['traces']}  (sampled out: {info['sampled_out']}, "
        f"rate {info['sample_rate']})"
    )
    lines.append(
        f"  delivered: {info['delivered']}  dropped: {info['dropped']}  "
        f"probes: {info['probes']}  fault-annotated: {info['annotated']}"
    )
    kinds = ", ".join(
        f"{kind}={count}" for kind, count in info["spans_by_kind"].items()
    )
    lines.append(f"  spans: {kinds if kinds else '(none)'}")
    if info["fec_latency_quantiles"]:
        lines.append("  FEC latency SLO (seconds):")
        for fec, per_fec in info["fec_latency_quantiles"].items():
            quants = "  ".join(
                f"{name}={value * 1e3:.3f}ms"
                for name, value in sorted(per_fec.items())
            )
            lines.append(f"    {fec:20s} {quants}")
    slow = recorder.slowest(slowest)
    if slow:
        lines.append(f"  slowest {len(slow)} traces:")
        for trace in slow:
            path = " > ".join(trace.path) or "(no hops)"
            lines.append(
                f"    uid={trace.uid:<6d} flow={trace.flow_id:<4d} "
                f"{trace.latency * 1e3:8.3f}ms  {path}"
            )
    return "\n".join(lines)
