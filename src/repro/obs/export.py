"""Exporters: Prometheus text exposition format and JSON snapshots.

Renders a :class:`~repro.obs.metrics.MetricsRegistry` without any
external dependency:

* :func:`to_prometheus` -- the text format a Prometheus server scrapes
  (``# HELP`` / ``# TYPE`` headers, one sample per line, histograms as
  cumulative ``_bucket``/``_sum``/``_count`` series);
* :func:`snapshot` / :func:`to_json` -- a stable nested-dict form for
  programmatic consumers and the ``repro stats`` CLI.

Output is deterministic: families sort by name, children by label
values -- which is what makes the golden-file test possible.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _labels_text(names, values, extra: str = "") -> str:
    parts = [
        f'{n}="{_escape(v)}"' for n, v in zip(names, values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    # integers render without a trailing .0, like Prometheus clients do
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _bound_text(bound: float) -> str:
    return _format_value(bound)


def to_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: List[str] = []
    for family in registry.collect():
        samples = list(family.samples())
        if not samples:
            continue
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for values, child in samples:
            if isinstance(child, (Counter, Gauge)):
                lines.append(
                    f"{family.name}"
                    f"{_labels_text(family.labelnames, values)} "
                    f"{_format_value(child.value)}"
                )
            elif isinstance(child, Histogram):
                cumulative = child.cumulative_counts()
                for bound, count in zip(child.buckets, cumulative):
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_labels_text(family.labelnames, values, extra=_le(bound))} "
                        f"{count}"
                    )
                lines.append(
                    f"{family.name}_bucket"
                    f"{_labels_text(family.labelnames, values, extra=_le(None))} "
                    f"{child.count}"
                )
                lines.append(
                    f"{family.name}_sum"
                    f"{_labels_text(family.labelnames, values)} "
                    f"{_format_value(child.sum)}"
                )
                lines.append(
                    f"{family.name}_count"
                    f"{_labels_text(family.labelnames, values)} "
                    f"{child.count}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def _le(bound) -> str:
    text = "+Inf" if bound is None else _bound_text(bound)
    return f'le="{text}"'


def _child_snapshot(family: MetricFamily, child) -> Any:
    if isinstance(child, (Counter, Gauge)):
        return child.value
    assert isinstance(child, Histogram)
    return {
        "buckets": list(child.buckets),
        "counts": list(child.bucket_counts),
        "sum": child.sum,
        "count": child.count,
    }


def snapshot(registry: MetricsRegistry) -> Dict[str, Any]:
    """A nested-dict view: name -> {type, help, labels, samples}."""
    out: Dict[str, Any] = {}
    for family in registry.collect():
        samples = []
        for values, child in family.samples():
            samples.append(
                {
                    "labels": dict(zip(family.labelnames, values)),
                    "value": _child_snapshot(family, child),
                }
            )
        if not samples:
            continue
        out[family.name] = {
            "type": family.kind,
            "help": family.help,
            "samples": samples,
        }
    return out


def to_json(registry: MetricsRegistry, indent: int = 2) -> str:
    return json.dumps(snapshot(registry), indent=indent, sort_keys=True)
