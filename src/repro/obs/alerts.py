"""A declarative alerting rule engine over metrics and matrices.

Rules are threshold+hysteresis: an alert *raises* when its signal
reaches ``threshold`` and *clears* only once the signal falls to
``clear`` (< threshold), so a value oscillating around the threshold
produces one alert, not a raise/clear flap per evaluation.  Every
transition is emitted into the structured event log as
:class:`~repro.obs.events.AlertRaised` / ``AlertCleared`` and mirrored
in the ``repro_alerts_active`` gauge and
``repro_alert_transitions_total`` counter.

The engine is evaluated on the :class:`~repro.obs.flows.MatrixCollector`
tick, so everything it sees derives from simulated time -- alert
histories are byte-stable for a seeded scenario.

Built-in signals (the ``signal`` key of a rule dict):

``link-utilization``
    Per-link busy fraction from the current traffic-matrix snapshot;
    subjects are ``"src->dst"``.
``queue-shed-rate``
    Control messages shed per second (delta of
    ``repro_control_queue_drops_total`` over the evaluation interval),
    per node.
``slo-breach-rate``
    SLO breaches per second (delta of ``repro_slo_breaches_total``),
    per FEC.
``flow-count``
    Active flow records per node (the flow-explosion detector).
``metric:<family>``
    Generic fallback: the current value of every child of a counter or
    gauge family; subjects are the joined label values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.obs.events import AlertCleared, AlertRaised
from repro.obs.telemetry import Telemetry, get_telemetry

_BUILTIN_SIGNALS = (
    "link-utilization",
    "queue-shed-rate",
    "slo-breach-rate",
    "flow-count",
)

#: Metric families backing the delta-rate signals.
_RATE_FAMILIES = {
    "queue-shed-rate": "repro_control_queue_drops_total",
    "slo-breach-rate": "repro_slo_breaches_total",
}


def _round9(value: float) -> float:
    return round(value, 9)


@dataclass(frozen=True)
class AlertRule:
    """One declarative threshold+hysteresis rule."""

    name: str
    signal: str
    threshold: float
    #: Clear bound; defaults to 80% of the threshold.
    clear: float
    description: str = ""

    def __post_init__(self) -> None:
        if self.clear >= self.threshold:
            raise ValueError(
                f"rule {self.name!r}: clear bound {self.clear} must be "
                f"below the raise threshold {self.threshold} (hysteresis)"
            )
        if self.signal not in _BUILTIN_SIGNALS and not self.signal.startswith(
            "metric:"
        ):
            raise ValueError(
                f"rule {self.name!r}: unknown signal {self.signal!r} "
                f"(expected one of {list(_BUILTIN_SIGNALS)} or 'metric:<family>')"
            )

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "AlertRule":
        threshold = float(raw["threshold"])
        clear = raw.get("clear")
        return cls(
            name=str(raw["name"]),
            signal=str(raw["signal"]),
            threshold=threshold,
            clear=float(clear) if clear is not None else threshold * 0.8,
            description=str(raw.get("description", "")),
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "signal": self.signal,
            "threshold": _round9(self.threshold),
            "clear": _round9(self.clear),
            "description": self.description,
        }


@dataclass
class ActiveAlert:
    """Book-keeping for one firing (rule, subject) instance."""

    rule: AlertRule
    subject: str
    raised_at: float
    peak: float = 0.0


class AlertEngine:
    """Evaluates rules each collector tick; owns alert state/history.

    Parameters
    ----------
    rules:
        :class:`AlertRule` objects or raw rule dicts.
    telemetry:
        The telemetry instance whose registry/events the engine reads
        and writes (default: the process-wide one).
    """

    def __init__(
        self,
        rules: Iterable[Any],
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        self.rules: List[AlertRule] = [
            rule if isinstance(rule, AlertRule) else AlertRule.from_dict(rule)
            for rule in rules
        ]
        names = [r.name for r in self.rules]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate alert rule names: {sorted(names)}")
        self._active: Dict[Tuple[str, str], ActiveAlert] = {}
        #: Raise/clear transitions in emission order (stable dicts).
        self.history: List[Dict[str, Any]] = []
        #: Previous counter totals for the delta-rate signals.
        self._rate_prev: Dict[str, Dict[str, float]] = {
            signal: {} for signal in _RATE_FAMILIES
        }
        self._last_eval: Optional[float] = None
        self.evaluations = 0

    # -- signal sampling -----------------------------------------------------
    def _sample(
        self, rule: AlertRule, interval: float, matrix
    ) -> Dict[str, float]:
        """Current value per subject for one rule's signal.  Subjects
        seen before but absent now sample as 0.0 so firing alerts can
        clear when their source goes quiet."""
        if rule.signal == "link-utilization":
            if matrix is None:
                return {}
            return {
                f"{src}->{dst}": util
                for (src, dst), util in matrix.utilization.items()
            }
        if rule.signal in _RATE_FAMILIES:
            return self._rates(rule.signal, interval)
        if rule.signal == "flow-count":
            flows = self.telemetry.flows
            if flows is None:
                return {}
            counts: Dict[str, float] = {}
            for record in flows.active_records():
                counts[record.node] = counts.get(record.node, 0.0) + 1.0
            return counts
        family_name = rule.signal[len("metric:"):]
        family = self.telemetry.registry.get(family_name)
        if family is None or family.kind == "histogram":
            return {}
        return {
            "/".join(values) or "total": child.value
            for values, child in family.samples()
        }

    def _rates(self, signal: str, interval: float) -> Dict[str, float]:
        """Per-subject rate (1/s) from a counter family's delta since
        the last evaluation.  Subjects are the first label value (the
        node or FEC); extra labels are summed over."""
        family = self.telemetry.registry.get(_RATE_FAMILIES[signal])
        totals: Dict[str, float] = {}
        if family is not None:
            for values, child in family.samples():
                subject = values[0] if values else "total"
                totals[subject] = totals.get(subject, 0.0) + child.value
        previous = self._rate_prev[signal]
        rates = {
            subject: (total - previous.get(subject, 0.0)) / interval
            if interval > 0
            else 0.0
            for subject, total in totals.items()
        }
        self._rate_prev[signal] = totals
        return rates

    # -- evaluation ----------------------------------------------------------
    def evaluate(self, now: float, matrix=None) -> None:
        """One evaluation pass: sample every rule's signal, then apply
        the raise/clear hysteresis per subject."""
        interval = (
            now - self._last_eval if self._last_eval is not None else now
        )
        self._last_eval = now
        self.evaluations += 1
        for rule in self.rules:
            samples = self._sample(rule, interval, matrix)
            # firing subjects missing from this sample read as 0 --
            # a gone-quiet source must be able to clear its alert
            for key, active in list(self._active.items()):
                if key[0] == rule.name and active.subject not in samples:
                    samples.setdefault(active.subject, 0.0)
            for subject, value in sorted(samples.items()):
                self._apply(rule, subject, value, now)

    def _apply(
        self, rule: AlertRule, subject: str, value: float, now: float
    ) -> None:
        key = (rule.name, subject)
        active = self._active.get(key)
        tel = self.telemetry
        if active is None:
            if value >= rule.threshold:
                self._active[key] = ActiveAlert(
                    rule=rule, subject=subject, raised_at=now, peak=value
                )
                self.history.append(
                    {
                        "transition": "raised",
                        "rule": rule.name,
                        "subject": subject,
                        "time": _round9(now),
                        "value": _round9(value),
                    }
                )
                tel.alert_transitions.labels(rule.name, "raised").inc()
                tel.alerts_active.labels(rule.name).set(
                    self.active_count(rule.name)
                )
                tel.events.emit(
                    AlertRaised(
                        rule=rule.name,
                        subject=subject,
                        value=_round9(value),
                        threshold=rule.threshold,
                    )
                )
            return
        if value > active.peak:
            active.peak = value
        if value <= rule.clear:
            del self._active[key]
            duration = now - active.raised_at
            self.history.append(
                {
                    "transition": "cleared",
                    "rule": rule.name,
                    "subject": subject,
                    "time": _round9(now),
                    "value": _round9(value),
                    "duration": _round9(duration),
                    "peak": _round9(active.peak),
                }
            )
            tel.alert_transitions.labels(rule.name, "cleared").inc()
            tel.alerts_active.labels(rule.name).set(
                self.active_count(rule.name)
            )
            tel.events.emit(
                AlertCleared(
                    rule=rule.name,
                    subject=subject,
                    value=_round9(value),
                    clear=rule.clear,
                    duration=_round9(duration),
                )
            )

    # -- queries -------------------------------------------------------------
    def active_count(self, rule_name: Optional[str] = None) -> int:
        if rule_name is None:
            return len(self._active)
        return sum(1 for key in self._active if key[0] == rule_name)

    def active_alerts(self) -> List[Dict[str, Any]]:
        return [
            {
                "rule": active.rule.name,
                "subject": active.subject,
                "raised_at": _round9(active.raised_at),
                "peak": _round9(active.peak),
            }
            for active in sorted(
                self._active.values(),
                key=lambda a: (a.rule.name, a.subject),
            )
        ]

    def summary(self) -> Dict[str, Any]:
        """The gated chaos-report section: rules, the full transition
        history, and anything still firing."""
        return {
            "rules": [rule.as_dict() for rule in self.rules],
            "history": list(self.history),
            "active_at_end": self.active_alerts(),
            "evaluations": self.evaluations,
        }


def render_alert_history(engine: AlertEngine) -> str:
    """Human-readable alert lifecycle for ``repro flows``."""
    lines = ["alert history", "-------------"]
    if not engine.rules:
        lines.append("  (no rules configured)")
        return "\n".join(lines)
    for rule in engine.rules:
        lines.append(
            f"  rule {rule.name}: {rule.signal} >= {rule.threshold:g} "
            f"(clear <= {rule.clear:g})"
        )
    if not engine.history:
        lines.append("  no transitions")
    for entry in engine.history:
        if entry["transition"] == "raised":
            lines.append(
                f"  t={entry['time']:<12g} RAISED  {entry['rule']} "
                f"[{entry['subject']}] value={entry['value']:g}"
            )
        else:
            lines.append(
                f"  t={entry['time']:<12g} cleared {entry['rule']} "
                f"[{entry['subject']}] value={entry['value']:g} "
                f"after {entry['duration']:g}s (peak {entry['peak']:g})"
            )
    firing = engine.active_alerts()
    if firing:
        lines.append("  still firing at end:")
        for alert in firing:
            lines.append(
                f"    {alert['rule']} [{alert['subject']}] "
                f"since t={alert['raised_at']:g} (peak {alert['peak']:g})"
            )
    return "\n".join(lines)
