"""The metrics registry: counters, gauges, fixed-bucket histograms.

Prometheus-shaped but dependency-free: a :class:`MetricsRegistry` owns a
set of named metric *families*; a family with label names hands out one
child per distinct label-value tuple.  Everything is plain Python ints
and floats -- incrementing a counter is an attribute add, so the
instrumented hot paths stay cheap even when telemetry is enabled, and
call sites guard on :attr:`~repro.obs.telemetry.Telemetry.enabled` so a
disabled telemetry layer costs a single boolean test.

Conventions follow the Prometheus exposition format so
:mod:`repro.obs.export` can render a registry without translation:

* counter names end in ``_total``;
* histograms expose cumulative bucket counts plus ``_sum``/``_count``;
* label values are strings.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

LabelValues = Tuple[str, ...]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down (queue depth, sessions up)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with cumulative Prometheus semantics.

    ``buckets`` are the *upper bounds* of the non-infinite buckets, in
    increasing order; an implicit ``+Inf`` bucket always exists, so
    ``bucket_counts`` has ``len(buckets) + 1`` entries.
    """

    __slots__ = ("buckets", "bucket_counts", "sum", "count")

    def __init__(self, buckets: Sequence[float]) -> None:
        bounds = [float(b) for b in buckets]
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must increase: {bounds}")
        if any(math.isinf(b) for b in bounds):
            raise ValueError("the +Inf bucket is implicit; do not pass inf")
        self.buckets: Tuple[float, ...] = tuple(bounds)
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def cumulative_counts(self) -> List[int]:
        """Cumulative counts per bound (Prometheus ``le`` semantics),
        ending with the ``+Inf`` bucket (== ``count``)."""
        out: List[int] = []
        running = 0
        for c in self.bucket_counts:
            running += c
            out.append(running)
        return out


#: Default latency buckets (seconds): microseconds to seconds.
DEFAULT_LATENCY_BUCKETS = (
    1e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2,
    2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0,
)

#: Default cycle-count buckets for hardware per-packet costs.
DEFAULT_CYCLE_BUCKETS = (
    5.0, 10.0, 20.0, 50.0, 100.0, 500.0, 1000.0, 5000.0, 10000.0,
)


class MetricFamily:
    """One named metric with a fixed label-name schema.

    A family with no label names has exactly one child (the empty
    tuple); otherwise children are created on first use per distinct
    label-value tuple via :meth:`labels`.
    """

    def __init__(
        self,
        name: str,
        help: str,
        kind: str,
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        if kind not in ("counter", "gauge", "histogram"):
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.help = help
        self.kind = kind
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._buckets = tuple(buckets) if buckets is not None else None
        self._children: Dict[LabelValues, object] = {}

    def _new_child(self):
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self._buckets or DEFAULT_LATENCY_BUCKETS)

    def labels(self, *values: object, **kw: object):
        """The child for one label-value combination.

        Accepts positional values in ``labelnames`` order or keyword
        values; everything is coerced to ``str``.
        """
        if kw:
            if values:
                raise ValueError("pass labels positionally or by name, not both")
            try:
                values = tuple(kw[n] for n in self.labelnames)
            except KeyError as exc:
                raise ValueError(
                    f"{self.name}: missing label {exc.args[0]!r} "
                    f"(schema {list(self.labelnames)})"
                ) from None
            if len(kw) != len(self.labelnames):
                extra = set(kw) - set(self.labelnames)
                raise ValueError(f"{self.name}: unknown labels {sorted(extra)}")
        key = tuple(str(v) for v in values)
        if len(key) != len(self.labelnames):
            raise ValueError(
                f"{self.name}: expected {len(self.labelnames)} label "
                f"values {list(self.labelnames)}, got {len(key)}"
            )
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._new_child()
        return child

    # Unlabelled families act directly as their single child.
    def _solo(self):
        if self.labelnames:
            raise ValueError(
                f"{self.name} has labels {list(self.labelnames)}; "
                f"use .labels(...)"
            )
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    def samples(self) -> Iterable[Tuple[LabelValues, object]]:
        """(label values, child) pairs in sorted label order."""
        return sorted(self._children.items())

    def __len__(self) -> int:
        return len(self._children)


class MetricsRegistry:
    """Owns all metric families; the scrape target of the exporters."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    # -- registration ------------------------------------------------------
    def _get_or_create(
        self,
        name: str,
        help: str,
        kind: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind or family.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} re-registered with a different "
                    f"schema: {family.kind}{list(family.labelnames)} vs "
                    f"{kind}{list(labelnames)}"
                )
            return family
        family = MetricFamily(name, help, kind, labelnames, buckets)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._get_or_create(name, help, "counter", labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._get_or_create(name, help, "gauge", labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> MetricFamily:
        return self._get_or_create(name, help, "histogram", labelnames, buckets)

    # -- scraping ----------------------------------------------------------
    def collect(self) -> List[MetricFamily]:
        """All families, sorted by name (exporter order)."""
        return [self._families[n] for n in sorted(self._families)]

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def value(self, name: str, **labels: object) -> float:
        """Convenience for tests: the current value of one counter or
        gauge child (0.0 if the child does not exist yet)."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        key = tuple(str(labels[n]) for n in family.labelnames)
        child = family._children.get(key)
        if child is None:
            return 0.0
        return child.value  # type: ignore[attr-defined]

    def reset(self) -> None:
        self._families.clear()

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __len__(self) -> int:
        return len(self._families)
