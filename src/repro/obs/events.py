"""The structured event log: typed records over pluggable sinks.

Every notable state change in the reproduction -- a packet forwarded or
dropped, a label operation applied, an LDP session coming up, a
hardware FSM transition, an information base being (re)programmed --
is emitted as a typed event record.  Producers call
:meth:`EventLog.emit`; consumers attach sinks:

* :class:`ListSink` -- in-memory, for tests and the tracer,
* :class:`JSONLSink` -- one JSON object per line, the trace-file format
  of ``python -m repro trace``,
* :class:`CallbackSink` -- arbitrary function, used by
  :class:`repro.analysis.tracer.NetworkTracer`.

Events are stamped with the emitting layer's notion of time: the
:class:`EventLog` holds a ``clock`` callable (the network simulator
installs its event-scheduler clock); an event whose ``time`` is already
set keeps it.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Callable, ClassVar, Dict, List, Optional, TextIO, Tuple


@dataclass
class Event:
    """Base record; concrete event types subclass and set ``kind``."""

    kind: ClassVar[str] = "event"
    #: Seconds on the emitting layer's clock (stamped by the log).
    time: Optional[float] = field(default=None, init=False)

    def as_dict(self) -> Dict[str, Any]:
        out = asdict(self)
        out["kind"] = self.kind
        out["time"] = self.time
        return out


# -- data plane --------------------------------------------------------------
@dataclass
class PacketForwarded(Event):
    """One packet processed by one node, leaving it alive."""

    kind: ClassVar[str] = "packet-forwarded"
    node: str = ""
    uid: int = 0
    flow_id: int = 0
    #: "forward-mpls" / "forward-ip" / "deliver-local"
    action: str = ""
    labels_in: Tuple[int, ...] = ()
    labels_out: Tuple[int, ...] = ()
    ttl_in: int = 0
    next_hop: Optional[str] = None


@dataclass
class PacketDropped(Event):
    """One packet discarded, with the reason."""

    kind: ClassVar[str] = "packet-dropped"
    node: str = ""
    uid: int = 0
    flow_id: int = 0
    reason: str = ""
    labels_in: Tuple[int, ...] = ()
    ttl_in: int = 0


@dataclass
class LabelOpApplied(Event):
    """One elementary label-stack operation on the data plane."""

    kind: ClassVar[str] = "label-op"
    node: str = ""
    op: str = ""  # push / pop / swap
    label_in: Optional[int] = None
    label_out: Optional[int] = None


# -- control plane -----------------------------------------------------------
@dataclass
class SessionStateChange(Event):
    """An LDP session transitioned (discovery, up, down)."""

    kind: ClassVar[str] = "ldp-session"
    node: str = ""
    peer: str = ""
    state: str = ""  # "up" / "down"


@dataclass
class LabelMappingInstalled(Event):
    """A node installed forwarding state for a FEC (ordered control)."""

    kind: ClassVar[str] = "label-mapping-installed"
    node: str = ""
    fec_id: str = ""
    label: int = 0
    next_hop: Optional[str] = None


@dataclass
class LSPEvent(Event):
    """An RSVP-TE LSP lifecycle event (signalled, torn down, expired,
    FRR switchover/revert)."""

    kind: ClassVar[str] = "lsp"
    name: str = ""
    event: str = ""
    detail: str = ""


# -- fault injection ---------------------------------------------------------
@dataclass
class FaultInjected(Event):
    """A fault entered the system (from :mod:`repro.faults`)."""

    kind: ClassVar[str] = "fault-injected"
    fault: str = ""  # the FaultKind value, e.g. "link-down"
    target: str = ""
    detail: str = ""


@dataclass
class FaultHealed(Event):
    """A previously injected fault was cleared; ``downtime`` is the
    injected-to-healed interval in simulated seconds."""

    kind: ClassVar[str] = "fault-healed"
    fault: str = ""
    target: str = ""
    downtime: float = 0.0
    detail: str = ""


@dataclass
class AuditCompleted(Event):
    """One consistency-audit pass: control-plane tables cross-checked
    against the hardware information bases."""

    kind: ClassVar[str] = "audit-completed"
    nodes_checked: int = 0
    drift_nodes: Tuple[str, ...] = ()
    repaired: int = 0
    watchdog_alarms: Tuple[str, ...] = ()


@dataclass
class StaleEntriesFlushed(Event):
    """The forwarding-state holding timer expired: entries never
    refreshed since the graceful restart began were removed."""

    kind: ClassVar[str] = "stale-flushed"
    node: str = ""
    ilm_flushed: int = 0
    ftn_flushed: int = 0


@dataclass
class InfoBaseScrubbed(Event):
    """A VERIFY_INFO-style scrub pass walked a node's information base
    and repaired any corrupted pairs in place."""

    kind: ClassVar[str] = "ib-scrub"
    node: str = ""
    checked: int = 0
    corrupted: int = 0
    repaired: int = 0
    cycles: int = 0


# -- embedded hardware -------------------------------------------------------
@dataclass
class FSMTransition(Event):
    """A control-unit state machine changed state at a clock edge."""

    kind: ClassVar[str] = "fsm-transition"
    fsm: str = ""
    src: str = ""
    dst: str = ""
    cycle: int = 0


@dataclass
class InfoBaseProgrammed(Event):
    """The hardware information base was (re)programmed."""

    kind: ClassVar[str] = "info-base-programmed"
    node: str = ""
    entries: int = 0
    cycles: int = 0
    reason: str = ""


# -- sinks -------------------------------------------------------------------
class ListSink:
    """Accumulates events in order; ``events`` is the record."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def write(self, event: Event) -> None:
        self.events.append(event)

    def by_kind(self, kind: str) -> List[Event]:
        return [e for e in self.events if e.kind == kind]

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)


class CallbackSink:
    """Forwards every event to a function."""

    def __init__(self, fn: Callable[[Event], None]) -> None:
        self.fn = fn

    def write(self, event: Event) -> None:
        self.fn(event)


class JSONLSink:
    """Writes one JSON object per event line to a text stream."""

    def __init__(self, stream: TextIO) -> None:
        self.stream = stream
        self.written = 0

    def write(self, event: Event) -> None:
        self.stream.write(json.dumps(event.as_dict(), sort_keys=True))
        self.stream.write("\n")
        self.written += 1

    def flush(self) -> None:
        self.stream.flush()


class EventLog:
    """Fans emitted events out to the attached sinks, in order."""

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        #: Stamp source for events without an explicit time.
        self.clock = clock
        self._sinks: List[Any] = []
        self.emitted = 0

    def add_sink(self, sink: Any) -> Any:
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: Any) -> None:
        self._sinks.remove(sink)

    @property
    def sinks(self) -> List[Any]:
        return list(self._sinks)

    def emit(self, event: Event) -> None:
        if event.time is None and self.clock is not None:
            event.time = self.clock()
        self.emitted += 1
        for sink in self._sinks:
            sink.write(event)


def event_kinds() -> List[str]:
    """All registered event kinds (for documentation and the CLI)."""
    kinds = []
    for cls in Event.__subclasses__():
        kinds.append(cls.kind)
        # one level of nesting is enough for this module's hierarchy
        for sub in cls.__subclasses__():
            kinds.append(sub.kind)
    return sorted(set(kinds))


def field_names(cls) -> List[str]:
    return [f.name for f in fields(cls)]
