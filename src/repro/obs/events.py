"""The structured event log: typed records over pluggable sinks.

Every notable state change in the reproduction -- a packet forwarded or
dropped, a label operation applied, an LDP session coming up, a
hardware FSM transition, an information base being (re)programmed --
is emitted as a typed event record.  Producers call
:meth:`EventLog.emit`; consumers attach sinks:

* :class:`ListSink` -- in-memory, for tests and the tracer,
* :class:`JSONLSink` -- one JSON object per line, the trace-file format
  of ``python -m repro trace``,
* :class:`CallbackSink` -- arbitrary function, used by
  :class:`repro.analysis.tracer.NetworkTracer`.

Events are stamped with the emitting layer's notion of time: the
:class:`EventLog` holds a ``clock`` callable (the network simulator
installs its event-scheduler clock); an event whose ``time`` is already
set keeps it.

Because the hardware layer counts RTL clock cycles while the network
layer counts event-scheduler seconds, every event class declares its
``clock_domain`` (``"sim"`` seconds or ``"cycles"``), and the JSONL
schema carries it explicitly from version 2 on.  :func:`read_jsonl`
reads both schema versions, back-filling the domain for v1 lines.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import (
    Any,
    Callable,
    ClassVar,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    TextIO,
    Tuple,
)

#: The JSONL trace-file schema version written by :class:`JSONLSink`.
#: v1 had no ``v`` or ``clock_domain`` keys and stamped hardware events
#: with raw cycle counts in ``time``; v2 makes the domain explicit.
JSONL_SCHEMA_VERSION = 2

#: Clock-domain names: event-scheduler seconds vs RTL clock cycles.
CLOCK_SIM = "sim"
CLOCK_CYCLES = "cycles"

#: v1 event kinds whose ``time`` was an RTL cycle count, used by
#: :func:`read_jsonl` to back-fill ``clock_domain`` for old files.
_V1_CYCLE_KINDS = frozenset({"fsm-transition"})


@dataclass
class Event:
    """Base record; concrete event types subclass and set ``kind``."""

    kind: ClassVar[str] = "event"
    #: Which clock ``time`` is measured on: :data:`CLOCK_SIM` seconds
    #: (the event scheduler) or :data:`CLOCK_CYCLES` (RTL clock edges).
    clock_domain: ClassVar[str] = CLOCK_SIM
    #: Time on the clock named by ``clock_domain`` (stamped by the log
    #: for sim-domain events without an explicit value).
    time: Optional[float] = field(default=None, init=False)

    def as_dict(self) -> Dict[str, Any]:
        out = asdict(self)
        out["kind"] = self.kind
        out["time"] = self.time
        out["clock_domain"] = self.clock_domain
        return out


# -- data plane --------------------------------------------------------------
@dataclass
class PacketForwarded(Event):
    """One packet processed by one node, leaving it alive."""

    kind: ClassVar[str] = "packet-forwarded"
    node: str = ""
    uid: int = 0
    flow_id: int = 0
    #: "forward-mpls" / "forward-ip" / "deliver-local"
    action: str = ""
    labels_in: Tuple[int, ...] = ()
    labels_out: Tuple[int, ...] = ()
    ttl_in: int = 0
    next_hop: Optional[str] = None


@dataclass
class PacketDropped(Event):
    """One packet discarded, with the reason."""

    kind: ClassVar[str] = "packet-dropped"
    node: str = ""
    uid: int = 0
    flow_id: int = 0
    reason: str = ""
    labels_in: Tuple[int, ...] = ()
    ttl_in: int = 0


@dataclass
class PacketDelivered(Event):
    """One packet that reached its attached host at an egress LER."""

    kind: ClassVar[str] = "packet-delivered"
    node: str = ""
    uid: int = 0
    flow_id: int = 0
    #: End-to-end latency in simulated seconds.
    latency: float = 0.0


@dataclass
class LabelOpApplied(Event):
    """One elementary label-stack operation on the data plane."""

    kind: ClassVar[str] = "label-op"
    node: str = ""
    op: str = ""  # push / pop / swap
    label_in: Optional[int] = None
    label_out: Optional[int] = None


# -- control plane -----------------------------------------------------------
@dataclass
class SessionStateChange(Event):
    """An LDP session transitioned (discovery, up, down)."""

    kind: ClassVar[str] = "ldp-session"
    node: str = ""
    peer: str = ""
    state: str = ""  # "up" / "down"


@dataclass
class LabelMappingInstalled(Event):
    """A node installed forwarding state for a FEC (ordered control)."""

    kind: ClassVar[str] = "label-mapping-installed"
    node: str = ""
    fec_id: str = ""
    label: int = 0
    next_hop: Optional[str] = None


@dataclass
class LabelMappingWithdrawn(Event):
    """A node withdrew forwarding state for a FEC (the inverse of
    :class:`LabelMappingInstalled`).  Emitted only while a
    :class:`~repro.obs.topo.TopologyObserver` is attached -- the
    topology database needs the negative edge of the binding
    lifecycle, and gating it keeps pre-existing event-count reports
    byte-identical."""

    kind: ClassVar[str] = "label-mapping-withdrawn"
    node: str = ""
    fec_id: str = ""
    label: int = 0


@dataclass
class LSPEvent(Event):
    """An RSVP-TE LSP lifecycle event (signalled, torn down, expired,
    FRR switchover/revert)."""

    kind: ClassVar[str] = "lsp"
    name: str = ""
    event: str = ""
    detail: str = ""


# -- fault injection ---------------------------------------------------------
@dataclass
class FaultInjected(Event):
    """A fault entered the system (from :mod:`repro.faults`)."""

    kind: ClassVar[str] = "fault-injected"
    fault: str = ""  # the FaultKind value, e.g. "link-down"
    target: str = ""
    detail: str = ""


@dataclass
class FaultHealed(Event):
    """A previously injected fault was cleared; ``downtime`` is the
    injected-to-healed interval in simulated seconds."""

    kind: ClassVar[str] = "fault-healed"
    fault: str = ""
    target: str = ""
    downtime: float = 0.0
    detail: str = ""


@dataclass
class AuditCompleted(Event):
    """One consistency-audit pass: control-plane tables cross-checked
    against the hardware information bases."""

    kind: ClassVar[str] = "audit-completed"
    nodes_checked: int = 0
    drift_nodes: Tuple[str, ...] = ()
    repaired: int = 0
    watchdog_alarms: Tuple[str, ...] = ()


@dataclass
class StaleEntriesFlushed(Event):
    """The forwarding-state holding timer expired: entries never
    refreshed since the graceful restart began were removed."""

    kind: ClassVar[str] = "stale-flushed"
    node: str = ""
    ilm_flushed: int = 0
    ftn_flushed: int = 0


# -- control-plane overload protection ---------------------------------------
@dataclass
class ControlMessageShed(Event):
    """A bounded control queue lost a message (shed, evicted, or tail
    dropped) at ``node``."""

    kind: ClassVar[str] = "control-shed"
    node: str = ""
    msg_class: str = ""  # liveness / teardown / setup
    cause: str = ""  # watermark-shed / evicted / queue-full


@dataclass
class FECShed(Event):
    """Ingress load shedding changed a FEC's admission state."""

    kind: ClassVar[str] = "fec-shed"
    node: str = ""
    fec: str = ""
    cos: int = 0
    state: str = ""  # shed / restored


@dataclass
class LSPPreempted(Event):
    """A higher-priority setup preempted an established LSP."""

    kind: ClassVar[str] = "lsp-preempted"
    name: str = ""
    by: str = ""  # the preempting LSP
    mode: str = ""  # reroute (make-before-break) / teardown
    detail: str = ""


@dataclass
class InfoBaseScrubbed(Event):
    """A VERIFY_INFO-style scrub pass walked a node's information base
    and repaired any corrupted pairs in place."""

    kind: ClassVar[str] = "ib-scrub"
    node: str = ""
    checked: int = 0
    corrupted: int = 0
    repaired: int = 0
    cycles: int = 0


# -- centralized controller ---------------------------------------------------
@dataclass
class ControllerFailover(Event):
    """A node's hold timer expired without hearing the PCE controller:
    it fell back to distributed control (``delegated``) or was left
    orphaned with stale-marked tables."""

    kind: ClassVar[str] = "controller-failover"
    node: str = ""
    reason: str = ""  # "crash" / "partition"
    delegated: bool = False
    #: controller-programmed entries stale-marked at fallback
    orphaned_fecs: int = 0
    #: cause-to-detection latency (the failover headline number)
    detect_s: float = 0.0


@dataclass
class ControllerReadopt(Event):
    """The controller re-adopted a node after a crash restart or a
    partition heal: one atomic resync transaction reconciled intended
    vs. actual table state."""

    kind: ClassVar[str] = "controller-readopt"
    node: str = ""
    reason: str = ""  # "crash" / "partition" / "adopt"
    #: entries rewritten by the resync transaction
    rewrites: int = 0
    #: service-restorable (restart/heal) to re-adoption latency
    restore_s: float = 0.0


# -- adversarial security -----------------------------------------------------
@dataclass
class AttackDetected(Event):
    """The security monitor recognized an injected attack (first
    detection only; per-occurrence counts live in the metric
    families)."""

    kind: ClassVar[str] = "attack-detected"
    attack: str = ""  # the FaultKind value, e.g. "label-spoof"
    node: str = ""
    detail: str = ""


@dataclass
class AttackMitigated(Event):
    """A guard neutralized an injected attack (first mitigation only)."""

    kind: ClassVar[str] = "attack-mitigated"
    attack: str = ""
    node: str = ""
    #: guard-reject / auth-reject / quarantine / rate-limit
    action: str = ""
    detail: str = ""


# -- alerting ----------------------------------------------------------------
@dataclass
class AlertRaised(Event):
    """An alert rule crossed its raise threshold for one subject."""

    kind: ClassVar[str] = "alert-raised"
    rule: str = ""
    #: What the rule fired on (a link "a->b", a FEC, a node, ...).
    subject: str = ""
    #: The observed signal value that crossed the threshold.
    value: float = 0.0
    threshold: float = 0.0


@dataclass
class AlertCleared(Event):
    """A firing alert dropped below its clear threshold (hysteresis)."""

    kind: ClassVar[str] = "alert-cleared"
    rule: str = ""
    subject: str = ""
    value: float = 0.0
    clear: float = 0.0
    #: Seconds the alert spent firing.
    duration: float = 0.0


# -- OAM ---------------------------------------------------------------------
@dataclass
class OAMProbeCompleted(Event):
    """One LSP-ping probe from the OAM monitor concluded."""

    kind: ClassVar[str] = "oam-probe"
    fec: str = ""
    ingress: str = ""
    uid: int = 0
    reached: bool = False
    #: Round-trip (injection-to-delivery) seconds; None when lost.
    rtt: Optional[float] = None
    #: True when the probe exceeded the configured SLO RTT.
    breach: bool = False


# -- embedded hardware -------------------------------------------------------
@dataclass
class FSMTransition(Event):
    """A control-unit state machine changed state at a clock edge.

    ``time`` carries the RTL cycle number (the ``cycle`` field), not
    scheduler seconds: this event lives in the cycles clock domain.
    """

    kind: ClassVar[str] = "fsm-transition"
    clock_domain: ClassVar[str] = CLOCK_CYCLES
    fsm: str = ""
    src: str = ""
    dst: str = ""
    cycle: int = 0


@dataclass
class HWOpExecuted(Event):
    """One hardware data-plane phase executed for one packet.

    Cycle counts are offsets from the start of this packet's hardware
    processing; ``anchor_time`` and ``clock_hz`` publish the cycle-to-
    scheduler-time mapping (``t = anchor_time + cycle / clock_hz``), so
    span consumers can place RTL work on the simulation timeline.
    ``time`` carries ``cycle_start`` (cycles domain).
    """

    kind: ClassVar[str] = "hw-op"
    clock_domain: ClassVar[str] = CLOCK_CYCLES
    node: str = ""
    uid: int = 0
    flow_id: int = 0
    #: "stack-load" / "update" / "stack-drain" / "search" / "modify" ...
    phase: str = ""
    #: The enclosing phase for nested FSM work (e.g. "update"), or None.
    parent_phase: Optional[str] = None
    cycle_start: int = 0
    cycle_end: int = 0
    #: Scheduler seconds corresponding to cycle 0 of this packet.
    anchor_time: float = 0.0
    #: The hardware clock rate used for the cycle-to-time mapping.
    clock_hz: float = 0.0


@dataclass
class InfoBaseProgrammed(Event):
    """The hardware information base was (re)programmed."""

    kind: ClassVar[str] = "info-base-programmed"
    node: str = ""
    entries: int = 0
    cycles: int = 0
    reason: str = ""


# -- sinks -------------------------------------------------------------------
class ListSink:
    """Accumulates events in order; ``events`` is the record."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def write(self, event: Event) -> None:
        self.events.append(event)

    def by_kind(self, kind: str) -> List[Event]:
        return [e for e in self.events if e.kind == kind]

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)


class CallbackSink:
    """Forwards every event to a function."""

    def __init__(self, fn: Callable[[Event], None]) -> None:
        self.fn = fn

    def write(self, event: Event) -> None:
        self.fn(event)


class JSONLSink:
    """Writes one JSON object per event line to a text stream.

    Lines carry the schema version (``"v"``) and the event's
    ``clock_domain`` so mixed sim-seconds/RTL-cycles streams are
    unambiguous; :func:`read_jsonl` reads v1 and v2 files alike.
    """

    def __init__(self, stream: TextIO) -> None:
        self.stream = stream
        self.written = 0

    def write(self, event: Event) -> None:
        record = event.as_dict()
        record["v"] = JSONL_SCHEMA_VERSION
        self.stream.write(json.dumps(record, sort_keys=True))
        self.stream.write("\n")
        self.written += 1

    def flush(self) -> None:
        self.stream.flush()


class FilterSink:
    """Forwards only events matching the given predicates to an inner
    sink -- the streaming filter behind ``repro trace --flow/--node``.

    ``flows``/``nodes`` are allow-lists (None means "any"); events
    without the corresponding attribute pass a None filter only.
    """

    def __init__(
        self,
        inner: Any,
        flows: Optional[Iterable[int]] = None,
        nodes: Optional[Iterable[str]] = None,
    ) -> None:
        self.inner = inner
        self.flows = frozenset(flows) if flows is not None else None
        self.nodes = frozenset(nodes) if nodes is not None else None
        self.passed = 0
        self.filtered = 0

    def _matches(self, event: Event) -> bool:
        if self.flows is not None:
            if getattr(event, "flow_id", None) not in self.flows:
                return False
        if self.nodes is not None:
            if getattr(event, "node", None) not in self.nodes:
                return False
        return True

    def write(self, event: Event) -> None:
        if self._matches(event):
            self.passed += 1
            self.inner.write(event)
        else:
            self.filtered += 1

    def flush(self) -> None:
        flush = getattr(self.inner, "flush", None)
        if flush is not None:
            flush()


def read_jsonl(stream: TextIO) -> Iterator[Dict[str, Any]]:
    """Parse a JSONL trace file written by any schema version.

    Yields one dict per event line with ``v`` and ``clock_domain``
    always present: v1 lines (no ``v`` key) are back-filled with
    ``v=1`` and the domain their kind implied at the time.
    """
    for line in stream:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if "v" not in record:
            record["v"] = 1
        if "clock_domain" not in record:
            record["clock_domain"] = (
                CLOCK_CYCLES
                if record.get("kind") in _V1_CYCLE_KINDS
                else CLOCK_SIM
            )
        yield record


class EventLog:
    """Fans emitted events out to the attached sinks, in order."""

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        #: Stamp source for events without an explicit time.
        self.clock = clock
        self._sinks: List[Any] = []
        self.emitted = 0

    def add_sink(self, sink: Any) -> Any:
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: Any) -> None:
        self._sinks.remove(sink)

    @property
    def sinks(self) -> List[Any]:
        return list(self._sinks)

    def emit(self, event: Event) -> None:
        # the log's clock ticks in scheduler seconds; events living in
        # another clock domain must stamp their own time
        if (
            event.time is None
            and self.clock is not None
            and event.clock_domain == CLOCK_SIM
        ):
            event.time = self.clock()
        self.emitted += 1
        for sink in self._sinks:
            sink.write(event)


def event_kinds() -> List[str]:
    """All registered event kinds (for documentation and the CLI)."""
    kinds = []
    for cls in Event.__subclasses__():
        kinds.append(cls.kind)
        # one level of nesting is enough for this module's hierarchy
        for sub in cls.__subclasses__():
            kinds.append(sub.kind)
    return sorted(set(kinds))


def field_names(cls) -> List[str]:
    return [f.name for f in fields(cls)]
