"""The telemetry facade: one switch, one registry, one event log.

Instrumented code across the data plane, control plane and hardware
model all funnels through a :class:`Telemetry` object.  The contract
that keeps the hot paths fast:

* every instrumentation site is guarded by ``tel.enabled`` -- when
  telemetry is off (the default), the entire layer costs one global
  lookup and one boolean test per instrumented call;
* metric families used on hot paths are pre-registered here once, so
  enabling telemetry never pays registration in the packet loop.

A process-wide default instance is reachable via :func:`get_telemetry`;
tests and the CLI swap in fresh instances with :func:`set_telemetry` or
the :func:`telemetry_session` context manager so runs never leak state
into each other.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.events import EventLog
from repro.obs.metrics import (
    DEFAULT_CYCLE_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
)


class Telemetry:
    """A metrics registry and an event log behind one enable switch."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.registry = MetricsRegistry()
        self.events = EventLog()
        #: The attached :class:`~repro.obs.spans.SpanRecorder`, or None.
        #: Hardware nodes consult this to decide whether per-packet
        #: phase events are wanted; with no recorder attached the hot
        #: path pays nothing beyond the ``enabled`` test.
        self.spans = None
        #: The attached :class:`~repro.obs.flows.FlowAccountant`, or
        #: None.  Data-plane hooks consult this inside their existing
        #: ``enabled`` guards, so with accounting off the hot path pays
        #: nothing beyond the tests it already ran.
        self.flows = None
        #: The attached :class:`~repro.obs.topo.TopologyObserver`, or
        #: None.  Control-plane withdraw sites and the traffic-matrix
        #: collector consult this inside their existing ``enabled``
        #: guards; with no observer attached nothing extra is emitted.
        self.topo = None
        self._register_core_families()

    # -- core metric families ----------------------------------------------
    # Pre-registered so instrumented hot paths only pay .labels() child
    # lookups, never family creation.
    def _register_core_families(self) -> None:
        r = self.registry
        self.packets = r.counter(
            "repro_packets_total",
            "Packets processed per node by outcome action",
            ("node", "action"),
        )
        self.drops = r.counter(
            "repro_drops_total",
            "Packets discarded per node by reason class",
            ("node", "reason"),
        )
        self.mpls_ops = r.counter(
            "repro_mpls_ops_total",
            "Elementary data-plane operations (the OpCounts tally)",
            ("node", "op"),
        )
        self.link_tx_packets = r.counter(
            "repro_link_tx_packets_total",
            "Packets transmitted per link direction",
            ("src", "dst"),
        )
        self.link_tx_bytes = r.counter(
            "repro_link_tx_bytes_total",
            "Bytes transmitted per link direction",
            ("src", "dst"),
        )
        self.link_drops = r.counter(
            "repro_link_dropped_total",
            "Packets lost per link direction by cause",
            ("src", "dst", "cause"),
        )
        self.queue_depth = r.gauge(
            "repro_link_queue_depth",
            "Output queue occupancy per link direction",
            ("src", "dst"),
        )
        self.delivery_latency = r.histogram(
            "repro_delivery_latency_seconds",
            "End-to-end latency of delivered packets",
            ("node",),
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self.ldp_messages = r.counter(
            "repro_ldp_messages_total",
            "LDP protocol messages sent, by type",
            ("kind",),
        )
        self.ldp_sessions = r.gauge(
            "repro_ldp_sessions_up",
            "Established LDP sessions (each direction counted once)",
        )
        self.lsp_events = r.counter(
            "repro_lsp_events_total",
            "RSVP-TE LSP lifecycle events by type",
            ("event",),
        )
        self.hw_cycles = r.counter(
            "repro_hw_cycles_total",
            "Simulated modifier clock cycles per node, data vs control",
            ("node", "kind"),
        )
        self.hw_packet_cycles = r.histogram(
            "repro_hw_packet_cycles",
            "Modifier cycles spent per hardware-forwarded packet",
            ("node",),
            buckets=DEFAULT_CYCLE_BUCKETS,
        )
        self.info_base_writes = r.counter(
            "repro_info_base_writes_total",
            "Label pairs programmed into the hardware information base",
            ("node",),
        )
        self.faults = r.counter(
            "repro_faults_injected_total",
            "Faults injected by the chaos layer, by kind and target",
            ("kind", "target"),
        )
        self.fault_recovery = r.histogram(
            "repro_fault_recovery_seconds",
            "Injection-to-recovery interval per fault kind (MTTR)",
            ("kind",),
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self.ldp_retries = r.counter(
            "repro_ldp_reconnect_attempts_total",
            "LDP session reconnection attempts per peer pair",
            ("node", "peer"),
        )
        self.scrub_repairs = r.counter(
            "repro_ib_scrub_repairs_total",
            "Corrupted information-base pairs repaired by scrubbing",
            ("node",),
        )
        self.audit_runs = r.counter(
            "repro_audit_runs_total",
            "Consistency-audit passes over the hardware info bases",
        )
        self.audit_drift = r.counter(
            "repro_audit_drift_total",
            "Audits that found a node's info base disagreeing with its "
            "control-plane tables",
            ("node",),
        )
        self.audit_watchdog = r.counter(
            "repro_audit_watchdog_alarms_total",
            "Watchdog alarms for transactions left open across audits",
            ("node",),
        )
        self.stale_entries = r.gauge(
            "repro_stale_entries",
            "Stale-marked forwarding entries awaiting refresh or flush",
            ("node", "table"),
        )
        self.fec_latency = r.histogram(
            "repro_fec_latency_seconds",
            "End-to-end latency of delivered packets per FEC (SLO view)",
            ("fec",),
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self.fec_latency_quantiles = r.gauge(
            "repro_fec_latency_quantile_seconds",
            "Nearest-rank latency quantiles per FEC, published when a "
            "span recorder finalizes",
            ("fec", "quantile"),
        )
        self.oam_probes = r.counter(
            "repro_oam_probes_total",
            "LSP-ping probes sent by the OAM monitor, by outcome",
            ("fec", "outcome"),
        )
        self.oam_rtt = r.histogram(
            "repro_oam_rtt_seconds",
            "Round-trip time of successful OAM probes per FEC",
            ("fec",),
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self.oam_up = r.gauge(
            "repro_oam_up",
            "Last OAM probe verdict per FEC (1 = LSP answering)",
            ("fec",),
        )
        self.slo_breaches = r.counter(
            "repro_slo_breaches_total",
            "OAM probes whose RTT exceeded the configured SLO",
            ("fec",),
        )
        self.model_evals = r.counter(
            "repro_model_evaluations_total",
            "Analytic cost-model evaluations, by model",
            ("model",),
        )
        self.pipeline_speedup = r.gauge(
            "repro_pipeline_speedup",
            "Modeled pipelined-vs-sequential speedup at a table size",
            ("n_entries",),
        )
        # -- control-plane overload protection -----------------------------
        # registered unconditionally so dashboards see pressure building
        # even before overload protection is switched on
        self.control_queue_depth = r.gauge(
            "repro_control_queue_depth",
            "Bounded control-message queue depth, per node",
            ("node",),
        )
        self.control_queue_drops = r.counter(
            "repro_control_queue_drops_total",
            "Control messages lost to shedding/eviction/tail drop",
            ("node", "msg_class", "cause"),
        )
        self.fecs_shed = r.gauge(
            "repro_fecs_shed",
            "FECs currently shed by ingress overload protection",
            ("node",),
        )
        self.lsp_preemptions = r.counter(
            "repro_lsp_preemptions_total",
            "LSPs preempted by higher-priority setups, by outcome",
            ("mode",),
        )
        # -- flow accounting and alerting -----------------------------------
        # registered unconditionally (like the overload families) so
        # Prometheus scrapes keep the same schema whether or not a
        # FlowAccountant / AlertEngine is attached
        self.flow_active = r.gauge(
            "repro_flow_records_active",
            "Active flow records in the accounting cache, per node",
            ("node",),
        )
        self.flow_opened = r.counter(
            "repro_flow_records_opened_total",
            "Flow records opened per node",
            ("node",),
        )
        self.flow_expired = r.counter(
            "repro_flow_records_expired_total",
            "Flow records finished per node, by expiry reason",
            ("node", "reason"),
        )
        self.flow_packets = r.counter(
            "repro_flow_packets_total",
            "Packets accounted to flow records, per node and FEC",
            ("node", "fec"),
        )
        self.flow_bytes = r.counter(
            "repro_flow_bytes_total",
            "Bytes accounted to flow records, per node and FEC",
            ("node", "fec"),
        )
        self.matrix_snapshots = r.counter(
            "repro_traffic_matrix_snapshots_total",
            "Traffic-matrix snapshots materialized by the collector",
        )
        self.link_utilization = r.gauge(
            "repro_link_utilization_ratio",
            "Link busy fraction over the last matrix interval",
            ("src", "dst"),
        )
        self.alerts_active = r.gauge(
            "repro_alerts_active",
            "Currently firing alert instances, per rule",
            ("rule",),
        )
        self.alert_transitions = r.counter(
            "repro_alert_transitions_total",
            "Alert raise/clear transitions, per rule",
            ("rule", "transition"),
        )
        # -- adversarial security -------------------------------------------
        # registered unconditionally (like the overload families) so
        # the scrape schema is stable whether or not a SecurityMonitor
        # is armed for the run
        self.attacks_detected = r.counter(
            "repro_attacks_detected_total",
            "Injected attacks recognized by the security monitor",
            ("kind", "target"),
        )
        self.attacks_mitigated = r.counter(
            "repro_attacks_mitigated_total",
            "Injected attacks neutralized, by mitigating action",
            ("kind", "action"),
        )
        self.spoof_rejections = r.counter(
            "repro_spoof_guard_rejections_total",
            "Labelled packets rejected at the LER trust boundary",
            ("node",),
        )
        self.auth_mismatches = r.counter(
            "repro_ldp_auth_mismatches_total",
            "LDP messages rejected for a bad session auth token",
            ("node", "peer"),
        )
        self.xconnect_quarantines = r.counter(
            "repro_xconnect_quarantines_total",
            "Cross-connected ILM entries quarantined by the audit",
            ("node",),
        )
        self.exception_path = r.counter(
            "repro_exception_path_packets_total",
            "TTL-exception punts toward the control plane, by outcome",
            ("node", "outcome"),
        )
        # -- topology observatory -------------------------------------------
        # registered unconditionally so the scrape schema is stable
        # whether or not a TopologyObserver is attached for the run
        self.topo_deltas = r.counter(
            "repro_topo_deltas_total",
            "Versioned state deltas recorded by the topology observer",
        )
        self.topo_snapshots = r.counter(
            "repro_topo_snapshots_total",
            "Full topology snapshots taken between delta runs",
        )
        self.topo_health = r.gauge(
            "repro_topo_health",
            "Overall derived network health score in [0, 1]",
        )
        self.topo_convergence = r.histogram(
            "repro_topo_convergence_seconds",
            "Time from disruption to last dependent state change",
            ("kind",),
        )
        # -- centralized controller -----------------------------------------
        # registered unconditionally so the scrape schema is stable
        # whether or not a PCE controller is armed for the run
        self.controller_channel_depth = r.gauge(
            "repro_controller_channel_depth",
            "Bounded controller-channel queue depth, per node",
            ("node",),
        )
        self.controller_channel_drops = r.counter(
            "repro_controller_channel_drops_total",
            "Controller RPCs lost to partition/crash/shedding, by cause",
            ("node", "cause"),
        )
        self.controller_failovers = r.counter(
            "repro_controller_failovers_total",
            "Node hold-timer expiries against the controller, by reason",
            ("reason",),
        )
        self.controller_delegations = r.counter(
            "repro_controller_delegations_total",
            "Graceful fallbacks to distributed control, per node",
            ("node",),
        )
        self.controller_resyncs = r.counter(
            "repro_controller_resync_transactions_total",
            "Atomic resync transactions committed at re-adoption",
            ("node",),
        )
        self.controller_adoption = r.gauge(
            "repro_controller_adoption_state",
            "Delegation state per node (0 distributed, 1 adopted, "
            "2 orphaned)",
            ("node",),
        )

    # -- switch ------------------------------------------------------------
    def enable(self) -> "Telemetry":
        self.enabled = True
        return self

    def disable(self) -> "Telemetry":
        self.enabled = False
        return self

    def reset(self) -> None:
        """Fresh registry and event log; the switch keeps its position.
        Any attached span recorder or flow accountant is dropped with
        the old event log."""
        self.registry = MetricsRegistry()
        self.events = EventLog()
        self.spans = None
        self.flows = None
        self.topo = None
        self._register_core_families()


#: The process-wide default, disabled until someone opts in.
_default = Telemetry(enabled=False)


def get_telemetry() -> Telemetry:
    """The current default telemetry instance (cheap; hot paths call
    this per packet, not per elementary operation)."""
    return _default


def set_telemetry(telemetry: Telemetry) -> Telemetry:
    """Swap the default instance; returns the previous one."""
    global _default
    previous = _default
    _default = telemetry
    return previous


@contextmanager
def telemetry_session(
    enabled: bool = True, telemetry: Optional[Telemetry] = None
) -> Iterator[Telemetry]:
    """A fresh default :class:`Telemetry` for the duration of a block.

    The previous default (and therefore its enabled/disabled state) is
    restored on exit, so tests and CLI commands cannot leak metrics or
    sinks into each other.
    """
    tel = telemetry if telemetry is not None else Telemetry(enabled=enabled)
    previous = set_telemetry(tel)
    try:
        yield tel
    finally:
        set_telemetry(previous)
