"""The topology observatory: a live link-state database fed purely by
telemetry, with time travel and convergence accounting.

A :class:`TopologyObserver` subscribes to the structured event stream
(and, for per-link utilization, rides the traffic-matrix collector's
tick) and maintains a global view of the network: node and link state,
LDP adjacencies, label bindings per FEC, RSVP-TE LSPs, active faults
and attacks.  It adds **no instrumentation to hot paths** -- everything
it knows arrives through events the subsystems already emit, which is
also why a batched run and a scalar run of the same seed produce the
same database: the observer ignores data-plane event kinds entirely.

Every state change is recorded as a versioned delta against periodic
full snapshots, so the observer supports

* **time travel** -- :meth:`TopologyObserver.at` reconstructs the exact
  view at any timestamp from the nearest snapshot plus delta replay
  (byte-identical to the live view the observer held at that instant),
  and :meth:`TopologyView.diff` compares two instants;
* **convergence accounting** -- every ``fault-injected``/``fault-healed``
  event opens a *disruption*; subsequent table, session, LSP and
  up/down changes are attributed to the most recent disruption, giving
  per-disruption time-to-converge, table-transaction, reroute and flap
  counts (the paper's reconvergence story, measured globally).

The database mirrors the **control plane's** notion of state -- scalar
LDP's :class:`~repro.control.ldp.FECBinding` set, message LDP's
``FECState.advertised`` map, the RSVP-TE signaler's LSP table -- and
:meth:`TopologyObserver.verify` checks that mirror differentially
against the ground-truth objects at end of run.  The future PCE
consumes :class:`TopologyView` unchanged (the ROADMAP's "global CSPF
over the telemetry-fed topology view").
"""

from __future__ import annotations

import json
from bisect import bisect_right
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.events import CallbackSink, Event
from repro.obs.telemetry import Telemetry, get_telemetry

#: Event kinds that never change the topology database.  Data-plane
#: kinds differ between scalar and batched runs; skipping them is what
#: makes the database mode-independent.
_IGNORED_KINDS = frozenset(
    {
        "packet-forwarded",
        "packet-dropped",
        "packet-delivered",
        "label-op",
        "hw-op",
        "fsm-transition",
        "info-base-programmed",
        "ib-scrub",
        "oam-probe",
        "alert-raised",
        "alert-cleared",
        "audit-completed",
        "control-shed",
        "fec-shed",
        "lsp-preempted",  # the lsp event stream carries preemptions too
        # controller lifecycle: the PCE consumes the view, it does not
        # feed it (its table writes are refresh-in-place and the
        # distributed control plane remains the source of truth)
        "controller-failover",
        "controller-readopt",
    }
)

#: Fault kinds that take a link out of service / degrade it / down a
#: node -- the ones whose inject/heal drive the derived link-state
#: model.  Everything else only enters the active-faults ledger.
_LINK_DOWN_FAULTS = frozenset({"link-down"})
_LINK_DEGRADE_FAULTS = frozenset({"link-loss", "link-corrupt"})
_NODE_DOWN_FAULTS = frozenset({"node-crash"})
_NODE_RESTART_FAULTS = frozenset({"node-restart"})


def _copy(value: Any) -> Any:
    """Deep copy via the JSON round trip -- the view holds only
    JSON-serializable plain data, and this keeps snapshots honest."""
    return json.loads(json.dumps(value))


class TopologyView:
    """An immutable global network view at one instant.

    ``data`` is plain nested dicts (JSON-ready); the sections are

    * ``nodes`` -- name -> ``"up"`` / ``"restarting"`` / ``"down"``
    * ``links`` -- ``"a|b"`` -> ``"up"`` / ``"degraded"`` / ``"down"``
    * ``adjacencies`` -- directed ``"a>b"`` -> LDP session state
    * ``fecs`` -- fec id -> node -> ``{"label", "next_hop"}``
    * ``lsps`` -- LSP name -> ``{"state", "route"}``
    * ``frr`` -- protected-path name -> active path (primary/backup)
    * ``faults`` / ``attacks`` -- the active-incident ledgers
    * ``utilization`` -- directed ``"src>dst"`` -> busy fraction

    This is the read API the CLI renders and the future PCE consumes.
    """

    def __init__(self, time: float, data: Dict[str, Any]) -> None:
        self.time = time
        self.data = data

    # -- derived health ------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """Deterministic per-object and overall health scores in [0, 1].

        Nodes: up 1.0, restarting 0.5, down 0.0.  Links: down 0.0,
        degraded 0.5, else 1.0 -- halved when utilization on either
        direction is at or above 0.95 (congestion pressure).  FECs:
        1.0 with distributed bindings, 0.5 when only one router holds
        state, 0.0 with none.  LSPs: up 1.0, down 0.0.
        """
        d = self.data
        nodes = {
            name: {"up": 1.0, "restarting": 0.5, "down": 0.0}[state]
            for name, state in d["nodes"].items()
        }
        links: Dict[str, float] = {}
        for key, state in d["links"].items():
            if state == "down":
                links[key] = 0.0
                continue
            score = 0.5 if state == "degraded" else 1.0
            a, b = key.split("|")
            busy = max(
                d["utilization"].get(f"{a}>{b}", 0.0),
                d["utilization"].get(f"{b}>{a}", 0.0),
            )
            if busy >= 0.95:
                score *= 0.5
            links[key] = score
        fecs = {
            fec_id: (1.0 if len(bindings) > 1 else 0.5 if bindings else 0.0)
            for fec_id, bindings in d["fecs"].items()
        }
        lsps = {
            name: (1.0 if entry["state"] == "up" else 0.0)
            for name, entry in d["lsps"].items()
        }
        scores = (
            list(nodes.values())
            + list(links.values())
            + list(fecs.values())
            + list(lsps.values())
        )
        overall = round(sum(scores) / len(scores), 9) if scores else 1.0
        return {
            "nodes": nodes,
            "links": links,
            "fecs": fecs,
            "lsps": lsps,
            "overall": overall,
        }

    # -- export --------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        out = _copy(self.data)
        out["time"] = round(self.time, 9)
        out["health"] = self.health()
        return out

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, indent=2) + "\n"

    def to_dot(self) -> str:
        """The view as a Graphviz ``graph`` (byte-stable: everything is
        sorted, colors encode state, edge labels carry utilization)."""
        d = self.data
        node_color = {"up": "black", "restarting": "blue", "down": "red"}
        link_color = {"up": "black", "degraded": "orange", "down": "red"}
        lines = ["graph topology {"]
        for name in sorted(d["nodes"]):
            state = d["nodes"][name]
            lines.append(
                f'  "{name}" [label="{name}\\n({state})", '
                f"color={node_color[state]}];"
            )
        for key in sorted(d["links"]):
            a, b = key.split("|")
            state = d["links"][key]
            busy = max(
                d["utilization"].get(f"{a}>{b}", 0.0),
                d["utilization"].get(f"{b}>{a}", 0.0),
            )
            label = f', label="{busy * 100:.0f}%"' if busy else ""
            lines.append(
                f'  "{a}" -- "{b}" [color={link_color[state]}{label}];'
            )
        lines.append("}")
        return "\n".join(lines) + "\n"

    # -- comparison ----------------------------------------------------------
    def diff(self, other: "TopologyView") -> List[Dict[str, Any]]:
        """What changed between this view and ``other`` (self -> other):
        a sorted list of ``{"path", "before", "after"}`` leaf changes."""
        changes: List[Dict[str, Any]] = []

        def walk(path: str, before: Any, after: Any) -> None:
            if isinstance(before, dict) or isinstance(after, dict):
                b = before if isinstance(before, dict) else {}
                a = after if isinstance(after, dict) else {}
                for key in sorted(set(b) | set(a)):
                    walk(
                        f"{path}.{key}" if path else str(key),
                        b.get(key),
                        a.get(key),
                    )
                return
            if before != after:
                changes.append(
                    {"path": path, "before": before, "after": after}
                )

        walk("", self.data, other.data)
        return changes


class TopologyObserver:
    """Builds the link-state database from the telemetry event stream.

    Construct it over the scenario's :class:`~repro.net.topology.
    Topology` *before* the control plane, so the initial label
    distribution is captured, then :meth:`attach` it to the run's
    telemetry.  ``snapshot_every`` sets the full-snapshot cadence (one
    snapshot per N deltas) that bounds :meth:`at` replay cost.
    """

    def __init__(self, topology, snapshot_every: int = 64) -> None:
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self.snapshot_every = snapshot_every
        #: the topology as built -- faults mutate the live Topology
        #: object, so the initial node/link inventory is kept here
        self.node_names: List[str] = sorted(topology.nodes)
        self.link_pairs: List[Tuple[str, str]] = [
            tuple(sorted(pair)) for pair in sorted(topology.links)
        ]
        self._view: Dict[str, Any] = {
            "nodes": {name: "up" for name in self.node_names},
            "links": {self._link_key(a, b): "up" for a, b in self.link_pairs},
            "adjacencies": {},
            "fecs": {},
            "lsps": {},
            "frr": {},
            "faults": {},
            "attacks": {},
            "utilization": {},
        }
        self.version = 0
        self.deltas: List[Dict[str, Any]] = []
        self._delta_times: List[float] = []
        self.snapshots: List[Dict[str, Any]] = [
            {"version": 0, "time": 0.0, "view": _copy(self._view)}
        ]
        #: per-link active degradations (loss/corrupt faults overlap)
        self._degraded: Dict[str, int] = {}
        #: link keys held down by an active link-down fault
        self._link_down: set = set()
        #: disruption ledger: every applied fault inject/heal
        self.disruptions: List[Dict[str, Any]] = []
        #: (time, category, count) change journal for attribution
        self._changes: List[Tuple[float, str, int]] = []
        self._time = 0.0
        self._sink: Optional[CallbackSink] = None
        self._tel: Optional[Telemetry] = None
        #: filled by :meth:`finalize`
        self.verified: Optional[bool] = None
        self.mismatches: List[str] = []

    # -- wiring --------------------------------------------------------------
    def attach(self, telemetry: Optional[Telemetry] = None) -> "TopologyObserver":
        """Subscribe to the event stream and become ``tel.topo`` (the
        attachment point the gated withdraw emissions consult)."""
        tel = telemetry if telemetry is not None else get_telemetry()
        if self._sink is not None:
            raise RuntimeError("observer already attached")
        self._tel = tel
        self._sink = CallbackSink(self.consume)
        tel.events.add_sink(self._sink)
        tel.topo = self
        return self

    def detach(self) -> None:
        if self._sink is None:
            return
        tel = self._tel
        try:
            tel.events.remove_sink(self._sink)
        except ValueError:
            pass  # a telemetry reset already dropped the event log
        if tel.topo is self:
            tel.topo = None
        self._sink = None

    # -- the view and its mutations ------------------------------------------
    @staticmethod
    def _link_key(a: str, b: str) -> str:
        return "|".join(sorted((a, b)))

    def live_view(self) -> TopologyView:
        """The current view (a copy: mutating it cannot corrupt the
        database)."""
        return TopologyView(self._time, _copy(self._view))

    def _get(self, path: Tuple[str, ...]) -> Any:
        node: Any = self._view
        for part in path:
            if not isinstance(node, dict) or part not in node:
                return None
            node = node[part]
        return node

    def _record(
        self,
        path: Tuple[str, ...],
        value: Any,
        category: Optional[str] = None,
        count: int = 1,
    ) -> None:
        """Set a leaf, journal the delta; no-op when nothing changes."""
        if self._get(path) == value:
            return
        node = self._view
        for part in path[:-1]:
            node = node.setdefault(part, {})
        node[path[-1]] = _copy(value)
        self._journal(
            {"op": "set", "path": list(path), "value": _copy(value)},
            category,
            count,
        )

    def _remove(
        self,
        path: Tuple[str, ...],
        category: Optional[str] = None,
        count: int = 1,
    ) -> None:
        parent = self._get(path[:-1])
        if not isinstance(parent, dict) or path[-1] not in parent:
            return
        del parent[path[-1]]
        self._journal(
            {"op": "del", "path": list(path)}, category, count
        )

    def _journal(
        self, delta: Dict[str, Any], category: Optional[str], count: int
    ) -> None:
        self.version += 1
        delta["version"] = self.version
        delta["time"] = self._time
        self.deltas.append(delta)
        self._delta_times.append(self._time)
        if category is not None:
            self._changes.append((self._time, category, count))
        tel = self._tel
        if tel is not None:
            tel.topo_deltas.inc()
        if self.version % self.snapshot_every == 0:
            self.snapshots.append(
                {
                    "version": self.version,
                    "time": self._time,
                    "view": _copy(self._view),
                }
            )
            if tel is not None:
                tel.topo_snapshots.inc()

    @staticmethod
    def _apply(view: Dict[str, Any], delta: Dict[str, Any]) -> None:
        path = delta["path"]
        node = view
        if delta["op"] == "set":
            for part in path[:-1]:
                node = node.setdefault(part, {})
            node[path[-1]] = _copy(delta["value"])
        else:
            for part in path[:-1]:
                node = node.get(part)
                if node is None:
                    return
            node.pop(path[-1], None)

    # -- time travel ---------------------------------------------------------
    def at(self, t: float) -> TopologyView:
        """Reconstruct the view at time ``t`` from the nearest snapshot
        plus delta replay.  Replaying every delta reproduces the live
        view byte for byte -- the property ``repro topo at`` and the
        differential suite check."""
        idx = bisect_right(self._delta_times, t)
        snap = self.snapshots[0]
        for candidate in self.snapshots:
            if candidate["version"] <= idx:
                snap = candidate
            else:
                break
        view = _copy(snap["view"])
        for delta in self.deltas[snap["version"]: idx]:
            self._apply(view, delta)
        # clamp the stamp to the live clock so a query past the end of
        # the run serializes byte-identically to the live view
        return TopologyView(min(t, self._time), view)

    # -- event consumption ---------------------------------------------------
    def consume(self, event: Event) -> None:
        kind = event.kind
        if kind in _IGNORED_KINDS:
            return
        self._time = event.time if event.time is not None else self._time
        if kind == "fault-injected":
            self._on_fault_injected(event)
        elif kind == "fault-healed":
            self._on_fault_healed(event)
        elif kind == "ldp-session":
            self._record(
                ("adjacencies", f"{event.node}>{event.peer}"),
                event.state,
                category="session",
            )
        elif kind == "label-mapping-installed":
            self._record(
                ("fecs", event.fec_id, event.node),
                {"label": event.label, "next_hop": event.next_hop},
                category="table",
            )
        elif kind == "label-mapping-withdrawn":
            self._remove(
                ("fecs", event.fec_id, event.node), category="table"
            )
            if self._get(("fecs", event.fec_id)) == {}:
                self._remove(("fecs", event.fec_id))
        elif kind == "lsp":
            self._on_lsp(event)
        elif kind == "stale-flushed":
            # the hold-timer flush removes forwarding entries without
            # touching the control plane's binding state: no view
            # change, but the table transactions count toward the
            # disruption that caused them
            flushed = event.ilm_flushed + event.ftn_flushed
            if flushed:
                self._changes.append((self._time, "table", flushed))
        elif kind == "attack-detected":
            self._record(
                ("attacks", f"{event.attack}|{event.node}"), "detected"
            )
        elif kind == "attack-mitigated":
            self._record(
                ("attacks", f"{event.attack}|{event.node}"), "mitigated"
            )

    # -- fault state model ---------------------------------------------------
    def _split_link_target(self, label: str) -> Optional[Tuple[str, str]]:
        """Recover (a, b) from a fault label ``a-b`` -- node names
        contain hyphens, so split where both halves are known nodes."""
        parts = label.split("-")
        names = set(self.node_names)
        for i in range(1, len(parts)):
            a, b = "-".join(parts[:i]), "-".join(parts[i:])
            if a in names and b in names:
                return a, b
        return None

    def _refresh_link(self, a: str, b: str) -> None:
        """Re-derive one link's state from the active-fault model; the
        rule mirrors ``MPLSNetwork.link_is_up`` exactly."""
        key = self._link_key(a, b)
        if key not in self._view["links"]:
            return
        nodes = self._view["nodes"]
        if key in self._link_down or "down" in (nodes[a], nodes[b]):
            state = "down"
        elif self._degraded.get(key):
            state = "degraded"
        else:
            state = "up"
        self._record(("links", key), state, category="flap")

    def _refresh_links_of(self, name: str) -> None:
        for a, b in self.link_pairs:
            if name in (a, b):
                self._refresh_link(a, b)

    def _open_disruption(self, event: Event, phase: str) -> None:
        self.disruptions.append(
            {
                "kind": event.fault,
                "target": event.target,
                "phase": phase,
                "at": self._time,
            }
        )

    def _on_fault_injected(self, event: Event) -> None:
        fault, target = event.fault, event.target
        if fault in _LINK_DOWN_FAULTS or fault in _LINK_DEGRADE_FAULTS:
            pair = self._split_link_target(target)
            if pair is None:
                return
            key = self._link_key(*pair)
            if self._view["links"].get(key) == "down":
                return  # the injector skipped it too: link already down
            self._open_disruption(event, "inject")
            self._record(("faults", f"{fault}|{target}"), self._time)
            if fault in _LINK_DOWN_FAULTS:
                self._link_down.add(key)
            else:
                self._degraded[key] = self._degraded.get(key, 0) + 1
            self._refresh_link(*pair)
            return
        if fault in _NODE_DOWN_FAULTS or fault in _NODE_RESTART_FAULTS:
            name = target
            state = self._view["nodes"].get(name)
            if state is None:
                return
            if fault in _NODE_DOWN_FAULTS and state == "down":
                return  # injector skip: node already down
            if fault in _NODE_RESTART_FAULTS and state != "up":
                return  # injector skip: down or already restarting
            self._open_disruption(event, "inject")
            self._record(("faults", f"{fault}|{target}"), self._time)
            if fault in _NODE_DOWN_FAULTS:
                self._record(("nodes", name), "down", category="flap")
                self._refresh_links_of(name)
            else:
                # warm restart: control plane down, data plane forwards
                self._record(("nodes", name), "restarting", category="flap")
            return
        # session drops, bit flips, storms, attacks: no derived
        # topology state, but they are disruptions and active incidents
        self._open_disruption(event, "inject")
        self._record(("faults", f"{fault}|{target}"), self._time)

    def _on_fault_healed(self, event: Event) -> None:
        fault, target = event.fault, event.target
        self._open_disruption(event, "heal")
        self._remove(("faults", f"{fault}|{target}"))
        if fault in _LINK_DOWN_FAULTS or fault in _LINK_DEGRADE_FAULTS:
            pair = self._split_link_target(target)
            if pair is None:
                return
            key = self._link_key(*pair)
            if fault in _LINK_DOWN_FAULTS:
                self._link_down.discard(key)
            elif self._degraded.get(key):
                self._degraded[key] -= 1
            self._refresh_link(*pair)
        elif fault in _NODE_DOWN_FAULTS:
            self._record(("nodes", target), "up", category="flap")
            self._refresh_links_of(target)
        elif fault in _NODE_RESTART_FAULTS:
            self._record(("nodes", target), "up", category="flap")

    def _on_lsp(self, event: Event) -> None:
        name, what = event.name, event.event
        if what == "setup":
            route = event.detail.split(" @ ")[0]
            self._record(
                ("lsps", name),
                {"state": "up", "route": route},
                category="lsp",
            )
        elif what in ("teardown", "expired", "preempt-teardown"):
            entry = self._get(("lsps", name)) or {"route": ""}
            self._record(
                ("lsps", name),
                {"state": "down", "route": entry.get("route", "")},
                category="lsp",
            )
        elif what == "preempt-reroute":
            self._record(
                ("lsps", name),
                {"state": "up", "route": event.detail},
                category="lsp",
            )
        elif what == "frr-switchover":
            active = event.detail.rsplit("now on ", 1)[-1]
            self._record(("frr", name), active, category="lsp")
        elif what == "frr-revert":
            self._record(("frr", name), "primary", category="lsp")

    # -- utilization (traffic-matrix collector hook) -------------------------
    def record_utilization(
        self, now: float, utilization: Dict[Tuple[str, str], float]
    ) -> None:
        """Called by :class:`~repro.obs.flows.MatrixCollector` after it
        publishes the per-link gauges; mirrors them into the view."""
        self._time = max(self._time, now)
        stale = set(self._view["utilization"])
        for (src, dst), value in sorted(utilization.items()):
            key = f"{src}>{dst}"
            stale.discard(key)
            self._record(("utilization", key), value)
        # a link that carried traffic last interval and none this one
        # keeps its gauge (Prometheus semantics); mirror that by
        # leaving stale keys in place

    # -- convergence accounting ----------------------------------------------
    def convergence(self) -> Dict[str, Any]:
        """Attribute every recorded change to the most recent
        disruption and derive per-disruption convergence statistics.
        Everything is integer counts and rounded sim times: the same
        run yields the same bytes."""
        disruptions = sorted(
            self.disruptions, key=lambda d: d["at"]
        )
        times = [d["at"] for d in disruptions]
        stats: List[Dict[str, Any]] = [
            {
                "kind": d["kind"],
                "target": d["target"],
                "phase": d["phase"],
                "at": round(d["at"], 9),
                "settled_at": None,
                "time_to_converge_s": None,
                "table_transactions": 0,
                "sessions_changed": 0,
                "lsps_changed": 0,
                "flaps": 0,
            }
            for d in disruptions
        ]
        initial = {
            "settled_at": None,
            "table_transactions": 0,
            "sessions_changed": 0,
            "lsps_changed": 0,
        }
        key_of = {
            "table": "table_transactions",
            "session": "sessions_changed",
            "lsp": "lsps_changed",
            "flap": "flaps",
        }
        for t, category, count in self._changes:
            idx = bisect_right(times, t) - 1
            if idx < 0:
                # before any disruption: the initial label distribution
                field = key_of[category]
                if field in initial:
                    initial[field] += count
                    initial["settled_at"] = round(t, 9)
                continue
            entry = stats[idx]
            entry[key_of[category]] += count
            entry["settled_at"] = round(t, 9)
            entry["time_to_converge_s"] = round(t - entry["at"], 9)
        return {
            "initial": initial,
            "disruptions": stats,
            "deltas": self.version,
            "snapshots": len(self.snapshots),
        }

    # -- differential verification -------------------------------------------
    def verify(
        self,
        network=None,
        ldp=None,
        message_ldp=None,
        frr=None,
        registry=None,
    ) -> List[str]:
        """Cross-check the observed database against the ground-truth
        objects; returns a sorted list of mismatch descriptions (empty
        means the mirror held)."""
        problems: List[str] = []
        view = self._view
        if network is not None:
            for a, b in self.link_pairs:
                key = self._link_key(a, b)
                observed_up = view["links"][key] != "down"
                actual_up = network.link_is_up(a, b)
                if observed_up != actual_up:
                    problems.append(
                        f"link {key}: observed "
                        f"{'up' if observed_up else 'down'}, network says "
                        f"{'up' if actual_up else 'down'}"
                    )
            for name in self.node_names:
                observed_down = view["nodes"][name] == "down"
                actual_down = name in network._down_nodes
                if observed_down != actual_down:
                    problems.append(
                        f"node {name}: observed "
                        f"{'down' if observed_down else 'up'}, network "
                        f"says {'down' if actual_down else 'up'}"
                    )
        if message_ldp is not None:
            for a, b in self.link_pairs:
                observed = (
                    view["adjacencies"].get(f"{a}>{b}") == "up"
                    and view["adjacencies"].get(f"{b}>{a}") == "up"
                )
                actual = (
                    b in message_ldp.speakers[a].sessions
                    and a in message_ldp.speakers[b].sessions
                )
                if observed != actual:
                    problems.append(
                        f"adjacency {a}<->{b}: observed "
                        f"{'up' if observed else 'down'}, speakers say "
                        f"{'up' if actual else 'down'}"
                    )
            for fec_id, state in message_ldp.fecs.items():
                observed_labels = {
                    node: entry["label"]
                    for node, entry in view["fecs"].get(fec_id, {}).items()
                }
                if observed_labels != dict(state.advertised):
                    problems.append(
                        f"fec {fec_id}: observed bindings "
                        f"{observed_labels} != advertised "
                        f"{dict(state.advertised)}"
                    )
            for fec_id in view["fecs"]:
                if fec_id not in message_ldp.fecs:
                    problems.append(f"fec {fec_id}: observed but unknown")
        if ldp is not None:
            expected: Dict[str, Dict[str, Any]] = {}
            for binding in ldp.bindings:
                expected[str(binding.fec)] = {
                    node: {
                        "label": label,
                        "next_hop": binding.next_hops.get(node),
                    }
                    for node, label in binding.labels.items()
                }
            if view["fecs"] != expected:
                for fec_id in sorted(set(view["fecs"]) | set(expected)):
                    if view["fecs"].get(fec_id) != expected.get(fec_id):
                        problems.append(
                            f"fec {fec_id}: observed "
                            f"{view['fecs'].get(fec_id)} != bindings "
                            f"{expected.get(fec_id)}"
                        )
        if frr is not None:
            observed_up = {
                name
                for name, entry in view["lsps"].items()
                if entry["state"] == "up"
            }
            actual_up = set(frr.signaler.lsps)
            if observed_up != actual_up:
                problems.append(
                    f"lsps up: observed {sorted(observed_up)} != "
                    f"signaled {sorted(actual_up)}"
                )
            observed_active = dict(view["frr"])
            actual_active = {
                name: p.active for name, p in frr.protected.items()
            }
            # a protected path that never switched over has no event;
            # absence means primary
            for name in actual_active:
                observed_active.setdefault(name, "primary")
            if observed_active != actual_active:
                problems.append(
                    f"frr active paths: observed {observed_active} != "
                    f"{actual_active}"
                )
        if registry is not None:
            family = registry.get("repro_link_utilization_ratio")
            if family is not None:
                actual_util = {
                    f"{src}>{dst}": child.value
                    for (src, dst), child in family.samples()
                }
                if view["utilization"] != actual_util:
                    problems.append(
                        f"utilization: observed {view['utilization']} != "
                        f"gauges {actual_util}"
                    )
        return sorted(problems)

    def finalize(self, run=None) -> None:
        """End of run: verify against ground truth (when the run's
        objects are supplied) and publish the health/convergence
        metric families."""
        if run is not None:
            self.mismatches = self.verify(
                network=run.network,
                ldp=run.ldp,
                message_ldp=run.message_ldp,
                frr=run.frr,
                registry=self._tel.registry if self._tel else None,
            )
            self.verified = not self.mismatches
        tel = self._tel
        if tel is not None:
            tel.topo_health.set(self.live_view().health()["overall"])
            for entry in self.convergence()["disruptions"]:
                if entry["time_to_converge_s"] is not None:
                    tel.topo_convergence.labels(entry["kind"]).observe(
                        entry["time_to_converge_s"]
                    )
