"""IPFIX/NetFlow-style flow accounting and traffic-matrix telemetry.

Where span tracing (PR 4) answers "what happened to one packet", this
layer answers "who is using the network": every node keeps *flow
records* -- per-(node, flow) aggregates keyed by FEC with packet/byte
counts, the label path in use, and first/last timestamps -- and a
periodic collector materializes them into :class:`TrafficMatrix`
snapshots (the ingress->egress demand view a future PCE consumes)
plus per-link utilization.

The hot-path contract matches spans exactly: every accounting hook
rides *inside* an existing ``telemetry.enabled`` guard and adds only a
``tel.flows is not None`` test, so with accounting unattached (the
default) a packet still costs one global lookup and one boolean per
instrumentation site -- ``benchmarks/test_bench_obs_overhead.py``
asserts it.

Flow records follow the IPFIX expiry model:

* **idle expiry** -- a record with no packets for ``idle_timeout``
  seconds is finished with reason ``idle`` (the collector sweeps; a
  new packet for the same key also rotates the stale record first);
* **active expiry** -- a record older than ``active_timeout`` is
  finished with reason ``active-timeout`` and a fresh record started,
  so long-lived flows surface periodically instead of only at the end;
* **eviction** -- the record cache is bounded; at capacity the least
  recently touched record is finished with reason ``evicted``;
* **teardown** -- LSP/FEC teardown in :mod:`repro.control` closes the
  records riding that FEC with reason ``teardown``;
* **final** -- :meth:`FlowAccountant.finalize` closes what remains.

Everything derives from simulated time and the deterministic packet
stream, so exports are byte-stable across runs of the same seeded
scenario -- the property the CI ``flows-smoke`` job checks with
``cmp``.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    TextIO,
    Tuple,
)

from repro.obs.events import JSONL_SCHEMA_VERSION
from repro.obs.telemetry import Telemetry, get_telemetry

#: Flow-record end reasons (the IPFIX taxonomy, plus ours).
END_IDLE = "idle"
END_ACTIVE = "active-timeout"
END_EVICTED = "evicted"
END_TEARDOWN = "teardown"
END_FINAL = "final"


def _round9(value: Optional[float]) -> Optional[float]:
    """The report-stable rounding used across chaos exports."""
    return None if value is None else round(value, 9)


@dataclass
class FlowRecord:
    """One node's accounting aggregate for one flow (IPFIX-style).

    A (node, flow) pair can produce several consecutive records over a
    run -- active/idle expiry rotates them -- so ``seq`` numbers the
    records of one key in order.
    """

    node: str
    flow_id: int
    fec: str
    seq: int = 0
    packets: int = 0
    bytes: int = 0
    first_seen: float = 0.0
    last_seen: float = 0.0
    #: The outgoing label stack of the most recent packet -- the label
    #: path this flow is riding at this node (empty for plain IP).
    labels: Tuple[int, ...] = ()
    #: Hardware modifier cycles attributed to this record (0 on
    #: software nodes).
    hw_cycles: int = 0
    end_time: Optional[float] = None
    end_reason: Optional[str] = None

    @property
    def active(self) -> bool:
        return self.end_reason is None

    @property
    def duration(self) -> float:
        end = self.end_time if self.end_time is not None else self.last_seen
        return end - self.first_seen

    def as_dict(self) -> Dict[str, Any]:
        return {
            "node": self.node,
            "flow_id": self.flow_id,
            "fec": self.fec,
            "seq": self.seq,
            "packets": self.packets,
            "bytes": self.bytes,
            "first_seen": _round9(self.first_seen),
            "last_seen": _round9(self.last_seen),
            "labels": list(self.labels),
            "hw_cycles": self.hw_cycles,
            "end_time": _round9(self.end_time),
            "end_reason": self.end_reason,
        }


@dataclass
class TrafficMatrix:
    """One periodic snapshot of demand and link utilization.

    ``demands`` maps (ingress, egress, fec) to the packets/bytes
    delivered in this interval; ``utilization`` maps a directed link
    (src, dst) to its busy fraction over the interval.
    """

    time: float
    interval: float
    demands: Dict[Tuple[str, str, str], Tuple[int, int]] = field(
        default_factory=dict
    )
    utilization: Dict[Tuple[str, str], float] = field(default_factory=dict)

    def rate_bps(self, ingress: str, egress: str, fec: str) -> float:
        _, nbytes = self.demands.get((ingress, egress, fec), (0, 0))
        return nbytes * 8 / self.interval if self.interval > 0 else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "time": _round9(self.time),
            "interval": _round9(self.interval),
            "demands": [
                {
                    "ingress": ingress,
                    "egress": egress,
                    "fec": fec,
                    "packets": packets,
                    "bytes": nbytes,
                    "rate_bps": _round9(self.rate_bps(ingress, egress, fec)),
                }
                for (ingress, egress, fec), (packets, nbytes) in sorted(
                    self.demands.items()
                )
            ],
            "link_utilization": [
                {"src": src, "dst": dst, "utilization": _round9(util)}
                for (src, dst), util in sorted(self.utilization.items())
            ],
        }


class FlowAccountant:
    """Per-node flow records behind the ``telemetry.flows`` slot.

    Constructing an accountant enables telemetry (restored by
    :meth:`detach`) and publishes itself at ``telemetry.flows``, where
    the data-plane hooks find it.  All hooks are O(1) dictionary work.

    Parameters
    ----------
    active_timeout:
        Seconds after which a still-active record is exported and
        restarted (IPFIX active timeout).
    idle_timeout:
        Seconds without traffic after which a record is finished.
    capacity:
        Bound on concurrently active records across all nodes; at
        capacity the least recently touched record is evicted.
    flow_fecs:
        flow id -> FEC name for record labelling; unmapped flows fall
        back to ``flow-<id>``.
    flow_ids:
        runtime flow id -> stable export id (the scenario flow index).
        Runtime ids come from a process-global counter, so exports of
        mapped flows stay byte-identical even across runs sharing one
        process; unmapped flows keep their runtime id.
    """

    def __init__(
        self,
        active_timeout: float = 1.0,
        idle_timeout: float = 0.25,
        capacity: int = 4096,
        flow_fecs: Optional[Mapping[int, str]] = None,
        flow_ids: Optional[Mapping[int, int]] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if active_timeout <= 0 or idle_timeout <= 0:
            raise ValueError("flow timeouts must be positive")
        if capacity < 1:
            raise ValueError(f"flow cache capacity must be >= 1: {capacity}")
        self.active_timeout = active_timeout
        self.idle_timeout = idle_timeout
        self.capacity = capacity
        self.flow_fecs = dict(flow_fecs or {})
        self.flow_ids = dict(flow_ids or {})
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        #: (node, flow_id) -> active record, in least-recently-touched
        #: order (the eviction order).
        self._active: "OrderedDict[Tuple[str, int], FlowRecord]" = OrderedDict()
        #: next record seq per key (rotation counter)
        self._seqs: Dict[Tuple[str, int], int] = {}
        #: finished records in completion order
        self.finished: List[FlowRecord] = []
        #: flow id -> first node that accounted it (ingress attribution)
        self._flow_ingress: Dict[int, str] = {}
        #: interval accumulators drained by the matrix collector
        self._demands: Dict[Tuple[str, str, str], List[int]] = {}
        self._link_bytes: Dict[Tuple[str, str], int] = {}
        #: hardware cycles observed before the packet's record existed
        #: (hwnode publishes its cycle delta ahead of the observe hook)
        self._pending_hw: Dict[Tuple[str, int], int] = {}
        #: LSP lifecycle notes from repro.control ((time, name, event))
        self.lsp_log: List[Tuple[float, str, str]] = []
        self.records_opened = 0
        self.evictions = 0
        self._was_enabled = self.telemetry.enabled
        self.telemetry.enable()
        self.telemetry.flows = self

    # -- clock ---------------------------------------------------------------
    def _now(self) -> float:
        clock = self.telemetry.events.clock
        return clock() if clock is not None else 0.0

    def fec_of(self, flow_id: int) -> str:
        return self.flow_fecs.get(flow_id, f"flow-{flow_id}")

    # -- hot-path hooks ------------------------------------------------------
    def record_packet(
        self,
        node: str,
        flow_id: int,
        size: int,
        labels: Tuple[int, ...] = (),
    ) -> None:
        """Account one packet processed at ``node`` (any outcome that
        moves bytes: forward, deliver, or ingress push)."""
        now = self._now()
        key = (node, flow_id)
        record = self._active.get(key)
        if record is not None:
            if now - record.last_seen > self.idle_timeout:
                self._finish(record, END_IDLE, at=record.last_seen)
                record = None
            elif now - record.first_seen > self.active_timeout:
                self._finish(record, END_ACTIVE, at=now)
                record = None
        if record is None:
            record = self._open(node, flow_id, now)
        record.packets += 1
        record.bytes += size
        record.last_seen = now
        if labels != record.labels:
            record.labels = labels
        pending = self._pending_hw.pop(key, 0)
        if pending:
            record.hw_cycles += pending
        self._active.move_to_end(key)
        tel = self.telemetry
        tel.flow_packets.labels(node, record.fec).inc()
        tel.flow_bytes.labels(node, record.fec).inc(size)

    def record_packet_bulk(
        self,
        node: str,
        flow_id: int,
        count: int,
        total_bytes: int,
        labels: Tuple[int, ...] = (),
    ) -> None:
        """Account ``count`` packets of one flow processed at ``node``
        in one step (aggregate processing, batched mode).

        Semantically identical to ``count`` :meth:`record_packet`
        calls sharing one timestamp: the timeout checks run once (the
        first call of a same-instant train is the only one that can
        rotate the record), then the whole train lands on one record.
        """
        if count <= 0:
            return
        now = self._now()
        key = (node, flow_id)
        record = self._active.get(key)
        if record is not None:
            if now - record.last_seen > self.idle_timeout:
                self._finish(record, END_IDLE, at=record.last_seen)
                record = None
            elif now - record.first_seen > self.active_timeout:
                self._finish(record, END_ACTIVE, at=now)
                record = None
        if record is None:
            record = self._open(node, flow_id, now)
        record.packets += count
        record.bytes += total_bytes
        record.last_seen = now
        if labels != record.labels:
            record.labels = labels
        pending = self._pending_hw.pop(key, 0)
        if pending:
            record.hw_cycles += pending
        self._active.move_to_end(key)
        tel = self.telemetry
        tel.flow_packets.labels(node, record.fec).inc(count)
        tel.flow_bytes.labels(node, record.fec).inc(total_bytes)

    def record_delivery_bulk(
        self, node: str, flow_id: int, count: int, total_bytes: int
    ) -> None:
        """Account a delivered aggregate for the demand matrix: the
        bulk counterpart of :meth:`record_delivery`."""
        if flow_id < 0 or count <= 0:
            return
        ingress = self._flow_ingress.get(flow_id, node)
        key = (ingress, node, self.fec_of(flow_id))
        cell = self._demands.get(key)
        if cell is None:
            cell = self._demands[key] = [0, 0]
        cell[0] += count
        cell[1] += total_bytes

    def record_delivery(self, node: str, flow_id: int, size: int) -> None:
        """Account one delivered packet for the demand matrix (the
        ingress->egress FEC view).  Probe flows (negative ids) belong
        to the OAM monitor, not the matrix."""
        if flow_id < 0:
            return
        ingress = self._flow_ingress.get(flow_id, node)
        key = (ingress, node, self.fec_of(flow_id))
        cell = self._demands.get(key)
        if cell is None:
            cell = self._demands[key] = [0, 0]
        cell[0] += 1
        cell[1] += size

    def record_link_tx(self, src: str, dst: str, size: int) -> None:
        """Account bytes transmitted on a directed link (feeds the
        utilization side of the matrix snapshot)."""
        key = (src, dst)
        self._link_bytes[key] = self._link_bytes.get(key, 0) + size

    def record_hw_cycles(self, node: str, flow_id: int, delta: int) -> None:
        """Attribute hardware modifier cycles to a flow's record at
        ``node``.  The hardware node publishes its cycle delta before
        the observe hook opens the packet's record, so cycles that
        arrive early are parked and folded in by the next
        :meth:`record_packet`."""
        key = (node, flow_id)
        record = self._active.get(key)
        if record is not None:
            record.hw_cycles += delta
        else:
            self._pending_hw[key] = self._pending_hw.get(key, 0) + delta

    def note_lsp(self, name: str, event: str, detail: str = "") -> None:
        """Record one LSP lifecycle event from the control plane."""
        self.lsp_log.append((self._now(), name, event))

    # -- record lifecycle ----------------------------------------------------
    def _open(self, node: str, flow_id: int, now: float) -> FlowRecord:
        if len(self._active) >= self.capacity:
            _, victim = self._active.popitem(last=False)
            self._close(victim, END_EVICTED, at=victim.last_seen)
            self.evictions += 1
        key = (node, flow_id)
        seq = self._seqs.get(key, 0)
        self._seqs[key] = seq + 1
        record = FlowRecord(
            node=node,
            flow_id=self.flow_ids.get(flow_id, flow_id),
            fec=self.fec_of(flow_id),
            seq=seq,
            first_seen=now,
            last_seen=now,
        )
        # the cache key uses the runtime flow id; the record itself
        # carries the stable export id
        record._key = key
        self._active[key] = record
        self._flow_ingress.setdefault(flow_id, node)
        self.records_opened += 1
        tel = self.telemetry
        tel.flow_opened.labels(node).inc()
        tel.flow_active.labels(node).set(
            sum(1 for r in self._active.values() if r.node == node)
        )
        return record

    def _finish(self, record: FlowRecord, reason: str, at: float) -> None:
        """Finish a record that is still in the active cache."""
        self._active.pop(record._key, None)
        self._close(record, reason, at)

    def _close(self, record: FlowRecord, reason: str, at: float) -> None:
        record.end_time = at
        record.end_reason = reason
        self.finished.append(record)
        tel = self.telemetry
        tel.flow_expired.labels(record.node, reason).inc()
        tel.flow_active.labels(record.node).set(
            sum(1 for r in self._active.values() if r.node == record.node)
        )

    def expire_idle(self, now: Optional[float] = None) -> int:
        """Sweep idle records (the collector's periodic pass)."""
        at = now if now is not None else self._now()
        stale = [
            record
            for record in self._active.values()
            if at - record.last_seen > self.idle_timeout
        ]
        for record in stale:
            self._finish(record, END_IDLE, at=record.last_seen)
        return len(stale)

    def close_fec(self, fec: str, reason: str = END_TEARDOWN) -> int:
        """Close every active record riding ``fec`` (LSP teardown)."""
        now = self._now()
        doomed = [r for r in self._active.values() if r.fec == fec]
        for record in doomed:
            self._finish(record, reason, at=now)
        return len(doomed)

    def finalize(self) -> None:
        """Close all remaining active records with reason ``final``.
        Idempotent."""
        now = self._now()
        while self._active:
            _, record = self._active.popitem(last=False)
            self._close(record, END_FINAL, at=min(now, record.last_seen + self.idle_timeout))

    def detach(self) -> None:
        """Clear ``telemetry.flows`` and restore the enable switch."""
        if self.telemetry.flows is self:
            self.telemetry.flows = None
        if not self._was_enabled:
            self.telemetry.disable()

    # -- collector interface -------------------------------------------------
    def drain_demands(self) -> Dict[Tuple[str, str, str], Tuple[int, int]]:
        out = {k: (v[0], v[1]) for k, v in self._demands.items()}
        self._demands.clear()
        return out

    def drain_link_bytes(self) -> Dict[Tuple[str, str], int]:
        out = dict(self._link_bytes)
        self._link_bytes.clear()
        return out

    # -- queries -------------------------------------------------------------
    def active_records(self) -> List[FlowRecord]:
        return sorted(
            self._active.values(), key=lambda r: (r.node, r.flow_id, r.seq)
        )

    def all_records(self) -> List[FlowRecord]:
        """Finished then active records in a stable export order."""
        return sorted(
            [*self.finished, *self._active.values()],
            key=lambda r: (r.node, r.flow_id, r.seq),
        )

    def active_count(self, node: Optional[str] = None) -> int:
        if node is None:
            return len(self._active)
        return sum(1 for r in self._active.values() if r.node == node)

    def top_talkers(self, n: int = 10) -> List[Dict[str, Any]]:
        """The heaviest (node, flow) pairs by bytes, records merged."""
        totals: Dict[Tuple[str, int], Dict[str, Any]] = {}
        for record in self.all_records():
            key = (record.node, record.flow_id)
            entry = totals.get(key)
            if entry is None:
                entry = totals[key] = {
                    "node": record.node,
                    "flow_id": record.flow_id,
                    "fec": record.fec,
                    "packets": 0,
                    "bytes": 0,
                    "records": 0,
                    "labels": list(record.labels),
                }
            entry["packets"] += record.packets
            entry["bytes"] += record.bytes
            entry["records"] += 1
            if record.labels:
                entry["labels"] = list(record.labels)
        ranked = sorted(
            totals.values(),
            key=lambda e: (-e["bytes"], e["node"], e["flow_id"]),
        )
        return ranked[:n]

    def summary(self) -> Dict[str, Any]:
        by_reason: Dict[str, int] = {}
        for record in self.finished:
            reason = record.end_reason or "unknown"
            by_reason[reason] = by_reason.get(reason, 0) + 1
        return {
            "records_opened": self.records_opened,
            "active_at_end": len(self._active),
            "finished": len(self.finished),
            "finished_by_reason": dict(sorted(by_reason.items())),
            "evictions": self.evictions,
            "lsp_events": len(self.lsp_log),
        }


class MatrixCollector:
    """Periodically materializes :class:`TrafficMatrix` snapshots.

    Each tick drains the accountant's interval accumulators, computes
    per-link utilization against the supplied bandwidths, sweeps idle
    flow records, publishes the utilization gauges, and (when an
    alert engine is attached) evaluates the alert rules against the
    fresh snapshot.

    Parameters
    ----------
    accountant:
        The :class:`FlowAccountant` feeding the snapshots.
    scheduler:
        The network's event scheduler (paces the ticks).
    bandwidths:
        Directed link (src, dst) -> capacity in bit/s, for utilization.
    period:
        Seconds between snapshots.
    start:
        First tick (defaults to one period in).
    stop:
        No tick is scheduled at or beyond this horizon.
    alerts:
        An optional :class:`repro.obs.alerts.AlertEngine` evaluated on
        every tick.
    """

    def __init__(
        self,
        accountant: FlowAccountant,
        scheduler,
        bandwidths: Optional[Mapping[Tuple[str, str], float]] = None,
        period: float = 0.1,
        start: Optional[float] = None,
        stop: Optional[float] = None,
        alerts=None,
    ) -> None:
        if period <= 0:
            raise ValueError("matrix period must be positive")
        self.accountant = accountant
        self.scheduler = scheduler
        self.bandwidths = dict(bandwidths or {})
        self.period = period
        self.stop = stop
        self.alerts = alerts
        self.matrices: List[TrafficMatrix] = []
        self._last_tick = 0.0
        first = start if start is not None else period
        self._last_tick = max(0.0, first - period)
        scheduler.at(first, self._tick)

    def _tick(self) -> None:
        now = self.scheduler.now
        interval = now - self._last_tick
        self._last_tick = now
        demands = self.accountant.drain_demands()
        link_bytes = self.accountant.drain_link_bytes()
        utilization: Dict[Tuple[str, str], float] = {}
        for key, nbytes in link_bytes.items():
            bandwidth = self.bandwidths.get(key)
            if bandwidth and interval > 0:
                utilization[key] = min(
                    1.0, nbytes * 8 / (bandwidth * interval)
                )
        matrix = TrafficMatrix(
            time=now,
            interval=interval,
            demands=demands,
            utilization=utilization,
        )
        self.matrices.append(matrix)
        self.accountant.expire_idle(now)
        tel = self.accountant.telemetry
        tel.matrix_snapshots.inc()
        for (src, dst), util in utilization.items():
            tel.link_utilization.labels(src, dst).set(util)
        if tel.topo is not None:
            # mirror the gauges into the topology observer's view so
            # time-travel queries see per-link utilization too
            tel.topo.record_utilization(now, utilization)
        if self.alerts is not None:
            self.alerts.evaluate(now, matrix=matrix)
        next_at = now + self.period
        if self.stop is None or next_at <= self.stop:
            self.scheduler.at(next_at, self._tick)

    @property
    def latest(self) -> Optional[TrafficMatrix]:
        return self.matrices[-1] if self.matrices else None

    def peak_utilization(self) -> Dict[Tuple[str, str], float]:
        """Per-link maximum utilization across all snapshots."""
        peaks: Dict[Tuple[str, str], float] = {}
        for matrix in self.matrices:
            for key, util in matrix.utilization.items():
                if util > peaks.get(key, 0.0):
                    peaks[key] = util
        return peaks


# -- exporters ---------------------------------------------------------------
def flows_to_jsonl(
    records: Iterable[FlowRecord],
    stream: TextIO,
    matrices: Iterable[TrafficMatrix] = (),
    alerts: Iterable[Mapping[str, Any]] = (),
) -> int:
    """Write flow records (and optionally matrix snapshots and alert
    history entries) as JSON Lines, byte-stably.  Returns the number
    of lines written."""
    written = 0
    for record in records:
        line = record.as_dict()
        line["v"] = JSONL_SCHEMA_VERSION
        line["type"] = "flow"
        stream.write(json.dumps(line, sort_keys=True))
        stream.write("\n")
        written += 1
    for matrix in matrices:
        line = matrix.as_dict()
        line["v"] = JSONL_SCHEMA_VERSION
        line["type"] = "matrix"
        stream.write(json.dumps(line, sort_keys=True))
        stream.write("\n")
        written += 1
    for entry in alerts:
        line = dict(entry)
        line["v"] = JSONL_SCHEMA_VERSION
        line["type"] = "alert"
        stream.write(json.dumps(line, sort_keys=True))
        stream.write("\n")
        written += 1
    return written


def matrices_to_json(matrices: Iterable[TrafficMatrix]) -> str:
    """All snapshots as one stable JSON document (the CI artifact)."""
    doc = {"v": JSONL_SCHEMA_VERSION, "matrices": [m.as_dict() for m in matrices]}
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def render_flow_summary(
    accountant: FlowAccountant,
    collector: Optional[MatrixCollector] = None,
    top: int = 10,
) -> str:
    """The ``repro flows`` summary: totals, top talkers, and the most
    recent traffic matrix."""
    info = accountant.summary()
    lines = ["flow accounting summary", "-----------------------"]
    reasons = ", ".join(
        f"{reason}={count}"
        for reason, count in info["finished_by_reason"].items()
    )
    lines.append(
        f"  records: {info['records_opened']} opened, "
        f"{info['finished']} finished ({reasons or 'none'}), "
        f"{info['active_at_end']} active at end"
    )
    talkers = accountant.top_talkers(top)
    if talkers:
        lines.append(f"  top {len(talkers)} talkers (bytes, all records):")
        for entry in talkers:
            labels = (
                "/".join(str(label) for label in entry["labels"])
                if entry["labels"]
                else "-"
            )
            lines.append(
                f"    {entry['node']:<10s} flow={entry['flow_id']:<6d} "
                f"fec={entry['fec']:<18s} {entry['bytes']:>10d} B "
                f"{entry['packets']:>6d} pkts  labels={labels}"
            )
    if collector is not None and collector.latest is not None:
        matrix = collector.latest
        lines.append(
            f"  traffic matrix @ t={matrix.time:g} "
            f"(interval {matrix.interval:g}s):"
        )
        for entry in matrix.as_dict()["demands"]:
            rate = entry["rate_bps"] or 0.0
            lines.append(
                f"    {entry['ingress']} -> {entry['egress']}  "
                f"fec={entry['fec']:<18s} {rate / 1e6:7.3f} Mbps "
                f"({entry['packets']} pkts)"
            )
        peaks = collector.peak_utilization()
        if peaks:
            lines.append("  peak link utilization:")
            for (src, dst), util in sorted(peaks.items()):
                lines.append(f"    {src} -> {dst}  {util:6.1%}")
    return "\n".join(lines)
