"""Cycle-level profiling of the RTL simulation.

A :class:`CycleProfiler` attaches to a
:class:`~repro.hdl.simulator.Simulator` through its tick hook and
attributes **every** simulated clock cycle:

* to the state each control FSM occupied during that cycle (the state
  *held* across the edge, i.e. the value the state register had when
  the cycle began),
* to the activity of each memory's ports (write cycles where ``wr_en``
  was asserted; read cycles where the read address moved),
* and, when the driving code scopes transactions with
  :meth:`operation`, to the named operation -- producing the
  per-operation cycle breakdowns that generalize the static Table 6
  (``benchmarks/results/table6_cycles.txt``) into a measured profile.

The defining invariant is **conservation**: for every FSM, the per-state
totals sum exactly to the number of cycles observed, and the
per-operation totals (including ``idle``) do too.
:meth:`check_conservation` asserts this; the integration tests run it
over the Table 6 scenarios.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from repro.hdl.fsm import FSM
from repro.hdl.memory import SyncMemory
from repro.hdl.simulator import Simulator
from repro.obs.events import FSMTransition
from repro.obs.telemetry import Telemetry

#: Cycles outside any scoped operation land here.
IDLE = "idle"


class ConservationError(AssertionError):
    """Per-state or per-operation totals do not sum to the cycles seen."""


class CycleProfiler:
    """Attributes simulated cycles to FSM states, memory ports, and
    scoped operations.

    Parameters
    ----------
    sim:
        The simulator to observe.  FSMs and memories are discovered
        from its component tree at attach time.
    telemetry:
        When given *and* enabled, every FSM state change is emitted as
        an :class:`~repro.obs.events.FSMTransition` event.
    track_memories:
        Port-activity tracking can be switched off for long runs.
    """

    def __init__(
        self,
        sim: Simulator,
        telemetry: Optional[Telemetry] = None,
        track_memories: bool = True,
    ) -> None:
        self.sim = sim
        self.telemetry = telemetry
        self.cycles = 0
        self._operation: str = IDLE
        self._fsms: List[FSM] = [
            c for c in sim.components if isinstance(c, FSM)
        ]
        self._memories: List[SyncMemory] = (
            [c for c in sim.components if isinstance(c, SyncMemory)]
            if track_memories
            else []
        )
        #: fsm name -> state name -> cycles spent in that state
        self.fsm_state_cycles: Dict[str, Dict[str, int]] = {
            f.name: {} for f in self._fsms
        }
        #: operation label -> total cycles
        self.operation_cycles: Dict[str, int] = {}
        #: operation label -> fsm name -> state name -> cycles
        self.operation_state_cycles: Dict[str, Dict[str, Dict[str, int]]] = {}
        #: memory name -> cycles with the write strobe asserted
        self.memory_write_cycles: Dict[str, int] = {
            m.name: 0 for m in self._memories
        }
        #: memory name -> cycles where the read address moved
        self.memory_read_cycles: Dict[str, int] = {
            m.name: 0 for m in self._memories
        }
        self._last_state: Dict[FSM, str] = {}
        self._last_rd_addr: Dict[SyncMemory, int] = {}
        self.resync()
        sim.on_tick(self._on_tick)

    # -- attachment --------------------------------------------------------
    def resync(self) -> None:
        """Re-read the architectural state (after an async reset, the
        state registers change without a clock edge)."""
        self._last_state = {f: f.state_name for f in self._fsms}
        self._last_rd_addr = {m: m.rd_addr.value for m in self._memories}

    def detach(self) -> None:
        self.sim.remove_tick_hook(self._on_tick)

    # -- operation scoping -------------------------------------------------
    @contextmanager
    def operation(self, name: str) -> Iterator[None]:
        """Attribute the cycles of the enclosed block to ``name``."""
        previous = self._operation
        self._operation = name
        try:
            yield
        finally:
            self._operation = previous

    # -- the per-cycle hook --------------------------------------------------
    def _on_tick(self, cycle: int) -> None:
        self.cycles += 1
        op = self._operation
        self.operation_cycles[op] = self.operation_cycles.get(op, 0) + 1
        op_states = self.operation_state_cycles.setdefault(op, {})
        emit_events = (
            self.telemetry is not None and self.telemetry.enabled
        )
        for fsm in self._fsms:
            held = self._last_state[fsm]
            per_state = self.fsm_state_cycles[fsm.name]
            per_state[held] = per_state.get(held, 0) + 1
            op_per_state = op_states.setdefault(fsm.name, {})
            op_per_state[held] = op_per_state.get(held, 0) + 1
            now = fsm.state_name
            if now != held:
                if emit_events:
                    # cycles-domain event: stamp time with the cycle
                    # number so the log never applies its sim clock
                    transition = FSMTransition(
                        fsm=fsm.name, src=held, dst=now, cycle=cycle
                    )
                    transition.time = float(cycle)
                    self.telemetry.events.emit(transition)
                self._last_state[fsm] = now
        for mem in self._memories:
            if mem.wr_en.value:
                self.memory_write_cycles[mem.name] += 1
            addr = mem.rd_addr.value
            if addr != self._last_rd_addr[mem]:
                self.memory_read_cycles[mem.name] += 1
                self._last_rd_addr[mem] = addr

    # -- invariants ----------------------------------------------------------
    def check_conservation(self) -> None:
        """Every cycle is attributed exactly once, per FSM and per
        operation.  Raises :class:`ConservationError` on violation."""
        for fsm_name, per_state in self.fsm_state_cycles.items():
            total = sum(per_state.values())
            if total != self.cycles:
                raise ConservationError(
                    f"{fsm_name}: per-state cycles sum to {total}, "
                    f"but {self.cycles} cycles were observed"
                )
        op_total = sum(self.operation_cycles.values())
        if op_total != self.cycles:
            raise ConservationError(
                f"per-operation cycles sum to {op_total}, "
                f"but {self.cycles} cycles were observed"
            )
        for op, per_fsm in self.operation_state_cycles.items():
            for fsm_name, per_state in per_fsm.items():
                total = sum(per_state.values())
                if total != self.operation_cycles[op]:
                    raise ConservationError(
                        f"{op}/{fsm_name}: {total} != "
                        f"{self.operation_cycles[op]}"
                    )

    # -- views ---------------------------------------------------------------
    def busiest_states(self, fsm_name: str) -> List[Tuple[str, int]]:
        """States of one FSM, most cycles first."""
        per_state = self.fsm_state_cycles[fsm_name]
        return sorted(per_state.items(), key=lambda kv: (-kv[1], kv[0]))

    def operation_breakdown(
        self, operation: str, fsm_name: str
    ) -> Dict[str, int]:
        """Per-state cycles of one FSM during one operation."""
        return dict(
            self.operation_state_cycles.get(operation, {}).get(fsm_name, {})
        )

    def render(self) -> str:
        """A human-readable profile (the ``repro stats`` output)."""
        lines = [f"cycles observed: {self.cycles}"]
        lines.append("per-operation cycles:")
        for op in sorted(
            self.operation_cycles, key=lambda o: -self.operation_cycles[o]
        ):
            lines.append(f"  {op:24s} {self.operation_cycles[op]:8d}")
        for fsm_name in sorted(self.fsm_state_cycles):
            lines.append(f"FSM {fsm_name}:")
            for state, cycles in self.busiest_states(fsm_name):
                share = cycles / self.cycles if self.cycles else 0.0
                lines.append(
                    f"  {state:16s} {cycles:8d}  ({share:6.1%})"
                )
        if self.memory_write_cycles:
            lines.append("memory port activity (write/read-move cycles):")
            for name in sorted(self.memory_write_cycles):
                w = self.memory_write_cycles[name]
                r = self.memory_read_cycles[name]
                if w or r:
                    lines.append(f"  {name:28s} w={w:6d} r={r:6d}")
        return "\n".join(lines)
