"""Unified telemetry: metrics, structured events, cycle profiling.

The observability layer of the reproduction, threaded through every
other subsystem:

* :mod:`repro.obs.metrics` -- the registry of counters, gauges and
  fixed-bucket histograms;
* :mod:`repro.obs.events` -- typed event records over pluggable sinks
  (in-memory, JSONL, callback);
* :mod:`repro.obs.profiling` -- cycle-level attribution of the RTL
  simulation to FSM states, memory ports, and scoped operations;
* :mod:`repro.obs.export` -- Prometheus text format and JSON snapshots;
* :mod:`repro.obs.telemetry` -- the facade and the process-wide
  default instance (disabled by default; hot paths pay one boolean
  test).

Quick use::

    from repro.obs import telemetry_session, to_prometheus

    with telemetry_session() as tel:
        ...  # run a network, drive the RTL, converge LDP
        print(to_prometheus(tel.registry))
"""

from repro.obs.alerts import (
    AlertEngine,
    AlertRule,
    render_alert_history,
)
from repro.obs.events import (
    CLOCK_CYCLES,
    CLOCK_SIM,
    JSONL_SCHEMA_VERSION,
    AlertCleared,
    AlertRaised,
    AttackDetected,
    AttackMitigated,
    AuditCompleted,
    CallbackSink,
    Event,
    EventLog,
    FaultHealed,
    FaultInjected,
    FilterSink,
    FSMTransition,
    HWOpExecuted,
    InfoBaseProgrammed,
    InfoBaseScrubbed,
    JSONLSink,
    LabelMappingInstalled,
    LabelMappingWithdrawn,
    LabelOpApplied,
    ListSink,
    LSPEvent,
    OAMProbeCompleted,
    PacketDelivered,
    PacketDropped,
    PacketForwarded,
    SessionStateChange,
    StaleEntriesFlushed,
    read_jsonl,
)
from repro.obs.export import snapshot, to_json, to_prometheus
from repro.obs.flows import (
    FlowAccountant,
    FlowRecord,
    MatrixCollector,
    TrafficMatrix,
    flows_to_jsonl,
    matrices_to_json,
    render_flow_summary,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.profiling import ConservationError, CycleProfiler
from repro.obs.spans import (
    Span,
    SpanAnnotation,
    SpanRecorder,
    Trace,
    export_chrome_trace,
    spans_to_jsonl,
    to_chrome_trace,
)
from repro.obs.telemetry import (
    Telemetry,
    get_telemetry,
    set_telemetry,
    telemetry_session,
)
from repro.obs.topo import TopologyObserver, TopologyView

__all__ = [
    "AlertCleared",
    "AlertEngine",
    "AlertRaised",
    "AlertRule",
    "AttackDetected",
    "AttackMitigated",
    "AuditCompleted",
    "CallbackSink",
    "CLOCK_CYCLES",
    "CLOCK_SIM",
    "ConservationError",
    "Counter",
    "CycleProfiler",
    "Event",
    "EventLog",
    "FaultHealed",
    "FaultInjected",
    "FilterSink",
    "FlowAccountant",
    "FlowRecord",
    "FSMTransition",
    "Gauge",
    "Histogram",
    "HWOpExecuted",
    "InfoBaseProgrammed",
    "InfoBaseScrubbed",
    "JSONL_SCHEMA_VERSION",
    "JSONLSink",
    "LabelMappingInstalled",
    "LabelMappingWithdrawn",
    "LabelOpApplied",
    "ListSink",
    "LSPEvent",
    "MatrixCollector",
    "MetricFamily",
    "MetricsRegistry",
    "OAMProbeCompleted",
    "PacketDelivered",
    "PacketDropped",
    "PacketForwarded",
    "SessionStateChange",
    "Span",
    "SpanAnnotation",
    "SpanRecorder",
    "StaleEntriesFlushed",
    "Telemetry",
    "TopologyObserver",
    "TopologyView",
    "Trace",
    "TrafficMatrix",
    "export_chrome_trace",
    "flows_to_jsonl",
    "get_telemetry",
    "matrices_to_json",
    "read_jsonl",
    "render_alert_history",
    "render_flow_summary",
    "set_telemetry",
    "snapshot",
    "spans_to_jsonl",
    "telemetry_session",
    "to_chrome_trace",
    "to_json",
    "to_prometheus",
]
