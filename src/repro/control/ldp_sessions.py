"""Message-level LDP: discovery, sessions, ordered label distribution.

:mod:`repro.control.ldp` models a *converged* LDP (state appears
instantaneously).  This module models how that state comes to exist:
every router runs an :class:`LDPSpeaker` exchanging real messages over
the event scheduler with per-link propagation delays --

1. **discovery**: HELLOs on every adjacency,
2. **session setup**: the active side (higher node name) sends INIT,
   the passive side replies, KEEPALIVEs confirm; the session is then up
   on both ends,
3. **label distribution** (downstream-unsolicited, *ordered* control):
   the egress originates a LABEL_MAPPING for an announced FEC; a router
   that receives a mapping from its SPF next hop towards the egress
   installs forwarding state and only then propagates its own mapping
   upstream -- so LSPs become usable strictly from the egress backwards,
4. **withdrawal**: LABEL_WITHDRAW propagates the same way and tears the
   state down.

The orchestrator records message counts and convergence timestamps, so
benchmarks can measure control-plane convergence against topology
diameter -- the "efficient maintenance of those paths" the paper's
introduction asks of MPLS.
"""

from __future__ import annotations

import zlib

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, List, Optional, Set, Tuple

from repro.control.labels import LabelAllocator
from repro.control.overload import (
    CLASS_NAMES,
    OverloadConfig,
    PriorityControlQueue,
    classify_message,
)
from repro.control.retry import ReconnectBackoff
from repro.control.routing import LinkStateDatabase
from repro.mpls.fec import FEC
from repro.mpls.label import LabelOp
from repro.mpls.nhlfe import NHLFE
from repro.mpls.router import LSRNode
from repro.net.events import EventScheduler
from repro.net.topology import Topology
from repro.obs.events import (
    ControlMessageShed,
    LabelMappingInstalled,
    LabelMappingWithdrawn,
    SessionStateChange,
)
from repro.obs.telemetry import get_telemetry


class MsgType(Enum):
    HELLO = "hello"
    INIT = "init"
    KEEPALIVE = "keepalive"
    LABEL_MAPPING = "label-mapping"
    LABEL_WITHDRAW = "label-withdraw"
    #: session teardown notification (RFC 5036 shutdown); the message a
    #: hijacker forges, so it is the one the auth token protects
    SHUTDOWN = "shutdown"
    #: a TTL-expiry punt from the data plane: pure control-CPU load
    TTL_EXCEPTION = "ttl-exception"


def session_token(a: str, b: str) -> int:
    """The per-session authentication token (a TCP-MD5 stand-in).

    Deterministic over the sorted node pair, modelling a pre-shared
    key per session (RFC 5036 section 2.9); never zero, so a forged
    ``auth=0`` cannot collide with a real token.
    """
    lo, hi = (a, b) if a <= b else (b, a)
    return zlib.crc32(f"{lo}|{hi}|ldp-md5".encode("utf-8")) or 1


@dataclass(frozen=True)
class LDPMessage:
    kind: MsgType
    src: str
    dst: str
    #: FEC id for mapping/withdraw messages
    fec_id: Optional[str] = None
    label: Optional[int] = None
    #: session auth token; :meth:`MessageLDPProcess.send` stamps it
    #: when authentication is armed (a forged non-None value survives,
    #: which is what makes the hijack fault testable)
    auth: Optional[int] = None


@dataclass
class FECState:
    """One distributed FEC, tracked network-wide for convergence."""

    fec: FEC
    egress: str
    #: node -> label it advertised upstream
    advertised: Dict[str, int] = field(default_factory=dict)
    #: node -> time its forwarding state was installed
    installed_at: Dict[str, float] = field(default_factory=dict)
    withdrawn: bool = False


class LDPSpeaker:
    """The per-router LDP protocol instance."""

    def __init__(self, process: "MessageLDPProcess", node: LSRNode) -> None:
        self.process = process
        self.node = node
        self.name = node.name
        self.allocator = LabelAllocator()
        #: neighbours from which a HELLO arrived
        self.heard: Set[str] = set()
        #: peers with an established session
        self.sessions: Set[str] = set()
        #: fec_id -> (neighbor -> label) remote bindings
        self.bindings: Dict[str, Dict[str, int]] = {}
        #: fec_id -> label we advertised
        self.local_labels: Dict[str, int] = {}
        #: True while the control plane is down in a graceful restart:
        #: incoming messages hit a dead process and are ignored, but
        #: the node's data plane keeps forwarding on stale-marked state
        self.restarting = False

    # -- discovery / session ------------------------------------------------
    def start(self) -> None:
        for neighbor in self.process.topology.neighbors(self.name):
            self.process.send(
                LDPMessage(MsgType.HELLO, self.name, neighbor)
            )

    def handle(self, msg: LDPMessage) -> None:
        if self.restarting:
            return  # control plane down: nobody home to process this
        if msg.kind is MsgType.HELLO:
            self._on_hello(msg)
        elif msg.kind is MsgType.INIT:
            self._on_init(msg)
        elif msg.kind is MsgType.KEEPALIVE:
            self._on_keepalive(msg)
        elif msg.kind is MsgType.LABEL_MAPPING:
            self._on_mapping(msg)
        elif msg.kind is MsgType.LABEL_WITHDRAW:
            self._on_withdraw(msg)
        elif msg.kind is MsgType.SHUTDOWN:
            self.process._handle_shutdown(msg)
        # TTL_EXCEPTION carries no protocol state: servicing it *was*
        # the work (one control-CPU slot burned per punt)

    def _on_hello(self, msg: LDPMessage) -> None:
        first = msg.src not in self.heard
        self.heard.add(msg.src)
        if first:
            # every speaker already hello'd all neighbours at start, so
            # no reply is needed; the active side (lexicographically
            # larger name) initiates the session
            if self.name > msg.src:
                self.process.send(
                    LDPMessage(MsgType.INIT, self.name, msg.src)
                )

    def _on_init(self, msg: LDPMessage) -> None:
        if msg.src not in self.sessions:
            if self.name < msg.src:
                # passive side: respond with its own INIT
                self.process.send(
                    LDPMessage(MsgType.INIT, self.name, msg.src)
                )
            self.process.send(
                LDPMessage(MsgType.KEEPALIVE, self.name, msg.src)
            )

    def _on_keepalive(self, msg: LDPMessage) -> None:
        if msg.src not in self.sessions:
            self.sessions.add(msg.src)
            self.process._session_up(self.name, msg.src)
            # distribute any FECs we already originated/learned
            for fec_id in list(self.local_labels):
                self._advertise(fec_id, only_to=msg.src)

    # -- label distribution ---------------------------------------------------
    def originate(self, fec_id: str) -> None:
        """Egress behaviour: bind a label and advertise it."""
        state = self.process.fecs[fec_id]
        label = self.allocator.allocate()
        self.local_labels[fec_id] = label
        self.node.ilm.install(label, NHLFE(op=LabelOp.POP))
        state.advertised[self.name] = label
        state.installed_at[self.name] = self.process.scheduler.now
        self._note_install(fec_id, label, next_hop=None)
        self._advertise(fec_id)

    def _note_install(
        self, fec_id: str, label: int, next_hop: Optional[str]
    ) -> None:
        """Telemetry: this router just installed forwarding state for
        a FEC -- the per-router convergence instant."""
        tel = get_telemetry()
        if tel.enabled:
            event = LabelMappingInstalled(
                node=self.name, fec_id=fec_id, label=label, next_hop=next_hop
            )
            event.time = self.process.scheduler.now
            tel.events.emit(event)

    def _note_withdraw(self, fec_id: str, label: int) -> None:
        """Telemetry: this router just withdrew its binding for a FEC.
        Emitted only while a topology observer is attached (gated so
        pre-existing event-count reports stay byte-identical)."""
        tel = get_telemetry()
        if tel.enabled and tel.topo is not None:
            event = LabelMappingWithdrawn(
                node=self.name, fec_id=fec_id, label=label
            )
            event.time = self.process.scheduler.now
            tel.events.emit(event)

    def _advertise(self, fec_id: str, only_to: Optional[str] = None) -> None:
        label = self.local_labels[fec_id]
        peers = [only_to] if only_to else sorted(self.sessions)
        for peer in peers:
            self.process.send(
                LDPMessage(
                    MsgType.LABEL_MAPPING,
                    self.name,
                    peer,
                    fec_id=fec_id,
                    label=label,
                )
            )

    def _next_hop_to_egress(self, egress: str) -> Optional[str]:
        spf = self.process.lsdb.spf(self.name)
        return spf.next_hop(egress)

    def _on_mapping(self, msg: LDPMessage) -> None:
        fec_id = msg.fec_id
        state = self.process.fecs.get(fec_id)
        if state is None or state.withdrawn:
            return
        self.bindings.setdefault(fec_id, {})[msg.src] = msg.label
        if self.name == state.egress:
            return  # an egress's origination depends on nobody
        if fec_id in self.local_labels:
            # already installed: a re-advertisement can still refresh a
            # stale entry in place (RFC 3478 graceful restart)
            self._refresh_from(fec_id, msg.src, msg.label)
            return
        next_hop = self._next_hop_to_egress(state.egress)
        if next_hop != msg.src:
            return  # liberal retention: keep the binding, do not use it
        self._install_from(fec_id, msg.src, msg.label)

    def _install_from(self, fec_id: str, peer: str, label_in: int) -> None:
        """Ordered control: install forwarding state via ``peer`` (its
        advertised label is ``label_in``), then propagate upstream."""
        state = self.process.fecs[fec_id]
        label = self.allocator.allocate()
        self.local_labels[fec_id] = label
        self.node.ilm.install(
            label,
            NHLFE(op=LabelOp.SWAP, out_label=label_in, next_hop=peer),
        )
        if self.node.is_edge:
            self.node.ftn.install(
                state.fec,
                NHLFE(op=LabelOp.PUSH, out_label=label_in, next_hop=peer),
            )
        state.advertised[self.name] = label
        state.installed_at[self.name] = self.process.scheduler.now
        self._note_install(fec_id, label, next_hop=peer)
        self._advertise(fec_id)

    def _refresh_from(self, fec_id: str, peer: str, label_in: int) -> None:
        """Refresh-in-place for graceful restart (RFC 3478).

        We already hold forwarding state for this FEC; if our installed
        path goes via ``peer`` (and SPF agrees) and the entry is either
        stale-marked or carries an outdated outgoing label, rewrite it
        in place -- same local label, stale mark cleared.  Entries that
        are current and not stale are left untouched, so ordinary
        duplicate advertisements remain no-ops.
        """
        state = self.process.fecs[fec_id]
        label = self.local_labels[fec_id]
        nhlfe = self.node.ilm.get(label)
        if nhlfe is None or nhlfe.next_hop != peer:
            return
        if self._next_hop_to_egress(state.egress) != peer:
            return
        if self.node.ilm.is_stale(label) or nhlfe.out_label != label_in:
            self.node.ilm.install(
                label,
                NHLFE(op=LabelOp.SWAP, out_label=label_in, next_hop=peer),
            )
        if self.node.is_edge:
            ftn_nhlfe = next(
                (n for f, n in self.node.ftn if f == state.fec), None
            )
            if ftn_nhlfe is not None and ftn_nhlfe.next_hop == peer and (
                self.node.ftn.is_stale(state.fec)
                or ftn_nhlfe.out_label != label_in
            ):
                self.node.ftn.install(
                    state.fec,
                    NHLFE(op=LabelOp.PUSH, out_label=label_in, next_hop=peer),
                )

    def _withdraw_local(
        self, fec_id: str, exclude: Optional[str] = None
    ) -> bool:
        """Tear down our forwarding state for a FEC and tell every
        session peer except ``exclude``.  Returns True if state was
        actually removed."""
        state = self.process.fecs.get(fec_id)
        if state is None:
            return False
        label = self.local_labels.pop(fec_id, None)
        if label is None:
            return False
        if label in self.node.ilm:
            self.node.ilm.remove(label)
        try:
            self.node.ftn.remove(state.fec)
        except KeyError:
            pass
        self.allocator.release(label)
        state.advertised.pop(self.name, None)
        state.installed_at.pop(self.name, None)
        self._note_withdraw(fec_id, label)
        for peer in sorted(self.sessions):
            if peer != exclude:
                self.process.send(
                    LDPMessage(
                        MsgType.LABEL_WITHDRAW,
                        self.name,
                        peer,
                        fec_id=fec_id,
                    )
                )
        return True

    def _reinstall_from_retained(self, fec_id: str) -> None:
        """After losing the state we had via a failed peer, fall back
        to a liberally retained binding from the *current* SPF next hop
        (if a session to it is up) -- the recovery path that makes
        liberal retention worth its memory."""
        state = self.process.fecs.get(fec_id)
        if state is None or state.withdrawn:
            return
        if self.name == state.egress or fec_id in self.local_labels:
            return
        next_hop = self._next_hop_to_egress(state.egress)
        if next_hop is None or next_hop not in self.sessions:
            return
        label_in = self.bindings.get(fec_id, {}).get(next_hop)
        if label_in is None:
            return
        self._install_from(fec_id, next_hop, label_in)

    def _on_withdraw(self, msg: LDPMessage) -> None:
        fec_id = msg.fec_id
        state = self.process.fecs.get(fec_id)
        if state is None:
            return
        self.bindings.get(fec_id, {}).pop(msg.src, None)
        if self.name == state.egress:
            return  # an egress's origination depends on nobody
        label = self.local_labels.get(fec_id)
        if label is None:
            return
        nhlfe = self.node.ilm.get(label)
        if nhlfe is None or nhlfe.next_hop != msg.src:
            # our installed path does not go through the withdrawing
            # peer; dropping the retained binding is all that's needed
            # (propagating further would tear down healthy state and
            # cascade the withdrawal around the whole network)
            return
        if self._withdraw_local(fec_id, exclude=msg.src):
            # the downstream path died; try any retained alternative
            self._reinstall_from_retained(fec_id)

    # -- session failure ------------------------------------------------------
    def _fecs_via(self, peer: str) -> List[str]:
        """FEC ids whose installed forwarding state here routes via
        ``peer`` (egress originations excluded) -- the state a session
        loss to ``peer`` would tear down."""
        affected: List[str] = []
        for fec_id, label in list(self.local_labels.items()):
            state = self.process.fecs.get(fec_id)
            if state is None or self.name == state.egress:
                continue
            nhlfe = self.node.ilm.get(label)
            if nhlfe is not None and nhlfe.next_hop == peer:
                affected.append(fec_id)
        return affected

    def session_lost(self, peer: str) -> None:
        """The session to ``peer`` dropped: purge every binding learned
        from it and withdraw any mapping of ours that was installed via
        it.  Without the withdrawal, upstream routers keep forwarding
        into a black hole -- the stale-mapping bug this method fixes.
        """
        if peer not in self.sessions:
            return
        self.sessions.discard(peer)
        # forget discovery state too, so reconnection re-runs the full
        # HELLO -> INIT -> KEEPALIVE handshake
        self.heard.discard(peer)
        affected = self._fecs_via(peer)
        for fec_id in list(self.bindings):
            self.bindings[fec_id].pop(peer, None)
        for fec_id in affected:
            self._withdraw_local(fec_id)
            self._reinstall_from_retained(fec_id)


class MessageLDPProcess:
    """Orchestrates the speakers over one event scheduler."""

    def __init__(
        self,
        topology: Topology,
        nodes: Dict[str, LSRNode],
        scheduler: EventScheduler,
        processing_delay: float = 50e-6,
        retry_initial: float = 50e-3,
        retry_max: float = 2.0,
        max_retries: int = 20,
        overload: Optional[OverloadConfig] = None,
        retry_jitter: float = 0.0,
        jitter_seed: int = 0,
    ) -> None:
        self.topology = topology
        self.scheduler = scheduler
        self.lsdb = LinkStateDatabase(topology)
        self.processing_delay = processing_delay
        self.speakers: Dict[str, LDPSpeaker] = {
            name: LDPSpeaker(self, node) for name, node in nodes.items()
        }
        self.fecs: Dict[str, FECState] = {}
        self.message_counts: Dict[MsgType, int] = {k: 0 for k in MsgType}
        self.sessions_established: List[Tuple[float, str, str]] = []
        self._started = False
        # -- session-recovery policy (exponential backoff) ------------------
        # the shared seeded policy (repro.control.retry): validates the
        # jitter range and owns the per-session RNGs
        self.backoff = ReconnectBackoff(
            initial=retry_initial,
            maximum=retry_max,
            max_retries=max_retries,
            jitter=retry_jitter,
            seed=jitter_seed,
        )
        #: (a, b) sorted pair -> {"attempt": n, "down_at": t}
        self._reconnecting: Dict[Tuple[str, str], Dict[str, float]] = {}
        self.sessions_lost: List[Tuple[float, str, str]] = []
        #: (recovered_at, a, b, downtime_seconds)
        self.sessions_recovered: List[Tuple[float, str, str, float]] = []
        self.reconnect_attempts = 0
        self.reconnects_abandoned = 0
        # -- adversarial security (None = legacy unauthenticated) -----------
        #: the run's :class:`repro.security.SecurityMonitor`, attached
        #: by its ``arm()``; with one attached (and authentication on)
        #: outgoing messages carry session tokens and shutdowns are
        #: verified against them
        self.security = None
        #: shutdowns rejected for a bad or missing auth token
        self.auth_rejected = 0
        # -- overload protection (None = legacy unbounded delivery) ---------
        self.overload = overload
        self.holds_expired = 0
        if overload is not None:
            self.queues: Dict[str, PriorityControlQueue] = {
                name: PriorityControlQueue(
                    overload.queue_capacity,
                    overload.high_watermark,
                    overload.low_watermark,
                    prioritized=overload.enabled,
                )
                for name in sorted(self.speakers)
            }
            self._cpu_busy: Dict[str, bool] = {
                name: False for name in self.speakers
            }
            #: (node, peer) -> time a KEEPALIVE from peer was last serviced
            self._last_heard: Dict[Tuple[str, str], float] = {}
        else:
            self.queues = {}
            self._cpu_busy = {}
            self._last_heard = {}

    # -- transport ---------------------------------------------------------
    def send(self, msg: LDPMessage) -> None:
        if not self.topology.has_link(msg.src, msg.dst):
            return  # adjacency gone (link failed mid-flight)
        sec = self.security
        if (
            sec is not None
            and sec.config.enabled
            and sec.config.authenticate
            and msg.auth is None
        ):
            # the legitimate sender signs its messages; a forger set a
            # (wrong) token already, and that forgery must survive
            msg = replace(msg, auth=session_token(msg.src, msg.dst))
        self.message_counts[msg.kind] += 1
        tel = get_telemetry()
        if tel.enabled:
            tel.ldp_messages.labels(msg.kind.value).inc()
        if self.overload is None:
            delay = (
                self.topology.link(msg.src, msg.dst).delay_s
                + self.processing_delay
            )
            self.scheduler.after(
                delay, lambda: self.speakers[msg.dst].handle(msg)
            )
            return
        # overload protection: propagation only, then the receiver's
        # bounded control queue (processing happens at service time)
        delay = self.topology.link(msg.src, msg.dst).delay_s
        self.scheduler.after(delay, lambda: self._control_arrive(msg))

    def _control_arrive(self, msg: LDPMessage) -> None:
        """An LDP message reached ``msg.dst``'s control queue."""
        queue = self.queues[msg.dst]
        cls = classify_message(msg.kind)
        accepted, dropped = queue.offer(msg, cls)
        tel = get_telemetry()
        if tel.enabled:
            tel.control_queue_depth.labels(msg.dst).set(len(queue))
            for victim, vcls, cause in dropped:
                tel.control_queue_drops.labels(
                    msg.dst, CLASS_NAMES[vcls], cause
                ).inc()
                event = ControlMessageShed(
                    node=msg.dst,
                    msg_class=CLASS_NAMES[vcls],
                    cause=cause,
                )
                event.time = self.scheduler.now
                tel.events.emit(event)
        if not accepted:
            return
        if not self._cpu_busy[msg.dst]:
            self._cpu_busy[msg.dst] = True
            self.scheduler.after(
                self.overload.service_time_s,
                lambda: self._service(msg.dst),
            )

    def _service(self, name: str) -> None:
        """``name``'s control CPU finishes one service slot."""
        queue = self.queues[name]
        head = queue.pop()
        tel = get_telemetry()
        if tel.enabled:
            tel.control_queue_depth.labels(name).set(len(queue))
        if head is None:
            self._cpu_busy[name] = False
            return
        msg, _cls = head
        self.speakers[name].handle(msg)
        if msg.kind is MsgType.KEEPALIVE:
            self._last_heard[(name, msg.src)] = self.scheduler.now
        if len(queue):
            self.scheduler.after(
                self.overload.service_time_s, lambda: self._service(name)
            )
        else:
            self._cpu_busy[name] = False

    # -- adversarial security hooks -----------------------------------------
    def _handle_shutdown(self, msg: LDPMessage) -> None:
        """A SHUTDOWN reached ``msg.dst``: verify its session token
        (when authentication is armed), then tear the session down.
        This is the path a hijacker forges -- with auth on, a forged
        token is rejected and counted; with auth off, the forgery
        tears down a healthy session."""
        sec = self.security
        now = self.scheduler.now
        if (
            sec is not None
            and sec.config.enabled
            and sec.config.authenticate
            and msg.auth != session_token(msg.src, msg.dst)
        ):
            self.auth_rejected += 1
            sec.note_auth_mismatch(now, node=msg.dst, peer=msg.src)
            return
        # measure what the accepted shutdown is about to tear down,
        # before drop_session purges it on both sides
        affected = sorted(
            set(self.speakers[msg.dst]._fecs_via(msg.src))
            | set(self.speakers[msg.src]._fecs_via(msg.dst))
        )
        if sec is not None:
            sec.note_hijack_teardown(now, msg.dst, msg.src, affected)
        self.drop_session(msg.src, msg.dst, reason="shutdown received")

    def exception_load(self, node: str, count: int) -> None:
        """``count`` TTL-exception punts land on ``node``'s control CPU.

        Exception work rides the same bounded queue as signaling
        (class SETUP, so a flood of punts can never outrank the
        keepalives it is trying to starve); each accepted punt burns
        one service slot, which is exactly how an unmitigated low-TTL
        flood starves liveness on an unprioritized queue.
        """
        if not self.queues:
            return
        tel = get_telemetry()
        for _ in range(count):
            msg = LDPMessage(MsgType.TTL_EXCEPTION, node, node)
            self.message_counts[msg.kind] += 1
            if tel.enabled:
                tel.ldp_messages.labels(msg.kind.value).inc()
            self._control_arrive(msg)

    def refresh_node(self, name: str) -> Tuple[int, int]:
        """Rewrite one speaker's ILM/FTN entries in place from its
        live protocol state (local labels + learned bindings + SPF).

        The delegation-fallback / controller-resync primitive: install
        clears stale marks, so still-valid forwarding state survives a
        controller orphaning untouched while dead entries stay stale
        for the flush.  Emits no events -- network-wide state does not
        change.  Returns the number of (ILM, FTN) entries rewritten.
        """
        speaker = self.speakers[name]
        node = speaker.node
        ilm_writes = ftn_writes = 0
        for fec_id in sorted(speaker.local_labels):
            state = self.fecs.get(fec_id)
            if state is None or state.withdrawn:
                continue
            label = speaker.local_labels[fec_id]
            if name == state.egress:
                node.ilm.install(label, NHLFE(op=LabelOp.POP))
                ilm_writes += 1
                continue
            nh = speaker._next_hop_to_egress(state.egress)
            if nh is None:
                continue
            label_in = speaker.bindings.get(fec_id, {}).get(nh)
            if label_in is None:
                continue
            node.ilm.install(
                label,
                NHLFE(op=LabelOp.SWAP, out_label=label_in, next_hop=nh),
            )
            ilm_writes += 1
            if node.is_edge:
                node.ftn.install(
                    state.fec,
                    NHLFE(
                        op=LabelOp.PUSH, out_label=label_in, next_hop=nh
                    ),
                )
                ftn_writes += 1
        return ilm_writes, ftn_writes

    # -- liveness (keepalive refresh + hold-timer expiry) -------------------
    def _liveness_tick(self) -> None:
        cfg = self.overload
        if cfg is None:
            return
        now = self.scheduler.now
        expired: Set[Tuple[str, str]] = set()
        for name in sorted(self.speakers):
            speaker = self.speakers[name]
            for peer in sorted(speaker.sessions):
                last = self._last_heard.get((name, peer))
                if last is not None and now - last > cfg.hold_time:
                    expired.add(self._pair(name, peer))
        for a, b in sorted(expired):
            self.holds_expired += 1
            self.drop_session(a, b, reason="hold timer expired")
        for name in sorted(self.speakers):
            speaker = self.speakers[name]
            if speaker.restarting:
                continue
            for peer in sorted(speaker.sessions):
                self.send(LDPMessage(MsgType.KEEPALIVE, name, peer))
        if (
            cfg.horizon is not None
            and now + cfg.keepalive_interval <= cfg.horizon
        ):
            self.scheduler.after(
                cfg.keepalive_interval, self._liveness_tick
            )

    def _session_up(self, a: str, b: str) -> None:
        self.sessions_established.append((self.scheduler.now, a, b))
        if self.overload is not None:
            # a fresh session counts as recently heard in both directions
            self._last_heard[(a, b)] = self.scheduler.now
            self._last_heard[(b, a)] = self.scheduler.now
        tel = get_telemetry()
        if tel.enabled:
            tel.ldp_sessions.inc()
            event = SessionStateChange(node=a, peer=b, state="up")
            event.time = self.scheduler.now
            tel.events.emit(event)
        # a pending reconnection has succeeded once both directions are up
        key = self._pair(a, b)
        pending = self._reconnecting.get(key)
        if (
            pending is not None
            and b in self.speakers[a].sessions
            and a in self.speakers[b].sessions
        ):
            del self._reconnecting[key]
            downtime = self.scheduler.now - pending["down_at"]
            self.sessions_recovered.append(
                (self.scheduler.now, key[0], key[1], downtime)
            )
            if tel.enabled:
                tel.fault_recovery.labels("ldp-session").observe(downtime)

    @staticmethod
    def _pair(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    # -- session failure and recovery ---------------------------------------
    def drop_session(self, a: str, b: str, reason: str = "injected") -> None:
        """Tear down the LDP session between ``a`` and ``b``.

        Both speakers purge the bindings they learned over the session
        and withdraw any mapping that depended on it (re-installing
        from liberally retained bindings when an alternative next hop
        exists).  Reconnection attempts then run with exponential
        backoff until the session re-forms or ``max_retries`` is
        exhausted -- while the underlying adjacency is gone, attempts
        keep backing off, so a healed link is re-discovered.
        """
        was_up = (
            b in self.speakers[a].sessions or a in self.speakers[b].sessions
        )
        if reason == "hold timer expired" and self.security is not None:
            # a starved hold timer during a flood attack: record what
            # the expiry tears down, before the purge below removes it
            affected = sorted(
                set(self.speakers[a]._fecs_via(b))
                | set(self.speakers[b]._fecs_via(a))
            )
            self.security.note_hold_expiry_teardown(
                self.scheduler.now, a, b, affected
            )
        tel = get_telemetry()
        for x, y in ((a, b), (b, a)):
            if y in self.speakers[x].sessions:
                self.speakers[x].session_lost(y)
                if tel.enabled:
                    event = SessionStateChange(node=x, peer=y, state="down")
                    event.time = self.scheduler.now
                    tel.events.emit(event)
        if not was_up:
            return
        self.sessions_lost.append((self.scheduler.now, a, b))
        if tel.enabled:
            tel.ldp_sessions.dec()
        key = self._pair(a, b)
        self._reconnecting[key] = {
            "attempt": 0.0,
            "down_at": self.scheduler.now,
        }
        self.scheduler.after(
            self.backoff.first_delay(key),
            lambda: self._try_reconnect(key),
        )

    def _jittered(self, key: Tuple[str, str], delay: float) -> float:
        """Apply the seeded per-session jitter to a backoff delay
        (delegates to the shared :class:`ReconnectBackoff` policy)."""
        return self.backoff.jittered(key, delay)

    def _try_reconnect(self, key: Tuple[str, str]) -> None:
        pending = self._reconnecting.get(key)
        if pending is None:
            return  # recovered (or abandoned) in the meantime
        a, b = key
        attempt = int(pending["attempt"]) + 1
        pending["attempt"] = float(attempt)
        if self.backoff.exhausted(attempt):
            del self._reconnecting[key]
            self.reconnects_abandoned += 1
            return
        self.reconnect_attempts += 1
        tel = get_telemetry()
        if tel.enabled:
            tel.ldp_retries.labels(a, b).inc()
        if self.topology.has_link(a, b):
            # re-run discovery: fresh HELLOs re-arm the INIT exchange.
            # Forget hello state first -- an INIT lost to an overloaded
            # control queue must not leave discovery half-armed, where
            # retried HELLOs are no longer "first" and nobody INITs
            self.speakers[a].heard.discard(b)
            self.speakers[b].heard.discard(a)
            self.send(LDPMessage(MsgType.HELLO, a, b))
            self.send(LDPMessage(MsgType.HELLO, b, a))
        self.scheduler.after(
            self.backoff.next_delay(key, attempt),
            lambda: self._try_reconnect(key),
        )

    # -- graceful restart (RFC 3478 semantics) ------------------------------
    def begin_graceful_restart(self, name: str) -> Tuple[int, int]:
        """Warm control-plane crash at ``name``: non-stop forwarding.

        The speaker's control plane dies (incoming messages are
        ignored; protocol state is lost except the label bindings it
        recovers from the preserved forwarding tables, per RFC 3478)
        while its data plane keeps forwarding on stale-marked ILM/FTN
        entries.  Sessions to its peers go down *gracefully*: because
        the restarting speaker advertised the fault-tolerant restart
        capability, helpers keep the bindings and forwarding state
        learned from it, merely stale-marking the entries routed via
        the restarting node instead of withdrawing them.  Returns the
        number of (ILM, FTN) entries stale-marked at ``name``.
        """
        speaker = self.speakers[name]
        node = speaker.node
        # the staging bank dies with the software
        if node.ilm.in_transaction:
            node.ilm.rollback()
        if node.ftn.in_transaction:
            node.ftn.rollback()
        marked = (node.ilm.mark_all_stale(), node.ftn.mark_all_stale())
        speaker.restarting = True
        tel = get_telemetry()
        for peer_name in sorted(speaker.sessions):
            peer = self.speakers[peer_name]
            peer.sessions.discard(name)
            peer.heard.discard(name)
            # helper behaviour: keep state, stale-mark entries via name
            for fec_id, label in peer.local_labels.items():
                nhlfe = peer.node.ilm.get(label)
                if nhlfe is not None and nhlfe.next_hop == name:
                    peer.node.ilm.mark_stale(label)
                    state = self.fecs.get(fec_id)
                    if state is not None:
                        ftn_nhlfe = next(
                            (n for f, n in peer.node.ftn if f == state.fec),
                            None,
                        )
                        if (
                            ftn_nhlfe is not None
                            and ftn_nhlfe.next_hop == name
                        ):
                            peer.node.ftn.mark_stale(state.fec)
            if tel.enabled:
                for x, y in ((name, peer_name), (peer_name, name)):
                    event = SessionStateChange(node=x, peer=y, state="down")
                    event.time = self.scheduler.now
                    tel.events.emit(event)
                tel.ldp_sessions.dec()
        speaker.sessions.clear()
        speaker.heard.clear()
        return marked

    def complete_graceful_restart(self, name: str) -> None:
        """The control plane at ``name`` is back, restart flag set.

        Its egress originations are refreshed in place from the
        recovered bindings, then discovery re-runs on every adjacency;
        as sessions re-form, both sides re-advertise their mappings and
        the :meth:`LDPSpeaker._refresh_from` path clears the stale
        marks without ever touching the labels packets are switched on.
        Entries never refreshed stay stale until the injector's
        hold-timer flush removes them.
        """
        speaker = self.speakers[name]
        speaker.restarting = False
        for fec_id, state in self.fecs.items():
            if state.egress != name or state.withdrawn:
                continue
            label = speaker.local_labels.get(fec_id)
            if label is not None and speaker.node.ilm.is_stale(label):
                speaker.node.ilm.install(label, NHLFE(op=LabelOp.POP))
        # re-run discovery in both directions, as reconnection does
        for neighbor in sorted(self.topology.neighbors(name)):
            self.send(LDPMessage(MsgType.HELLO, name, neighbor))
            self.send(LDPMessage(MsgType.HELLO, neighbor, name))

    # -- operations --------------------------------------------------------
    def start(self) -> None:
        """Begin discovery on every router."""
        if self._started:
            raise RuntimeError("already started")
        self._started = True
        for speaker in self.speakers.values():
            speaker.start()
        cfg = self.overload
        if cfg is not None and cfg.horizon is not None:
            self.scheduler.after(
                cfg.keepalive_interval, self._liveness_tick
            )

    def announce_fec(self, fec_id: str, fec: FEC, egress: str) -> FECState:
        """The egress originates a FEC (schedule after sessions form)."""
        if fec_id in self.fecs:
            raise ValueError(f"FEC {fec_id!r} already announced")
        state = FECState(fec=fec, egress=egress)
        self.fecs[fec_id] = state
        self.speakers[egress].originate(fec_id)
        return state

    def withdraw_fec(self, fec_id: str) -> None:
        state = self.fecs[fec_id]
        state.withdrawn = True
        egress = self.speakers[state.egress]
        label = egress.local_labels.pop(fec_id, None)
        if label is not None:
            if label in egress.node.ilm:
                egress.node.ilm.remove(label)
            egress.allocator.release(label)
            # the egress's advertisement is gone with its binding
            # (previously left behind, leaving FECState.advertised
            # claiming a label the allocator had already reclaimed)
            state.advertised.pop(state.egress, None)
            egress._note_withdraw(fec_id, label)
        state.installed_at.pop(state.egress, None)
        for peer in sorted(egress.sessions):
            self.send(
                LDPMessage(
                    MsgType.LABEL_WITHDRAW, state.egress, peer, fec_id=fec_id
                )
            )

    # -- observations ----------------------------------------------------
    def all_sessions_up(self) -> bool:
        for a, b in self.topology.links:
            if b not in self.speakers[a].sessions:
                return False
            if a not in self.speakers[b].sessions:
                return False
        return True

    def converged(self, fec_id: str) -> bool:
        """Every router that can reach the egress has installed state."""
        state = self.fecs[fec_id]
        for name in self.speakers:
            if name == state.egress:
                continue
            spf = self.lsdb.spf(name)
            if spf.reachable(state.egress) and name not in state.installed_at:
                return False
        return True

    def convergence_time(self, fec_id: str) -> float:
        """Time from announcement until the last router installed."""
        state = self.fecs[fec_id]
        if not state.installed_at:
            return float("nan")
        return max(state.installed_at.values()) - min(
            state.installed_at.values()
        )

    @property
    def total_messages(self) -> int:
        return sum(self.message_counts.values())
