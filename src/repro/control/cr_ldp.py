"""CR-LDP-style explicit-route setup.

The other label distribution protocol the paper names (via reference
[5], Jamoussi's constraint-based LSP setup using LDP).  Functionally it
produces the same forwarding state as RSVP-TE; the modelled differences
are the protocol mechanics the literature distinguishes them by:

* **hard state** -- no refresh messages; an LSP stays until explicitly
  released (so :class:`CRLDPSignaler` has no refresh/expire path),
* **two messages per hop** -- a Label Request travels downstream and a
  Label Mapping returns, counted per hop in the stats,
* signalling rides ordered LDP sessions (TCP), so a setup either
  completes or fails atomically -- partial state is rolled back.

The message-count difference versus RSVP-TE's periodic refresh is what
the control-plane overhead bench measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.control.cspf import cspf_path
from repro.control.labels import LabelAllocator
from repro.control.lsp import LSP
from repro.control.rsvp_te import SignalingError
from repro.mpls.fec import FEC
from repro.mpls.label import IMPLICIT_NULL, LabelOp
from repro.mpls.nhlfe import NHLFE
from repro.mpls.router import LSRNode
from repro.net.topology import Topology


@dataclass
class CRLDPStats:
    request_messages: int = 0
    mapping_messages: int = 0
    release_messages: int = 0
    setup_failures: int = 0


class CRLDPSignaler:
    """Constraint-routed LDP setup over shared node/topology state."""

    def __init__(self, topology: Topology, nodes: Dict[str, LSRNode]) -> None:
        self.topology = topology
        self.nodes = nodes
        self.allocators: Dict[str, LabelAllocator] = {
            name: LabelAllocator(first=200_000) for name in nodes
        }
        self.stats = CRLDPStats()
        self.lsps: Dict[str, LSP] = {}

    def setup(
        self,
        name: str,
        ingress: str,
        egress: str,
        explicit_route: Optional[List[str]] = None,
        bandwidth_bps: float = 0.0,
        cos: Optional[int] = None,
        fec: Optional[FEC] = None,
        php: bool = False,
    ) -> LSP:
        if name in self.lsps:
            raise SignalingError(f"LSP {name!r} already exists")
        if explicit_route is None:
            try:
                explicit_route = cspf_path(
                    self.topology, ingress, egress, bandwidth_bps=bandwidth_bps
                )
            except Exception as exc:
                self.stats.setup_failures += 1
                raise SignalingError(f"CSPF failed for {name!r}: {exc}") from exc
        route = explicit_route
        if route[0] != ingress or route[-1] != egress or len(route) < 2:
            raise SignalingError("explicit route must span ingress..egress")
        for a, b in zip(route, route[1:]):
            if not self.topology.has_link(a, b):
                raise SignalingError(f"explicit route uses missing link {a}-{b}")

        # Label Request downstream with admission control at each hop;
        # atomic failure -- nothing installed yet.
        for a, b in zip(route, route[1:]):
            self.stats.request_messages += 1
            if self.topology.link(a, b).reservable(a) + 1e-9 < bandwidth_bps:
                self.stats.setup_failures += 1
                raise SignalingError(
                    f"admission control: link {a}-{b} lacks headroom"
                )

        # Label Mapping upstream.
        hop_labels: List[Optional[int]] = [None] * (len(route) - 1)
        downstream: Optional[int] = None
        for i in range(len(route) - 1, 0, -1):
            node_name = route[i]
            self.stats.mapping_messages += 1
            if i == len(route) - 1:
                label = IMPLICIT_NULL if php else self.allocators[node_name].allocate()
                if not php:
                    self.nodes[node_name].ilm.install(label, NHLFE(op=LabelOp.POP))
            else:
                label = self.allocators[node_name].allocate()
                self.nodes[node_name].ilm.install(
                    label,
                    NHLFE(
                        op=LabelOp.SWAP,
                        out_label=downstream,
                        next_hop=route[i + 1],
                        cos=cos,
                    ),
                )
            hop_labels[i - 1] = label
            downstream = label

        if fec is not None:
            first = hop_labels[0]
            if first == IMPLICIT_NULL:
                self.nodes[ingress].ftn.install(
                    fec, NHLFE(op=LabelOp.NOOP, next_hop=route[1])
                )
            else:
                self.nodes[ingress].ftn.install(
                    fec,
                    NHLFE(
                        op=LabelOp.PUSH,
                        out_label=first,
                        next_hop=route[1],
                        cos=cos,
                    ),
                )

        for a, b in zip(route, route[1:]):
            self.topology.link(a, b).reserve(a, bandwidth_bps)

        lsp = LSP(
            name=name,
            path=list(route),
            hop_labels=hop_labels,
            bandwidth_bps=bandwidth_bps,
            cos=cos,
            protocol="cr-ldp",
        )
        self.lsps[name] = lsp
        return lsp

    def release(self, name: str) -> None:
        """Explicit teardown (hard state: the only way an LSP dies)."""
        lsp = self.lsps.pop(name, None)
        if lsp is None:
            raise KeyError(f"unknown LSP {name!r}")
        route = lsp.path
        self.stats.release_messages += lsp.hops
        for i in range(1, len(route)):
            label = lsp.hop_labels[i - 1]
            if label is None or label == IMPLICIT_NULL:
                continue
            node = self.nodes[route[i]]
            if label in node.ilm:
                node.ilm.remove(label)
            self.allocators[route[i]].release(label)
        for a, b in zip(route, route[1:]):
            self.topology.link(a, b).release(a, lsp.bandwidth_bps)
        lsp.up = False
